//! Umbrella crate re-exporting the Hermes reproduction workspace.

#![forbid(unsafe_code)]

pub use hermes_baselines as baselines;
pub use hermes_bgp as bgp;
pub use hermes_core as core;
pub use hermes_fleet as fleet;
pub use hermes_netsim as netsim;
pub use hermes_rules as rules;
pub use hermes_tcam as tcam;
pub use hermes_telemetry as telemetry;
pub use hermes_util as util;
pub use hermes_workloads as workloads;
