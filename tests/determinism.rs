//! Determinism regression: the whole pipeline — gravity-model workload
//! generation, Varys simulation, metric collection, JSON serialization —
//! must be a pure function of its seeds. Two identically-configured runs
//! have to produce *byte-identical* JSON documents; any hidden source of
//! nondeterminism (hash-map iteration order, time-of-day, uninitialized
//! state) shows up here as a diff.

use hermes::core::config::HermesConfig;
use hermes::netsim::metrics::RunMetrics;
use hermes::netsim::prelude::*;
use hermes::tcam::SwitchModel;
use hermes::util::json::{Json, ToJson};
use hermes::workloads::gravity::{flows_from_matrix, TrafficMatrix};

fn gravity_run(sim_seed: u64, flow_seed: u64) -> RunMetrics {
    let topo = Topology::geant();
    let nodes = topo.hosts().len();
    let config = VarysConfig {
        switch: SwitchKind::Hermes(SwitchModel::dell_8132f(), HermesConfig::default()),
        congestion_threshold: 0.6,
        base_rules_per_switch: 150,
        seed: sim_seed,
        ..Default::default()
    };
    let mut sim = Varys::new(topo, config);
    let tm = TrafficMatrix::gravity(nodes, 3e9, 8);
    let flows = flows_from_matrix(&tm, 3.0, 100e6, flow_seed);
    sim.register_flows(&flows, 0);
    sim.run(600.0);
    sim.metrics.clone()
}

#[test]
fn identical_seeds_produce_byte_identical_json() {
    let a = gravity_run(2, 9);
    let b = gravity_run(2, 9);
    let ja = a.to_json().to_string();
    let jb = b.to_json().to_string();
    assert!(!ja.is_empty() && ja.starts_with('{'));
    assert_eq!(ja, jb, "same-seed runs must serialize byte-identically");

    // The document round-trips through the in-tree reader, and the metric
    // arrays deserialize to the exact sample values.
    let parsed = Json::parse(&ja).expect("self-produced JSON parses");
    let rit = parsed.get("rit_ms").and_then(Json::as_arr).expect("rit_ms");
    assert_eq!(rit.len(), a.rit_ms.len());
    for (j, v) in rit.iter().zip(a.rit_ms.values()) {
        assert_eq!(j.as_f64(), Some(*v));
    }
}

#[test]
fn different_seeds_produce_different_json() {
    let a = gravity_run(2, 9);
    let c = gravity_run(3, 10);
    assert_ne!(
        a.to_json().to_string(),
        c.to_json().to_string(),
        "seed changes must reach the output"
    );
}
