//! Determinism regression: the whole pipeline — gravity-model workload
//! generation, Varys simulation, metric collection, JSON serialization —
//! must be a pure function of its seeds. Two identically-configured runs
//! have to produce *byte-identical* JSON documents; any hidden source of
//! nondeterminism (hash-map iteration order, time-of-day, uninitialized
//! state) shows up here as a diff.

use hermes::core::config::HermesConfig;
use hermes::netsim::metrics::RunMetrics;
use hermes::netsim::prelude::*;
use hermes::tcam::SwitchModel;
use hermes::util::json::{Json, ToJson};
use hermes::workloads::gravity::{flows_from_matrix, TrafficMatrix};

fn gravity_run(sim_seed: u64, flow_seed: u64) -> RunMetrics {
    let topo = Topology::geant();
    let nodes = topo.hosts().len();
    let config = VarysConfig {
        switch: SwitchKind::Hermes(SwitchModel::dell_8132f(), HermesConfig::default()),
        congestion_threshold: 0.6,
        base_rules_per_switch: 150,
        seed: sim_seed,
        ..Default::default()
    };
    let mut sim = Varys::new(topo, config);
    let tm = TrafficMatrix::gravity(nodes, 3e9, 8);
    let flows = flows_from_matrix(&tm, 3.0, 100e6, flow_seed);
    sim.register_flows(&flows, 0);
    sim.run(600.0);
    sim.metrics.clone()
}

#[test]
fn identical_seeds_produce_byte_identical_json() {
    let a = gravity_run(2, 9);
    let b = gravity_run(2, 9);
    let ja = a.to_json().to_string();
    let jb = b.to_json().to_string();
    assert!(!ja.is_empty() && ja.starts_with('{'));
    assert_eq!(ja, jb, "same-seed runs must serialize byte-identically");

    // The document round-trips through the in-tree reader, and the metric
    // arrays deserialize to the exact sample values.
    let parsed = Json::parse(&ja).expect("self-produced JSON parses");
    let rit = parsed.get("rit_ms").and_then(Json::as_arr).expect("rit_ms");
    assert_eq!(rit.len(), a.rit_ms.len());
    for (j, v) in rit.iter().zip(a.rit_ms.values()) {
        assert_eq!(j.as_f64(), Some(*v));
    }
}

/// Serializes the telemetry tests: `set_enabled` flips a process-global
/// flag, so two tests toggling it concurrently would see each other's
/// captures truncated mid-run.
static TELEMETRY_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Drives a seeded MicroBench stream through a `HermesSwitch` (ticks,
/// migrations, a post-quiescence audit) with telemetry recording, and
/// returns the serialized `hermes-bench-report/1` document.
fn telemetry_capture(plan: Option<hermes::tcam::FaultPlan>) -> String {
    use hermes::core::prelude::*;
    use hermes::tcam::{SimDuration, SwitchModel};
    use hermes::workloads::microbench::MicroBench;

    hermes::telemetry::reset();
    hermes::telemetry::set_meta("workload", Json::Str("microbench".into()));
    let mut sw = HermesSwitch::new(SwitchModel::dell_8132f(), HermesConfig::default())
        .expect("default guarantee feasible on dell_8132f");
    sw.install_fault_plan(plan);
    let stream = MicroBench {
        count: 400,
        arrival_rate: 400.0,
        overlap_rate: 0.3,
        seed: 7,
        ..Default::default()
    }
    .generate();
    let mut last = hermes::tcam::SimTime::ZERO;
    for (i, ta) in stream.iter().enumerate() {
        let _ = sw.submit(&ta.action, ta.at);
        last = ta.at;
        if i % 16 == 15 {
            sw.tick(ta.at);
        }
        if i % 64 == 63 {
            sw.migrate(ta.at);
        }
    }
    // Quiescence: clear faults and let the audit repair/verify (the audit
    // heartbeat also drives any open crash window through resync).
    sw.install_fault_plan(None);
    for k in 1..=4u32 {
        sw.audit(last + SimDuration::from_ms(5.0 * f64::from(k)));
    }
    hermes::telemetry::report("determinism").to_string()
}

#[test]
fn telemetry_report_is_byte_identical_across_runs() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    hermes::telemetry::set_enabled(true);
    let a = telemetry_capture(None);
    let b = telemetry_capture(None);
    hermes::telemetry::set_enabled(false);
    assert!(a.starts_with('{'));
    assert_eq!(a, b, "telemetry report must be a pure function of the seeds");

    let parsed = Json::parse(&a).expect("self-produced report parses");
    assert_eq!(
        parsed.get("schema").and_then(Json::as_str),
        Some("hermes-bench-report/1")
    );
    // The switch pipeline alone must light up the core subsystems.
    let Some(Json::Obj(counters)) = parsed.get("counters") else {
        panic!("report has no counters object");
    };
    for prefix in ["tcam.", "gatekeeper.", "manager.", "recovery."] {
        assert!(
            counters.iter().any(|(k, _)| k.starts_with(prefix)),
            "no {prefix} counters in report"
        );
    }
}

#[test]
fn telemetry_report_is_deterministic_under_fault_plan() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    hermes::telemetry::set_enabled(true);
    let a = telemetry_capture(Some(hermes::tcam::FaultPlan::seeded(0xFA17)));
    let b = telemetry_capture(Some(hermes::tcam::FaultPlan::seeded(0xFA17)));
    let clean = telemetry_capture(None);
    hermes::telemetry::set_enabled(false);
    assert_eq!(
        a, b,
        "same HERMES_FAULT_SEED must reproduce the telemetry byte-for-byte"
    );
    assert_ne!(a, clean, "an armed fault plan must reach the telemetry");
}

#[test]
fn telemetry_report_is_deterministic_under_crash_plan() {
    // Crash-class faults included: a plan that wipes/partially-retains/
    // disconnects the switch mid-run must still replay byte-for-byte from
    // its seed — reconnect backoff, the resync diff and the reinstall
    // order are all deterministic.
    let crashy = || {
        let mut plan = hermes::tcam::FaultPlan::crashy(0xC4A5);
        plan.crash_period = 60;
        plan.max_reconnect_denials = 2;
        Some(plan)
    };
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    hermes::telemetry::set_enabled(true);
    let a = telemetry_capture(crashy());
    let b = telemetry_capture(crashy());
    let clean = telemetry_capture(None);
    hermes::telemetry::set_enabled(false);
    assert_eq!(
        a, b,
        "same crash plan seed must reproduce the telemetry byte-for-byte"
    );
    assert_ne!(a, clean, "the crash plan must reach the telemetry");

    let parsed = Json::parse(&a).expect("self-produced report parses");
    let Some(Json::Obj(counters)) = parsed.get("counters") else {
        panic!("report has no counters object");
    };
    for prefix in ["tcam.crash.", "resync."] {
        assert!(
            counters.iter().any(|(k, _)| k.starts_with(prefix)),
            "no {prefix} counters in report"
        );
    }
}

/// Drives a seeded multi-switch workload — background churn, two-phase
/// path transactions, injected crashes — through an 8-member fleet on 4
/// worker lanes with telemetry recording, and returns the serialized
/// report.
fn fleet_capture() -> String {
    use hermes::baselines::{ControlPlane, HermesPlane};
    use hermes::core::prelude::*;
    use hermes::fleet::{Fleet, FleetConfig, SwitchId};
    use hermes::rules::prelude::*;
    use hermes::tcam::{CrashKind, SimDuration, SimTime, SwitchModel};
    use hermes::util::rng::rngs::StdRng;
    use hermes::util::rng::{Rng, SeedableRng};

    hermes::telemetry::reset();
    hermes::telemetry::set_meta("workload", Json::Str("fleet".into()));
    let members: Vec<(SwitchId, HermesPlane)> = (0..8)
        .map(|i| {
            let sw = HermesSwitch::new(SwitchModel::dell_8132f(), HermesConfig::default())
                .expect("default guarantee feasible on dell_8132f");
            (i, HermesPlane::new(sw))
        })
        .collect();
    let mut fleet = Fleet::new(members, FleetConfig { lanes: 4, seed: 23, ..FleetConfig::default() });
    let mut rng = StdRng::seed_from_u64(23);
    let mut now = SimTime::ZERO;
    let mut next_id = 0u64;
    for step in 0..120u64 {
        now += SimDuration::from_ms(rng.gen_range(0.2..3.0));
        let roll: f64 = rng.gen();
        if roll < 0.5 {
            let sw = rng.gen_range(0..8usize);
            let addr = 0x0a00_0000u32 | rng.gen_range(0..1u32 << 24);
            let prio = rng.gen_range(1..40u32);
            let r = Rule::new(
                next_id,
                Ipv4Prefix::new(addr, 24).to_key(),
                Priority(prio),
                Action::Forward(prio % 5 + 1),
            );
            next_id += 1;
            fleet.submit(sw, &[ControlAction::Insert(r)], now);
        } else if roll < 0.85 {
            let first = rng.gen_range(0..8usize);
            let pieces: Vec<(SwitchId, Rule)> = (0..3)
                .map(|k| {
                    let addr = 0x0a00_0000u32 | rng.gen_range(0..1u32 << 24);
                    let prio = rng.gen_range(1..40u32);
                    let r = Rule::new(
                        next_id,
                        Ipv4Prefix::new(addr, 24).to_key(),
                        Priority(prio),
                        Action::Forward(prio % 5 + 1),
                    );
                    next_id += 1;
                    ((first + k) % 8, r)
                })
                .collect();
            fleet.install_path(&pieces, now);
        } else if roll < 0.92 {
            let sw = rng.gen_range(0..8usize);
            fleet
                .plane_mut(sw)
                .inject_crash(CrashKind::Disconnect, 23 ^ step, 1, now);
        } else {
            fleet.tick_all(now);
        }
    }
    for _ in 0..32 {
        now += SimDuration::from_ms(5.0);
        fleet.tick_all(now);
    }
    hermes::telemetry::report("determinism-fleet").to_string()
}

#[test]
fn fleet_run_is_byte_identical_across_runs() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    hermes::telemetry::set_enabled(true);
    let a = fleet_capture();
    let b = fleet_capture();
    hermes::telemetry::set_enabled(false);
    assert!(a.starts_with('{'));
    assert_eq!(
        a, b,
        "fleet telemetry must be a pure function of the seeds even at lanes=4"
    );

    let parsed = Json::parse(&a).expect("self-produced report parses");
    let Some(Json::Obj(counters)) = parsed.get("counters") else {
        panic!("report has no counters object");
    };
    assert!(
        counters.iter().any(|(k, _)| k.starts_with("fleet.")),
        "no fleet.* counters in report"
    );
}

#[test]
fn fleet_backed_sim_is_deterministic_per_lane_count() {
    // The netsim control plane now routes through the fleet; runs must
    // stay byte-identical per lane count, and the lane count must reach
    // the modeled timings (a serialized driver can't match full overlap).
    let run = |lanes: usize| {
        let topo = Topology::fat_tree(4, 10e9);
        let config = VarysConfig {
            switch: SwitchKind::Hermes(SwitchModel::dell_8132f(), HermesConfig::default()),
            congestion_threshold: 0.6,
            base_rules_per_switch: 100,
            lanes,
            seed: 5,
            ..Default::default()
        };
        let mut sim = Varys::new(topo, config);
        let tm = hermes::workloads::gravity::TrafficMatrix::gravity(16, 2e9, 4);
        let flows = flows_from_matrix(&tm, 2.0, 80e6, 6);
        sim.register_flows(&flows, 0);
        sim.run(300.0);
        sim.metrics.to_json().to_string()
    };
    let a1 = run(1);
    let a2 = run(1);
    assert_eq!(a1, a2, "lanes=1 runs must be byte-identical");
    let b1 = run(4);
    let b2 = run(4);
    assert_eq!(b1, b2, "lanes=4 runs must be byte-identical");
    assert_ne!(a1, b1, "the lane count must reach the modeled timings");
}

#[test]
fn lint_report_is_byte_identical_across_runs() {
    // The static-analysis pass is part of the reproducibility story too:
    // the hermes-lint-report/2 document over the same tree must be a pure
    // function of the sources — no wall clock, no hash-order, no paths
    // that depend on the invocation directory.
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let files = hermes_lint::engine::load_workspace(&root).expect("workspace readable");
    let a = hermes_lint::report::build(&hermes_lint::engine::lint_tree(&files)).to_string();
    let b = hermes_lint::report::build(&hermes_lint::engine::lint_tree(&files)).to_string();
    assert_eq!(a, b, "lint report must be byte-deterministic");

    let parsed = Json::parse(&a).expect("self-produced report parses");
    assert_eq!(
        parsed.get("schema").and_then(Json::as_str),
        Some("hermes-lint-report/2")
    );
    assert_eq!(parsed.get("clean"), Some(&Json::Bool(true)));
}

#[test]
fn different_seeds_produce_different_json() {
    let a = gravity_run(2, 9);
    let c = gravity_run(3, 10);
    assert_ne!(
        a.to_json().to_string(),
        c.to_json().to_string(),
        "seed changes must reach the output"
    );
}
