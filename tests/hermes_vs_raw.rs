//! Cross-crate integration: Hermes vs a raw switch on generated workloads,
//! checking the paper's headline properties end to end.

use hermes::baselines::{ControlPlane, CpQueue, HermesPlane, RawSwitch};
use hermes::core::config::HermesConfig;
use hermes::netsim::metrics::Samples;
use hermes::rules::prelude::*;
use hermes::tcam::{SimDuration, SimTime, SwitchModel};
use hermes::workloads::microbench::{MicroBench, TimedAction};

fn drive<P: ControlPlane>(plane: P, stream: &[TimedAction]) -> (Samples, Samples, u64) {
    let mut q = CpQueue::new(plane);
    let tick = SimDuration::from_ms(100.0);
    let mut next_tick = SimTime::ZERO + tick;
    let mut rit = Samples::new();
    let mut exec = Samples::new();
    let mut violations = 0;
    for ta in stream {
        while next_tick <= ta.at {
            q.plane_mut().tick(next_tick);
            next_tick += tick;
        }
        let (start, outcome) = q.submit(std::slice::from_ref(&ta.action), ta.at);
        let op = outcome.ops.last().expect("one op");
        rit.push((start + op.completed_at).since(ta.at).as_ms());
        exec.push(op.exec.as_ms());
        if op.violated {
            violations += 1;
        }
    }
    (rit, exec, violations)
}

/// Headline: Hermes improves the median RIT by a large factor once the raw
/// switch's table has filled up.
#[test]
fn hermes_beats_raw_switch_at_scale() {
    let stream = MicroBench {
        arrival_rate: 20.0,
        overlap_rate: 0.1,
        count: 1200,
        ..Default::default()
    }
    .generate();
    let model = SwitchModel::pica8_p3290();
    let (_, mut raw_exec, _) = drive(RawSwitch::new(model.clone()), &stream);
    let config = HermesConfig::default();
    let (_, mut hermes_exec, _) = drive(
        HermesPlane::with_config(model, config).expect("feasible"),
        &stream,
    );

    let raw_median = raw_exec.median();
    let hermes_median = hermes_exec.median();
    let improvement = (raw_median - hermes_median) / raw_median;
    assert!(
        improvement > 0.5,
        "median improvement {improvement:.2} (raw {raw_median:.2}ms vs hermes {hermes_median:.2}ms)"
    );
}

/// The guarantee holds: within the admitted rate, shadow-routed insertions
/// never exceed the configured bound.
#[test]
fn guarantee_holds_within_admitted_rate() {
    let model = SwitchModel::dell_8132f();
    let guarantee = SimDuration::from_ms(5.0);
    let config = HermesConfig::with_guarantee(guarantee);
    let mut plane = HermesPlane::with_config(model, config).expect("feasible");
    // Stay well under the sustainable rate.
    let rate = plane.switch().max_supported_rate() * 0.5;
    let stream = MicroBench {
        arrival_rate: rate,
        overlap_rate: 0.2,
        count: 600,
        ..Default::default()
    }
    .generate();
    let tick = SimDuration::from_ms(100.0);
    let mut q_next = SimTime::ZERO + tick;
    let mut worst_guaranteed = SimDuration::ZERO;
    let mut violations = 0u64;
    for ta in &stream {
        while q_next <= ta.at {
            plane.tick(q_next);
            q_next += tick;
        }
        if let ControlAction::Insert(rule) = ta.action {
            let report = plane.switch_mut().insert(rule, ta.at).expect("insert");
            if report.violated() {
                violations += 1;
            }
            if matches!(
                report.route(),
                Some(hermes::core::gatekeeper::Route::Shadow)
            ) {
                worst_guaranteed = worst_guaranteed.max(report.latency);
            }
        }
    }
    assert_eq!(violations, 0, "no violations under the admitted rate");
    assert!(
        worst_guaranteed <= guarantee,
        "worst shadow-routed latency {worst_guaranteed} exceeds {guarantee}"
    );
}

/// Under sustained overload Hermes cannot promise the world — but it must
/// degrade by diverting to the main table, not by blowing the guarantee
/// for admitted rules.
#[test]
fn overload_diverts_rather_than_violates() {
    let model = SwitchModel::pica8_p3290();
    let config = HermesConfig::default(); // derived (honest) admission rate
    let mut plane = HermesPlane::with_config(model, config).expect("feasible");
    // Rate overload, not capacity overload: stay under the main-table
    // capacity (2048 minus the shadow carve) so every insert has a home
    // and the only pressure is the arrival rate.
    let stream = MicroBench {
        arrival_rate: 500.0, // far above sustainable
        overlap_rate: 0.0,
        count: 1800,
        ..Default::default()
    }
    .generate();
    let mut diverted = 0u64;
    let mut shadow_worst = SimDuration::ZERO;
    let tick = SimDuration::from_ms(100.0);
    let mut q_next = SimTime::ZERO + tick;
    for ta in &stream {
        while q_next <= ta.at {
            plane.tick(q_next);
            q_next += tick;
        }
        if let ControlAction::Insert(rule) = ta.action {
            let report = plane.switch_mut().insert(rule, ta.at).expect("insert");
            match report.route().expect("insert") {
                hermes::core::gatekeeper::Route::Shadow => {
                    shadow_worst = shadow_worst.max(report.latency)
                }
                _ => diverted += 1,
            }
        }
    }
    assert!(
        diverted > 500,
        "overload must divert to the main table ({diverted})"
    );
    assert!(
        shadow_worst <= SimDuration::from_ms(5.0),
        "admitted rules still bounded: {shadow_worst}"
    );
    let stats = plane.switch().stats();
    assert!(
        (stats.violations as f64) < 0.02 * stats.inserts as f64,
        "violations {} of {} inserts",
        stats.violations,
        stats.inserts
    );
}

/// Lookup equivalence survives the full pipeline: a packet matches the
/// same way through Hermes's two tables as through the raw switch, for a
/// shared rule set.
#[test]
fn lookup_equivalence_hermes_vs_raw() {
    let stream = MicroBench {
        arrival_rate: 50.0,
        overlap_rate: 0.4,
        count: 400,
        ..Default::default()
    }
    .generate();
    let model = SwitchModel::hp_5406zl();
    let mut raw = RawSwitch::new(model.clone());
    let mut hermes = HermesPlane::with_config(model, HermesConfig::default()).expect("feasible");
    for ta in &stream {
        raw.apply(&ta.action, ta.at);
        hermes.apply(&ta.action, ta.at);
        hermes.tick(ta.at);
    }
    // Compare lookups across a sample of destinations drawn from the
    // workload space.
    for i in 0..2000u32 {
        let addr = (0b01u32 << 30) | (i.wrapping_mul(2654435761) % (1 << 30));
        let pkt = (addr as u128) << 96;
        let r = raw.device().peek(pkt).action();
        let h = hermes.switch().peek(pkt).action();
        assert_eq!(r, h, "divergence at address {addr:#x}");
    }
}
