//! Cross-crate integration: full Varys simulations comparing control
//! planes — the paper's application-level story at test scale.

use hermes::core::config::HermesConfig;
use hermes::netsim::prelude::*;
use hermes::tcam::SwitchModel;
use hermes::workloads::facebook::{FlowSpec, JobSpec};

/// A congestion-heavy workload: full-rate flows between distinct host
/// pairs crossing the fabric, so the TE app keeps rerouting and the
/// control plane stays busy.
fn workload(n: usize) -> Vec<JobSpec> {
    (0..n)
        .map(|i| JobSpec {
            id: i,
            arrival_s: (i % 8) as f64 * 0.05,
            flows: vec![FlowSpec {
                src: i % 16,
                dst: 112 + (i % 16),
                bytes: 800_000_000,
            }],
        })
        .collect()
}

fn run(kind: SwitchKind, seed: u64) -> hermes::netsim::metrics::RunMetrics {
    let topo = Topology::fat_tree(8, 10e9);
    let config = VarysConfig {
        switch: kind,
        congestion_threshold: 0.6,
        base_rules_per_switch: 300,
        seed,
        ..Default::default()
    };
    let mut sim = Varys::new(topo, config);
    sim.register_jobs(&workload(24));
    sim.run(600.0);
    sim.metrics.clone()
}

#[test]
fn all_flows_complete_under_every_control_plane() {
    let model = SwitchModel::pica8_p3290();
    for kind in [
        SwitchKind::Ideal,
        SwitchKind::Raw(model.clone()),
        SwitchKind::Hermes(model.clone(), HermesConfig::default()),
        SwitchKind::Tango(model.clone()),
        SwitchKind::Espres(model),
    ] {
        let label = kind.label();
        let m = run(kind, 5);
        assert_eq!(m.fct_s.len(), 24, "{label}: flows lost");
        assert_eq!(m.jct_s.len(), 24, "{label}: jobs lost");
    }
}

#[test]
fn control_latency_inflates_completion_times() {
    let mut ideal = run(SwitchKind::Ideal, 5);
    let mut raw = run(SwitchKind::Raw(SwitchModel::pica8_p3290()), 5);
    // The raw switch's slow installations delay flow starts and reroutes.
    // Per-job effects are mostly adverse, but delayed starts also shift
    // contention between overlapping jobs, so allow a small tolerance on
    // the mean at this tiny scale.
    assert!(
        raw.jct_s.mean() >= ideal.jct_s.mean() * 0.95,
        "raw {} vs ideal {}",
        raw.jct_s.mean(),
        ideal.jct_s.mean()
    );
    assert!(raw.rit_ms.median() > ideal.rit_ms.median());
}

#[test]
fn hermes_installs_faster_than_raw_in_the_network() {
    let mut raw = run(SwitchKind::Raw(SwitchModel::pica8_p3290()), 5);
    let mut hermes = run(
        SwitchKind::Hermes(SwitchModel::pica8_p3290(), HermesConfig::default()),
        5,
    );
    assert!(
        hermes.rit_ms.median() < raw.rit_ms.median(),
        "hermes median RIT {} !< raw {}",
        hermes.rit_ms.median(),
        raw.rit_ms.median()
    );
}

#[test]
fn deterministic_across_runs() {
    let a = run(SwitchKind::Raw(SwitchModel::dell_8132f()), 9);
    let b = run(SwitchKind::Raw(SwitchModel::dell_8132f()), 9);
    assert_eq!(a.fct_s.values(), b.fct_s.values());
    assert_eq!(a.rit_ms.values(), b.rit_ms.values());
    assert_eq!(a.installs, b.installs);
}

/// Paper-scale smoke test: the k=16 fat tree (1024 hosts, 320 switches)
/// with a slice of the Facebook workload. Run with `--ignored` (takes a
/// couple of minutes).
#[test]
#[ignore = "paper-scale run; invoke with --ignored"]
fn paper_scale_fat_tree16() {
    use hermes::workloads::facebook::FacebookWorkload;
    let topo = Topology::fat_tree(16, 40e9);
    let hosts = topo.hosts().len();
    assert_eq!(hosts, 1024);
    let config = VarysConfig {
        switch: SwitchKind::Hermes(SwitchModel::pica8_p3290(), HermesConfig::default()),
        congestion_threshold: 0.6,
        base_rules_per_switch: 250,
        seed: 1,
        ..Default::default()
    };
    let mut sim = Varys::new(topo, config);
    let jobs = FacebookWorkload {
        jobs: 150,
        hosts,
        duration_s: 30.0,
        seed: 3,
    }
    .generate();
    let n_jobs = jobs.len();
    sim.register_jobs(&jobs);
    sim.run(1800.0);
    assert_eq!(
        sim.metrics.jct_s.len(),
        n_jobs,
        "all jobs complete at paper scale"
    );
}

#[test]
fn leaf_spine_fabric_simulation() {
    let topo = Topology::leaf_spine(4, 2, 8, 10e9);
    let config = VarysConfig {
        switch: SwitchKind::Raw(SwitchModel::dell_8132f()),
        congestion_threshold: 0.5,
        base_rules_per_switch: 100,
        seed: 3,
        ..Default::default()
    };
    let mut sim = Varys::new(topo, config);
    let jobs: Vec<JobSpec> = (0..12)
        .map(|i| JobSpec {
            id: i,
            arrival_s: 0.05 * i as f64,
            flows: vec![FlowSpec {
                src: i % 8,
                dst: 24 + (i % 8),
                bytes: 400_000_000,
            }],
        })
        .collect();
    sim.register_jobs(&jobs);
    sim.run(300.0);
    assert_eq!(sim.metrics.fct_s.len(), 12);
    assert!(sim.metrics.installs > 0, "gated starts install rules");
}

#[test]
fn isp_topology_simulation_with_hermes() {
    use hermes::workloads::gravity::{flows_from_matrix, TrafficMatrix};
    let topo = Topology::geant();
    let nodes = topo.hosts().len();
    let config = VarysConfig {
        switch: SwitchKind::Hermes(SwitchModel::dell_8132f(), HermesConfig::default()),
        congestion_threshold: 0.6,
        base_rules_per_switch: 150,
        seed: 2,
        ..Default::default()
    };
    let mut sim = Varys::new(topo, config);
    let tm = TrafficMatrix::gravity(nodes, 3e9, 8);
    let flows = flows_from_matrix(&tm, 3.0, 100e6, 9);
    let n = flows.len();
    sim.register_flows(&flows, 0);
    sim.run(600.0);
    assert_eq!(sim.metrics.fct_s.len(), n, "ISP flows must all complete");
}
