//! Cross-crate integration: the full BGP → RIB → FIB → TCAM pipeline.
//!
//! Correctness oracle: after replaying a whole update trace, the TCAM's
//! longest-prefix-match answers must agree with the RIB's best routes.

use hermes::bgp::prelude::*;
use hermes::core::config::HermesConfig;
use hermes::core::prelude::*;
use hermes::rules::prelude::*;
use hermes::tcam::{LookupResult, SimDuration, SimTime, SwitchModel, TcamDevice};
use hermes::workloads::bgptrace::BgpTrace;

fn lpm_oracle(rib: &Rib, pool: &[Ipv4Prefix], addr: u32) -> Option<u32> {
    // Longest matching prefix with a best route wins.
    pool.iter()
        .filter(|p| p.matches(addr))
        .filter_map(|p| rib.best(*p).map(|r| (p.len(), r.next_hop_port)))
        .max_by_key(|(len, _)| *len)
        .map(|(_, port)| port)
}

fn lookup_port(result: LookupResult) -> Option<u32> {
    match result.action() {
        Some(Action::Forward(p)) => Some(p),
        _ => None,
    }
}

#[test]
fn fib_in_raw_tcam_matches_rib_lpm() {
    let trace = BgpTrace {
        prefixes: 400,
        duration_s: 30.0,
        ..Default::default()
    };
    let pool = trace.prefix_pool();
    let mut rib = Rib::new();
    let mut fib = Fib::new();
    let mut dev = TcamDevice::monolithic(SwitchModel::pica8_p3290());
    for u in trace.generate() {
        if let Some(delta) = rib.process(u.update) {
            let action = fib.compile(delta);
            dev.apply(0, &action).expect("tcam apply");
        }
    }
    // Probe addresses inside every pooled prefix plus random ones.
    for (i, p) in pool.iter().enumerate() {
        let addr = p.addr() | (i as u32 % 200);
        let expect = lpm_oracle(&rib, &pool, addr);
        let got = lookup_port(dev.peek((addr as u128) << 96));
        assert_eq!(got, expect, "divergence for {addr:#x} (prefix {p})");
    }
}

#[test]
fn fib_through_hermes_matches_rib_lpm() {
    let trace = BgpTrace {
        prefixes: 300,
        duration_s: 40.0,
        ..Default::default()
    };
    let pool = trace.prefix_pool();
    let mut rib = Rib::new();
    let mut fib = Fib::new();
    let config = HermesConfig {
        guarantee: SimDuration::from_ms(5.0),
        rate_limit: Some(f64::INFINITY),
        ..Default::default()
    };
    let mut sw = HermesSwitch::new(SwitchModel::pica8_p3290(), config).expect("feasible");
    let mut last_tick = SimTime::ZERO;
    for u in trace.generate() {
        if let Some(delta) = rib.process(u.update) {
            let action = fib.compile(delta);
            sw.submit(&action, u.at).expect("hermes apply");
        }
        if u.at.since(last_tick) >= SimDuration::from_ms(100.0) {
            sw.tick(u.at);
            last_tick = u.at;
        }
    }
    for (i, p) in pool.iter().enumerate() {
        let addr = p.addr() | (i as u32 % 200);
        let expect = lpm_oracle(&rib, &pool, addr);
        let got = lookup_port(sw.peek((addr as u128) << 96));
        assert_eq!(got, expect, "divergence for {addr:#x} (prefix {p})");
    }
    assert!(
        sw.stats().migrations > 0,
        "the trace should have triggered migrations"
    );
}

#[test]
fn rib_suppression_reduces_tcam_load() {
    let trace = BgpTrace {
        prefixes: 500,
        duration_s: 30.0,
        ..Default::default()
    };
    let updates = trace.generate();
    let mut rib = Rib::new();
    let fib_ops = updates
        .iter()
        .filter(|u| rib.process(u.update).is_some())
        .count();
    assert!(fib_ops < updates.len(), "some updates must be RIB-only");
    assert!(fib_ops > 0, "some updates must reach the FIB");
}
