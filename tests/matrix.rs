//! The committed scenario matrix and the harness report pipeline.
//!
//! Two guarantees pinned here, from the workspace root so they see the
//! real `scenarios/matrix.toml` and the real experiment binaries:
//!
//! 1. The committed matrix is well-formed: every required scenario is
//!    present with the contracted repetition count, and every referenced
//!    binary is a real `crates/bench` experiment (or the matrix drifts
//!    from the workspace silently).
//! 2. The `hermes-matrix-report/1` canonical summary is a pure function
//!    of the children's BENCH reports: building it twice from the same
//!    merged data is byte-identical, and none of the jittery measured
//!    fields (wall/RSS/CPU) leak into it. The process-level version of
//!    this assertion (real spawns, real /proc sampling) lives in
//!    `crates/harness/tests/fixture.rs`.

use hermes_harness::{report, MatrixRun, RepResult, ScenarioRun};
use hermes_util::json::Json;
use hermes_util::scenario::Matrix;
use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn committed_matrix() -> Matrix {
    Matrix::load(&repo_root().join("scenarios/matrix.toml")).expect("committed matrix parses")
}

#[test]
fn committed_matrix_has_the_contracted_scenarios() {
    let matrix = committed_matrix();
    // The full tier: N ≥ 5 seeded reps each (ISSUE 6 acceptance).
    for name in [
        "baseline",
        "fan-out",
        "churn-storm",
        "chaos-suite",
        "1m-preload",
        "bgp-replay",
    ] {
        let sc = matrix
            .get(name)
            .unwrap_or_else(|| panic!("scenario {name:?} missing from scenarios/matrix.toml"));
        assert!(sc.runs >= 5, "{name}: full-tier scenarios need ≥5 reps, got {}", sc.runs);
    }
    // The CI smoke tier stays cheap.
    for name in ["smoke-tcam", "smoke-chaos"] {
        let sc = matrix.get(name).expect("smoke scenario present");
        assert!(sc.runs >= 3, "{name}: smoke needs ≥3 reps for a median");
    }
    assert_eq!(
        matrix.get("1m-preload").map(|s| s.scale),
        Some(10),
        "1m-preload must drive exp_scale to 1M rules"
    );
    assert_eq!(
        matrix.get("chaos-suite").and_then(|s| s.fault_seed),
        Some(42),
        "chaos-suite must arm the fault plan"
    );
}

#[test]
fn committed_matrix_binaries_exist_in_the_workspace() {
    let bins_dir = repo_root().join("crates/bench/src/bin");
    for sc in &committed_matrix().scenarios {
        let src = bins_dir.join(format!("{}.rs", sc.bin));
        assert!(
            src.is_file(),
            "scenario {:?} names binary {:?} but {} does not exist",
            sc.name,
            sc.bin,
            src.display()
        );
    }
}

/// A synthetic run with both merged (deterministic) and measured
/// (jittery) data, so the canonical/full split is observable.
fn synthetic_run(wall_ms: f64) -> MatrixRun {
    let bench_report = Json::parse(
        r#"{"schema": "hermes-bench-report/1", "counters": {"x.ops": 41},
            "histograms": {"x.ns": {"count": 2, "sum": 20, "min": 8, "max": 12,
                                    "buckets": [[8, 2]]}}}"#,
    )
    .expect("static fixture parses");
    let mut sc = ScenarioRun {
        name: "synthetic".into(),
        bin: "stub".into(),
        runs: 2,
        reps: Vec::new(),
        merged: Default::default(),
    };
    for rep in 0..2 {
        sc.merged.absorb(&bench_report).expect("fixture report merges");
        sc.reps.push(RepResult {
            rep,
            exit_code: Some(0),
            wall_ms: wall_ms + rep as f64,
            max_rss_bytes: 4096 * (rep as u64 + 1),
            cpu_ms: wall_ms / 2.0,
            samples: 3,
            error: None,
        });
    }
    MatrixRun { scenarios: vec![sc] }
}

#[test]
fn canonical_summary_is_independent_of_measured_jitter() {
    // Same merged BENCH data, wildly different wall clocks: the
    // canonical summaries must still be byte-identical.
    let fast = report::build(&synthetic_run(10.0), true).to_string();
    let slow = report::build(&synthetic_run(9000.0), true).to_string();
    assert_eq!(fast, slow, "measured jitter leaked into the canonical summary");
    assert!(
        !fast.contains("measured"),
        "canonical summary must omit the measured section"
    );

    // The full report DOES see the difference — that is its job.
    let full_fast = report::build(&synthetic_run(10.0), false).to_string();
    let full_slow = report::build(&synthetic_run(9000.0), false).to_string();
    assert_ne!(full_fast, full_slow);
    assert!(full_fast.contains("measured"));

    // And building the same flavor twice is pure.
    assert_eq!(full_fast, report::build(&synthetic_run(10.0), false).to_string());
}
