#!/usr/bin/env bash
# Regenerate the committed perf-gate baselines in bench_baselines/.
#
# Run this after an INTENTIONAL behaviour change that moves the gated
# counters (see scripts/perfgate.py), then review and commit the diff —
# the baseline refresh is part of the change, not an afterthought.
#
# The environment is pinned so the reports are deterministic:
#   HERMES_TRACE=1        — arm telemetry so counters are recorded
#   HERMES_FAULT_SEED=7   — pin the fault plan RNG
#   HERMES_GIT_REV=baseline — stamp a stable rev so refreshes diff cleanly
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline -q -p hermes-bench \
    --bin exp_fig9 --bin exp_tcam_micro --bin exp_scale --bin exp_crash \
    --bin exp_fleet

for exp in fig9 tcam_micro scale crash fleet; do
    echo "== exp_${exp} -> bench_baselines/BENCH_${exp}.json =="
    HERMES_TRACE=1 HERMES_FAULT_SEED=7 HERMES_GIT_REV=baseline \
        "./target/release/exp_${exp}" --out "bench_baselines/BENCH_${exp}.json" >/dev/null
    # The gate compares only counters; strip the bulky trace/span/series
    # sections so the committed baseline stays a reviewable diff.
    python3 - "bench_baselines/BENCH_${exp}.json" <<'PY'
import json, sys
path = sys.argv[1]
doc = json.load(open(path))
slim = {k: doc[k] for k in
        ("schema", "experiment", "git_rev", "telemetry_enabled", "meta", "counters")}
with open(path, "w") as fh:
    json.dump(slim, fh, indent=1, sort_keys=False)
    fh.write("\n")
PY
done

# Tiers 2 + 3: the wall-clock and peak-RSS envelopes. Re-measure the
# gated scenarios (the four CI smokes plus the promoted chaos-suite;
# N from scenarios/matrix.toml) on the machine class CI runs on, and
# rewrite bench_baselines/wallclock.json and bench_baselines/rss.json
# keeping the committed band/floor knobs.
echo "== hermes-harness gated scenarios -> bench_baselines/{wallclock,rss}.json =="
cargo build --release --offline -q -p hermes-harness --bin hermes-harness
cargo build --release --offline -q -p hermes-bench \
    --bin exp_tcam_micro --bin exp_fig12 --bin exp_crash --bin exp_fleet
wall_dir="$(mktemp -d)"
./target/release/hermes-harness \
    --matrix scenarios/matrix.toml \
    --bin-dir target/release \
    --out "$wall_dir" \
    --scenarios smoke-tcam,smoke-chaos,smoke-crash,smoke-fleet,chaos-suite >/dev/null
python3 - "$wall_dir/matrix_report.json" bench_baselines/wallclock.json <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
path = sys.argv[2]
try:
    old = json.load(open(path))
except FileNotFoundError:
    old = {}
doc = {
    "schema": "hermes-wallclock-baseline/1",
    "band": old.get("band", 0.5),
    "floor_ms": old.get("floor_ms", 25.0),
    "scenarios": {
        sc["name"]: {"median_ms": round(sc["measured"]["wall_ms"]["p50"], 1)}
        for sc in report["scenarios"]
    },
}
# Per-scenario band/floor overrides survive the refresh.
for name, entry in old.get("scenarios", {}).items():
    for knob in ("band", "floor_ms"):
        if name in doc["scenarios"] and knob in entry:
            doc["scenarios"][name][knob] = entry[knob]
with open(path, "w") as fh:
    json.dump(doc, fh, indent=1)
    fh.write("\n")
print("wallclock tracked:", ", ".join(sorted(doc["scenarios"])))
PY
python3 - "$wall_dir/matrix_report.json" bench_baselines/rss.json <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
path = sys.argv[2]
try:
    old = json.load(open(path))
except FileNotFoundError:
    old = {}
doc = {
    "schema": "hermes-rss-baseline/1",
    "band": old.get("band", 0.35),
    "floor_bytes": old.get("floor_bytes", 16 << 20),
    "scenarios": {
        sc["name"]: {"median_bytes": int(sc["measured"]["max_rss_bytes"]["p50"])}
        for sc in report["scenarios"]
    },
}
# Per-scenario band/floor overrides survive the refresh.
for name, entry in old.get("scenarios", {}).items():
    for knob in ("band", "floor_bytes"):
        if name in doc["scenarios"] and knob in entry:
            doc["scenarios"][name][knob] = entry[knob]
with open(path, "w") as fh:
    json.dump(doc, fh, indent=1)
    fh.write("\n")
print("rss tracked:", ", ".join(sorted(doc["scenarios"])))
PY
rm -rf "$wall_dir"

# The lint debt ratchet: record the current per-rule finding counts as
# the new budgets. Counts may only ever be ratcheted DOWN this way —
# review the diff; a count that went UP means new debt that should be
# fixed or suppressed with a reason, not baselined.
echo "== hermes-lint -> bench_baselines/lint_baseline.json =="
cargo run --release --offline -q -p hermes-lint -- --workspace \
    --write-baseline bench_baselines/lint_baseline.json >/dev/null

echo "== refreshed; review with: git diff bench_baselines/ =="
