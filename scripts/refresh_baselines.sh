#!/usr/bin/env bash
# Regenerate the committed perf-gate baselines in bench_baselines/.
#
# Run this after an INTENTIONAL behaviour change that moves the gated
# counters (see scripts/perfgate.py), then review and commit the diff —
# the baseline refresh is part of the change, not an afterthought.
#
# The environment is pinned so the reports are deterministic:
#   HERMES_TRACE=1        — arm telemetry so counters are recorded
#   HERMES_FAULT_SEED=7   — pin the fault plan RNG
#   HERMES_GIT_REV=baseline — stamp a stable rev so refreshes diff cleanly
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline -q -p hermes-bench \
    --bin exp_fig9 --bin exp_tcam_micro --bin exp_scale

for exp in fig9 tcam_micro scale; do
    echo "== exp_${exp} -> bench_baselines/BENCH_${exp}.json =="
    HERMES_TRACE=1 HERMES_FAULT_SEED=7 HERMES_GIT_REV=baseline \
        "./target/release/exp_${exp}" --out "bench_baselines/BENCH_${exp}.json" >/dev/null
    # The gate compares only counters; strip the bulky trace/span/series
    # sections so the committed baseline stays a reviewable diff.
    python3 - "bench_baselines/BENCH_${exp}.json" <<'PY'
import json, sys
path = sys.argv[1]
doc = json.load(open(path))
slim = {k: doc[k] for k in
        ("schema", "experiment", "git_rev", "telemetry_enabled", "meta", "counters")}
with open(path, "w") as fh:
    json.dump(slim, fh, indent=1, sort_keys=False)
    fh.write("\n")
PY
done

echo "== refreshed; review with: git diff bench_baselines/ =="
