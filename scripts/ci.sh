#!/usr/bin/env bash
# Hermetic CI for the Hermes reproduction workspace.
#
# Policy (README.md "Hermetic build"): the workspace has ZERO external
# crate dependencies — everything that would come from crates.io lives in
# crates/util. Every cargo invocation below therefore runs with
# `--offline`; if a network fetch would be needed, CI must fail.
#
# The pipeline is a sequence of named stages. Run them all (the default)
# or a comma-separated subset:
#
#     CI_STAGES=lint,test scripts/ci.sh
#
# Each stage prints its elapsed wall-clock time on completion. Stage
# order matters: later stages assume earlier ones' artifacts (e.g.
# `perfgate` reuses the release binaries `build`/`bins` produced), so a
# subset run may rebuild more than the full pipeline would.
set -euo pipefail
cd "$(dirname "$0")/.."

ALL_STAGES=(build lint clippy test bins bench chaos telemetry perfgate matrix_smoke)

stage_build() {
    cargo build --release --offline --workspace
}

stage_lint() {
    # One blocking stage: the analyzer (R1-R6 token rules, R7-R10 flow
    # rules, S1 suppressions -- DESIGN.md §9) runs against the committed
    # debt ratchet; only a per-rule count INCREASE over
    # bench_baselines/lint_baseline.json fails. R4 subsumes the old
    # `cargo metadata | python3` lockfile guard. The JSON report is then
    # schema-checked so the hermes-lint-report/2 document cannot drift.
    local lint_json
    lint_json="$(mktemp)"
    cargo run --release --offline -q -p hermes-lint -- --workspace \
        --json "$lint_json" --baseline bench_baselines/lint_baseline.json
    python3 - "$lint_json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "hermes-lint-report/2", doc.get("schema")
required = ["schema", "files_scanned", "clean", "rules", "findings", "suppressions"]
missing = [k for k in required if k not in doc]
assert not missing, "missing report keys: %s" % missing
assert doc["files_scanned"] > 50, doc["files_scanned"]
assert [r["id"] for r in doc["rules"]] == [
    "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10", "S1"]
# The ratchet already gated on counts; re-assert against the committed
# budgets so the binary's verdict and the report cannot disagree.
budgets = json.load(open("bench_baselines/lint_baseline.json"))["rules"]
over = [(r["id"], r["findings"], budgets.get(r["id"], 0))
        for r in doc["rules"] if r["findings"] > budgets.get(r["id"], 0)]
assert not over, "rules over their ratchet budget: %s" % over
bare = [s for s in doc["suppressions"] if not s["reason"].strip()]
assert not bare, "suppressions without reasons: %s" % bare
print("ok: %d finding(s) within ratchet over %d files, %d reasoned suppression(s)"
      % (len(doc["findings"]), doc["files_scanned"], len(doc["suppressions"])))
PY
    rm -f "$lint_json"
}

stage_clippy() {
    cargo clippy --offline --workspace --all-targets -- -D warnings
}

stage_test() {
    cargo test -q --offline --workspace
}

stage_bins() {
    cargo build --release --offline -p hermes-bench --bins
}

stage_bench() {
    cargo build --release --offline --workspace --benches
    local b
    for b in bench_tcam bench_rules bench_hermes bench_netsim; do
        HERMES_BENCH_FAST=1 HERMES_BENCH_SAMPLES=2 HERMES_BENCH_WARMUP_MS=1 \
            cargo bench --offline -q -p hermes-bench --bench "$b" >/dev/null
    done
}

stage_chaos() {
    # The oracle chaos properties: random workloads under random fault plans
    # (transient and crash-class) must recover to flat-table equivalence
    # (DESIGN.md §7, §12).
    cargo test -q --offline -p hermes-core --test oracle chaos
    # One full experiment under a pinned fault seed: must exit 0 (no panics
    # reachable from device faults) and reproduce byte-for-byte.
    local chaos_out chaos_out2
    chaos_out="$(mktemp)" chaos_out2="$(mktemp)"
    HERMES_FAULT_SEED=42 ./target/release/exp_fig12 > "$chaos_out"
    HERMES_FAULT_SEED=42 ./target/release/exp_fig12 > "$chaos_out2"
    cmp "$chaos_out" "$chaos_out2" \
      || { echo "chaos run not deterministic under HERMES_FAULT_SEED"; exit 1; }
    # Same discipline for the crash storm: armed crash plans must recover
    # (the binary asserts >=1 completed resync per mode) and replay
    # byte-for-byte from the seed.
    HERMES_FAULT_SEED=42 ./target/release/exp_crash > "$chaos_out"
    HERMES_FAULT_SEED=42 ./target/release/exp_crash > "$chaos_out2"
    cmp "$chaos_out" "$chaos_out2" \
      || { echo "crash storm not deterministic under HERMES_FAULT_SEED"; exit 1; }
    rm -f "$chaos_out" "$chaos_out2"
    echo "ok: chaos suite + seeded experiments deterministic"
}

stage_telemetry() {
    # A traced, fault-seeded exp_fig9 run must emit a well-formed
    # hermes-bench-report/1 document (DESIGN.md "Observability") with at
    # least six subsystems contributing, and a repeat run with the same
    # seeds must reproduce it byte-for-byte.
    local bench_dir
    bench_dir="$(mktemp -d)"
    HERMES_TRACE=1 HERMES_FAULT_SEED=7 HERMES_GIT_REV=ci \
        ./target/release/exp_fig9 --out "$bench_dir/a.json" >/dev/null
    HERMES_TRACE=1 HERMES_FAULT_SEED=7 HERMES_GIT_REV=ci \
        ./target/release/exp_fig9 --out "$bench_dir/b.json" >/dev/null
    cmp "$bench_dir/a.json" "$bench_dir/b.json" \
      || { echo "telemetry report not deterministic under HERMES_FAULT_SEED"; exit 1; }
    python3 - "$bench_dir/a.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "hermes-bench-report/1", doc.get("schema")
required = ["schema", "experiment", "git_rev", "telemetry_enabled", "meta",
            "counters", "gauges", "histograms", "series", "spans", "trace"]
missing = [k for k in required if k not in doc]
assert not missing, "missing report keys: %s" % missing
assert doc["experiment"] == "fig9"
assert doc["telemetry_enabled"] is True
subsystems = set()
for section in ("counters", "gauges", "histograms", "series"):
    subsystems.update(name.split(".")[0] for name in doc[section])
subsystems.update(span["subsystem"] for span in doc["spans"])
assert len(subsystems) >= 6, "only %s contributed" % sorted(subsystems)
print("ok: schema-valid, deterministic, subsystems: %s" % ", ".join(sorted(subsystems)))
PY
    rm -rf "$bench_dir"
}

stage_perfgate() {
    # Regenerate the gated experiments under the pinned environment
    # (bench_baselines/README.md) and compare their counters — exact
    # match — against the committed baselines. Wall-clock is ignored;
    # counter drift means behaviour changed and must be either fixed or
    # explicitly re-baselined via scripts/refresh_baselines.sh.
    cargo build --release --offline -q -p hermes-bench \
        --bin exp_fig9 --bin exp_tcam_micro --bin exp_scale --bin exp_crash \
        --bin exp_fleet
    local fresh_dir
    fresh_dir="$(mktemp -d)"
    local exp
    for exp in fig9 tcam_micro scale crash fleet; do
        HERMES_TRACE=1 HERMES_FAULT_SEED=7 HERMES_GIT_REV=baseline \
            "./target/release/exp_${exp}" --out "$fresh_dir/BENCH_${exp}.json" >/dev/null
    done
    python3 scripts/perfgate.py bench_baselines "$fresh_dir"
    rm -rf "$fresh_dir"
}

stage_matrix_smoke() {
    # Tier-2/3 perf gate: hermes-harness runs the gated scenarios from
    # the committed matrix — the four fast smokes (N=3 seeded reps each)
    # plus the full chaos-suite (N=5, fault plans armed), promoted from
    # ad-hoc coverage into the gated tier. The merged
    # hermes-matrix-report/1 summary is schema-validated, then BOTH
    # tolerance-band comparisons are BLOCKING: wall-clock medians against
    # bench_baselines/wallclock.json and peak-RSS medians against
    # bench_baselines/rss.json. A band breach fails CI and must be either
    # fixed or re-baselined via scripts/refresh_baselines.sh (DESIGN.md
    # §11).
    cargo build --release --offline -q -p hermes-harness --bin hermes-harness
    cargo build --release --offline -q -p hermes-bench \
        --bin exp_tcam_micro --bin exp_fig12 --bin exp_crash --bin exp_fleet
    local smoke_dir
    smoke_dir="$(mktemp -d)"
    ./target/release/hermes-harness \
        --matrix scenarios/matrix.toml \
        --bin-dir target/release \
        --out "$smoke_dir" \
        --scenarios smoke-tcam,smoke-chaos,smoke-crash,smoke-fleet,chaos-suite
    python3 - "$smoke_dir/matrix_report.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "hermes-matrix-report/1", doc.get("schema")
assert doc["kind"] == "full", doc.get("kind")
names = {sc["name"] for sc in doc["scenarios"]}
assert names == {"smoke-tcam", "smoke-chaos", "smoke-crash", "smoke-fleet",
                 "chaos-suite"}, names
for sc in doc["scenarios"]:
    assert sc["clean_reps"] == sc["runs"], (sc["name"], sc["errors"])
    assert sc["measured"]["wall_ms"]["p50"] > 0, sc["name"]
    assert sc["measured"]["max_rss_bytes"]["p50"] > 0, sc["name"]
    assert sc["merged"]["reports"] == sc["runs"], sc["name"]
print("ok: matrix report schema-valid, %d scenario(s) clean" % len(names))
PY
    python3 scripts/perfgate.py wallclock \
        bench_baselines/wallclock.json "$smoke_dir/matrix_report.json"
    python3 scripts/perfgate.py rss \
        bench_baselines/rss.json "$smoke_dir/matrix_report.json"
    rm -rf "$smoke_dir"
}

wanted() {
    local stage=$1
    [[ -z "${CI_STAGES:-}" ]] && return 0
    local s
    IFS=',' read -ra sel <<< "$CI_STAGES"
    for s in "${sel[@]}"; do
        [[ "$s" == "$stage" ]] && return 0
    done
    return 1
}

# Reject typoed stage names up front instead of silently skipping them.
if [[ -n "${CI_STAGES:-}" ]]; then
    IFS=',' read -ra sel <<< "$CI_STAGES"
    for s in "${sel[@]}"; do
        known=0
        for k in "${ALL_STAGES[@]}"; do [[ "$s" == "$k" ]] && known=1; done
        [[ $known == 1 ]] || { echo "unknown CI stage '$s' (known: ${ALL_STAGES[*]})"; exit 2; }
    done
fi

# Per-stage summary, printed on EVERY exit path (including a failing
# stage, thanks to `set -e` + the EXIT trap): one row per stage that ran
# with its verdict and wall-clock seconds, then the first failing stage
# by name so a red run can be triaged without scrolling.
SUM_NAME=()
SUM_STATUS=()
SUM_SECS=()
CURRENT_STAGE=""
CURRENT_T0=0

print_summary() {
    local code=$?
    trap - EXIT
    if [[ -n "$CURRENT_STAGE" ]]; then
        # The trap fired mid-stage: that stage is the failure.
        SUM_NAME+=("$CURRENT_STAGE")
        SUM_STATUS+=("FAIL")
        SUM_SECS+=($((SECONDS - CURRENT_T0)))
    fi
    if [[ ${#SUM_NAME[@]} -gt 0 ]]; then
        echo
        echo "== stage summary =="
        printf '%-14s %-6s %6s\n' stage result secs
        printf '%-14s %-6s %6s\n' ------------ ------ -----
        local i first_fail=""
        for i in "${!SUM_NAME[@]}"; do
            printf '%-14s %-6s %6s\n' "${SUM_NAME[$i]}" "${SUM_STATUS[$i]}" "${SUM_SECS[$i]}"
            [[ "${SUM_STATUS[$i]}" == FAIL && -z "$first_fail" ]] && first_fail="${SUM_NAME[$i]}"
        done
        if [[ -n "$first_fail" ]]; then
            echo "first failing stage: $first_fail"
        fi
    fi
    exit "$code"
}
trap print_summary EXIT

ran=0
for stage in "${ALL_STAGES[@]}"; do
    wanted "$stage" || continue
    echo "== $stage =="
    CURRENT_STAGE="$stage"
    CURRENT_T0=$SECONDS
    "stage_$stage"
    SUM_NAME+=("$stage")
    SUM_STATUS+=("ok")
    SUM_SECS+=($((SECONDS - CURRENT_T0)))
    CURRENT_STAGE=""
    echo "-- $stage done in $((SECONDS - CURRENT_T0))s --"
    ran=$((ran + 1))
done

echo "== ci green ($ran stage(s)) =="
