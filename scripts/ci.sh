#!/usr/bin/env bash
# Hermetic CI for the Hermes reproduction workspace.
#
# Policy (README.md "Hermetic build"): the workspace has ZERO external
# crate dependencies — everything that would come from crates.io lives in
# crates/util. Every cargo invocation below therefore runs with
# `--offline`; if a network fetch would be needed, CI must fail.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== guard: Cargo.lock contains only workspace packages =="
cargo metadata --offline --format-version 1 \
  | python3 -c '
import json, sys
meta = json.load(sys.stdin)
external = [p["name"] for p in meta["packages"] if p["source"] is not None]
if external:
    sys.exit("non-workspace dependencies found: %s" % ", ".join(sorted(set(external))))
print("ok: %d workspace packages, 0 external" % len(meta["packages"]))
'

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== clippy (offline, -D warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== tests (offline) =="
cargo test -q --offline --workspace

echo "== experiment binaries build =="
cargo build --release --offline -p hermes-bench --bins

echo "== bench harnesses build and smoke-run =="
cargo build --release --offline --workspace --benches
for b in bench_tcam bench_rules bench_hermes bench_netsim; do
    HERMES_BENCH_FAST=1 HERMES_BENCH_SAMPLES=2 HERMES_BENCH_WARMUP_MS=1 \
        cargo bench --offline -q -p hermes-bench --bench "$b" >/dev/null
done

echo "== chaos smoke: fault-injected runs stay green and deterministic =="
# The oracle chaos properties: random workloads under random fault plans
# must recover to flat-table equivalence (DESIGN.md §7).
cargo test -q --offline -p hermes-core --test oracle chaos
# One full experiment under a pinned fault seed: must exit 0 (no panics
# reachable from device faults) and reproduce byte-for-byte.
chaos_out="$(mktemp)" chaos_out2="$(mktemp)"
HERMES_FAULT_SEED=42 ./target/release/exp_fig12 > "$chaos_out"
HERMES_FAULT_SEED=42 ./target/release/exp_fig12 > "$chaos_out2"
cmp "$chaos_out" "$chaos_out2" \
  || { echo "chaos run not deterministic under HERMES_FAULT_SEED"; exit 1; }
rm -f "$chaos_out" "$chaos_out2"
echo "ok: chaos suite + seeded experiment deterministic"

echo "== ci green =="
