#!/usr/bin/env bash
# Hermetic CI for the Hermes reproduction workspace.
#
# Policy (README.md "Hermetic build"): the workspace has ZERO external
# crate dependencies — everything that would come from crates.io lives in
# crates/util. Every cargo invocation below therefore runs with
# `--offline`; if a network fetch would be needed, CI must fail.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== hermes-lint: workspace invariants (incl. R4 hermeticity guard) =="
# R4 subsumes the old `cargo metadata | python3` lockfile guard: every
# Cargo.toml dependency must be a workspace path dep and Cargo.lock must
# record no external package. R1/R2/R3/R5/R6 enforce determinism,
# panic-policy, forbid(unsafe_code), the telemetry registry, and the
# exp_* binary contract (DESIGN.md §9).
cargo run --release --offline -q -p hermes-lint -- --workspace

echo "== hermes-lint: JSON report is schema-valid =="
lint_json="$(mktemp)"
cargo run --release --offline -q -p hermes-lint -- --workspace --json "$lint_json" >/dev/null
python3 - "$lint_json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "hermes-lint-report/1", doc.get("schema")
required = ["schema", "files_scanned", "clean", "rules", "findings", "suppressions"]
missing = [k for k in required if k not in doc]
assert not missing, "missing report keys: %s" % missing
assert doc["clean"] is True and doc["findings"] == []
assert doc["files_scanned"] > 50, doc["files_scanned"]
assert [r["id"] for r in doc["rules"]] == ["R1", "R2", "R3", "R4", "R5", "R6", "S1"]
bare = [s for s in doc["suppressions"] if not s["reason"].strip()]
assert not bare, "suppressions without reasons: %s" % bare
print("ok: clean over %d files, %d reasoned suppression(s)"
      % (doc["files_scanned"], len(doc["suppressions"])))
PY
rm -f "$lint_json"

echo "== clippy (offline, -D warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== tests (offline) =="
cargo test -q --offline --workspace

echo "== experiment binaries build =="
cargo build --release --offline -p hermes-bench --bins

echo "== bench harnesses build and smoke-run =="
cargo build --release --offline --workspace --benches
for b in bench_tcam bench_rules bench_hermes bench_netsim; do
    HERMES_BENCH_FAST=1 HERMES_BENCH_SAMPLES=2 HERMES_BENCH_WARMUP_MS=1 \
        cargo bench --offline -q -p hermes-bench --bench "$b" >/dev/null
done

echo "== chaos smoke: fault-injected runs stay green and deterministic =="
# The oracle chaos properties: random workloads under random fault plans
# must recover to flat-table equivalence (DESIGN.md §7).
cargo test -q --offline -p hermes-core --test oracle chaos
# One full experiment under a pinned fault seed: must exit 0 (no panics
# reachable from device faults) and reproduce byte-for-byte.
chaos_out="$(mktemp)" chaos_out2="$(mktemp)"
HERMES_FAULT_SEED=42 ./target/release/exp_fig12 > "$chaos_out"
HERMES_FAULT_SEED=42 ./target/release/exp_fig12 > "$chaos_out2"
cmp "$chaos_out" "$chaos_out2" \
  || { echo "chaos run not deterministic under HERMES_FAULT_SEED"; exit 1; }
rm -f "$chaos_out" "$chaos_out2"
echo "ok: chaos suite + seeded experiment deterministic"

echo "== telemetry smoke: seeded report is schema-valid and byte-identical =="
# A traced, fault-seeded exp_fig9 run must emit a well-formed
# hermes-bench-report/1 document (DESIGN.md "Observability") with at
# least six subsystems contributing, and a repeat run with the same
# seeds must reproduce it byte-for-byte.
bench_dir="$(mktemp -d)"
HERMES_TRACE=1 HERMES_FAULT_SEED=7 HERMES_GIT_REV=ci \
    ./target/release/exp_fig9 --out "$bench_dir/a.json" >/dev/null
HERMES_TRACE=1 HERMES_FAULT_SEED=7 HERMES_GIT_REV=ci \
    ./target/release/exp_fig9 --out "$bench_dir/b.json" >/dev/null
cmp "$bench_dir/a.json" "$bench_dir/b.json" \
  || { echo "telemetry report not deterministic under HERMES_FAULT_SEED"; exit 1; }
python3 - "$bench_dir/a.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "hermes-bench-report/1", doc.get("schema")
required = ["schema", "experiment", "git_rev", "telemetry_enabled", "meta",
            "counters", "gauges", "histograms", "series", "spans", "trace"]
missing = [k for k in required if k not in doc]
assert not missing, "missing report keys: %s" % missing
assert doc["experiment"] == "fig9"
assert doc["telemetry_enabled"] is True
subsystems = set()
for section in ("counters", "gauges", "histograms", "series"):
    subsystems.update(name.split(".")[0] for name in doc[section])
subsystems.update(span["subsystem"] for span in doc["spans"])
assert len(subsystems) >= 6, "only %s contributed" % sorted(subsystems)
print("ok: schema-valid, deterministic, subsystems: %s" % ", ".join(sorted(subsystems)))
PY
rm -rf "$bench_dir"

echo "== ci green =="
