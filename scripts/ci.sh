#!/usr/bin/env bash
# Hermetic CI for the Hermes reproduction workspace.
#
# Policy (README.md "Hermetic build"): the workspace has ZERO external
# crate dependencies — everything that would come from crates.io lives in
# crates/util. Every cargo invocation below therefore runs with
# `--offline`; if a network fetch would be needed, CI must fail.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== guard: Cargo.lock contains only workspace packages =="
cargo metadata --offline --format-version 1 \
  | python3 -c '
import json, sys
meta = json.load(sys.stdin)
external = [p["name"] for p in meta["packages"] if p["source"] is not None]
if external:
    sys.exit("non-workspace dependencies found: %s" % ", ".join(sorted(set(external))))
print("ok: %d workspace packages, 0 external" % len(meta["packages"]))
'

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== clippy (offline, -D warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== tests (offline) =="
cargo test -q --offline --workspace

echo "== experiment binaries build =="
cargo build --release --offline -p hermes-bench --bins

echo "== bench harnesses build and smoke-run =="
cargo build --release --offline --workspace --benches
for b in bench_tcam bench_rules bench_hermes bench_netsim; do
    HERMES_BENCH_FAST=1 HERMES_BENCH_SAMPLES=2 HERMES_BENCH_WARMUP_MS=1 \
        cargo bench --offline -q -p hermes-bench --bench "$b" >/dev/null
done

echo "== chaos smoke: fault-injected runs stay green and deterministic =="
# The oracle chaos properties: random workloads under random fault plans
# must recover to flat-table equivalence (DESIGN.md §7).
cargo test -q --offline -p hermes-core --test oracle chaos
# One full experiment under a pinned fault seed: must exit 0 (no panics
# reachable from device faults) and reproduce byte-for-byte.
chaos_out="$(mktemp)" chaos_out2="$(mktemp)"
HERMES_FAULT_SEED=42 ./target/release/exp_fig12 > "$chaos_out"
HERMES_FAULT_SEED=42 ./target/release/exp_fig12 > "$chaos_out2"
cmp "$chaos_out" "$chaos_out2" \
  || { echo "chaos run not deterministic under HERMES_FAULT_SEED"; exit 1; }
rm -f "$chaos_out" "$chaos_out2"
echo "ok: chaos suite + seeded experiment deterministic"

echo "== telemetry smoke: seeded report is schema-valid and byte-identical =="
# A traced, fault-seeded exp_fig9 run must emit a well-formed
# hermes-bench-report/1 document (DESIGN.md "Observability") with at
# least six subsystems contributing, and a repeat run with the same
# seeds must reproduce it byte-for-byte.
bench_dir="$(mktemp -d)"
HERMES_TRACE=1 HERMES_FAULT_SEED=7 HERMES_GIT_REV=ci \
    ./target/release/exp_fig9 --out "$bench_dir/a.json" >/dev/null
HERMES_TRACE=1 HERMES_FAULT_SEED=7 HERMES_GIT_REV=ci \
    ./target/release/exp_fig9 --out "$bench_dir/b.json" >/dev/null
cmp "$bench_dir/a.json" "$bench_dir/b.json" \
  || { echo "telemetry report not deterministic under HERMES_FAULT_SEED"; exit 1; }
python3 - "$bench_dir/a.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "hermes-bench-report/1", doc.get("schema")
required = ["schema", "experiment", "git_rev", "telemetry_enabled", "meta",
            "counters", "gauges", "histograms", "series", "spans", "trace"]
missing = [k for k in required if k not in doc]
assert not missing, "missing report keys: %s" % missing
assert doc["experiment"] == "fig9"
assert doc["telemetry_enabled"] is True
subsystems = set()
for section in ("counters", "gauges", "histograms", "series"):
    subsystems.update(name.split(".")[0] for name in doc[section])
subsystems.update(span["subsystem"] for span in doc["spans"])
assert len(subsystems) >= 6, "only %s contributed" % sorted(subsystems)
print("ok: schema-valid, deterministic, subsystems: %s" % ", ".join(sorted(subsystems)))
PY
rm -rf "$bench_dir"

echo "== ci green =="
