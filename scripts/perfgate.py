#!/usr/bin/env python3
"""Perf regression gate: compare fresh BENCH_*.json reports to baselines.

Usage:  perfgate.py <baseline_dir> <fresh_dir>

For every BENCH_*.json in <baseline_dir>, loads the file of the same name
from <fresh_dir> and compares ONLY the "counters" object, exact-match:

  * fresh report file missing ................ FAIL
  * counter present in baseline, not fresh ... FAIL (missing)
  * counter present in fresh, not baseline ... FAIL (untracked — refresh
                                                the baseline to admit it)
  * counter value differs .................... FAIL (drift)

Wall-clock, spans, series and histograms are deliberately ignored: the
simulation's counters are deterministic under the pinned seed/env (see
bench_baselines/README.md), so any delta is a behavioural change, not
noise. Exit status is the number of failing reports (0 = gate passes).

Baselines are refreshed with scripts/refresh_baselines.sh after an
intentional behaviour change, and the refreshed files are committed so
the diff is reviewable.
"""

import json
import os
import sys


def load_counters(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        raise ValueError(f"{path}: no 'counters' object (schema {doc.get('schema')!r})")
    return counters


def compare(name, base, fresh):
    """Returns a list of (metric, baseline, fresh, verdict) rows; empty = clean."""
    rows = []
    for key in sorted(set(base) | set(fresh)):
        if key not in fresh:
            rows.append((key, base[key], None, "MISSING"))
        elif key not in base:
            rows.append((key, None, fresh[key], "UNTRACKED"))
        elif base[key] != fresh[key]:
            rows.append((key, base[key], fresh[key], "DRIFT"))
    return rows


def fmt(v):
    return "-" if v is None else str(v)


def print_table(rows):
    headers = ("metric", "baseline", "fresh", "delta", "verdict")
    table = []
    for metric, base, fresh, verdict in rows:
        if isinstance(base, (int, float)) and isinstance(fresh, (int, float)):
            delta = f"{fresh - base:+}"
        else:
            delta = "-"
        table.append((metric, fmt(base), fmt(fresh), delta, verdict))
    widths = [max(len(headers[i]), *(len(r[i]) for r in table)) for i in range(5)]
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print("    " + line)
    print("    " + "  ".join("-" * w for w in widths))
    for r in table:
        print("    " + "  ".join(c.ljust(widths[i]) for i, c in enumerate(r)))


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline_dir, fresh_dir = argv[1], argv[2]
    names = sorted(
        f for f in os.listdir(baseline_dir) if f.startswith("BENCH_") and f.endswith(".json")
    )
    if not names:
        print(f"perfgate: no BENCH_*.json baselines in {baseline_dir}", file=sys.stderr)
        return 2

    failures = 0
    for name in names:
        base = load_counters(os.path.join(baseline_dir, name))
        fresh_path = os.path.join(fresh_dir, name)
        if not os.path.exists(fresh_path):
            print(f"FAIL {name}: fresh report not produced ({fresh_path})")
            failures += 1
            continue
        fresh = load_counters(fresh_path)
        rows = compare(name, base, fresh)
        if rows:
            print(f"FAIL {name}: {len(rows)} counter(s) deviate from baseline")
            print_table(rows)
            failures += 1
        else:
            print(f"ok   {name}: {len(base)} counters match baseline")

    if failures:
        print(
            f"\nperfgate: {failures}/{len(names)} report(s) regressed. If the change is"
            " intentional, refresh with scripts/refresh_baselines.sh and commit the diff."
        )
    else:
        print(f"\nperfgate: all {len(names)} report(s) match their baselines.")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
