#!/usr/bin/env python3
"""Three-tier perf regression gate.

Usage:
  perfgate.py counters  <baseline_dir> <fresh_dir>
  perfgate.py wallclock <baseline.json> <matrix_report.json> [--band FRAC]
  perfgate.py rss       <baseline.json> <matrix_report.json> [--band FRAC]
  perfgate.py <baseline_dir> <fresh_dir>          (legacy = counters)

Tier 1 — counters (exact). For every BENCH_*.json in <baseline_dir>,
loads the file of the same name from <fresh_dir> and compares ONLY the
"counters" object, exact-match:

  * fresh report file missing ................ FAIL
  * counter present in baseline, not fresh ... FAIL (missing)
  * counter present in fresh, not baseline ... FAIL (untracked — refresh
                                                the baseline to admit it)
  * counter value differs .................... FAIL (drift)

The simulation's counters are deterministic under the pinned seed/env
(see bench_baselines/README.md), so any delta is a behavioural change,
not noise.

Tier 2 — wallclock (tolerance band). Compares the measured wall-clock
medians in a hermes-matrix-report/1 document (produced by
hermes-harness) against a committed envelope:

  * scenario in baseline, not in report ...... FAIL (MISSING)
  * scenario in report, not in baseline ...... FAIL (UNTRACKED)
  * failed repetitions in the report ......... FAIL (BROKEN)
  * median above baseline*(1+band)+floor ..... FAIL (SLOW)
  * median below baseline*(1-band)-floor ..... note only (FAST — refresh
                                                to bank the improvement)

The band (default from the baseline file, overridable with --band) plus
an absolute floor_ms absorb scheduler noise; millisecond-scale smoke
scenarios are floor-dominated by design. Medians-of-N keep single
outlier reps from tripping the gate.

Tier 3 — rss (tolerance band). Same envelope discipline applied to the
per-scenario peak resident set (`measured.max_rss_bytes.p50` in the
matrix report) against a hermes-rss-baseline/1 document:

  * scenario in baseline, not in report ...... FAIL (MISSING)
  * scenario in report, not in baseline ...... FAIL (UNTRACKED)
  * failed reps / no RSS median .............. FAIL (BROKEN)
  * median above baseline*(1+band)+floor ..... FAIL (HEAVY)
  * median below baseline*(1-band)-floor ..... note only (LEAN — refresh
                                                to bank the improvement)

The floor here is floor_bytes (absolute, default 16 MiB): tiny smoke
binaries live within allocator/page-cache jitter of each other, so small
absolute swings are noise while a genuine leak or an unbounded cache
blows straight through the band.

Exit status: 0 = gate passes, 1 = regressions found, 2 = usage or
malformed-input error. Baselines are refreshed with scripts/refresh_baselines.sh after
an intentional change, and the refreshed files are committed so the diff
is reviewable.
"""

import json
import os
import sys


def load_json(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def load_counters(path):
    doc = load_json(path)
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        raise ValueError(f"{path}: no 'counters' object (schema {doc.get('schema')!r})")
    return counters


def compare(name, base, fresh):
    """Returns a list of (metric, baseline, fresh, verdict) rows; empty = clean."""
    rows = []
    for key in sorted(set(base) | set(fresh)):
        if key not in fresh:
            rows.append((key, base[key], None, "MISSING"))
        elif key not in base:
            rows.append((key, None, fresh[key], "UNTRACKED"))
        elif base[key] != fresh[key]:
            rows.append((key, base[key], fresh[key], "DRIFT"))
    return rows


def fmt(v):
    if v is None:
        return "-"
    if isinstance(v, float):
        return f"{v:.1f}"
    return str(v)


def print_table(rows):
    headers = ("metric", "baseline", "fresh", "delta", "verdict")
    table = []
    for metric, base, fresh, verdict in rows:
        if isinstance(base, (int, float)) and isinstance(fresh, (int, float)):
            delta = f"{fresh - base:+.1f}" if isinstance(base, float) or isinstance(
                fresh, float
            ) else f"{fresh - base:+}"
        else:
            delta = "-"
        table.append((metric, fmt(base), fmt(fresh), delta, verdict))
    widths = [max(len(headers[i]), *(len(r[i]) for r in table)) for i in range(5)]
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print("    " + line)
    print("    " + "  ".join("-" * w for w in widths))
    for r in table:
        print("    " + "  ".join(c.ljust(widths[i]) for i, c in enumerate(r)))


def run_counters(baseline_dir, fresh_dir):
    names = sorted(
        f for f in os.listdir(baseline_dir) if f.startswith("BENCH_") and f.endswith(".json")
    )
    if not names:
        print(f"perfgate: no BENCH_*.json baselines in {baseline_dir}", file=sys.stderr)
        return 2

    failures = 0
    for name in names:
        base = load_counters(os.path.join(baseline_dir, name))
        fresh_path = os.path.join(fresh_dir, name)
        if not os.path.exists(fresh_path):
            print(f"FAIL {name}: fresh report not produced ({fresh_path})")
            failures += 1
            continue
        fresh = load_counters(fresh_path)
        rows = compare(name, base, fresh)
        if rows:
            print(f"FAIL {name}: {len(rows)} counter(s) deviate from baseline")
            print_table(rows)
            failures += 1
        else:
            print(f"ok   {name}: {len(base)} counters match baseline")

    if failures:
        print(
            f"\nperfgate: {failures}/{len(names)} report(s) regressed. If the change is"
            " intentional, refresh with scripts/refresh_baselines.sh and commit the diff."
        )
    else:
        print(f"\nperfgate: all {len(names)} report(s) match their baselines.")
    return 1 if failures else 0


def report_medians(report):
    """scenario name -> (median wall ms, failed rep count) from a
    hermes-matrix-report/1 document."""
    if report.get("schema") != "hermes-matrix-report/1":
        raise ValueError(f"not a hermes-matrix-report/1 document: {report.get('schema')!r}")
    if report.get("kind") == "canonical":
        raise ValueError("wallclock tier needs the full report (canonical omits 'measured')")
    out = {}
    for sc in report.get("scenarios", []):
        measured = sc.get("measured") or {}
        wall = measured.get("wall_ms") or {}
        runs = sc.get("runs", 0)
        clean = sc.get("clean_reps", 0)
        out[sc["name"]] = (wall.get("p50"), runs - clean)
    return out


def run_wallclock(baseline_path, report_path, band_override=None):
    base = load_json(baseline_path)
    if base.get("schema") != "hermes-wallclock-baseline/1":
        print(
            f"perfgate: {baseline_path}: not a hermes-wallclock-baseline/1 document",
            file=sys.stderr,
        )
        return 2
    default_band = band_override if band_override is not None else base.get("band", 0.25)
    default_floor = base.get("floor_ms", 20.0)
    scenarios = base.get("scenarios", {})
    try:
        fresh = report_medians(load_json(report_path))
    except ValueError as e:
        print(f"perfgate: {report_path}: {e}", file=sys.stderr)
        return 2

    failures = 0
    for name in sorted(set(scenarios) | set(fresh)):
        if name not in fresh:
            print(f"FAIL {name}: scenario in baseline but absent from the report (MISSING)")
            failures += 1
            continue
        median, broken_reps = fresh[name]
        if name not in scenarios:
            print(
                f"FAIL {name}: scenario not in the wall-clock baseline (UNTRACKED —"
                " refresh to admit it)"
            )
            failures += 1
            continue
        if broken_reps:
            print(f"FAIL {name}: {broken_reps} repetition(s) failed (BROKEN)")
            failures += 1
            continue
        entry = scenarios[name]
        base_ms = entry["median_ms"]
        band = band_override if band_override is not None else entry.get("band", default_band)
        floor = entry.get("floor_ms", default_floor)
        limit = base_ms * (1.0 + band) + floor
        fast_mark = base_ms * (1.0 - band) - floor
        if median is None:
            print(f"FAIL {name}: report carries no wall-clock median (BROKEN)")
            failures += 1
        elif median > limit:
            print(
                f"FAIL {name}: median {median:.1f}ms above envelope {limit:.1f}ms"
                f" (baseline {base_ms:.1f}ms, band {band:.0%}, floor {floor:.0f}ms) (SLOW)"
            )
            failures += 1
        elif median < fast_mark:
            print(
                f"ok   {name}: median {median:.1f}ms well below baseline {base_ms:.1f}ms"
                " (FAST — consider refreshing to bank the improvement)"
            )
        else:
            print(
                f"ok   {name}: median {median:.1f}ms within envelope"
                f" [{max(fast_mark, 0.0):.1f}, {limit:.1f}]ms"
            )

    total = len(set(scenarios) | set(fresh))
    if failures:
        print(
            f"\nperfgate: {failures}/{total} scenario(s) out of band. If the change is"
            " intentional, refresh with scripts/refresh_baselines.sh and commit the diff."
        )
    else:
        print(f"\nperfgate: all {total} scenario(s) within the wall-clock envelope.")
    return 1 if failures else 0


def rss_medians(report):
    """scenario name -> (median peak RSS bytes, failed rep count) from a
    hermes-matrix-report/1 document."""
    if report.get("schema") != "hermes-matrix-report/1":
        raise ValueError(f"not a hermes-matrix-report/1 document: {report.get('schema')!r}")
    if report.get("kind") == "canonical":
        raise ValueError("rss tier needs the full report (canonical omits 'measured')")
    out = {}
    for sc in report.get("scenarios", []):
        measured = sc.get("measured") or {}
        rss = measured.get("max_rss_bytes") or {}
        runs = sc.get("runs", 0)
        clean = sc.get("clean_reps", 0)
        out[sc["name"]] = (rss.get("p50"), runs - clean)
    return out


def fmt_mib(v):
    return f"{v / (1 << 20):.1f}MiB"


def run_rss(baseline_path, report_path, band_override=None):
    base = load_json(baseline_path)
    if base.get("schema") != "hermes-rss-baseline/1":
        print(
            f"perfgate: {baseline_path}: not a hermes-rss-baseline/1 document",
            file=sys.stderr,
        )
        return 2
    default_band = band_override if band_override is not None else base.get("band", 0.35)
    default_floor = base.get("floor_bytes", 16 << 20)
    scenarios = base.get("scenarios", {})
    try:
        fresh = rss_medians(load_json(report_path))
    except ValueError as e:
        print(f"perfgate: {report_path}: {e}", file=sys.stderr)
        return 2

    failures = 0
    for name in sorted(set(scenarios) | set(fresh)):
        if name not in fresh:
            print(f"FAIL {name}: scenario in baseline but absent from the report (MISSING)")
            failures += 1
            continue
        median, broken_reps = fresh[name]
        if name not in scenarios:
            print(
                f"FAIL {name}: scenario not in the peak-RSS baseline (UNTRACKED —"
                " refresh to admit it)"
            )
            failures += 1
            continue
        if broken_reps:
            print(f"FAIL {name}: {broken_reps} repetition(s) failed (BROKEN)")
            failures += 1
            continue
        entry = scenarios[name]
        base_bytes = entry["median_bytes"]
        band = band_override if band_override is not None else entry.get("band", default_band)
        floor = entry.get("floor_bytes", default_floor)
        limit = base_bytes * (1.0 + band) + floor
        lean_mark = base_bytes * (1.0 - band) - floor
        if median is None:
            print(f"FAIL {name}: report carries no peak-RSS median (BROKEN)")
            failures += 1
        elif median > limit:
            print(
                f"FAIL {name}: peak RSS {fmt_mib(median)} above envelope {fmt_mib(limit)}"
                f" (baseline {fmt_mib(base_bytes)}, band {band:.0%},"
                f" floor {fmt_mib(floor)}) (HEAVY)"
            )
            failures += 1
        elif median < lean_mark:
            print(
                f"ok   {name}: peak RSS {fmt_mib(median)} well below baseline"
                f" {fmt_mib(base_bytes)} (LEAN — consider refreshing to bank the"
                " improvement)"
            )
        else:
            print(
                f"ok   {name}: peak RSS {fmt_mib(median)} within envelope"
                f" [{fmt_mib(max(lean_mark, 0.0))}, {fmt_mib(limit)}]"
            )

    total = len(set(scenarios) | set(fresh))
    if failures:
        print(
            f"\nperfgate: {failures}/{total} scenario(s) out of the RSS envelope. If the"
            " change is intentional, refresh with scripts/refresh_baselines.sh and commit"
            " the diff."
        )
    else:
        print(f"\nperfgate: all {total} scenario(s) within the peak-RSS envelope.")
    return 1 if failures else 0


def parse_band_args(rest):
    """Splits a (--band FRAC | --band=FRAC) flag off the positional args.
    Returns (positional, band) or None after printing the error."""
    band = None
    positional = []
    i = 0
    while i < len(rest):
        if rest[i] == "--band":
            if i + 1 >= len(rest):
                print("perfgate: --band needs a value", file=sys.stderr)
                return None
            try:
                band = float(rest[i + 1])
            except ValueError:
                print(f"perfgate: bad --band {rest[i + 1]!r}", file=sys.stderr)
                return None
            i += 2
        elif rest[i].startswith("--band="):
            try:
                band = float(rest[i].split("=", 1)[1])
            except ValueError:
                print(f"perfgate: bad {rest[i]!r}", file=sys.stderr)
                return None
            i += 1
        else:
            positional.append(rest[i])
            i += 1
    return positional, band


def main(argv):
    args = argv[1:]
    if len(args) == 2 and args[0] not in ("counters", "wallclock", "rss"):
        # Legacy two-positional form.
        return run_counters(args[0], args[1])
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    mode, rest = args[0], args[1:]
    if mode == "counters" and len(rest) == 2:
        return run_counters(rest[0], rest[1])
    if mode in ("wallclock", "rss"):
        parsed = parse_band_args(rest)
        if parsed is None:
            return 2
        positional, band = parsed
        if len(positional) != 2:
            print(__doc__.strip(), file=sys.stderr)
            return 2
        run = run_wallclock if mode == "wallclock" else run_rss
        return run(positional[0], positional[1], band)
    print(__doc__.strip(), file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
