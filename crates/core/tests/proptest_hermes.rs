//! Property-based tests for the Hermes framework: the §4 correctness
//! guarantee under arbitrary operation sequences (a twin of the directed
//! lockstep oracle), partition soundness, and predictor/corrector laws.
//! Runs under the in-tree `hermes_util::check!` harness with pinned seeds.

use hermes_core::partition::{partition_new_rule, verify_partition};
use hermes_core::predict::{Corrector, PredictorKind};
use hermes_core::prelude::*;
use hermes_rules::fields::DST_SHIFT;
use hermes_rules::overlap::OverlapIndex;
use hermes_rules::prelude::*;
use hermes_tcam::{LookupResult, PlacementStrategy, SimDuration, SimTime, SwitchModel, TcamTable};
use hermes_util::check::{arb, just, range, vec_of, weighted, zip2, zip3, Gen};

fn prefix() -> Gen<Ipv4Prefix> {
    zip2(arb::<u32>(), range(8u8..=26))
        .map(|(a, len)| Ipv4Prefix::new(0x0a00_0000 | (a >> 8), len))
}

#[derive(Clone, Debug)]
enum Op {
    Insert { pfx: Ipv4Prefix, prio: u32 },
    Delete { idx: usize },
    ModifyPrio { idx: usize, prio: u32 },
    Tick,
    Migrate,
}

fn op() -> Gen<Op> {
    weighted(vec![
        (
            5,
            zip2(prefix(), range(1u32..30)).map(|(pfx, prio)| Op::Insert { pfx, prio }),
        ),
        (2, arb::<usize>().map(|idx| Op::Delete { idx })),
        (
            1,
            zip2(arb::<usize>(), range(1u32..30))
                .map(|(idx, prio)| Op::ModifyPrio { idx, prio }),
        ),
        (1, just(Op::Tick)),
        (1, just(Op::Migrate)),
    ])
}

fn action_of(result: LookupResult) -> Option<Action> {
    result.rule().map(|r| r.action)
}

hermes_util::check! {
    #![cases = 256]

    /// The monolithic-equivalence guarantee, property-tested: any sequence
    /// of inserts/deletes/priority-modifies/ticks/migrations leaves the
    /// shadow+main pair classifying identically to one big table. (Actions
    /// are tied to priorities so same-priority overlap — undefined even in
    /// OpenFlow — cannot confound the oracle.)
    fn lockstep_equivalence(ops in vec_of(op(), 1..80)) {
        let config = HermesConfig {
            // Everything through the shadow path where possible.
            rate_limit: Some(f64::INFINITY),
            ..Default::default()
        };
        let mut hermes = HermesSwitch::new(SwitchModel::pica8_p3290(), config).unwrap();
        let mut oracle = TcamTable::new(1 << 14, PlacementStrategy::PackedLow);
        let mut live: Vec<Rule> = Vec::new();
        let mut next = 0u64;
        let mut now = SimTime::ZERO;

        for o in ops {
            now += SimDuration::from_ms(3.0);
            match o {
                Op::Insert { pfx, prio } => {
                    let r = Rule::new(next, pfx.to_key(), Priority(prio), Action::Forward(prio % 5));
                    next += 1;
                    hermes.insert(r, now).unwrap();
                    oracle.insert(r).unwrap();
                    live.push(r);
                }
                Op::Delete { idx } => {
                    if live.is_empty() { continue; }
                    let r = live.swap_remove(idx % live.len());
                    hermes.delete(r.id, now).unwrap();
                    oracle.delete(r.id).unwrap();
                }
                Op::ModifyPrio { idx, prio } => {
                    if live.is_empty() { continue; }
                    let i = idx % live.len();
                    let id = live[i].id;
                    let action = Action::Forward(prio % 5);
                    hermes
                        .modify(id, Some(action), Some(Priority(prio)), now)
                        .unwrap();
                    let old = *oracle.get(id).unwrap();
                    oracle.delete(id).unwrap();
                    oracle
                        .insert(Rule { priority: Priority(prio), action, ..old })
                        .unwrap();
                    live[i].priority = Priority(prio);
                    live[i].action = action;
                }
                Op::Tick => { hermes.tick(now); }
                Op::Migrate => { hermes.migrate(now); }
            }
            // Probe points: inside each live rule + random.
            for (k, r) in live.iter().enumerate() {
                if let Some(dst) = hermes_rules::fields::FlowMatch::dst_prefix_of_key(&r.key) {
                    let pkt = ((dst.addr() | (k as u32 & 0x3f)) as u128) << DST_SHIFT;
                    assert_eq!(
                        action_of(hermes.peek(pkt)),
                        oracle.peek(pkt).map(|m| m.action),
                        "probe in rule {:?}",
                        r.id
                    );
                }
            }
        }
    }

    /// Algorithm 1 soundness against random main tables (sampled oracle).
    fn partition_soundness(
        main_rules in vec_of(zip2(prefix(), range(5u32..40)), 0..25),
        new_pfx in prefix(),
        new_prio in range(1u32..5),
    ) {
        let mut main = OverlapIndex::new();
        for (i, (p, prio)) in main_rules.iter().enumerate() {
            main.insert(Rule::new(i as u64, p.to_key(), Priority(*prio), Action::Drop));
        }
        let new = Rule::new(10_000, new_pfx.to_key(), Priority(new_prio), Action::Forward(1));
        let outcome = partition_new_rule(&new, &main);
        let span = 32 - new_pfx.len();
        let samples: Vec<u128> = (0..512u32)
            .map(|i| {
                let host = if span >= 9 { i << (span - 9) } else { i & ((1u32 << span) - 1) };
                ((new_pfx.addr() | host) as u128) << DST_SHIFT
            })
            .collect();
        assert!(verify_partition(&new, &outcome, &main, &samples));
    }

    /// Correctors only ever inflate non-negative predictions, and Slack
    /// scales linearly.
    fn corrector_laws(
        args in zip3(range(0.0f64..1e6), range(0.0f64..2.0), range(0.0f64..1e4)),
    ) {
        let (pred, slack, dz) = args;
        assert!(Corrector::Slack(slack).apply(pred) >= pred);
        assert!(Corrector::Deadzone(dz).apply(pred) >= pred);
        assert_eq!(Corrector::None.apply(pred), pred);
        let a = Corrector::Slack(slack).apply(pred);
        assert!((a - pred * (1.0 + slack)).abs() < 1e-6);
    }

    /// Every predictor returns finite non-negative predictions on
    /// arbitrary non-negative series.
    fn predictors_are_total(series in vec_of(range(0.0f64..1e5), 0..64)) {
        for kind in PredictorKind::all() {
            let mut p = kind.build();
            for &v in &series {
                p.observe(v);
                let pred = p.predict();
                assert!(pred.is_finite() && pred >= 0.0, "{:?} produced {}", kind, pred);
            }
        }
    }

    /// Token bucket: cumulative admissions over any request pattern never
    /// exceed burst + rate·elapsed.
    fn token_bucket_never_over_admits(
        gaps_ms in vec_of(range(0.0f64..100.0), 1..100),
        rate in range(1.0f64..1000.0),
        burst in range(1.0f64..100.0),
    ) {
        let mut bucket = TokenBucket::new(rate, burst);
        let mut now = SimTime::ZERO;
        let mut admitted = 0.0;
        for gap in gaps_ms {
            now += SimDuration::from_ms(gap);
            if bucket.try_take(now, 1.0) {
                admitted += 1.0;
            }
            let bound = burst + rate * now.as_secs() + 1e-6;
            assert!(admitted <= bound, "admitted {} > bound {}", admitted, bound);
        }
    }

    /// Sizing: the shadow never exceeds half the TCAM and the configured
    /// guarantee is honoured by the worst-case single insert.
    fn shadow_sizing_laws(g_ms in range(0.5f64..50.0)) {
        for model in SwitchModel::paper_models() {
            let config = HermesConfig::with_guarantee(SimDuration::from_ms(g_ms));
            match HermesSwitch::new(model.clone(), config) {
                Ok(sw) => {
                    assert!(sw.shadow_capacity() <= model.capacity / 2);
                    assert!(
                        model.worst_insert_latency(sw.shadow_capacity())
                            <= SimDuration::from_ms(g_ms)
                            || sw.shadow_capacity() == 1
                    );
                }
                Err(HermesError::InfeasibleGuarantee) => {
                    assert!(SimDuration::from_ms(g_ms) < model.base + model.base);
                }
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
    }
}
