//! Directed crash/resync scenarios: wipe, partial retention, disconnect,
//! reconnect denial, warm vs cold reboot, and the intent store's
//! checkpoint discipline. (The randomized counterpart lives in the
//! `oracle` chaos properties.)

use hermes_core::prelude::*;
use hermes_rules::prelude::*;
use hermes_tcam::{CrashKind, FaultPlan, SimDuration, SimTime, SwitchModel};

fn rule(id: u64, third: u32, prio: u32) -> Rule {
    let p: Ipv4Prefix = format!("10.{}.{}.0/24", id % 200, third % 250).parse().unwrap();
    Rule::new(id, p.to_key(), Priority(prio), Action::Forward(prio % 5 + 1))
}

fn loaded_switch(config: HermesConfig, n: u64) -> (HermesSwitch, SimTime) {
    let mut sw = HermesSwitch::new(SwitchModel::pica8_p3290(), config).unwrap();
    let mut now = SimTime::ZERO;
    for id in 0..n {
        now += SimDuration::from_ms(2.0);
        sw.insert(rule(id, id as u32, 1 + (id as u32 % 30)), now)
            .unwrap();
        if id % 8 == 7 {
            sw.tick(now);
        }
    }
    (sw, now)
}

#[test]
fn wipe_crash_warm_resync_restores_the_table() {
    let (mut sw, mut now) = loaded_switch(HermesConfig::default(), 40);
    let before = sw.logical_len();
    assert_eq!(sw.intent_len(), before);

    sw.inject_crash(CrashKind::Wipe, 1, 0, now);
    assert!(sw.is_down());
    assert!(sw.is_degraded(), "a crash forces degraded mode immediately");
    assert_eq!(sw.shadow_len() + sw.main_len(), 0, "wipe empties the TCAM");

    // Admissions during the window queue instead of hammering the dead
    // session.
    now += SimDuration::from_ms(1.0);
    let rep = sw.insert(rule(900, 3, 7), now).unwrap();
    assert_eq!(rep.route(), Some(Route::Deferred));

    now += SimDuration::from_ms(5.0);
    sw.tick(now);
    assert!(!sw.is_down(), "tick drives resync to completion");
    assert!(!sw.is_degraded());
    assert_eq!(sw.deferred_len(), 0, "deferred admissions drained");
    let stats = sw.resync_stats();
    assert_eq!(stats.crashes_detected, 1);
    assert_eq!(stats.resyncs_completed, 1);
    assert_eq!(stats.warm_resyncs, 1);
    assert!(stats.rules_reinstalled as usize >= before);
    assert_eq!(sw.logical_len(), before + 1);
    assert_eq!(sw.intent_len(), sw.logical_len());
    for id in 0..40u64 {
        assert!(sw.contains(RuleId(id)), "rule {id} lost in the wipe");
    }
    now += SimDuration::from_ms(5.0);
    assert!(sw.audit(now).clean(), "post-resync audit certifies the device");
}

#[test]
fn partial_crash_warm_resync_keeps_survivors() {
    let (mut sw, mut now) = loaded_switch(HermesConfig::default(), 40);
    let physical_before = sw.shadow_len() + sw.main_len();

    sw.inject_crash(
        CrashKind::Partial {
            survivor_prob: 0.6,
        },
        7,
        0,
        now,
    );
    let physical_after = sw.shadow_len() + sw.main_len();
    assert!(physical_after < physical_before, "partial crash loses entries");
    assert!(physical_after > 0, "but a survivor subset remains");

    now += SimDuration::from_ms(5.0);
    let report = sw.resync(now).expect("crash window open");
    assert!(report.complete);
    assert_eq!(report.survivors, physical_after, "warm mode keeps survivors");
    assert_eq!(
        report.reinstalled,
        physical_before - physical_after,
        "warm mode reinstalls exactly the lost entries"
    );
    assert!(sw.resync_stats().survivors_kept > 0);
    now += SimDuration::from_ms(5.0);
    assert!(sw.audit(now).clean());
}

#[test]
fn cold_reboot_reinstalls_everything_from_the_intent_store() {
    let config = HermesConfig {
        resync: ResyncPolicy {
            mode: ResyncMode::Cold,
            ..ResyncPolicy::default()
        },
        ..Default::default()
    };
    let (mut sw, mut now) = loaded_switch(config, 40);
    let before = sw.logical_len();

    // Even a state-preserving disconnect is distrusted in cold mode.
    sw.inject_crash(CrashKind::Disconnect, 0, 0, now);
    now += SimDuration::from_ms(5.0);
    let report = sw.resync(now).expect("crash window open");
    assert!(report.complete);
    assert_eq!(report.survivors, 0, "cold mode keeps nothing in place");
    assert_eq!(report.reinstalled, before);
    assert_eq!(sw.resync_stats().cold_resyncs, 1);
    assert_eq!(sw.shadow_len(), 0, "cold reboot restarts with an empty shadow");
    assert_eq!(sw.main_len(), before);
    assert_eq!(sw.intent_len(), sw.logical_len());
    now += SimDuration::from_ms(5.0);
    assert!(sw.audit(now).clean());
}

#[test]
fn reconnect_denials_back_off_and_eventually_reconnect() {
    let (mut sw, mut now) = loaded_switch(HermesConfig::default(), 10);
    sw.inject_crash(CrashKind::Disconnect, 0, 2, now);
    now += SimDuration::from_ms(5.0);
    let report = sw.resync(now).expect("crash window open");
    assert!(report.complete);
    assert_eq!(
        report.reconnect_attempts, 3,
        "two denials, then the third attempt lands"
    );
    assert!(report.duration >= SimDuration::from_ms(3.0), "backoff charged");
}

#[test]
fn reconnect_denied_past_budget_retries_on_later_passes() {
    let config = HermesConfig {
        resync: ResyncPolicy {
            max_reconnect_attempts: 3,
            ..ResyncPolicy::default()
        },
        ..Default::default()
    };
    let (mut sw, mut now) = loaded_switch(config, 10);
    sw.inject_crash(CrashKind::Wipe, 1, 5, now);

    now += SimDuration::from_ms(5.0);
    let first = sw.resync(now).expect("crash window open");
    assert!(!first.complete, "five denials outlast a three-attempt budget");
    assert!(sw.is_down());
    assert_eq!(sw.resync_stats().reconnect_failures, 1);

    // The audit heartbeat keeps retrying; the remaining denials drain.
    let mut converged = false;
    for _ in 0..4 {
        now += SimDuration::from_ms(5.0);
        if sw.audit(now).clean() && !sw.is_down() {
            converged = true;
            break;
        }
    }
    assert!(converged, "later passes reconnect and rebuild");
    assert_eq!(sw.resync_stats().resyncs_completed, 1);
    for id in 0..10u64 {
        assert!(sw.contains(RuleId(id)));
    }
}

#[test]
fn armed_crash_plan_is_detected_through_failing_ops() {
    let mut sw = HermesSwitch::new(SwitchModel::pica8_p3290(), HermesConfig::default()).unwrap();
    let mut plan = FaultPlan::quiet(3);
    plan.crash_period = 5;
    plan.crash_wipe_prob = 1.0;
    sw.install_fault_plan(Some(plan));

    let mut now = SimTime::ZERO;
    let mut failures = 0;
    for id in 0..20u64 {
        now += SimDuration::from_ms(2.0);
        if sw.insert(rule(id, id as u32, 5), now).is_err() {
            failures += 1;
        }
    }
    assert!(failures > 0, "the planned crash surfaces as a failed op");
    assert!(sw.resync_stats().crashes_detected > 0);

    sw.install_fault_plan(None);
    let mut clean = false;
    for _ in 0..8 {
        now += SimDuration::from_ms(5.0);
        if sw.audit(now).clean() && !sw.is_down() && sw.deferred_len() == 0 {
            clean = true;
            break;
        }
    }
    assert!(clean, "quiesced audits converge after planned crashes");
    assert_eq!(sw.intent_len(), sw.logical_len());
}

#[test]
fn intent_store_checkpoints_bound_the_journal() {
    let config = HermesConfig {
        resync: ResyncPolicy {
            checkpoint_interval: 16,
            ..ResyncPolicy::default()
        },
        ..Default::default()
    };
    let (mut sw, mut now) = loaded_switch(config, 60);
    for id in 0..20u64 {
        now += SimDuration::from_ms(1.0);
        sw.delete(RuleId(id), now).unwrap();
    }
    assert!(
        sw.intent_journal_depth() < 16,
        "the journal folds into the checkpoint at the interval"
    );
    assert_eq!(sw.intent_len(), sw.logical_len());

    // The compacted store still rebuilds the exact table after a crash.
    sw.inject_crash(CrashKind::Wipe, 9, 0, now);
    now += SimDuration::from_ms(5.0);
    assert!(sw.resync(now).expect("crash window open").complete);
    assert_eq!(sw.logical_len(), 40);
    for id in 20..60u64 {
        assert!(sw.contains(RuleId(id)));
    }
}
