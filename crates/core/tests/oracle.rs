//! The §4 correctness guarantee, checked mechanically.
//!
//! "The two tables maintained by Hermes will behave in an identical manner
//! as a single monolithic table."
//!
//! A reference monolithic TCAM is driven in lockstep with a `HermesSwitch`
//! through randomized insert/delete/modify/migrate interleavings; after
//! every control-plane action the two are compared on a packet sample.
//!
//! One caveat inherited from OpenFlow itself: the behaviour of overlapping
//! *same-priority* rules with different actions is undefined even in a
//! single table, so the generator ties each action to its rule's priority
//! (equal priority ⇒ equal action), making the oracle deterministic.

use hermes_core::prelude::*;
use hermes_rules::fields::DST_SHIFT;
use hermes_rules::prelude::*;
use hermes_tcam::{LookupResult, PlacementStrategy, SimDuration, SimTime, SwitchModel, TcamTable};
use hermes_util::rng::rngs::StdRng;
use hermes_util::rng::{Rng, SeedableRng};

/// The monolithic reference: one big priority-ordered table.
struct Oracle {
    table: TcamTable,
}

impl Oracle {
    fn new() -> Self {
        Oracle {
            table: TcamTable::new(1 << 16, PlacementStrategy::PackedLow),
        }
    }

    fn apply(&mut self, action: &ControlAction) {
        match action {
            ControlAction::Insert(r) => {
                self.table.insert(*r).expect("oracle insert");
            }
            ControlAction::Delete(id) => {
                self.table.delete(*id).expect("oracle delete");
            }
            ControlAction::Modify {
                id,
                action,
                priority,
            } => {
                if let Some(p) = priority {
                    let old = *self.table.get(*id).expect("oracle modify target");
                    self.table.delete(*id).unwrap();
                    let mut new_rule = old;
                    new_rule.priority = *p;
                    if let Some(a) = action {
                        new_rule.action = *a;
                    }
                    self.table.insert(new_rule).unwrap();
                } else if let Some(a) = action {
                    self.table.modify_action(*id, *a).unwrap();
                }
            }
        }
    }

    fn classify(&self, pkt: u128) -> Option<Action> {
        self.table.peek(pkt).map(|r| r.action)
    }
}

fn hermes_action(result: LookupResult) -> Option<Action> {
    match result {
        LookupResult::Matched { rule, .. } => Some(rule.action),
        _ => None,
    }
}

fn pkt(addr: u32) -> u128 {
    (addr as u128) << DST_SHIFT
}

/// Compares Hermes against the oracle on a packet sample.
fn assert_equivalent(hermes: &HermesSwitch, oracle: &Oracle, samples: &[u128], ctx: &str) {
    for &p in samples {
        let h = hermes_action(hermes.peek(p));
        let o = oracle.classify(p);
        assert_eq!(h, o, "{ctx}: divergence on packet {p:#034x}");
    }
}

/// Generates a rule whose action is a pure function of its priority so the
/// oracle is deterministic (see module docs).
fn gen_rule(rng: &mut StdRng, id: u64) -> Rule {
    let len = rng.gen_range(8..=28);
    // Cluster addresses into a /6 so overlaps are common.
    let addr = 0x0a00_0000u32 | rng.gen_range(0..1u32 << 24);
    let prio = rng.gen_range(1..40u32);
    Rule::new(
        id,
        Ipv4Prefix::new(addr, len).to_key(),
        Priority(prio),
        Action::Forward(prio % 5 + 1),
    )
}

fn sample_packets(rng: &mut StdRng, n: usize) -> Vec<u128> {
    (0..n)
        .map(|_| pkt(0x0a00_0000u32 | rng.gen_range(0..1u32 << 24)))
        .collect()
}

fn run_lockstep(seed: u64, ops: usize, model: SwitchModel, trigger: MigrationTrigger) {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = HermesConfig {
        guarantee: SimDuration::from_ms(5.0),
        trigger,
        ..Default::default()
    };
    let mut hermes = HermesSwitch::new(model, config).unwrap();
    let mut oracle = Oracle::new();
    let samples = sample_packets(&mut rng, 300);

    let mut live: Vec<Rule> = Vec::new();
    let mut next_id = 0u64;
    let mut now = SimTime::ZERO;

    for step in 0..ops {
        now += SimDuration::from_ms(rng.gen_range(0.1..5.0));
        let roll: f64 = rng.gen();
        let action = if live.is_empty() || roll < 0.55 {
            let r = gen_rule(&mut rng, next_id);
            next_id += 1;
            live.push(r);
            ControlAction::Insert(r)
        } else if roll < 0.8 {
            let i = rng.gen_range(0..live.len());
            let r = live.swap_remove(i);
            ControlAction::Delete(r.id)
        } else {
            let i = rng.gen_range(0..live.len());
            let r = &mut live[i];
            if rng.gen_bool(0.5) {
                // Action change consistent with the priority↔action tie.
                let a = Action::Forward(r.priority.0 % 5 + 1);
                r.action = a;
                ControlAction::Modify {
                    id: r.id,
                    action: Some(a),
                    priority: None,
                }
            } else {
                let p = Priority(rng.gen_range(1..40));
                r.priority = p;
                r.action = Action::Forward(p.0 % 5 + 1);
                ControlAction::Modify {
                    id: r.id,
                    action: Some(r.action),
                    priority: Some(p),
                }
            }
        };
        hermes.submit(&action, now).expect("hermes op");
        oracle.apply(&action);
        assert_equivalent(
            &hermes,
            &oracle,
            &samples,
            &format!("step {step} after {action:?}"),
        );

        // Periodic Rule Manager tick.
        if step % 7 == 0 {
            hermes.tick(now);
            assert_equivalent(
                &hermes,
                &oracle,
                &samples,
                &format!("step {step} after tick"),
            );
        }
        // Occasional forced migration.
        if step % 97 == 96 {
            hermes.migrate(now);
            assert_equivalent(
                &hermes,
                &oracle,
                &samples,
                &format!("step {step} after migrate"),
            );
        }
    }

    // Final sweep with fresh packets.
    let fresh = sample_packets(&mut rng, 500);
    assert_equivalent(&hermes, &oracle, &fresh, "final");
}

#[test]
fn lockstep_pica8_predictive() {
    run_lockstep(
        1,
        600,
        SwitchModel::pica8_p3290(),
        MigrationTrigger::default(),
    );
}

#[test]
fn lockstep_dell_predictive() {
    run_lockstep(
        2,
        600,
        SwitchModel::dell_8132f(),
        MigrationTrigger::default(),
    );
}

#[test]
fn lockstep_hp_threshold() {
    run_lockstep(
        3,
        600,
        SwitchModel::hp_5406zl(),
        MigrationTrigger::Threshold { fraction: 0.5 },
    );
}

#[test]
fn lockstep_threshold_zero_constant_migration() {
    run_lockstep(
        4,
        400,
        SwitchModel::pica8_p3290(),
        MigrationTrigger::Threshold { fraction: 0.0 },
    );
}

// Satellite oracle: random whole rule *sets* (not op sequences) pushed
// through Hermes — shadow routing, main-table migration and partitioned
// rewrites included — must classify identically to one flat
// priority-ordered table holding the same rules verbatim.
hermes_util::check! {
    #![cases = 256]

    fn random_rule_sets_match_flat_table(
        rules in hermes_util::check::vec_of(
            hermes_util::check::zip3(
                hermes_util::check::arb::<u32>(),
                hermes_util::check::range(8u8..=28),
                hermes_util::check::range(1u32..40),
            ),
            1..48,
        ),
        migrate_every in hermes_util::check::range(1usize..8),
    ) {
        let config = HermesConfig {
            rate_limit: Some(f64::INFINITY),
            ..Default::default()
        };
        let mut hermes = HermesSwitch::new(SwitchModel::pica8_p3290(), config).unwrap();
        let mut flat = TcamTable::new(1 << 14, PlacementStrategy::PackedLow);
        let mut now = SimTime::ZERO;

        for (i, (bits, len, prio)) in rules.iter().enumerate() {
            // Cluster into 10/8 so rules overlap and partitioning kicks in;
            // tie action to priority so the flat table is unambiguous.
            let addr = 0x0a00_0000u32 | (bits >> 8);
            let r = Rule::new(
                i as u64,
                Ipv4Prefix::new(addr, *len).to_key(),
                Priority(*prio),
                Action::Forward(prio % 5 + 1),
            );
            now += SimDuration::from_ms(1.0);
            hermes.insert(r, now).unwrap();
            flat.insert(r).unwrap();
            if i % migrate_every == migrate_every - 1 {
                hermes.migrate(now);
            }
        }

        // Probe inside every rule plus a deterministic spray of addresses.
        for (i, (bits, len, _)) in rules.iter().enumerate() {
            let addr = (0x0a00_0000u32 | (bits >> 8)) & (u32::MAX << (32 - *len as u32));
            let p = pkt(addr | (i as u32 & 0x3f));
            assert_eq!(
                hermes_action(hermes.peek(p)),
                flat.peek(p).map(|r| r.action),
                "divergence inside rule {i}"
            );
        }
        for i in 0..256u32 {
            let p = pkt(0x0a00_0000 | (i.wrapping_mul(2654435761) % (1 << 24)));
            assert_eq!(
                hermes_action(hermes.peek(p)),
                flat.peek(p).map(|r| r.action),
                "divergence on sprayed packet {i}"
            );
        }
    }
}

// Chaos oracle: random workloads driven under random fault plans — write
// failures, silent-drop acks, latency spikes, outage windows — must, once
// the faults clear and the reconciliation audit converges, classify
// identically to a flat priority-ordered table holding the logically-live
// rules. Ops the agent *reported failed* are excluded from the logical
// view (the controller knows they failed); everything it acked — including
// acks the device silently dropped — must survive.
hermes_util::check! {
    #![cases = 256]

    fn chaos_recovers_to_flat_oracle(
        workload_seed in hermes_util::check::arb::<u64>(),
        fault_seed in hermes_util::check::arb::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(workload_seed);
        let config = HermesConfig {
            rate_limit: Some(f64::INFINITY),
            ..Default::default()
        };
        let mut hermes = HermesSwitch::new(SwitchModel::pica8_p3290(), config).unwrap();
        hermes.install_fault_plan(Some(hermes_tcam::FaultPlan::seeded(fault_seed)));
        let mut oracle = TcamTable::new(1 << 14, PlacementStrategy::PackedLow);
        let mut live: Vec<Rule> = Vec::new();
        let mut next_id = 0u64;
        let mut now = SimTime::ZERO;
        let ops = rng.gen_range(30..120);

        for step in 0..ops {
            now += SimDuration::from_ms(rng.gen_range(0.1..5.0));
            let roll: f64 = rng.gen();
            if live.is_empty() || roll < 0.6 {
                let r = gen_rule(&mut rng, next_id);
                next_id += 1;
                // A permanent device failure means the insert never became
                // logically live (partial installs roll back); only acked
                // inserts — deferred ones included — enter the oracle.
                if hermes.insert(r, now).is_ok() {
                    oracle.insert(r).unwrap();
                    live.push(r);
                }
            } else if roll < 0.85 {
                let i = rng.gen_range(0..live.len());
                let r = live.swap_remove(i);
                if hermes.delete(r.id, now).is_ok() {
                    oracle.delete(r.id).unwrap();
                } else {
                    live.push(r);
                }
            } else {
                let i = rng.gen_range(0..live.len());
                let r = &mut live[i];
                // Priority↔action tie as in the lockstep oracle (equal
                // priority ⇒ equal action keeps the flat table unambiguous).
                let p = Priority(rng.gen_range(1..40));
                r.priority = p;
                r.action = Action::Forward(p.0 % 5 + 1);
                let action = ControlAction::Modify {
                    id: r.id,
                    action: Some(r.action),
                    priority: Some(p),
                };
                if hermes.submit(&action, now).is_ok() {
                    let old = *oracle.get(r.id).unwrap();
                    oracle.delete(r.id).unwrap();
                    let mut new_rule = old;
                    new_rule.priority = p;
                    new_rule.action = r.action;
                    oracle.insert(new_rule).unwrap();
                }
            }
            if step % 9 == 8 {
                hermes.tick(now);
            }
            if step % 31 == 30 {
                hermes.migrate(now);
            }
        }

        // Quiescence: the faults clear; the audit must converge to a clean
        // sweep (bounded — one repair pass plus one verification pass is
        // the norm, the slack absorbs pathological plans).
        hermes.install_fault_plan(None);
        let mut converged = false;
        for _ in 0..16 {
            now += SimDuration::from_ms(5.0);
            if hermes.audit(now).clean() {
                converged = true;
                break;
            }
        }
        assert!(converged, "audit failed to converge after faults cleared");

        // Every logically-live rule is still known to the agent…
        for r in &live {
            assert!(hermes.contains(r.id), "acked rule {:?} lost", r.id);
        }
        // …and classification matches the flat table on a deterministic
        // spray over the 10/8 the generator clusters rules into.
        for i in 0..512u32 {
            let p = pkt(0x0a00_0000 | (i.wrapping_mul(2654435761) % (1 << 24)));
            assert_eq!(
                hermes_action(hermes.peek(p)),
                oracle.peek(p).map(|r| r.action),
                "divergence on sprayed packet {i} after recovery"
            );
        }
    }
}

// Crash-chaos oracle: random workloads under *crash-class* fault plans —
// full TCAM wipes, partial state retention, control-session disconnects,
// layered on top of the per-op fault mix — must, once the plan clears and
// the resync engine re-establishes the guarantee, classify identically to
// a flat table of the logically-live rules. Convergence here is stronger
// than the per-op chaos oracle: the Gate Keeper must have exited degraded
// mode and drained every deferred admission, in both warm- and cold-reboot
// modes (picked from the crash seed).
hermes_util::check! {
    #![cases = 256]

    fn chaos_crash_recovers_to_flat_oracle(
        workload_seed in hermes_util::check::arb::<u64>(),
        crash_seed in hermes_util::check::arb::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(workload_seed);
        let mode = if crash_seed % 2 == 0 {
            ResyncMode::Warm
        } else {
            ResyncMode::Cold
        };
        let config = HermesConfig {
            rate_limit: Some(f64::INFINITY),
            resync: ResyncPolicy {
                mode,
                ..ResyncPolicy::default()
            },
            ..Default::default()
        };
        let mut hermes = HermesSwitch::new(SwitchModel::pica8_p3290(), config).unwrap();
        let mut plan = hermes_tcam::FaultPlan::crashy(crash_seed);
        // Crash often enough that nearly every run reboots at least once
        // (the workload issues a few hundred device ops).
        plan.crash_period = 15 + (crash_seed % 20);
        hermes.install_fault_plan(Some(plan));
        let mut oracle = TcamTable::new(1 << 14, PlacementStrategy::PackedLow);
        let mut live: Vec<Rule> = Vec::new();
        let mut next_id = 0u64;
        let mut now = SimTime::ZERO;
        let ops = rng.gen_range(30..120);

        for step in 0..ops {
            now += SimDuration::from_ms(rng.gen_range(0.1..5.0));
            let roll: f64 = rng.gen();
            if live.is_empty() || roll < 0.6 {
                let r = gen_rule(&mut rng, next_id);
                next_id += 1;
                if hermes.insert(r, now).is_ok() {
                    oracle.insert(r).unwrap();
                    live.push(r);
                }
            } else if roll < 0.85 {
                let i = rng.gen_range(0..live.len());
                let r = live.swap_remove(i);
                if hermes.delete(r.id, now).is_ok() {
                    oracle.delete(r.id).unwrap();
                } else {
                    live.push(r);
                }
            } else {
                let i = rng.gen_range(0..live.len());
                let r = &mut live[i];
                let p = Priority(rng.gen_range(1..40));
                r.priority = p;
                r.action = Action::Forward(p.0 % 5 + 1);
                let action = ControlAction::Modify {
                    id: r.id,
                    action: Some(r.action),
                    priority: Some(p),
                };
                if hermes.submit(&action, now).is_ok() {
                    let old = *oracle.get(r.id).unwrap();
                    oracle.delete(r.id).unwrap();
                    let mut new_rule = old;
                    new_rule.priority = p;
                    new_rule.action = r.action;
                    oracle.insert(new_rule).unwrap();
                }
            }
            if step % 9 == 8 {
                hermes.tick(now);
            }
            if step % 31 == 30 {
                hermes.migrate(now);
            }
        }

        // Quiescence: no further faults or crashes. The audit loop drives
        // resync (reconnect → journal → diff replay → re-admission) until
        // a sweep certifies the device AND the guarantee is formally
        // re-established: not degraded, nothing deferred, window closed.
        hermes.install_fault_plan(None);
        let mut converged = false;
        for _ in 0..16 {
            now += SimDuration::from_ms(5.0);
            if hermes.audit(now).clean()
                && !hermes.is_down()
                && !hermes.is_degraded()
                && hermes.deferred_len() == 0
            {
                converged = true;
                break;
            }
        }
        assert!(converged, "resync failed to re-establish the guarantee");
        if hermes.resync_stats().crashes_detected > 0 {
            assert!(
                hermes.resync_stats().resyncs_completed > 0,
                "a detected crash must complete at least one resync"
            );
        }
        // The durable intent store tracks the placed logical set exactly.
        assert_eq!(hermes.intent_len(), hermes.logical_len());

        for r in &live {
            assert!(hermes.contains(r.id), "acked rule {:?} lost", r.id);
        }
        for i in 0..512u32 {
            let p = pkt(0x0a00_0000 | (i.wrapping_mul(2654435761) % (1 << 24)));
            assert_eq!(
                hermes_action(hermes.peek(p)),
                oracle.peek(p).map(|r| r.action),
                "divergence on sprayed packet {i} after crash resync"
            );
        }
    }
}

/// Same fault seed + same workload ⇒ byte-identical metrics document: the
/// whole chaos pipeline (fault decisions, retry jitter, audit repairs) is
/// deterministic, so failures reproduce from `HERMES_FAULT_SEED` alone.
#[test]
fn chaos_run_is_deterministic_from_seed() {
    let run = |fault_seed: u64| -> String {
        let mut rng = StdRng::seed_from_u64(11);
        let config = HermesConfig {
            rate_limit: Some(f64::INFINITY),
            ..Default::default()
        };
        let mut hermes = HermesSwitch::new(SwitchModel::pica8_p3290(), config).unwrap();
        hermes.install_fault_plan(Some(hermes_tcam::FaultPlan::seeded(fault_seed)));
        let mut live: Vec<RuleId> = Vec::new();
        let mut now = SimTime::ZERO;
        for id in 0..300u64 {
            now += SimDuration::from_ms(1.0);
            let r = gen_rule(&mut rng, id);
            if hermes.insert(r, now).is_ok() {
                live.push(r.id);
            }
            if id % 5 == 4 && !live.is_empty() {
                let victim = live.swap_remove((id as usize / 5) % live.len());
                let _ = hermes.delete(victim, now);
            }
            if id % 11 == 10 {
                hermes.tick(now);
            }
        }
        let fault = hermes.fault_stats().expect("plan installed");
        for _ in 0..16 {
            now += SimDuration::from_ms(5.0);
            if hermes.audit(now).clean() {
                break;
            }
        }
        let rec = hermes.recovery_stats();
        use hermes_util::json::{Json, ToJson};
        Json::obj([
            ("ops_seen", fault.ops_seen.to_json()),
            ("write_failures", fault.write_failures.to_json()),
            ("silent_drops", fault.silent_drops.to_json()),
            ("latency_spikes", fault.latency_spikes.to_json()),
            ("outage_rejections", fault.outage_rejections.to_json()),
            ("retries", rec.retries.to_json()),
            ("permanent_failures", rec.permanent_failures.to_json()),
            ("rollbacks", rec.rollbacks.to_json()),
            ("journal_replays", rec.journal_replays.to_json()),
            ("audit_diffs", rec.audit_diffs.to_json()),
            ("reinstalled", rec.reinstalled.to_json()),
            ("orphans_removed", rec.orphans_removed.to_json()),
            ("degraded_entries", rec.degraded_entries.to_json()),
            ("degraded_ns", rec.degraded_ns.to_json()),
            ("shadow_len", (hermes.shadow_len() as u64).to_json()),
            ("main_len", (hermes.main_len() as u64).to_json()),
        ])
        .to_string()
    };
    let a = run(0xC0FFEE);
    let b = run(0xC0FFEE);
    assert_eq!(a, b, "same seed + plan must reproduce byte-for-byte");
    let c = run(0xDECAF);
    assert_ne!(a, c, "different fault seeds should diverge");
}

/// The Fig. 6 scenario, directed: a redundant rule must resurface when the
/// main-table rule that subsumed it is deleted.
#[test]
fn redundant_rule_resurfaces_after_subsumer_deleted() {
    // Disable the §4.2 lowest-priority bypass so the narrow rule takes the
    // shadow path and exercises the redundancy machinery.
    let config = HermesConfig {
        low_priority_bypass: false,
        ..Default::default()
    };
    let mut hermes = HermesSwitch::new(SwitchModel::pica8_p3290(), config).unwrap();
    let now = SimTime::ZERO;

    // Wide high-priority rule, migrated into the main table.
    let wide: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
    let wide_rule = Rule::new(1, wide.to_key(), Priority(10), Action::Forward(1));
    hermes.insert(wide_rule, now).unwrap();
    hermes.migrate(now);
    assert_eq!(hermes.main_len(), 1);

    // Narrow lower-priority rule: wholly subsumed → redundant.
    let narrow: Ipv4Prefix = "10.1.0.0/16".parse().unwrap();
    let narrow_rule = Rule::new(2, narrow.to_key(), Priority(5), Action::Forward(2));
    let rep = hermes.insert(narrow_rule, now).unwrap();
    assert_eq!(rep.route(), Some(Route::Redundant));
    assert_eq!(hermes.shadow_len(), 0, "redundant rule installs nothing");

    let probe = pkt(u32::from_be_bytes([10, 1, 2, 3]));
    assert_eq!(hermes_action(hermes.peek(probe)), Some(Action::Forward(1)));

    // Delete the subsumer: the narrow rule must take over (Fig. 6).
    hermes.delete(RuleId(1), now).unwrap();
    assert_eq!(hermes_action(hermes.peek(probe)), Some(Action::Forward(2)));
    // Outside the narrow prefix nothing matches now.
    let outside = pkt(u32::from_be_bytes([10, 2, 2, 3]));
    assert_eq!(hermes_action(hermes.peek(outside)), None);
}

/// The Fig. 4 walkthrough as an end-to-end test.
#[test]
fn figure4_walkthrough() {
    // Disable the §4.2 bypass: the /24 is the lowest-priority rule and
    // would otherwise legitimately go straight to the main table.
    let config = HermesConfig {
        low_priority_bypass: false,
        ..Default::default()
    };
    let mut hermes = HermesSwitch::new(SwitchModel::pica8_p3290(), config).unwrap();
    let now = SimTime::ZERO;

    // Higher-priority /26 → port 1, migrated to main.
    let hi: Ipv4Prefix = "192.168.1.0/26".parse().unwrap();
    hermes
        .insert(
            Rule::new(1, hi.to_key(), Priority(10), Action::Forward(1)),
            now,
        )
        .unwrap();
    hermes.migrate(now);

    // Lower-priority /24 → port 2 arrives: must be partitioned.
    let lo: Ipv4Prefix = "192.168.1.0/24".parse().unwrap();
    let rep = hermes
        .insert(
            Rule::new(2, lo.to_key(), Priority(1), Action::Forward(2)),
            now,
        )
        .unwrap();
    match rep.detail {
        ReportDetail::Insert { route, pieces, .. } => {
            assert_eq!(route, Route::Shadow);
            assert_eq!(pieces, 2, "the /24 splits into .64/26 and .128/25");
        }
        other => panic!("unexpected detail {other:?}"),
    }

    // 192.168.1.5 is inside the /26: port 1 despite the shadow-first lookup.
    assert_eq!(
        hermes_action(hermes.peek(pkt(u32::from_be_bytes([192, 168, 1, 5])))),
        Some(Action::Forward(1))
    );
    // 192.168.1.200 is outside the /26: port 2.
    assert_eq!(
        hermes_action(hermes.peek(pkt(u32::from_be_bytes([192, 168, 1, 200])))),
        Some(Action::Forward(2))
    );
}
