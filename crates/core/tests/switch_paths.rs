//! Directed coverage of HermesSwitch's less-travelled paths: eviction
//! fallbacks, incremental narrowing, error surfaces, modification
//! variants, Equation-2 accounting and warm-up resets.

use hermes_core::gatekeeper::Route;
use hermes_core::prelude::*;
use hermes_rules::fields::DST_SHIFT;
use hermes_rules::prelude::*;
use hermes_tcam::{SimDuration, SimTime, SwitchModel};

fn rule(id: u64, pfx: &str, prio: u32, port: u32) -> Rule {
    let p: Ipv4Prefix = pfx.parse().unwrap();
    Rule::new(id, p.to_key(), Priority(prio), Action::Forward(port))
}

fn pkt(addr: &str) -> u128 {
    let p: Ipv4Prefix = format!("{addr}/32").parse().unwrap();
    (p.addr() as u128) << DST_SHIFT
}

fn switch() -> HermesSwitch {
    let config = HermesConfig {
        rate_limit: Some(f64::INFINITY),
        low_priority_bypass: false,
        ..Default::default()
    };
    HermesSwitch::new(SwitchModel::pica8_p3290(), config).unwrap()
}

#[test]
fn error_surfaces() {
    let mut sw = switch();
    let now = SimTime::ZERO;
    // Id out of the logical range.
    let bad = rule(1 << 62, "10.0.0.0/8", 5, 1);
    assert_eq!(sw.insert(bad, now), Err(HermesError::IdOutOfRange(bad.id)));
    // Duplicate id.
    sw.insert(rule(1, "10.0.0.0/8", 5, 1), now).unwrap();
    assert_eq!(
        sw.insert(rule(1, "11.0.0.0/8", 5, 1), now),
        Err(HermesError::Duplicate(RuleId(1)))
    );
    // Unknown deletes and modifies.
    assert_eq!(
        sw.delete(RuleId(404), now),
        Err(HermesError::NotFound(RuleId(404)))
    );
    assert_eq!(
        sw.modify(RuleId(404), Some(Action::Drop), None, now),
        Err(HermesError::NotFound(RuleId(404)))
    );
}

#[test]
fn modify_with_no_changes_is_cheap_noop() {
    let mut sw = switch();
    let now = SimTime::ZERO;
    sw.insert(rule(1, "10.0.0.0/8", 5, 1), now).unwrap();
    let rep = sw.modify(RuleId(1), None, None, now).unwrap();
    assert!(rep.latency < SimDuration::from_ms(0.1));
    assert_eq!(sw.get(RuleId(1)).unwrap().action, Action::Forward(1));
}

#[test]
fn modify_same_priority_is_in_place() {
    let mut sw = switch();
    let now = SimTime::ZERO;
    sw.insert(rule(1, "10.0.0.0/8", 5, 1), now).unwrap();
    // Passing the *same* priority value must not trigger delete+insert.
    let rep = sw
        .modify(RuleId(1), Some(Action::Drop), Some(Priority(5)), now)
        .unwrap();
    match rep.detail {
        ReportDetail::Modify { in_place } => assert!(in_place),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(sw.get(RuleId(1)).unwrap().action, Action::Drop);
}

#[test]
fn action_modify_rewrites_every_partition_piece() {
    let mut sw = switch();
    let now = SimTime::ZERO;
    // Higher-priority main rule to force a cut.
    sw.insert(rule(1, "10.0.0.0/26", 50, 1), now).unwrap();
    sw.migrate(now);
    let rep = sw.insert(rule(2, "10.0.0.0/24", 5, 2), now).unwrap();
    assert!(matches!(
        rep.detail,
        ReportDetail::Insert {
            route: Route::Shadow,
            pieces: 2,
            ..
        }
    ));
    sw.modify(RuleId(2), Some(Action::Forward(9)), None, now)
        .unwrap();
    // Both pieces answer with the new action.
    assert_eq!(
        sw.peek(pkt("10.0.0.100")).rule().unwrap().action,
        Action::Forward(9)
    );
    assert_eq!(
        sw.peek(pkt("10.0.0.200")).rule().unwrap().action,
        Action::Forward(9)
    );
    // The cut-out region still answers with the main rule.
    assert_eq!(
        sw.peek(pkt("10.0.0.5")).rule().unwrap().action,
        Action::Forward(1)
    );
}

#[test]
fn narrowing_on_direct_main_insert() {
    // A shadow rule must shrink when a higher-priority overlapping rule
    // lands directly in the main table (over-rate path).
    let config = HermesConfig {
        rate_limit: Some(0.000001), // bucket empties immediately
        low_priority_bypass: false,
        ..Default::default()
    };
    let mut sw = HermesSwitch::new(SwitchModel::pica8_p3290(), config).unwrap();
    let now = SimTime::ZERO;
    // First insert goes to shadow.
    let r1 = sw.insert(rule(1, "10.0.0.0/24", 5, 1), now).unwrap();
    assert_eq!(r1.route(), Some(Route::Shadow));
    // Exhaust the admission bucket with disjoint fillers.
    for i in 0..100u64 {
        sw.insert(rule(100 + i, &format!("42.{}.0.0/16", i), 10, 3), now)
            .unwrap();
    }
    // Now a higher-priority rule overlapping rule 1 arrives over-rate → main.
    let r2 = sw.insert(rule(2, "10.0.0.0/26", 50, 2), now).unwrap();
    assert_eq!(r2.route(), Some(Route::MainOverRate));
    // The narrow region must now answer with the main rule.
    assert_eq!(
        sw.peek(pkt("10.0.0.5")).rule().unwrap().action,
        Action::Forward(2)
    );
    assert_eq!(
        sw.peek(pkt("10.0.0.200")).rule().unwrap().action,
        Action::Forward(1)
    );
}

#[test]
fn eviction_when_shadow_cannot_hold_partitions() {
    // A tiny shadow forces the repartition fallback: the rule moves to the
    // main table and stays semantically correct.
    let config = HermesConfig {
        shadow_size: Some(3),
        rate_limit: Some(f64::INFINITY),
        low_priority_bypass: false,
        max_partitions: 3,
        ..Default::default()
    };
    let mut sw = HermesSwitch::new(SwitchModel::pica8_p3290(), config).unwrap();
    let now = SimTime::ZERO;
    // Wide low-priority rule in shadow (fits: 1 piece).
    sw.insert(rule(1, "10.0.0.0/16", 5, 1), now).unwrap();
    // Two higher-priority punctures land in main (each over the shadow's
    // piece budget when cut, or directly): force narrowing until eviction.
    for (i, pfx) in ["10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24"]
        .iter()
        .enumerate()
    {
        let _ = sw.insert(rule(10 + i as u64, pfx, 50, 9), now);
        sw.migrate(now);
    }
    // Semantics regardless of where rule 1 ended up.
    assert_eq!(
        sw.peek(pkt("10.0.1.7")).rule().unwrap().action,
        Action::Forward(9)
    );
    assert_eq!(
        sw.peek(pkt("10.0.9.7")).rule().unwrap().action,
        Action::Forward(1)
    );
    assert!(sw.contains(RuleId(1)));
}

#[test]
fn logical_accessors_and_eq2_accounting() {
    let mut sw = switch();
    let now = SimTime::ZERO;
    assert_eq!(sw.logical_len(), 0);
    sw.insert(rule(1, "10.0.0.0/8", 5, 1), now).unwrap();
    sw.insert(rule(2, "11.0.0.0/8", 6, 1), now).unwrap();
    assert_eq!(sw.logical_len(), 2);
    assert_eq!(sw.logical_rules().len(), 2);
    assert!(sw.max_supported_rate() > 0.0);
    assert!(sw.overhead_fraction() > 0.0 && sw.overhead_fraction() <= 0.5);
    // r_p starts at 1 with uncut rules.
    assert!((sw.stats().expected_partitions() - 1.0).abs() < 1e-9);
    sw.migrate(now);
    assert_eq!(sw.logical_len(), 2);
    assert_eq!(sw.shadow_len(), 0);
    assert_eq!(sw.main_len(), 2);
}

#[test]
fn end_warmup_refills_admission() {
    let config = HermesConfig {
        rate_limit: Some(10.0),
        ..Default::default()
    };
    let mut sw = HermesSwitch::new(SwitchModel::pica8_p3290(), config).unwrap();
    let now = SimTime::ZERO;
    // Drain the bucket.
    let mut over_rate = 0;
    for i in 0..100u64 {
        let rep = sw
            .insert(rule(i, &format!("10.{}.0.0/16", i), 5 + i as u32, 1), now)
            .unwrap();
        if rep.route() == Some(Route::MainOverRate) {
            over_rate += 1;
        }
    }
    assert!(over_rate > 0, "bucket should have drained");
    sw.end_warmup();
    let rep = sw.insert(rule(1000, "99.0.0.0/8", 5000, 1), now).unwrap();
    assert_eq!(
        rep.route(),
        Some(Route::Shadow),
        "bucket refilled after warmup"
    );
}

#[test]
fn set_predicate_changes_routing() {
    let mut sw = switch();
    let now = SimTime::ZERO;
    sw.set_predicate(RulePredicate::DstWithin("10.0.0.0/8".parse().unwrap()));
    let in_scope = sw.insert(rule(1, "10.1.0.0/16", 5, 1), now).unwrap();
    let out_scope = sw.insert(rule(2, "42.0.0.0/8", 5, 1), now).unwrap();
    assert_eq!(in_scope.route(), Some(Route::Shadow));
    assert_eq!(out_scope.route(), Some(Route::MainUnmatched));
}

#[test]
fn priority_change_preserves_logical_identity_and_semantics() {
    let mut sw = switch();
    let now = SimTime::ZERO;
    sw.insert(rule(1, "10.0.0.0/24", 5, 1), now).unwrap();
    sw.insert(rule(2, "10.0.0.0/26", 9, 2), now).unwrap();
    // Overlap region answers with rule 2 (higher priority).
    assert_eq!(sw.peek(pkt("10.0.0.5")).rule().unwrap().id, RuleId(2));
    // Flip the priorities via modification.
    sw.modify(RuleId(1), None, Some(Priority(20)), now).unwrap();
    assert_eq!(sw.peek(pkt("10.0.0.5")).rule().unwrap().id, RuleId(1));
    assert_eq!(sw.get(RuleId(1)).unwrap().priority, Priority(20));
    assert_eq!(sw.logical_len(), 2);
}

#[test]
fn admit_batch_matches_sequential_inserts() {
    let mut batched = switch();
    let mut seq = switch();
    let now = SimTime::ZERO;
    // A main-resident blocker so one batch member gets cut.
    for sw in [&mut batched, &mut seq] {
        sw.insert(rule(1, "10.0.0.0/26", 50, 1), now).unwrap();
        sw.migrate(now);
    }
    let batch = vec![
        rule(2, "10.0.0.0/24", 5, 2), // cut against rule 1
        rule(3, "11.0.0.0/8", 6, 3),  // intact
        rule(4, "12.0.0.0/8", 7, 4),  // intact
    ];
    let breps = batched.admit_batch(&batch, now);
    let sreps: Vec<_> = batch.iter().map(|r| seq.insert(*r, now)).collect();
    let mut btotal = SimDuration::ZERO;
    let mut stotal = SimDuration::ZERO;
    for (b, s) in breps.iter().zip(&sreps) {
        let b = b.as_ref().unwrap();
        let s = s.as_ref().unwrap();
        assert_eq!(b.route(), s.route(), "routes diverge");
        btotal += b.latency;
        stotal += s.latency;
    }
    assert!(
        btotal < stotal,
        "batch must amortize the handshake: {btotal} vs {stotal}"
    );
    assert_eq!(batched.logical_len(), seq.logical_len());
    assert_eq!(batched.shadow_len(), seq.shadow_len());
    assert_eq!(batched.main_len(), seq.main_len());
    for addr in ["10.0.0.5", "10.0.0.200", "11.1.2.3", "12.1.2.3", "9.9.9.9"] {
        assert_eq!(
            batched.peek(pkt(addr)).rule().map(|r| (r.id, r.action)),
            seq.peek(pkt(addr)).rule().map(|r| (r.id, r.action)),
            "lookup diverged at {addr}"
        );
    }
}

#[test]
fn admit_batch_validates_per_slot() {
    let mut sw = switch();
    let now = SimTime::ZERO;
    sw.insert(rule(1, "10.0.0.0/8", 5, 1), now).unwrap();
    let batch = vec![
        rule(1, "11.0.0.0/8", 5, 1),       // already installed
        rule(2, "12.0.0.0/8", 6, 1),       // fine
        rule(2, "13.0.0.0/8", 7, 1),       // intra-batch duplicate
        rule(1 << 62, "14.0.0.0/8", 8, 1), // id out of the logical range
    ];
    let reps = sw.admit_batch(&batch, now);
    assert_eq!(reps[0], Err(HermesError::Duplicate(RuleId(1))));
    assert!(reps[1].is_ok());
    assert_eq!(reps[2], Err(HermesError::Duplicate(RuleId(2))));
    assert!(matches!(reps[3], Err(HermesError::IdOutOfRange(_))));
    assert_eq!(sw.logical_len(), 2);
}

#[test]
fn admit_batch_flushes_before_main_landings() {
    // A mid-batch rule routed to the main table must see the earlier
    // shadow-bound rules fully installed (the Fig. 6 re-cut depends on
    // it). MainUnmatched via a narrowed predicate provides the divert.
    let mut sw = switch();
    sw.set_predicate(RulePredicate::DstWithin("10.0.0.0/8".parse().unwrap()));
    let now = SimTime::ZERO;
    let batch = vec![
        rule(1, "10.1.0.0/24", 5, 1),  // shadow-bound
        rule(2, "10.1.0.0/26", 50, 2), // shadow-bound, higher priority
        rule(3, "42.0.0.0/8", 99, 3),  // unmatched → main, flushes first
        rule(4, "10.2.0.0/16", 7, 4),  // second shadow transaction
    ];
    let reps = sw.admit_batch(&batch, now);
    assert_eq!(reps[0].as_ref().unwrap().route(), Some(Route::Shadow));
    assert_eq!(reps[2].as_ref().unwrap().route(), Some(Route::MainUnmatched));
    assert_eq!(reps[3].as_ref().unwrap().route(), Some(Route::Shadow));
    assert_eq!(sw.logical_len(), 4);
    // Overlap region answers with the higher-priority rule 2.
    assert_eq!(sw.peek(pkt("10.1.0.5")).rule().unwrap().id, RuleId(2));
    assert_eq!(sw.peek(pkt("10.1.0.200")).rule().unwrap().id, RuleId(1));
    assert_eq!(sw.peek(pkt("42.1.2.3")).rule().unwrap().id, RuleId(3));
}

#[test]
fn batched_migration_matches_per_rule_pass() {
    let mk = |batched: bool| {
        let config = HermesConfig {
            rate_limit: Some(f64::INFINITY),
            low_priority_bypass: false,
            batched_migration: batched,
            ..Default::default()
        };
        HermesSwitch::new(SwitchModel::pica8_p3290(), config).unwrap()
    };
    let mut fast = mk(true);
    let mut slow = mk(false);
    let now = SimTime::ZERO;
    for sw in [&mut fast, &mut slow] {
        // A blocker in main, then a spread of shadow residents (one cut).
        sw.insert(rule(1, "10.0.0.0/26", 50, 1), now).unwrap();
        sw.migrate(now);
        sw.insert(rule(2, "10.0.0.0/24", 5, 2), now).unwrap();
        for i in 0..6u64 {
            sw.insert(
                rule(10 + i, &format!("2{i}.0.0.0/8"), 20 + i as u32, 3),
                now,
            )
            .unwrap();
        }
    }
    let frep = fast.migrate(now);
    let srep = slow.migrate(now);
    assert_eq!(frep.rules_migrated, srep.rules_migrated);
    assert_eq!(frep.entries_written, srep.entries_written);
    assert_eq!(frep.pieces_deleted, srep.pieces_deleted);
    assert_eq!(frep.entries_saved, srep.entries_saved);
    assert!(
        frep.duration < srep.duration,
        "batched drain must amortize the handshake: {} vs {}",
        frep.duration,
        srep.duration
    );
    assert_eq!(fast.shadow_len(), 0);
    assert_eq!(fast.main_len(), slow.main_len());
    for addr in ["10.0.0.5", "10.0.0.200", "20.1.2.3", "25.1.2.3", "9.9.9.9"] {
        assert_eq!(
            fast.peek(pkt(addr)).rule().map(|r| (r.id, r.action)),
            slow.peek(pkt(addr)).rule().map(|r| (r.id, r.action)),
            "lookup diverged at {addr}"
        );
    }
}

#[test]
fn migration_report_accounts_for_optimization() {
    let mut sw = switch();
    let now = SimTime::ZERO;
    // A main rule that forces cuts.
    sw.insert(rule(1, "10.0.0.0/25", 50, 1), now).unwrap();
    sw.migrate(now);
    // A rule that splits into 1+ pieces.
    sw.insert(rule(2, "10.0.0.0/24", 5, 2), now).unwrap();
    let report = sw.migrate(now);
    assert_eq!(report.rules_migrated, 1);
    assert_eq!(
        report.entries_written, 1,
        "the original replaces its pieces"
    );
    assert!(report.pieces_deleted >= 1);
    assert!(report.duration > SimDuration::ZERO);
}
