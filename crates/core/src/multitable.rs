//! Multi-table pipelines (§6, "Supporting Multiple TCAM Tables").
//!
//! Modern switches expose several TCAM tables chained into a match-action
//! pipeline. Hermes "addresses this evolution by independently carving
//! each TCAM table to support a shadow and a main table", which also lets
//! different tables carry *different guarantees* — attractive when tables
//! serve radically different functions (e.g. an ACL table that must absorb
//! security rules within 2 ms next to a routing table content with 10 ms).
//!
//! To preserve the original pipeline semantics, each logical table's
//! *main* slice keeps the original table-miss behaviour (goto-next /
//! punt / drop), while every shadow slice keeps Hermes's own
//! "goto the main table" fall-through.

use crate::config::HermesConfig;
use crate::manager::MigrationReport;
use crate::switch::{ActionReport, HermesError, HermesStats, HermesSwitch};
use hermes_rules::prelude::*;
use hermes_tcam::{LookupResult, MissBehavior, SimTime, SwitchModel};

/// Configuration of one logical pipeline table.
#[derive(Clone, Debug)]
pub struct TableSpec {
    /// Hermes configuration for this table (guarantee, predicate, trigger…).
    pub config: HermesConfig,
    /// Fraction of the ASIC's TCAM capacity assigned to this table.
    pub capacity_share: f64,
    /// The original table's miss behaviour, preserved by the carving.
    pub miss: MissBehavior,
}

impl TableSpec {
    /// An even-share table with the given config and goto-next miss.
    pub fn new(config: HermesConfig) -> Self {
        TableSpec {
            config,
            capacity_share: 0.0,
            miss: MissBehavior::GotoNextSlice,
        }
    }
}

/// A Hermes-managed multi-table pipeline: one independently carved
/// shadow/main pair per logical table.
#[derive(Debug)]
pub struct MultiTableHermes {
    tables: Vec<HermesSwitch>,
    misses: Vec<MissBehavior>,
}

impl MultiTableHermes {
    /// Builds the pipeline over one ASIC. Tables with `capacity_share`
    /// of 0 split the remaining capacity evenly.
    pub fn new(model: SwitchModel, specs: Vec<TableSpec>) -> Result<Self, HermesError> {
        assert!(!specs.is_empty(), "a pipeline needs at least one table");
        let explicit: f64 = specs.iter().map(|s| s.capacity_share).sum();
        assert!(explicit <= 1.0 + 1e-9, "capacity shares exceed the ASIC");
        let unspecified = specs.iter().filter(|s| s.capacity_share == 0.0).count();
        let default_share = if unspecified > 0 {
            (1.0 - explicit) / unspecified as f64
        } else {
            0.0
        };
        let mut tables = Vec::with_capacity(specs.len());
        let mut misses = Vec::with_capacity(specs.len());
        for spec in specs {
            let share = if spec.capacity_share > 0.0 {
                spec.capacity_share
            } else {
                default_share
            };
            let mut sub_model = model.clone();
            sub_model.capacity = ((model.capacity as f64) * share).floor() as usize;
            if sub_model.capacity < 4 {
                return Err(HermesError::InfeasibleGuarantee);
            }
            tables.push(HermesSwitch::new(sub_model, spec.config)?);
            misses.push(spec.miss);
        }
        Ok(MultiTableHermes { tables, misses })
    }

    /// Number of logical tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Borrow a logical table's agent.
    pub fn table(&self, idx: usize) -> &HermesSwitch {
        &self.tables[idx]
    }

    /// Mutably borrow a logical table's agent.
    pub fn table_mut(&mut self, idx: usize) -> &mut HermesSwitch {
        &mut self.tables[idx]
    }

    /// Submits a control action targeted at one logical table (the
    /// Broadcom-SDK "group" targeting of §6).
    pub fn submit(
        &mut self,
        table: usize,
        action: &ControlAction,
        now: SimTime,
    ) -> Result<ActionReport, HermesError> {
        self.tables[table].submit(action, now)
    }

    /// Ticks every table's Rule Manager.
    pub fn tick(&mut self, now: SimTime) -> Vec<Option<MigrationReport>> {
        self.tables.iter_mut().map(|t| t.tick(now)).collect()
    }

    /// Full-pipeline lookup: tables are traversed in order; a match whose
    /// action is [`Action::GotoNextTable`] continues, any other match
    /// terminates; a miss follows the *original* table's miss behaviour.
    pub fn lookup(&mut self, packet: u128) -> LookupResult {
        for i in 0..self.tables.len() {
            match self.tables[i].lookup(packet) {
                LookupResult::Matched { rule, slice } => {
                    if rule.action == Action::GotoNextTable {
                        continue;
                    }
                    return LookupResult::Matched { rule, slice };
                }
                // A miss within a table already honoured the shadow→main
                // fall-through; what reaches us is the logical table miss.
                _ => match self.misses[i] {
                    MissBehavior::GotoNextSlice => continue,
                    MissBehavior::Drop => return LookupResult::Dropped,
                    MissBehavior::ToController => return LookupResult::ToController,
                },
            }
        }
        LookupResult::ToController
    }

    /// Lookup without statistics.
    pub fn peek(&self, packet: u128) -> LookupResult {
        for i in 0..self.tables.len() {
            match self.tables[i].peek(packet) {
                LookupResult::Matched { rule, slice } => {
                    if rule.action == Action::GotoNextTable {
                        continue;
                    }
                    return LookupResult::Matched { rule, slice };
                }
                _ => match self.misses[i] {
                    MissBehavior::GotoNextSlice => continue,
                    MissBehavior::Drop => return LookupResult::Dropped,
                    MissBehavior::ToController => return LookupResult::ToController,
                },
            }
        }
        LookupResult::ToController
    }

    /// Per-table statistics.
    pub fn stats(&self) -> Vec<HermesStats> {
        self.tables.iter().map(|t| t.stats()).collect()
    }

    /// Total TCAM overhead across tables, as a fraction of the ASIC.
    pub fn overhead_fraction(&self, model: &SwitchModel) -> f64 {
        let shadow_total: usize = self.tables.iter().map(|t| t.shadow_capacity()).sum();
        shadow_total as f64 / model.capacity as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_tcam::SimDuration;

    fn pipeline() -> MultiTableHermes {
        // ACL table (tight 2 ms guarantee, falls through on miss) +
        // routing table (10 ms, punts on miss).
        let model = SwitchModel::pica8_p3290();
        MultiTableHermes::new(
            model,
            vec![
                TableSpec {
                    config: HermesConfig::with_guarantee(SimDuration::from_ms(2.0)),
                    capacity_share: 0.25,
                    miss: MissBehavior::GotoNextSlice,
                },
                TableSpec {
                    config: HermesConfig::with_guarantee(SimDuration::from_ms(10.0)),
                    capacity_share: 0.75,
                    miss: MissBehavior::ToController,
                },
            ],
        )
        .unwrap()
    }

    fn rule(id: u64, pfx: &str, prio: u32, action: Action) -> Rule {
        let p: Ipv4Prefix = pfx.parse().unwrap();
        Rule::new(id, p.to_key(), Priority(prio), action)
    }

    fn pkt(s: &str) -> u128 {
        let p: Ipv4Prefix = format!("{s}/32").parse().unwrap();
        (p.addr() as u128) << 96
    }

    #[test]
    fn per_table_guarantees_differ() {
        let p = pipeline();
        assert_eq!(p.table_count(), 2);
        assert_eq!(p.table(0).config().guarantee, SimDuration::from_ms(2.0));
        assert_eq!(p.table(1).config().guarantee, SimDuration::from_ms(10.0));
        // Tighter guarantee → smaller shadow (both nonzero).
        assert!(p.table(0).shadow_capacity() > 0);
        assert!(p.table(1).shadow_capacity() > 0);
    }

    #[test]
    fn pipeline_lookup_semantics() {
        let mut p = pipeline();
        let now = SimTime::ZERO;
        // ACL: drop traffic to 10.9.0.0/16, pass the rest through.
        p.submit(
            0,
            &ControlAction::Insert(rule(1, "10.9.0.0/16", 10, Action::Drop)),
            now,
        )
        .unwrap();
        // Routing: forward 10.0.0.0/8 to port 7.
        p.submit(
            1,
            &ControlAction::Insert(rule(2, "10.0.0.0/8", 5, Action::Forward(7))),
            now,
        )
        .unwrap();

        // Blocked by ACL.
        assert_eq!(p.lookup(pkt("10.9.1.1")).action(), Some(Action::Drop));
        // Passes ACL (miss → goto next), routed by table 1.
        assert_eq!(p.lookup(pkt("10.1.2.3")).action(), Some(Action::Forward(7)));
        // Misses everything: table 1's original punt behaviour.
        assert_eq!(p.lookup(pkt("99.9.9.9")), LookupResult::ToController);
    }

    #[test]
    fn goto_next_table_action_chains() {
        let mut p = pipeline();
        let now = SimTime::ZERO;
        // An ACL "accept" rule that explicitly sends to the next table.
        p.submit(
            0,
            &ControlAction::Insert(rule(1, "10.0.0.0/8", 10, Action::GotoNextTable)),
            now,
        )
        .unwrap();
        p.submit(
            1,
            &ControlAction::Insert(rule(2, "10.0.0.0/8", 5, Action::Forward(3))),
            now,
        )
        .unwrap();
        assert_eq!(p.lookup(pkt("10.1.1.1")).action(), Some(Action::Forward(3)));
    }

    #[test]
    fn guarantees_hold_per_table() {
        let mut p = pipeline();
        let mut now = SimTime::ZERO;
        for i in 0..200u64 {
            now += SimDuration::from_ms(20.0);
            let r = rule(
                1000 + i,
                &format!("10.{}.{}.0/24", i % 200, (i * 7) % 250),
                20 + (i % 50) as u32,
                Action::Forward(1),
            );
            let report = p
                .submit((i % 2) as usize, &ControlAction::Insert(r), now)
                .unwrap();
            if matches!(report.route(), Some(crate::gatekeeper::Route::Shadow)) {
                let bound = p.table((i % 2) as usize).config().guarantee;
                assert!(report.latency <= bound, "table {} broke its bound", i % 2);
            }
            p.tick(now);
        }
        let stats = p.stats();
        assert_eq!(stats[0].violations, 0);
        assert_eq!(stats[1].violations, 0);
    }

    #[test]
    fn overhead_sums_across_tables() {
        let model = SwitchModel::pica8_p3290();
        let p = pipeline();
        let overhead = p.overhead_fraction(&model);
        assert!(overhead > 0.0 && overhead < 0.2, "overhead {overhead}");
    }

    #[test]
    fn even_split_for_unspecified_shares() {
        let model = SwitchModel::pica8_p3290();
        let p = MultiTableHermes::new(
            model.clone(),
            vec![
                TableSpec::new(HermesConfig::default()),
                TableSpec::new(HermesConfig::default()),
                TableSpec::new(HermesConfig::default()),
                TableSpec::new(HermesConfig::default()),
            ],
        )
        .unwrap();
        assert_eq!(p.table_count(), 4);
        // Each table's device capacity ≈ a quarter of the ASIC.
        for i in 0..4 {
            let cap = p.table(i).device().model().capacity;
            assert!((cap as f64 - model.capacity as f64 / 4.0).abs() <= 1.0);
        }
    }

    #[test]
    fn drop_miss_behaviour_respected() {
        let model = SwitchModel::pica8_p3290();
        let mut p = MultiTableHermes::new(
            model,
            vec![TableSpec {
                config: HermesConfig::default(),
                capacity_share: 1.0,
                miss: MissBehavior::Drop,
            }],
        )
        .unwrap();
        assert_eq!(p.lookup(pkt("1.2.3.4")), LookupResult::Dropped);
    }
}
