//! The Gate Keeper (§3): classification and admission control.
//!
//! Every `flow-mod` reaching the switch passes through the Gate Keeper,
//! which decides where the action lands:
//!
//! * rules matching the QoS predicate go to the **shadow table** (and get
//!   the guarantee), unless
//! * they arrive faster than the agreed rate (token bucket) — then the
//!   overflow is serviced from the **main table** ("When the controller
//!   sends actions faster than the guaranteed rate, Hermes uses the main
//!   table"), or
//! * they are lowest-priority rules, which insert cheaply anyway and would
//!   fragment the most (§4.2's optimization), or
//! * the shadow table cannot hold their partitions.

use crate::config::RulePredicate;
use hermes_rules::prelude::*;
use hermes_tcam::SimTime;

/// A standard token bucket for admission control.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// A bucket refilling at `rate` tokens/s, holding at most `burst`.
    pub fn new(rate: f64, burst: f64) -> Self {
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last: SimTime::ZERO,
        }
    }

    /// Refills for elapsed time and tries to take `n` tokens.
    pub fn try_take(&mut self, now: SimTime, n: f64) -> bool {
        let elapsed = now.since(self.last).as_secs();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.rate).min(self.burst);
        if self.tokens >= n {
            self.tokens -= n;
            true
        } else {
            false
        }
    }

    /// Current token level (for tests/telemetry).
    pub fn tokens(&self) -> f64 {
        self.tokens
    }

    /// The configured refill rate (tokens/s).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Replaces the refill rate, keeping the current level.
    pub fn set_rate(&mut self, rate: f64) {
        self.rate = rate;
    }
}

/// Where the Gate Keeper routed an insertion, and why.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// Into the shadow table, under the guarantee.
    Shadow,
    /// Into the main table: the rule does not match the QoS predicate.
    MainUnmatched,
    /// Into the main table: lowest-priority insertion optimization (§4.2).
    MainLowPriority,
    /// Into the main table: the controller exceeded the agreed rate.
    MainOverRate,
    /// Into the main table: the rule would fragment into too many
    /// partitions (§4.2 footnote).
    MainTooFragmented,
    /// Into the main table: the shadow table had no room for the
    /// partitions — a guarantee violation if the rule was entitled to one.
    MainShadowFull,
    /// Installed nothing: wholly subsumed by higher-priority main rules
    /// (Fig. 5(a)); logically present, physically redundant.
    Redundant,
    /// Queued by the Gate Keeper's degraded mode: the control channel is
    /// unavailable, so the admission is applied once it recovers (drained
    /// by the next tick or audit).
    Deferred,
}

impl Route {
    /// `true` when the rule was serviced from the shadow table.
    pub fn is_shadow(&self) -> bool {
        matches!(self, Route::Shadow)
    }

    /// `true` when the route indicates the guarantee could not be honoured
    /// for a rule that was entitled to it.
    pub fn breaks_guarantee(&self) -> bool {
        matches!(self, Route::MainShadowFull)
    }

    /// The telemetry counter tallying this route (DESIGN.md
    /// "Observability": `gatekeeper.route_<decision>`).
    pub fn metric_name(&self) -> &'static str {
        match self {
            Route::Shadow => "gatekeeper.route_shadow",
            Route::MainUnmatched => "gatekeeper.route_main_unmatched",
            Route::MainLowPriority => "gatekeeper.route_main_low_priority",
            Route::MainOverRate => "gatekeeper.route_main_over_rate",
            Route::MainTooFragmented => "gatekeeper.route_main_too_fragmented",
            Route::MainShadowFull => "gatekeeper.route_main_shadow_full",
            Route::Redundant => "gatekeeper.route_redundant",
            Route::Deferred => "gatekeeper.route_deferred",
        }
    }

    /// Bumps this route's telemetry counter (no-op while disabled).
    pub fn record(&self) {
        // hermes-lint: allow(R10, reason = "dispatch through metric_name(); all eight gatekeeper.route_* literals above are in the registry")
        hermes_telemetry::counter(self.metric_name(), 1);
    }
}

/// The Gate Keeper: predicate + token bucket.
#[derive(Clone, Debug)]
pub struct GateKeeper {
    predicate: RulePredicate,
    bucket: Option<TokenBucket>,
    max_partitions: usize,
    low_priority_bypass: bool,
}

impl GateKeeper {
    /// Builds a Gate Keeper. `rate_limit` of `None` disables admission
    /// control (every qualifying rule may use the shadow).
    pub fn new(
        predicate: RulePredicate,
        rate_limit: Option<(f64, f64)>,
        max_partitions: usize,
    ) -> Self {
        GateKeeper {
            predicate,
            bucket: rate_limit.map(|(rate, burst)| TokenBucket::new(rate, burst)),
            max_partitions,
            low_priority_bypass: true,
        }
    }

    /// Enables or disables the §4.2 lowest-priority bypass.
    pub fn set_low_priority_bypass(&mut self, enabled: bool) {
        self.low_priority_bypass = enabled;
    }

    /// Does the rule qualify for the guarantee at all?
    pub fn qualifies(&self, rule: &Rule) -> bool {
        self.predicate.matches(rule)
    }

    /// First-stage routing decision, before partitioning: predicate,
    /// low-priority bypass, and rate limiting.
    ///
    /// `lowest_live_priority` is the minimum priority across both tables
    /// (`None` when both are empty).
    pub fn pre_route(
        &mut self,
        rule: &Rule,
        now: SimTime,
        lowest_live_priority: Option<Priority>,
    ) -> Option<Route> {
        if !self.predicate.matches(rule) {
            return Some(Route::MainUnmatched);
        }
        // §4.2: lowest-priority rules append to the main table without any
        // shifting, and are exactly the rules that fragment worst.
        if self.low_priority_bypass
            && (rule.priority.is_none()
                || lowest_live_priority
                    .map(|p| rule.priority <= p)
                    .unwrap_or(false))
        {
            return Some(Route::MainLowPriority);
        }
        if let Some(bucket) = &mut self.bucket {
            if !bucket.try_take(now, 1.0) {
                return Some(Route::MainOverRate);
            }
        }
        None // proceed to partitioning + shadow placement
    }

    /// First-stage routing for a whole batch of admissions sharing one
    /// arrival instant (the batched control-plane pipeline).
    ///
    /// Equivalent to calling [`GateKeeper::pre_route`] once per rule in
    /// submission order: the token bucket drains in that order, so earlier
    /// rules in the slice win the remaining tokens. `lowest_live_priority`
    /// is a snapshot taken before the batch — the §4.2 bypass does not
    /// re-evaluate against rules admitted earlier in the same batch (a
    /// deliberate, documented deviation that keeps the decision
    /// order-independent of intra-batch placement).
    pub fn admit_batch(
        &mut self,
        rules: &[Rule],
        now: SimTime,
        lowest_live_priority: Option<Priority>,
    ) -> Vec<Option<Route>> {
        rules
            .iter()
            .map(|r| self.pre_route(r, now, lowest_live_priority))
            .collect()
    }

    /// Second-stage decision, after partitioning: fragmentation and
    /// capacity checks.
    pub fn post_route(&self, pieces: usize, shadow_free: usize) -> Route {
        if pieces == 0 {
            Route::Redundant
        } else if pieces > self.max_partitions {
            Route::MainTooFragmented
        } else if pieces > shadow_free {
            Route::MainShadowFull
        } else {
            Route::Shadow
        }
    }

    /// Updates the admission rate (e.g. after `ModQoSConfig` re-sizes the
    /// shadow table).
    pub fn set_rate(&mut self, rate: Option<(f64, f64)>) {
        self.bucket = rate.map(|(r, b)| TokenBucket::new(r, b));
    }

    /// The configured admission rate, if any.
    pub fn rate(&self) -> Option<f64> {
        self.bucket.as_ref().map(|b| b.rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_tcam::SimDuration;

    fn rule(pfx: &str, prio: u32) -> Rule {
        let p: Ipv4Prefix = pfx.parse().unwrap();
        Rule::new(1, p.to_key(), Priority(prio), Action::Drop)
    }

    #[test]
    fn bucket_takes_and_refills() {
        let mut b = TokenBucket::new(10.0, 5.0);
        let t0 = SimTime::ZERO;
        for _ in 0..5 {
            assert!(b.try_take(t0, 1.0));
        }
        assert!(!b.try_take(t0, 1.0), "bucket exhausted");
        // After 0.5s at 10 tokens/s, 5 tokens are back.
        let t1 = t0 + SimDuration::from_ms(500.0);
        for _ in 0..5 {
            assert!(b.try_take(t1, 1.0));
        }
        assert!(!b.try_take(t1, 1.0));
    }

    #[test]
    fn bucket_caps_at_burst() {
        let mut b = TokenBucket::new(1000.0, 3.0);
        let later = SimTime::from_secs(100.0);
        assert!(b.try_take(later, 3.0));
        assert!(!b.try_take(later, 1.0));
    }

    #[test]
    fn pre_route_unmatched_goes_to_main() {
        let mut gk = GateKeeper::new(
            RulePredicate::DstWithin("10.0.0.0/8".parse().unwrap()),
            None,
            16,
        );
        let r = rule("11.0.0.0/8", 5);
        assert_eq!(
            gk.pre_route(&r, SimTime::ZERO, None),
            Some(Route::MainUnmatched)
        );
    }

    #[test]
    fn pre_route_low_priority_bypass() {
        let mut gk = GateKeeper::new(RulePredicate::All, None, 16);
        // No-priority rule bypasses regardless.
        assert_eq!(
            gk.pre_route(&rule("10.0.0.0/8", 0), SimTime::ZERO, Some(Priority(5))),
            Some(Route::MainLowPriority)
        );
        // Priority at-or-below the live minimum bypasses.
        assert_eq!(
            gk.pre_route(&rule("10.0.0.0/8", 5), SimTime::ZERO, Some(Priority(5))),
            Some(Route::MainLowPriority)
        );
        // Higher priority proceeds to the shadow path.
        assert_eq!(
            gk.pre_route(&rule("10.0.0.0/8", 6), SimTime::ZERO, Some(Priority(5))),
            None
        );
        // Empty tables: no bypass (nothing to shift anywhere, shadow keeps
        // the guarantee bookkeeping simple).
        assert_eq!(
            gk.pre_route(&rule("10.0.0.0/8", 6), SimTime::ZERO, None),
            None
        );
    }

    #[test]
    fn pre_route_rate_limit() {
        let mut gk = GateKeeper::new(RulePredicate::All, Some((10.0, 2.0)), 16);
        let r = rule("10.0.0.0/8", 9);
        let t = SimTime::ZERO;
        assert_eq!(gk.pre_route(&r, t, Some(Priority(1))), None);
        assert_eq!(gk.pre_route(&r, t, Some(Priority(1))), None);
        assert_eq!(
            gk.pre_route(&r, t, Some(Priority(1))),
            Some(Route::MainOverRate)
        );
    }

    #[test]
    fn admit_batch_matches_sequential_pre_route() {
        let mk = || GateKeeper::new(RulePredicate::All, Some((10.0, 2.0)), 16);
        let rules = vec![
            rule("10.0.0.0/8", 9),
            rule("11.0.0.0/8", 8),
            rule("12.0.0.0/8", 7), // third insert exceeds the 2-token burst
            rule("13.0.0.0/8", 0), // low-priority bypass, no token taken
        ];
        let mut batch_gk = mk();
        let got = batch_gk.admit_batch(&rules, SimTime::ZERO, Some(Priority(1)));
        let mut seq_gk = mk();
        let want: Vec<_> = rules
            .iter()
            .map(|r| seq_gk.pre_route(r, SimTime::ZERO, Some(Priority(1))))
            .collect();
        assert_eq!(got, want);
        assert_eq!(
            got,
            vec![
                None,
                None,
                Some(Route::MainOverRate),
                Some(Route::MainLowPriority)
            ]
        );
        assert_eq!(batch_gk.bucket.as_ref().unwrap().tokens(), 0.0);
    }

    #[test]
    fn post_route_decisions() {
        let gk = GateKeeper::new(RulePredicate::All, None, 4);
        assert_eq!(gk.post_route(0, 10), Route::Redundant);
        assert_eq!(gk.post_route(5, 10), Route::MainTooFragmented);
        assert_eq!(gk.post_route(3, 2), Route::MainShadowFull);
        assert_eq!(gk.post_route(3, 3), Route::Shadow);
    }

    #[test]
    fn route_flags() {
        assert!(Route::Shadow.is_shadow());
        assert!(!Route::MainOverRate.is_shadow());
        assert!(Route::MainShadowFull.breaks_guarantee());
        assert!(!Route::MainOverRate.breaks_guarantee());
    }
}
