//! Recovery subsystem: retry, journaling and degraded-mode state.
//!
//! The fault model (see `crates/tcam::fault`) lets the control channel
//! transiently reject ops, go dark for whole windows, and *lie* — ack an
//! op it never applied. Recovery keeps the shadow/main lookup-equivalence
//! invariant in three layers:
//!
//! 1. **Per-op retry** ([`RetryPolicy`]): capped exponential backoff with
//!    deterministic jitter; the backoff time is charged against the
//!    latency guarantee, so a retried insert can still violate its bound
//!    honestly.
//! 2. **Transaction journal** ([`RecoveryState::pending_gc`]): physical
//!    deletes that exhausted their retries are journaled and replayed
//!    idempotently (a replay finding the entry already gone simply drops
//!    the journal entry) — a failed migration or rollback never strands
//!    TCAM entries permanently.
//! 3. **Reconciliation audit** (`HermesSwitch::audit`): diffs the
//!    controller's logical bookkeeping against the device slices,
//!    re-installing silently-dropped entries, deleting orphans and fixing
//!    action drift. The controller's bookkeeping is the source of truth
//!    of *intent*; the audit makes the device converge to it.
//!
//! On top sits **degraded mode**: after `degraded_threshold` consecutive
//! retry-exhausted ops the Gate Keeper stops hammering the dead channel
//! and queues admissions ([`RecoveryState::deferred`]); the first
//! successful device op ends the episode and queued admissions drain on
//! the next tick/audit. Time spent degraded is accounted in
//! [`RecoveryStats::degraded_ns`].

use hermes_rules::prelude::*;
use hermes_tcam::{SimDuration, SimTime};
use hermes_util::rng::{Rng, SeedableRng, StdRng};

/// Fixed seed for retry jitter: recovery must be deterministic so chaos
/// runs reproduce byte-for-byte from the fault seed alone.
const JITTER_STREAM_SALT: u64 = 0x4845_524d_4553_0001;

/// Per-op retry policy: capped exponential backoff with jitter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per device op (first try + retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: SimDuration,
    /// Backoff ceiling.
    pub max_backoff: SimDuration,
    /// Jitter as a ± fraction of the backoff (`0.2` = ±20%).
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: SimDuration::from_us(500.0),
            max_backoff: SimDuration::from_ms(5.0),
            jitter: 0.2,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based), jittered.
    pub fn backoff(&self, attempt: u32, rng: &mut StdRng) -> SimDuration {
        let exp = attempt.saturating_sub(1).min(16);
        let base = (self.base_backoff * (1u64 << exp)).min(self.max_backoff);
        if self.jitter <= 0.0 {
            return base;
        }
        let factor = rng.gen_range((1.0 - self.jitter)..(1.0 + self.jitter));
        base.mul_f64(factor)
    }
}

/// Lifetime health counters for the recovery subsystem.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Device ops retried after a transient failure.
    pub retries: u64,
    /// Transient device failures observed (each retry attempt counts).
    pub transient_failures: u64,
    /// Device ops that exhausted their retry budget.
    pub permanent_failures: u64,
    /// Partial installs rolled back after a mid-transaction failure.
    pub rollbacks: u64,
    /// Journaled physical deletes replayed successfully.
    pub journal_replays: u64,
    /// Admissions queued by degraded mode.
    pub deferred: u64,
    /// Queued admissions later applied.
    pub deferred_flushed: u64,
    /// Queued admissions dropped (e.g. the table filled meanwhile).
    pub deferred_dropped: u64,
    /// Reconciliation audits run.
    pub audits: u64,
    /// Total divergences found by audits (missing + orphan + action drift).
    pub audit_diffs: u64,
    /// Silently-dropped entries re-installed by audits.
    pub reinstalled: u64,
    /// Orphan physical entries garbage-collected by audits.
    pub orphans_removed: u64,
    /// Action/priority drift repaired in place by audits.
    pub actions_fixed: u64,
    /// Times degraded mode was entered.
    pub degraded_entries: u64,
    /// Total simulated nanoseconds spent in degraded mode.
    pub degraded_ns: u64,
}

/// Outcome of one `HermesSwitch::audit` reconciliation sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Journaled deletes replayed at the start of the sweep.
    pub journal_replayed: usize,
    /// Expected entries found missing on the device and re-installed.
    pub reinstalled: usize,
    /// Device entries with no logical owner, deleted.
    pub orphans_removed: usize,
    /// Entries whose action or priority drifted, repaired.
    pub actions_fixed: usize,
    /// Shadow rules evicted to the main table because the shadow could not
    /// hold their re-installed pieces.
    pub evicted: usize,
    /// Queued degraded-mode admissions applied at the end of the sweep.
    pub deferred_flushed: usize,
    /// Control-plane time the sweep consumed.
    pub duration: SimDuration,
    /// `false` when some repair op itself failed and state may still
    /// diverge; run another sweep.
    pub complete: bool,
}

impl AuditReport {
    /// Divergences found between the logical view and the device.
    pub fn diffs(&self) -> usize {
        self.reinstalled + self.orphans_removed + self.actions_fixed
    }

    /// `true` when the sweep found nothing to fix and finished fully: the
    /// device provably matches the logical view.
    pub fn clean(&self) -> bool {
        self.complete
            && self.diffs() == 0
            && self.journal_replayed == 0
            && self.evicted == 0
            && self.deferred_flushed == 0
    }
}

/// Mutable recovery state carried by a `HermesSwitch`.
#[derive(Debug)]
pub struct RecoveryState {
    /// The retry policy in force.
    pub policy: RetryPolicy,
    /// Consecutive retry-exhausted ops that trip degraded mode.
    pub degraded_threshold: u32,
    /// Health counters.
    pub stats: RecoveryStats,
    /// Journal of physical deletes awaiting idempotent replay:
    /// `(slice, physical rule id)`.
    pub pending_gc: Vec<(usize, RuleId)>,
    /// Admissions queued while degraded, in arrival order.
    pub deferred: Vec<Rule>,
    rng: StdRng,
    consecutive_failures: u32,
    degraded_since: Option<SimTime>,
}

impl RecoveryState {
    /// Builds recovery state for a policy.
    pub fn new(policy: RetryPolicy, degraded_threshold: u32) -> Self {
        RecoveryState {
            policy,
            degraded_threshold: degraded_threshold.max(1),
            stats: RecoveryStats::default(),
            pending_gc: Vec::new(),
            deferred: Vec::new(),
            rng: StdRng::seed_from_u64(JITTER_STREAM_SALT),
            consecutive_failures: 0,
            degraded_since: None,
        }
    }

    /// Jittered backoff before retry `attempt` (1-based). The returned
    /// span is charged against the latency guarantee by the caller.
    pub fn backoff(&mut self, attempt: u32) -> SimDuration {
        let b = self.policy.backoff(attempt, &mut self.rng);
        if hermes_telemetry::enabled() {
            hermes_telemetry::counter("recovery.retries", 1);
            hermes_telemetry::observe("recovery.backoff_ns", b.as_nanos());
        }
        b
    }

    /// Currently in degraded mode?
    pub fn is_degraded(&self) -> bool {
        self.degraded_since.is_some()
    }

    /// A device op succeeded: reset the failure streak and, if degraded,
    /// recover (accounting the episode's duration).
    pub fn on_success(&mut self, now: SimTime) {
        self.consecutive_failures = 0;
        if let Some(since) = self.degraded_since.take() {
            let episode = now.since(since).as_nanos();
            self.stats.degraded_ns += episode;
            hermes_telemetry::counter("recovery.degraded_ns", episode);
        }
    }

    /// Forces degraded mode immediately — the crash path: a lost control
    /// session is known-dead, so there is no point counting a failure
    /// streak before queuing admissions.
    pub fn enter_degraded(&mut self, now: SimTime) {
        self.consecutive_failures = self.degraded_threshold;
        if self.degraded_since.is_none() {
            self.degraded_since = Some(now);
            self.stats.degraded_entries += 1;
            hermes_telemetry::counter("recovery.degraded_entries", 1);
        }
    }

    /// A device op exhausted its retries: extend the failure streak and
    /// enter degraded mode at the threshold.
    pub fn on_permanent_failure(&mut self, now: SimTime) {
        self.stats.permanent_failures += 1;
        self.consecutive_failures += 1;
        hermes_telemetry::counter("recovery.permanent_failures", 1);
        if self.consecutive_failures >= self.degraded_threshold && self.degraded_since.is_none() {
            self.degraded_since = Some(now);
            self.stats.degraded_entries += 1;
            hermes_telemetry::counter("recovery.degraded_entries", 1);
        }
    }

    /// Queues an admission while degraded.
    pub fn defer(&mut self, rule: Rule) {
        self.stats.deferred += 1;
        hermes_telemetry::counter("recovery.deferred", 1);
        self.deferred.push(rule);
    }

    /// Total degraded time including a still-open episode.
    pub fn degraded_ns_total(&self, now: SimTime) -> u64 {
        self.stats.degraded_ns
            + self
                .degraded_since
                .map(|s| now.since(s).as_nanos())
                .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(policy.backoff(1, &mut rng), SimDuration::from_us(500.0));
        assert_eq!(policy.backoff(2, &mut rng), SimDuration::from_ms(1.0));
        assert_eq!(policy.backoff(3, &mut rng), SimDuration::from_ms(2.0));
        assert_eq!(policy.backoff(4, &mut rng), SimDuration::from_ms(4.0));
        assert_eq!(policy.backoff(5, &mut rng), SimDuration::from_ms(5.0));
        assert_eq!(policy.backoff(60, &mut rng), SimDuration::from_ms(5.0));
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let policy = RetryPolicy::default();
        let mut rng = StdRng::seed_from_u64(2);
        for attempt in 1..6 {
            let b = policy.backoff(attempt, &mut rng);
            let nominal = policy
                .base_backoff
                .mul_f64(f64::from(1u32 << (attempt - 1)))
                .min(policy.max_backoff);
            assert!(b >= nominal.mul_f64(0.8 - 1e-9) && b <= nominal.mul_f64(1.2 + 1e-9));
        }
    }

    #[test]
    fn degraded_entry_exit_accounting() {
        let mut rs = RecoveryState::new(RetryPolicy::default(), 2);
        assert!(!rs.is_degraded());
        rs.on_permanent_failure(SimTime::from_ms(10.0));
        assert!(!rs.is_degraded());
        rs.on_permanent_failure(SimTime::from_ms(20.0));
        assert!(rs.is_degraded());
        assert_eq!(rs.stats.degraded_entries, 1);
        // Still counts while open.
        assert_eq!(
            rs.degraded_ns_total(SimTime::from_ms(25.0)),
            SimDuration::from_ms(5.0).as_nanos()
        );
        rs.on_success(SimTime::from_ms(30.0));
        assert!(!rs.is_degraded());
        assert_eq!(rs.stats.degraded_ns, SimDuration::from_ms(10.0).as_nanos());
        // A lone failure after recovery does not re-trip.
        rs.on_permanent_failure(SimTime::from_ms(40.0));
        assert!(!rs.is_degraded());
    }

    #[test]
    fn clean_report_requires_everything_quiet() {
        let mut r = AuditReport {
            complete: true,
            ..AuditReport::default()
        };
        assert!(r.clean());
        r.reinstalled = 1;
        assert!(!r.clean());
        r.reinstalled = 0;
        r.complete = false;
        assert!(!r.clean());
    }
}
