//! Prediction-error correctors (§5.1).
//!
//! Predictors err, and under-prediction is dangerous: the shadow table
//! overflows and the guarantee breaks. Hermes counteracts this with simple
//! control-theoretic inflation of the prediction:
//!
//! * **Slack** multiplies the prediction by `1 + s` (a slack of 40% turns a
//!   prediction of 1000 rules into 1400);
//! * **Deadzone** adds a constant (a deadzone of 100 turns 1000 into 1100).
//!
//! The evaluation (§8.6) finds Slack (combined with Cubic Spline) most
//! effective, with 100% slack needed at 1000 updates/s.


/// A correction applied on top of a raw prediction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Corrector {
    /// No correction.
    None,
    /// Multiplicative inflation: `pred · (1 + factor)`. `factor` is the
    /// slack fraction, e.g. `0.4` for 40%.
    Slack(f64),
    /// Additive inflation: `pred + margin` rules.
    Deadzone(f64),
}

impl Corrector {
    /// Applies the correction.
    pub fn apply(&self, prediction: f64) -> f64 {
        match self {
            Corrector::None => prediction,
            Corrector::Slack(s) => prediction * (1.0 + s),
            Corrector::Deadzone(d) => prediction + d,
        }
    }

    /// Short name for experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Corrector::None => "None",
            Corrector::Slack(_) => "Slack",
            Corrector::Deadzone(_) => "Deadzone",
        }
    }
}

impl std::fmt::Display for Corrector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Corrector::None => write!(f, "None"),
            Corrector::Slack(s) => write!(f, "Slack({:.0}%)", s * 100.0),
            Corrector::Deadzone(d) => write!(f, "Deadzone(+{d:.0})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples() {
        // §5.1: prediction 1000, slack 40% → 1400; deadzone 100 → 1100.
        assert_eq!(Corrector::Slack(0.4).apply(1000.0), 1400.0);
        assert_eq!(Corrector::Deadzone(100.0).apply(1000.0), 1100.0);
        assert_eq!(Corrector::None.apply(1000.0), 1000.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Corrector::Slack(1.0).to_string(), "Slack(100%)");
        assert_eq!(Corrector::Deadzone(50.0).to_string(), "Deadzone(+50)");
        assert_eq!(Corrector::None.to_string(), "None");
    }
}
