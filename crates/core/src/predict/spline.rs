//! Natural cubic-spline extrapolation predictor \[34\].
//!
//! Fits a natural cubic spline through the last `k` observations (at
//! abscissae 0..k−1) and evaluates the extension one step past the end.
//! Beyond the final knot a natural spline continues with the end slope, so
//! the prediction is `y_last + y'(last)` — a trend-following estimate that
//! reacts much faster than EWMA, which is why the paper's evaluation picks
//! Cubic Spline (+Slack) as the default (§8.6).

use super::Predictor;
use std::collections::VecDeque;

/// Cubic-spline predictor over a sliding window.
#[derive(Clone, Debug)]
pub struct CubicSpline {
    window: VecDeque<f64>,
    k: usize,
}

impl CubicSpline {
    /// Creates a predictor with a window of `k ≥ 3` points.
    ///
    /// # Panics
    /// Panics when `k < 3` (a cubic spline needs at least 3 knots).
    pub fn new(k: usize) -> Self {
        assert!(k >= 3, "spline window {k} < 3");
        CubicSpline {
            window: VecDeque::with_capacity(k + 1),
            k,
        }
    }

    /// Second derivatives `M` of the natural cubic spline through
    /// `(0, y0) .. (n-1, y_{n-1})` with unit spacing, via the Thomas
    /// tridiagonal solve. `M\[0\] = M[n-1] = 0` (natural boundary).
    fn second_derivatives(y: &[f64]) -> Vec<f64> {
        let n = y.len();
        debug_assert!(n >= 3);
        // Interior equations: M[i-1] + 4 M[i] + M[i+1] = 6 (y[i-1] - 2 y[i] + y[i+1])
        let m_inner = n - 2;
        let mut c_prime = vec![0.0; m_inner];
        let mut d_prime = vec![0.0; m_inner];
        for i in 0..m_inner {
            let rhs = 6.0 * (y[i] - 2.0 * y[i + 1] + y[i + 2]);
            if i == 0 {
                c_prime[i] = 1.0 / 4.0;
                d_prime[i] = rhs / 4.0;
            } else {
                let denom = 4.0 - c_prime[i - 1];
                c_prime[i] = 1.0 / denom;
                d_prime[i] = (rhs - d_prime[i - 1]) / denom;
            }
        }
        let mut m = vec![0.0; n];
        if m_inner > 0 {
            m[m_inner] = d_prime[m_inner - 1];
            for i in (0..m_inner.saturating_sub(1)).rev() {
                m[i + 1] = d_prime[i] - c_prime[i] * m[i + 2];
            }
        }
        m
    }

    /// First derivative of the spline at the last knot.
    fn end_slope(y: &[f64]) -> f64 {
        let n = y.len();
        let m = Self::second_derivatives(y);
        // On the last interval [n-2, n-1] with h=1:
        // y'(x_{n-1}) = (y_{n-1} - y_{n-2}) + h/6 * (M_{n-2} + 2 M_{n-1})
        (y[n - 1] - y[n - 2]) + (m[n - 2] + 2.0 * m[n - 1]) / 6.0
    }
}

impl Predictor for CubicSpline {
    fn observe(&mut self, value: f64) {
        self.window.push_back(value);
        while self.window.len() > self.k {
            self.window.pop_front();
        }
    }

    fn predict(&self) -> f64 {
        let n = self.window.len();
        match n {
            0 => 0.0,
            1 => self.window[0].max(0.0),
            2 => {
                // Linear extrapolation from two points.
                let y0 = self.window[0];
                let y1 = self.window[1];
                (y1 + (y1 - y0)).max(0.0)
            }
            _ => {
                let y: Vec<f64> = self.window.iter().copied().collect();
                let last = y[n - 1];
                (last + Self::end_slope(&y)).max(0.0)
            }
        }
    }

    fn name(&self) -> &'static str {
        "CubicSpline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_tiny_windows() {
        let mut s = CubicSpline::new(5);
        assert_eq!(s.predict(), 0.0);
        s.observe(7.0);
        assert_eq!(s.predict(), 7.0);
        s.observe(9.0);
        assert_eq!(s.predict(), 11.0); // linear: 9 + (9-7)
    }

    #[test]
    fn constant_series() {
        let mut s = CubicSpline::new(6);
        for _ in 0..10 {
            s.observe(5.0);
        }
        assert!((s.predict() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn linear_series_extrapolates_exactly() {
        let mut s = CubicSpline::new(8);
        for t in 0..8 {
            s.observe(3.0 * t as f64 + 1.0);
        }
        // Natural spline through collinear points is the line itself.
        assert!((s.predict() - (3.0 * 8.0 + 1.0)).abs() < 1e-6);
    }

    #[test]
    fn accelerating_series_predicted_above_last() {
        let mut s = CubicSpline::new(8);
        for t in 0..8u32 {
            s.observe((t * t) as f64);
        }
        let pred = s.predict();
        assert!(
            pred > 49.0,
            "quadratic growth must predict above last (49): {pred}"
        );
    }

    #[test]
    fn window_slides() {
        let mut s = CubicSpline::new(3);
        for v in [100.0, 100.0, 100.0, 1.0, 1.0, 1.0] {
            s.observe(v);
        }
        // Only the final three 1.0s are in the window.
        assert!((s.predict() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prediction_never_negative() {
        let mut s = CubicSpline::new(4);
        for v in [100.0, 50.0, 10.0, 0.0] {
            s.observe(v);
        }
        assert!(s.predict() >= 0.0);
    }

    #[test]
    fn second_derivative_solver_matches_manual_3pt() {
        // For 3 points the single interior equation is
        // M0 + 4 M1 + M2 = 6(y0 - 2 y1 + y2), M0 = M2 = 0.
        let y = [0.0, 1.0, 4.0];
        let m = CubicSpline::second_derivatives(&y);
        let expect = 6.0 * (0.0 - 2.0 + 4.0) / 4.0;
        assert!((m[1] - expect).abs() < 1e-12);
        assert_eq!(m[0], 0.0);
        assert_eq!(m[2], 0.0);
    }
}
