//! Exponentially weighted moving average predictor \[46\].

use super::Predictor;

/// EWMA: `s ← α·x + (1−α)·s`. Smooth, cheap, but lags trends — exactly the
/// behaviour that motivates the paper's preference for Cubic Spline (§8.6).
#[derive(Clone, Debug)]
pub struct Ewma {
    alpha: f64,
    state: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics on an out-of-range `alpha`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha {alpha} out of (0,1]");
        Ewma { alpha, state: None }
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Predictor for Ewma {
    fn observe(&mut self, value: f64) {
        self.state = Some(match self.state {
            None => value,
            Some(s) => self.alpha * value + (1.0 - self.alpha) * s,
        });
    }

    fn predict(&self) -> f64 {
        self.state.unwrap_or(0.0).max(0.0)
    }

    fn name(&self) -> &'static str {
        "EWMA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_seeds_state() {
        let mut e = Ewma::new(0.5);
        e.observe(10.0);
        assert_eq!(e.predict(), 10.0);
    }

    #[test]
    fn smooths_toward_new_values() {
        let mut e = Ewma::new(0.5);
        e.observe(0.0);
        e.observe(10.0);
        assert_eq!(e.predict(), 5.0);
        e.observe(10.0);
        assert_eq!(e.predict(), 7.5);
    }

    #[test]
    fn alpha_one_tracks_exactly() {
        let mut e = Ewma::new(1.0);
        e.observe(3.0);
        e.observe(9.0);
        assert_eq!(e.predict(), 9.0);
    }

    #[test]
    fn negative_values_clamped_at_predict() {
        let mut e = Ewma::new(1.0);
        e.observe(-5.0);
        assert_eq!(e.predict(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of (0,1]")]
    fn rejects_bad_alpha() {
        Ewma::new(0.0);
    }
}
