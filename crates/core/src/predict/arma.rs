//! Autoregressive moving-average predictor \[63\].
//!
//! A pragmatic ARMA(p, q≤1) over a sliding window: the AR coefficients are
//! re-fit on every prediction via Yule–Walker (Levinson–Durbin recursion on
//! the sample autocovariances), and the MA component is approximated by a
//! lag-1 residual correction with a moment-estimated θ. This matches how
//! ARMA is typically deployed for online rate prediction — a full MLE fit
//! per interval would dwarf the cost of the migration it schedules.

use super::Predictor;
use std::collections::VecDeque;

/// ARMA predictor over a sliding window.
#[derive(Clone, Debug)]
pub struct Arma {
    p: usize,
    q: usize,
    window: VecDeque<f64>,
    cap: usize,
}

impl Arma {
    /// Creates an ARMA(p, q) predictor with the given window capacity.
    ///
    /// # Panics
    /// Panics when `p == 0`, `q > 1`, or the window cannot hold `p + 2`
    /// points.
    pub fn new(p: usize, q: usize, window: usize) -> Self {
        assert!(p >= 1, "AR order must be >= 1");
        assert!(q <= 1, "only MA order 0 or 1 is supported");
        assert!(window >= p + 2, "window {window} too small for AR({p})");
        Arma {
            p,
            q,
            window: VecDeque::with_capacity(window + 1),
            cap: window,
        }
    }

    /// Sample autocovariance at lag `k` of mean-removed data.
    fn autocov(y: &[f64], mean: f64, k: usize) -> f64 {
        let n = y.len();
        (0..n - k)
            .map(|i| (y[i] - mean) * (y[i + k] - mean))
            .sum::<f64>()
            / n as f64
    }

    /// Levinson–Durbin recursion: AR(p) coefficients from autocovariances
    /// `r[0..=p]`. Returns `phi[1..=p]` as a vector of length `p`.
    fn levinson_durbin(r: &[f64], p: usize) -> Vec<f64> {
        let mut phi = vec![0.0; p + 1];
        let mut prev = vec![0.0; p + 1];
        let mut e = r[0];
        if e.abs() < 1e-12 {
            return vec![0.0; p];
        }
        for k in 1..=p {
            let mut acc = r[k];
            for j in 1..k {
                acc -= prev[j] * r[k - j];
            }
            let kappa = acc / e;
            phi[k] = kappa;
            for j in 1..k {
                phi[j] = prev[j] - kappa * prev[k - j];
            }
            e *= 1.0 - kappa * kappa;
            if e <= 1e-12 {
                e = 1e-12;
            }
            prev[..=k].copy_from_slice(&phi[..=k]);
        }
        phi[1..=p].to_vec()
    }

    /// One-step AR prediction at position `t` (uses `y[t-1]`, …, `y[t-p]`),
    /// in mean-removed space.
    fn ar_pred(y: &[f64], mean: f64, phi: &[f64], t: usize) -> f64 {
        phi.iter()
            .enumerate()
            .map(|(i, &c)| c * (y[t - 1 - i] - mean))
            .sum::<f64>()
    }
}

impl Predictor for Arma {
    fn observe(&mut self, value: f64) {
        self.window.push_back(value);
        while self.window.len() > self.cap {
            self.window.pop_front();
        }
    }

    fn predict(&self) -> f64 {
        let y: Vec<f64> = self.window.iter().copied().collect();
        let n = y.len();
        if n == 0 {
            return 0.0;
        }
        if n < self.p + 2 {
            return y[n - 1].max(0.0);
        }
        let mean = y.iter().sum::<f64>() / n as f64;
        let r: Vec<f64> = (0..=self.p).map(|k| Self::autocov(&y, mean, k)).collect();
        if r[0].abs() < 1e-12 {
            // Constant series.
            return mean.max(0.0);
        }
        let phi = Self::levinson_durbin(&r, self.p);
        let mut pred = mean + Self::ar_pred(&y, mean, &phi, n);

        if self.q == 1 && n > self.p + 2 {
            // Residuals of the fitted AR over the window.
            let resid: Vec<f64> = (self.p..n)
                .map(|t| (y[t] - mean) - Self::ar_pred(&y, mean, &phi, t))
                .collect();
            if resid.len() >= 3 {
                let rn = resid.len() as f64;
                let var = resid.iter().map(|e| e * e).sum::<f64>() / rn;
                if var > 1e-12 {
                    let cov1 = resid.windows(2).map(|w| w[0] * w[1]).sum::<f64>() / rn;
                    // Moment estimate of θ from lag-1 residual correlation,
                    // clamped for invertibility.
                    let theta = (cov1 / var).clamp(-0.9, 0.9);
                    pred += theta * resid[resid.len() - 1];
                }
            }
        }
        pred.max(0.0)
    }

    fn name(&self) -> &'static str {
        "ARMA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_predicts_zero() {
        let a = Arma::new(2, 1, 16);
        assert_eq!(a.predict(), 0.0);
    }

    #[test]
    fn short_history_repeats_last() {
        let mut a = Arma::new(2, 1, 16);
        a.observe(4.0);
        a.observe(6.0);
        assert_eq!(a.predict(), 6.0);
    }

    #[test]
    fn constant_series_predicted() {
        let mut a = Arma::new(2, 1, 16);
        for _ in 0..16 {
            a.observe(20.0);
        }
        assert!((a.predict() - 20.0).abs() < 1e-6);
    }

    #[test]
    fn ar1_process_learned() {
        // Mean-reverting AR(1): y_{t+1} = μ + 0.8 (y_t − μ), μ = 50.
        let mut a = Arma::new(1, 0, 32);
        let mu = 50.0;
        let mut v = 100.0;
        for _ in 0..32 {
            a.observe(v);
            v = mu + 0.8 * (v - mu);
        }
        // The series has essentially converged to μ; the prediction must
        // land near it rather than near the early transient.
        let pred = a.predict();
        assert!((pred - v).abs() < 5.0, "pred {pred} vs truth {v}");
    }

    #[test]
    fn levinson_recovers_ar1_coefficient() {
        // For an AR(1) with coefficient φ, autocovariances satisfy
        // r[k] = φ^k r[0].
        let r = [1.0, 0.7, 0.49];
        let phi = Arma::levinson_durbin(&r, 1);
        assert!((phi[0] - 0.7).abs() < 1e-9);
        let phi2 = Arma::levinson_durbin(&r, 2);
        assert!((phi2[0] - 0.7).abs() < 1e-9);
        assert!(
            phi2[1].abs() < 1e-9,
            "AR(2) second coef should vanish: {}",
            phi2[1]
        );
    }

    #[test]
    fn prediction_is_finite_on_noisy_input() {
        use hermes_util::rng::{Rng, SeedableRng};
        let mut rng = hermes_util::rng::rngs::StdRng::seed_from_u64(5);
        let mut a = Arma::new(2, 1, 32);
        for _ in 0..200 {
            a.observe(rng.gen_range(0.0..1000.0));
            let p = a.predict();
            assert!(p.is_finite() && p >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "AR order")]
    fn rejects_zero_order() {
        Arma::new(0, 0, 8);
    }
}
