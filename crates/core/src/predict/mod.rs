//! Workload prediction (§5.1).
//!
//! Hermes migrates rules out of the shadow table *before* it overflows. To
//! know when, the Rule Manager feeds a time series of observed rule-arrival
//! rates into a predictor and asks for the next interval's rate. The paper
//! explores three predictors — EWMA, Cubic Spline and ARMA — plus two
//! control-theoretic error correctors — Slack (multiplicative inflation)
//! and Deadzone (additive inflation) — and settles on Cubic Spline + Slack.
//!
//! All predictors implement [`Predictor`]; correctors are composed on top
//! via [`Corrector`]. [`PredictorKind`] provides uniform construction for
//! the sensitivity sweeps of §8.6.

mod arma;
mod corrector;
mod ewma;
mod spline;

pub use arma::Arma;
pub use corrector::Corrector;
pub use ewma::Ewma;
pub use spline::CubicSpline;

/// A one-step-ahead time-series predictor over rule arrival rates.
pub trait Predictor: Send {
    /// Feeds one observation (e.g. rules that arrived in the last interval).
    fn observe(&mut self, value: f64);

    /// Predicts the next interval's value. Implementations return a
    /// non-negative value; with no history they return 0.
    fn predict(&self) -> f64;

    /// Short human-readable name for experiment output.
    fn name(&self) -> &'static str;
}

/// Uniform constructor for the predictor portfolio (used by the §8.6
/// sensitivity experiments).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PredictorKind {
    /// Exponentially weighted moving average.
    Ewma,
    /// Natural cubic-spline extrapolation (the paper's pick).
    CubicSpline,
    /// Autoregressive moving average.
    Arma,
}

impl PredictorKind {
    /// Builds a predictor with the defaults used in the evaluation.
    pub fn build(&self) -> Box<dyn Predictor> {
        match self {
            PredictorKind::Ewma => Box::new(Ewma::new(0.3)),
            PredictorKind::CubicSpline => Box::new(CubicSpline::new(8)),
            PredictorKind::Arma => Box::new(Arma::new(2, 1, 32)),
        }
    }

    /// All predictor kinds, for sweeps.
    pub fn all() -> [PredictorKind; 3] {
        [
            PredictorKind::Ewma,
            PredictorKind::CubicSpline,
            PredictorKind::Arma,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_build_and_name() {
        for kind in PredictorKind::all() {
            let mut p = kind.build();
            assert_eq!(p.predict(), 0.0, "{}: no-history prediction", p.name());
            for v in [10.0, 12.0, 11.0, 13.0] {
                p.observe(v);
            }
            let pred = p.predict();
            assert!(pred.is_finite() && pred >= 0.0, "{}: {pred}", p.name());
        }
    }

    #[test]
    fn constant_series_predicted_exactly() {
        for kind in PredictorKind::all() {
            let mut p = kind.build();
            for _ in 0..50 {
                p.observe(42.0);
            }
            let pred = p.predict();
            assert!(
                (pred - 42.0).abs() < 1.0,
                "{}: constant series predicted as {pred}",
                p.name()
            );
        }
    }

    #[test]
    fn spline_tracks_linear_trend_better_than_ewma() {
        let mut spline = CubicSpline::new(8);
        let mut ewma = Ewma::new(0.3);
        for t in 0..40 {
            let v = 10.0 + 5.0 * t as f64;
            spline.observe(v);
            ewma.observe(v);
        }
        let truth = 10.0 + 5.0 * 40.0;
        let se = (spline.predict() - truth).abs();
        let ee = (ewma.predict() - truth).abs();
        assert!(se < ee, "spline err {se} !< ewma err {ee}");
        assert!(se < 1.0, "spline should nail a linear trend, err {se}");
    }
}
