//! The Rule Manager's migration *policy* (§5).
//!
//! The Rule Manager decides **when** to migrate rules out of the shadow
//! table. The paper's design uses a predictive trigger — estimate the next
//! interval's rule arrivals, inflate by a corrector, and migrate if the
//! shadow would overflow — and compares it against the naive threshold
//! trigger (Hermes-SIMPLE, §8.5). The migration *mechanics* (what actually
//! moves, in which order, with which consistency protocol) live in
//! [`switch`](crate::switch).

use crate::config::MigrationTrigger;
use crate::predict::{Corrector, Predictor};
use hermes_rules::prelude::*;
use hermes_tcam::{SimDuration, SimTime};

/// Outcome of one migration pass (Fig. 7's four-step workflow).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MigrationReport {
    /// Logical rules moved from shadow to main.
    pub rules_migrated: usize,
    /// TCAM entries written into the main table.
    pub entries_written: usize,
    /// Shadow-table entries (partition pieces) deleted.
    pub pieces_deleted: usize,
    /// Entries saved by the optimization step (partition pieces collapsed
    /// back into their original rules — the §5.2 step-2 rewrite).
    pub entries_saved: usize,
    /// Total simulated time the migration occupied the control plane.
    pub duration: SimDuration,
    /// How long the data-plane pipeline was stalled
    /// ([`MigrationMode::PauseAndSwap`](crate::config::MigrationMode) only;
    /// zero for the incremental protocol).
    pub pipeline_paused: SimDuration,
}

/// A whole migration pass planned up front: the shadow drain expressed as
/// two device transactions (main-table inserts, then shadow piece
/// deletes) instead of one op per rule. The plan preserves the Algorithm-1
/// cut invariant by construction — rules are ordered ascending by
/// priority, FIFO among equals, exactly like the per-rule pass — and the
/// make-before-break property holds batch-wise: every main insert lands
/// (or the whole pass aborts) before any shadow piece is released.
#[derive(Clone, Debug, Default)]
pub struct MigrationPlan {
    /// Logical rules in migration order (ascending priority, FIFO among
    /// equals).
    pub order: Vec<RuleId>,
    /// One main-table insert (the original, un-cut rule) per logical rule,
    /// in `order` — the §5.2 step-2 optimization rewrite.
    pub inserts: Vec<Rule>,
    /// Every shadow piece the pass releases, grouped by owner in `order`.
    pub piece_deletes: Vec<RuleId>,
    /// Entries saved by the optimization step (pieces collapsed back into
    /// originals).
    pub entries_saved: usize,
}

/// The migration-trigger state machine.
pub struct RuleManager {
    trigger: MigrationTrigger,
    predictor: Option<Box<dyn Predictor>>,
    corrector: Corrector,
    /// Insert arrivals since the last tick (the predictor's observable).
    arrivals: u64,
    /// The control plane is busy migrating until this instant; a new
    /// migration cannot start before then (this is what bounds the
    /// sustainable insertion rate, Equation 1).
    pub busy_until: SimTime,
    /// Lifetime number of migrations triggered.
    pub migrations: u64,
}

impl std::fmt::Debug for RuleManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuleManager")
            .field("trigger", &self.trigger)
            .field("arrivals", &self.arrivals)
            .field("busy_until", &self.busy_until)
            .field("migrations", &self.migrations)
            .finish_non_exhaustive()
    }
}

impl RuleManager {
    /// Builds the manager for a trigger policy.
    pub fn new(trigger: MigrationTrigger) -> Self {
        let (predictor, corrector) = match trigger {
            MigrationTrigger::Predictive {
                predictor,
                corrector,
            } => (Some(predictor.build()), corrector),
            MigrationTrigger::Threshold { .. } => (None, Corrector::None),
        };
        RuleManager {
            trigger,
            predictor,
            corrector,
            arrivals: 0,
            busy_until: SimTime::ZERO,
            migrations: 0,
        }
    }

    /// The configured trigger.
    pub fn trigger(&self) -> MigrationTrigger {
        self.trigger
    }

    /// Notes one rule arrival (called by the Gate Keeper path).
    pub fn record_arrival(&mut self) {
        self.arrivals += 1;
    }

    /// `true` while a migration is still draining.
    pub fn is_busy(&self, now: SimTime) -> bool {
        now < self.busy_until
    }

    /// Threshold-mode inline check (evaluated after every insert, since
    /// Hermes-SIMPLE has no notion of prediction windows).
    pub fn wants_migration_inline(&self, shadow_len: usize, shadow_cap: usize) -> bool {
        match self.trigger {
            MigrationTrigger::Threshold { fraction } => {
                shadow_len as f64 >= fraction * shadow_cap as f64 && shadow_len > 0
            }
            MigrationTrigger::Predictive { .. } => false,
        }
    }

    /// Periodic tick: feeds the predictor and decides whether to migrate.
    ///
    /// `expected_partitions` is the running estimate of TCAM entries per
    /// logical rule (`r_p` of Equation 2): predicted arrivals are scaled by
    /// it because each arrival may install several shadow entries.
    pub fn on_tick(
        &mut self,
        now: SimTime,
        shadow_len: usize,
        shadow_cap: usize,
        expected_partitions: f64,
    ) -> bool {
        let arrived = std::mem::take(&mut self.arrivals) as f64;
        if self.is_busy(now) {
            // Still draining: keep the predictor fed but don't re-trigger.
            if let Some(p) = &mut self.predictor {
                p.observe(arrived);
            }
            return false;
        }
        match self.trigger {
            MigrationTrigger::Threshold { fraction } => {
                shadow_len as f64 >= fraction * shadow_cap as f64 && shadow_len > 0
            }
            MigrationTrigger::Predictive { .. } => {
                // INVARIANT: `RuleManager::new` constructs `predictor` as
                // `Some` exactly when the trigger is `Predictive`, and
                // neither field is reassigned afterwards.
                let predictor = self.predictor.as_mut().expect("predictive trigger");
                predictor.observe(arrived);
                let predicted = self.corrector.apply(predictor.predict());
                let projected = shadow_len as f64 + predicted * expected_partitions.max(1.0);
                // Migrate when the projection overflows, or as a safety net
                // when the shadow is nearly full regardless of prediction.
                (projected >= shadow_cap as f64 && shadow_len > 0)
                    || shadow_len as f64 >= 0.9 * shadow_cap as f64
            }
        }
    }

    /// Marks a migration as started, blocking re-trigger until it drains.
    pub fn migration_started(&mut self, now: SimTime, duration: SimDuration) {
        self.busy_until = now + duration;
        self.migrations += 1;
    }

    /// Plans one whole migration pass over the current shadow residents —
    /// `(original rule, its installed piece ids)` pairs — sorted into the
    /// cut-invariant-safe order (ascending priority, FIFO among equals;
    /// the input order is the FIFO order).
    pub fn plan_migration_batch(&self, rules: &[(Rule, Vec<RuleId>)]) -> MigrationPlan {
        let mut items: Vec<&(Rule, Vec<RuleId>)> = rules.iter().collect();
        // Stable sort: equal priorities keep their shadow-arrival order.
        items.sort_by_key(|(r, _)| r.priority);
        let mut plan = MigrationPlan::default();
        for (rule, pieces) in items {
            plan.order.push(rule.id);
            plan.inserts.push(*rule);
            plan.entries_saved += pieces.len().saturating_sub(1);
            plan.piece_deletes.extend(pieces.iter().copied());
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::PredictorKind;

    fn predictive(corrector: Corrector) -> RuleManager {
        RuleManager::new(MigrationTrigger::Predictive {
            predictor: PredictorKind::CubicSpline,
            corrector,
        })
    }

    #[test]
    fn threshold_triggers_at_fraction() {
        let mut m = RuleManager::new(MigrationTrigger::Threshold { fraction: 0.5 });
        assert!(!m.on_tick(SimTime::from_ms(100.0), 4, 10, 1.0));
        assert!(m.on_tick(SimTime::from_ms(200.0), 5, 10, 1.0));
        // Inline check mirrors the tick decision.
        assert!(m.wants_migration_inline(5, 10));
        assert!(!m.wants_migration_inline(4, 10));
    }

    #[test]
    fn threshold_zero_migrates_whenever_nonempty() {
        let m = RuleManager::new(MigrationTrigger::Threshold { fraction: 0.0 });
        assert!(m.wants_migration_inline(1, 10));
        assert!(
            !m.wants_migration_inline(0, 10),
            "empty shadow never migrates"
        );
    }

    #[test]
    fn predictive_triggers_on_projected_overflow() {
        let mut m = predictive(Corrector::None);
        let mut now = SimTime::ZERO;
        // Steady 30 arrivals per tick into a shadow of 100: with 40
        // resident the projection 40+30 < 100 holds…
        for _ in 0..6 {
            for _ in 0..30 {
                m.record_arrival();
            }
            now += SimDuration::from_ms(100.0);
            assert!(!m.on_tick(now, 40, 100, 1.0));
        }
        // …but with 80 resident, 80+30 >= 100 triggers.
        for _ in 0..30 {
            m.record_arrival();
        }
        now += SimDuration::from_ms(100.0);
        assert!(m.on_tick(now, 80, 100, 1.0));
    }

    #[test]
    fn slack_triggers_earlier_than_none() {
        // With 100% slack the projection doubles, so the same state that
        // does not trigger without correction does trigger with it.
        let run = |corrector: Corrector| -> bool {
            let mut m = predictive(corrector);
            let mut now = SimTime::ZERO;
            let mut fired = false;
            for _ in 0..8 {
                for _ in 0..25 {
                    m.record_arrival();
                }
                now += SimDuration::from_ms(100.0);
                fired |= m.on_tick(now, 60, 100, 1.0);
            }
            fired
        };
        assert!(!run(Corrector::None));
        assert!(run(Corrector::Slack(1.0)));
        assert!(run(Corrector::Deadzone(20.0)));
    }

    #[test]
    fn partitions_scale_projection() {
        let mut m = predictive(Corrector::None);
        let mut now = SimTime::ZERO;
        for _ in 0..6 {
            for _ in 0..20 {
                m.record_arrival();
            }
            now += SimDuration::from_ms(100.0);
            // 20 arrivals × r_p 3 = 60 entries projected: 50 + 60 >= 100.
            if m.on_tick(now, 50, 100, 3.0) {
                return;
            }
        }
        panic!("high partition factor should have triggered");
    }

    #[test]
    fn busy_window_blocks_retrigger() {
        let mut m = RuleManager::new(MigrationTrigger::Threshold { fraction: 0.0 });
        m.migration_started(SimTime::ZERO, SimDuration::from_ms(500.0));
        assert!(m.is_busy(SimTime::from_ms(100.0)));
        assert!(!m.on_tick(SimTime::from_ms(100.0), 9, 10, 1.0));
        assert!(!m.is_busy(SimTime::from_ms(500.0)));
        assert!(m.on_tick(SimTime::from_ms(500.0), 9, 10, 1.0));
        assert_eq!(m.migrations, 1);
    }

    #[test]
    fn migration_plan_orders_ascending_priority_fifo() {
        let m = RuleManager::new(MigrationTrigger::Threshold { fraction: 0.5 });
        let key = |p: &str| p.parse::<Ipv4Prefix>().unwrap().to_key();
        let rules = vec![
            (
                Rule::new(1, key("10.0.0.0/8"), Priority(5), Action::Drop),
                vec![RuleId(100), RuleId(101)],
            ),
            (
                Rule::new(2, key("11.0.0.0/8"), Priority(2), Action::Drop),
                vec![RuleId(102)],
            ),
            // Same priority as rule 1 but arrived later: FIFO keeps it after.
            (
                Rule::new(3, key("12.0.0.0/8"), Priority(5), Action::Drop),
                vec![],
            ),
        ];
        let plan = m.plan_migration_batch(&rules);
        assert_eq!(plan.order, vec![RuleId(2), RuleId(1), RuleId(3)]);
        assert_eq!(plan.inserts.len(), 3);
        assert_eq!(
            plan.piece_deletes,
            vec![RuleId(102), RuleId(100), RuleId(101)]
        );
        // Rule 1 collapses two pieces into one original: one entry saved.
        assert_eq!(plan.entries_saved, 1);
    }

    #[test]
    fn safety_net_fires_when_nearly_full() {
        let mut m = predictive(Corrector::None);
        // No arrivals at all (prediction 0) but shadow at 95%: migrate.
        assert!(m.on_tick(SimTime::from_ms(100.0), 95, 100, 1.0));
    }
}
