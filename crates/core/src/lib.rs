//! # hermes-core — the Hermes framework (CoNEXT'17)
//!
//! Hermes provides **tight latency guarantees for TCAM control-plane
//! actions** on commodity SDN switches. The key idea: rule insertion into a
//! TCAM is slow and variable because it must shift entries to preserve
//! priority order, and the cost grows with table occupancy. Hermes carves
//! the TCAM into a small, mostly-empty **shadow table** that services all
//! insertions (so every insertion is cheap and bounded) and a large **main
//! table** that holds the steady state; a Rule Manager migrates rules
//! shadow→main before the shadow fills.
//!
//! The crate implements the full paper architecture:
//!
//! * [`switch::HermesSwitch`] — the agent: logical-table facade over the
//!   shadow/main pair (Fig. 3);
//! * [`gatekeeper`] — admission control and routing (token bucket,
//!   predicates, low-priority bypass);
//! * [`partition`] — Algorithm 1 (`PartitionNewRule`) and its inverse
//!   bookkeeping for deletions;
//! * [`manager`] — migration triggering (predictive vs Hermes-SIMPLE
//!   threshold) and the migration report;
//! * [`predict`] — EWMA / Cubic Spline / ARMA predictors with Slack and
//!   Deadzone correctors (§5.1);
//! * [`api`] — the operator interface (`CreateTCAMQoS` …, §7).
//!
//! ## Quickstart
//!
//! ```
//! use hermes_core::prelude::*;
//! use hermes_rules::prelude::*;
//! use hermes_tcam::{SimDuration, SimTime, SwitchModel};
//!
//! // A Pica8 P-3290 with a 5 ms insertion guarantee.
//! let config = HermesConfig::with_guarantee(SimDuration::from_ms(5.0));
//! let mut switch = HermesSwitch::new(SwitchModel::pica8_p3290(), config).unwrap();
//!
//! // Install a rule; Hermes places it in the shadow table.
//! let prefix: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
//! let rule = Rule::new(1, prefix.to_key(), Priority(10), Action::Forward(3));
//! let report = switch.insert(rule, SimTime::ZERO).unwrap();
//! assert!(report.latency <= SimDuration::from_ms(5.0));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod config;
pub mod gatekeeper;
pub mod manager;
pub mod multitable;
pub mod partition;
pub mod predict;
pub mod recovery;
pub mod resync;
pub mod switch;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::api::{HermesApi, QosHandle, ShadowId, SwitchId};
    pub use crate::config::{HermesConfig, MigrationMode, MigrationTrigger, RulePredicate};
    pub use crate::gatekeeper::{GateKeeper, Route, TokenBucket};
    pub use crate::manager::{MigrationReport, RuleManager};
    pub use crate::multitable::{MultiTableHermes, TableSpec};
    pub use crate::partition::{partition_new_rule, PartitionOutcome};
    pub use crate::predict::{Arma, Corrector, CubicSpline, Ewma, Predictor, PredictorKind};
    pub use crate::recovery::{AuditReport, RecoveryStats, RetryPolicy};
    pub use crate::resync::{
        IntentOp, IntentStore, ResyncMode, ResyncPolicy, ResyncReport, ResyncStats,
    };
    pub use crate::switch::{
        ActionReport, HermesError, HermesStats, HermesSwitch, ReportDetail, MAIN, SHADOW,
    };
}
