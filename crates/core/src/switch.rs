//! `HermesSwitch`: the logical-table facade over a shadow/main TCAM pair.
//!
//! This is the paper's architecture (Fig. 3) end to end: control-plane
//! actions enter through the Gate Keeper, insertions are partitioned
//! (Algorithm 1) and placed in the small shadow slice, the Rule Manager
//! migrates rules into the main slice before the shadow overflows, and
//! packet lookups traverse shadow-then-main so the pair behaves exactly
//! like one monolithic table.
//!
//! ## Correctness invariant
//!
//! At *every* TCAM-operation boundary — including mid-migration — a lookup
//! against the shadow/main pair returns the same action as a monolithic
//! table holding the logical rules, except for packets covered only by
//! overlapping same-priority rules with different actions (behaviour
//! OpenFlow leaves undefined for a single table too). The integration
//! tests run this oracle in lockstep.
//!
//! Two mechanisms maintain the invariant beyond Algorithm 1 itself:
//!
//! * **Re-partitioning** (Fig. 6): deleting a main rule that shadow rules
//!   were cut against re-cuts those rules; symmetrically, inserting a
//!   higher-priority rule *directly into the main table* (rate-limit
//!   overflow, fragmentation bypass) re-cuts any overlapping lower-priority
//!   shadow rules.
//! * **Make-before-break migration** (§5.2): each migrated rule is written
//!   to the main table *before* its shadow pieces are removed, and rules
//!   migrate in ascending priority order, so no intermediate state can
//!   drop or misroute a packet.

use crate::config::{HermesConfig, MigrationMode, MigrationTrigger};
use crate::gatekeeper::{GateKeeper, Route};
use crate::manager::{MigrationReport, RuleManager};
use crate::partition::partition_new_rule_bounded;
use crate::recovery::{AuditReport, RecoveryState, RecoveryStats};
use crate::resync::{plan_slice, IntentOp, IntentStore, ResyncMode, ResyncReport, ResyncStats};
use hermes_rules::overlap::OverlapIndex;
use hermes_rules::prelude::*;
use hermes_tcam::{
    BatchOpReport, CrashKind, CrashSpec, FaultPlan, FaultStats, LookupResult, MissBehavior,
    OpReport, SimDuration, SimTime, SwitchModel, TcamDevice, TcamError, TcamOp,
};
use std::collections::{BTreeMap, BTreeSet};

/// Slice index of the shadow table.
pub const SHADOW: usize = 0;
/// Slice index of the main table.
pub const MAIN: usize = 1;

/// Physical piece ids live above this bit so they can never collide with
/// controller-assigned logical ids.
const PHYS_BASE: u64 = 1 << 62;

/// Errors surfaced to the controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HermesError {
    /// A rule with this id is already installed.
    Duplicate(RuleId),
    /// No rule with this id is installed.
    NotFound(RuleId),
    /// The TCAM is out of space.
    DeviceFull,
    /// The requested guarantee is below the switch's fixed per-operation
    /// cost — no shadow size can honour it.
    InfeasibleGuarantee,
    /// Logical rule ids must stay below 2^62 (the physical-id space).
    IdOutOfRange(RuleId),
    /// The device rejected the op even after retries (transient channel
    /// faults that outlasted the retry budget).
    Device(TcamError),
}

impl std::fmt::Display for HermesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HermesError::Duplicate(id) => write!(f, "rule {id} already installed"),
            HermesError::NotFound(id) => write!(f, "rule {id} not installed"),
            HermesError::DeviceFull => write!(f, "TCAM full"),
            HermesError::InfeasibleGuarantee => write!(f, "guarantee below switch base cost"),
            HermesError::IdOutOfRange(id) => write!(f, "rule id {id} out of range"),
            HermesError::Device(e) => write!(f, "device failure: {e}"),
        }
    }
}

impl std::error::Error for HermesError {}

/// What happened to a submitted control-plane action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReportDetail {
    /// An insertion.
    Insert {
        /// Where the Gate Keeper routed it.
        route: Route,
        /// TCAM entries written (partition pieces, or 1 in the main table).
        pieces: usize,
        /// Whether the rule was entitled to the guarantee.
        guaranteed: bool,
        /// Whether an entitled rule missed its guarantee.
        violated: bool,
    },
    /// A deletion.
    Delete {
        /// TCAM entries removed.
        pieces_removed: usize,
        /// Shadow rules re-partitioned because of this deletion (Fig. 6).
        repartitioned: usize,
    },
    /// A modification.
    Modify {
        /// Whether it was applied in place (no priority change).
        in_place: bool,
    },
}

/// The controller-visible outcome of one control-plane action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ActionReport {
    /// Total simulated latency until the action took effect.
    pub latency: SimDuration,
    /// Action-specific detail.
    pub detail: ReportDetail,
}

impl ActionReport {
    /// Convenience: whether this was a guaranteed insert that missed its
    /// bound.
    pub fn violated(&self) -> bool {
        matches!(self.detail, ReportDetail::Insert { violated: true, .. })
    }

    /// Convenience: the route for insert reports.
    pub fn route(&self) -> Option<Route> {
        match self.detail {
            ReportDetail::Insert { route, .. } => Some(route),
            _ => None,
        }
    }
}

/// Lifetime counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HermesStats {
    /// Insert actions accepted.
    pub inserts: u64,
    /// Inserts serviced from the shadow table.
    pub shadow_inserts: u64,
    /// Inserts serviced from the main table (any reason).
    pub main_inserts: u64,
    /// Inserts that installed nothing (Fig. 5(a) redundancy).
    pub redundant_inserts: u64,
    /// Guaranteed inserts that missed the bound.
    pub violations: u64,
    /// Total shadow entries written (partition pieces).
    pub pieces_written: u64,
    /// Inserts whose rule was actually cut (pieces != original).
    pub rules_cut: u64,
    /// Delete actions.
    pub deletes: u64,
    /// Modify actions.
    pub modifies: u64,
    /// Shadow rules re-partitioned due to main-table churn.
    pub repartitions: u64,
    /// Migration passes.
    pub migrations: u64,
    /// Logical rules migrated shadow→main.
    pub rules_migrated: u64,
}

impl HermesStats {
    /// Running estimate of TCAM entries per logical shadow insert — the
    /// `r_p` of Equation 2.
    pub fn expected_partitions(&self) -> f64 {
        if self.shadow_inserts == 0 {
            1.0
        } else {
            (self.pieces_written as f64 / self.shadow_inserts as f64).max(1.0)
        }
    }
}

/// A logical rule resident in the shadow table.
#[derive(Clone, Debug)]
struct ShadowEntry {
    original: Rule,
    /// Partition pieces — physical id and key (empty for redundant rules).
    pieces: Vec<(RuleId, TernaryKey)>,
    /// Main rules it was cut against.
    cut_against: Vec<RuleId>,
}

/// A shadow-bound rule whose pieces have been planned (physical ids
/// allocated, keys cut) but not yet written — the unit of work the batched
/// admission path accumulates between device transactions.
#[derive(Clone, Debug)]
struct PlannedShadow {
    /// Position in the submitted batch (indexes the results vector).
    idx: usize,
    rule: Rule,
    pieces: Vec<(RuleId, TernaryKey)>,
    cut_against: Vec<RuleId>,
    intact: bool,
    guaranteed: bool,
}

/// The Hermes agent for one switch.
#[derive(Debug)]
pub struct HermesSwitch {
    device: TcamDevice,
    config: HermesConfig,
    gate: GateKeeper,
    manager: RuleManager,
    /// Logical rules resident in the main table, with original priorities.
    main_index: OverlapIndex,
    /// Logical rules resident in the shadow table.
    shadow: BTreeMap<RuleId, ShadowEntry>,
    /// Shadow insertion order (FIFO semantics + migration order).
    shadow_order: Vec<RuleId>,
    /// main rule id → shadow rules cut against it (the reverse of `M`).
    blockers: BTreeMap<RuleId, Vec<RuleId>>,
    /// Priority histogram over all logical rules (for the low-priority
    /// bypass check).
    prio_counts: BTreeMap<u32, usize>,
    next_phys: u64,
    stats: HermesStats,
    /// Retry/journal/degraded-mode state (see [`crate::recovery`]).
    recovery: RecoveryState,
    /// Durable checkpoint + journal of the installed-rule intent — what a
    /// crashed device is rebuilt from (see [`crate::resync`]).
    intent: IntentStore,
    /// Crash/resync health counters.
    resync_stats: ResyncStats,
    /// An unresolved crash window is open: the device lost its control
    /// session (and possibly state) and resync has not yet completed.
    crash_pending: bool,
    /// When the open crash window was detected (guarantee-gap metric).
    crash_detected_at: Option<SimTime>,
    /// High-water mark of `now` across public entry points; used to stamp
    /// degraded-mode episodes from internal paths that take no clock.
    clock: SimTime,
}

impl HermesSwitch {
    /// Builds a Hermes agent on the given switch model.
    ///
    /// The shadow slice is sized as the largest table whose *worst-case*
    /// insertion latency meets the guarantee (or `config.shadow_size` when
    /// overridden); the main slice gets the remainder of the TCAM.
    pub fn new(model: SwitchModel, config: HermesConfig) -> Result<Self, HermesError> {
        let shadow_size = match config.shadow_size {
            Some(s) => s.min(model.capacity / 2),
            None => model
                .max_table_for_guarantee(config.guarantee)
                .ok_or(HermesError::InfeasibleGuarantee)?
                .clamp(1, model.capacity / 2),
        };
        if shadow_size == 0 {
            return Err(HermesError::InfeasibleGuarantee);
        }
        let main_size = model.capacity - shadow_size;
        let device = TcamDevice::carved(
            model,
            &[
                ("shadow", shadow_size, MissBehavior::GotoNextSlice),
                ("main", main_size, MissBehavior::ToController),
            ],
        );
        // Admission rate from Equation 2, λ = S_ST / (r_p · t_m), reading
        // t_m as the time to drain the full shadow (S_ST rules at the
        // per-rule migration cost — the only reading with consistent
        // units): λ = 1 / (r_p · per_rule_migration_time). Initial
        // estimates: r_p = 1, migration cost at half main occupancy. The
        // token bucket's burst is the shadow capacity itself.
        let per_rule = device.model().mean_update_latency(main_size / 2).as_secs();
        let derived = if per_rule > 0.0 {
            1.0 / per_rule
        } else {
            f64::INFINITY
        };
        let rate = config.rate_limit.unwrap_or(derived);
        let mut gate = GateKeeper::new(
            config.predicate.clone(),
            if rate.is_finite() {
                Some((rate, shadow_size as f64))
            } else {
                None
            },
            config.max_partitions,
        );
        gate.set_low_priority_bypass(config.low_priority_bypass);
        let manager = RuleManager::new(config.trigger);
        let recovery = RecoveryState::new(config.retry, config.degraded_threshold);
        let intent = IntentStore::new(config.resync.checkpoint_interval);
        Ok(HermesSwitch {
            device,
            config,
            gate,
            manager,
            main_index: OverlapIndex::new(),
            shadow: BTreeMap::new(),
            shadow_order: Vec::new(),
            blockers: BTreeMap::new(),
            prio_counts: BTreeMap::new(),
            next_phys: PHYS_BASE,
            stats: HermesStats::default(),
            recovery,
            intent,
            resync_stats: ResyncStats::default(),
            crash_pending: false,
            crash_detected_at: None,
            clock: SimTime::ZERO,
        })
    }

    /// The agent's configuration.
    pub fn config(&self) -> &HermesConfig {
        &self.config
    }

    /// Lifetime counters.
    pub fn stats(&self) -> HermesStats {
        self.stats
    }

    /// Shadow-slice capacity (the TCAM overhead Hermes pays).
    pub fn shadow_capacity(&self) -> usize {
        self.device.slice(SHADOW).table.capacity()
    }

    /// Current shadow occupancy in entries.
    pub fn shadow_len(&self) -> usize {
        self.device.slice(SHADOW).table.len()
    }

    /// Current main-table occupancy in entries.
    pub fn main_len(&self) -> usize {
        self.device.slice(MAIN).table.len()
    }

    /// Number of logical rules installed (shadow + main).
    pub fn logical_len(&self) -> usize {
        self.shadow.len() + self.main_index.len()
    }

    /// TCAM overhead as a fraction of total capacity (`QoSOverheads`, §7).
    pub fn overhead_fraction(&self) -> f64 {
        self.shadow_capacity() as f64 / self.device.model().capacity as f64
    }

    /// The maximum *sustained* guaranteed insertion rate λ (Equation 2,
    /// `λ = S_ST / (r_p · t_m)` with `t_m` the time to drain the full
    /// shadow): rules cannot enter the shadow faster than migration can
    /// move them out, so λ = 1 / (r_p · per-rule migration cost). Bursts
    /// up to the shadow capacity on top of this are absorbed by the
    /// token bucket.
    pub fn max_supported_rate(&self) -> f64 {
        let per_rule = self
            .device
            .model()
            .mean_update_latency(
                self.main_len()
                    .max(self.device.slice(MAIN).table.capacity() / 2),
            )
            .as_secs();
        if per_rule <= 0.0 {
            return f64::INFINITY;
        }
        1.0 / (self.stats.expected_partitions() * per_rule)
    }

    /// Borrow the underlying device (telemetry/tests).
    pub fn device(&self) -> &TcamDevice {
        &self.device
    }

    /// Installs (or clears) a fault-injection plan on the device's control
    /// channel (chaos testing).
    pub fn install_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.device.set_fault_plan(plan);
    }

    /// Injected-fault counters, when a plan is installed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.device.fault_stats()
    }

    /// Recovery-subsystem health counters.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery.stats
    }

    /// Crash/resync-subsystem health counters.
    pub fn resync_stats(&self) -> ResyncStats {
        self.resync_stats
    }

    /// Whether the switch is inside a crash window: the control session
    /// is down, or it crashed and resync has not yet completed. The
    /// guarantee is suspended until [`resync`](Self::resync) finishes.
    pub fn is_down(&self) -> bool {
        self.crash_pending || !self.device.is_connected()
    }

    /// Rules in the durable intent store (must equal the logical
    /// shadow + main population).
    pub fn intent_len(&self) -> usize {
        self.intent.len()
    }

    /// Intent-journal entries not yet folded into the checkpoint.
    pub fn intent_journal_depth(&self) -> usize {
        self.intent.journal_depth()
    }

    /// Injects a crash-class fault directly (netsim switch-down windows
    /// and chaos tests): the device drops its control session and loses
    /// state per `kind`, and the controller books the crash immediately.
    pub fn inject_crash(
        &mut self,
        kind: CrashKind,
        survivor_seed: u64,
        reconnect_denials: u32,
        now: SimTime,
    ) {
        self.clock = self.clock.max(now);
        self.device.force_crash(CrashSpec {
            kind,
            survivor_seed,
            reconnect_denials,
        });
        self.note_crash();
    }

    /// Books a newly-detected crash: opens the crash window, stamps the
    /// detection time for the guarantee-gap metric, and forces the Gate
    /// Keeper into degraded mode so admissions queue instead of hammering
    /// the dead session.
    fn note_crash(&mut self) {
        if self.crash_pending {
            return;
        }
        self.crash_pending = true;
        self.crash_detected_at = Some(self.clock);
        self.resync_stats.crashes_detected += 1;
        hermes_telemetry::counter("resync.crashes_detected", 1);
        self.recovery.enter_degraded(self.clock);
    }

    /// Whether the Gate Keeper is currently in degraded mode (queuing
    /// admissions because the control channel looks dead).
    pub fn is_degraded(&self) -> bool {
        self.recovery.is_degraded()
    }

    /// Admissions queued by degraded mode, awaiting the channel's return.
    pub fn deferred_len(&self) -> usize {
        self.recovery.deferred.len()
    }

    /// Total simulated time spent in degraded mode so far (including a
    /// still-open episode, measured against the given clock).
    pub fn degraded_time(&self, now: SimTime) -> SimDuration {
        SimDuration::from_nanos(self.recovery.degraded_ns_total(now.max(self.clock)))
    }

    /// All logical rules currently installed, in no particular order.
    pub fn logical_rules(&self) -> Vec<Rule> {
        let mut out: Vec<Rule> = self.main_index.iter().collect();
        out.extend(self.shadow.values().map(|e| e.original));
        out.extend(self.recovery.deferred.iter().copied());
        out
    }

    /// Whether a logical rule is installed (including admissions queued by
    /// degraded mode — they are accepted, just not yet placed).
    pub fn contains(&self, id: RuleId) -> bool {
        self.shadow.contains_key(&id)
            || self.main_index.contains(id)
            || self.recovery.deferred.iter().any(|r| r.id == id)
    }

    /// Whether the durable intent store intends the given rule — the view
    /// a post-crash resync would rebuild. The fleet's transaction layer
    /// checks this after a rollback: a retracted rule must not be
    /// resurrected by the next resync.
    pub fn intent_contains(&self, id: RuleId) -> bool {
        self.intent.contains(id)
    }

    /// Rolls back a set of staged rules (the fleet's two-phase abort
    /// path): each present rule is deleted through the normal path — the
    /// delete journal absorbs device faults, the intent retraction keeps
    /// resync from resurrecting it — and absent ids are skipped silently
    /// (a crash may already have taken the entry). Returns the number of
    /// rules actually retracted.
    pub fn rollback_batch(&mut self, ids: &[RuleId], now: SimTime) -> usize {
        let mut retracted = 0;
        for id in ids {
            if !self.contains(*id) {
                continue;
            }
            if self.delete(*id, now).is_ok() {
                retracted += 1;
            }
        }
        retracted
    }

    /// Looks up a logical rule.
    pub fn get(&self, id: RuleId) -> Option<Rule> {
        self.shadow
            .get(&id)
            .map(|e| e.original)
            .or_else(|| self.main_index.get(id))
            .or_else(|| self.recovery.deferred.iter().find(|r| r.id == id).copied())
    }

    fn alloc_phys(&mut self) -> RuleId {
        let id = RuleId(self.next_phys);
        self.next_phys += 1;
        id
    }

    fn lowest_live_priority(&self) -> Option<Priority> {
        self.prio_counts.keys().next().map(|&p| Priority(p))
    }

    fn prio_add(&mut self, p: Priority) {
        *self.prio_counts.entry(p.0).or_insert(0) += 1;
    }

    fn prio_remove(&mut self, p: Priority) {
        if let Some(c) = self.prio_counts.get_mut(&p.0) {
            *c -= 1;
            if *c == 0 {
                self.prio_counts.remove(&p.0);
            }
        }
    }

    fn register_blockers(&mut self, rule: RuleId, cut_against: &[RuleId]) {
        for b in cut_against {
            self.blockers.entry(*b).or_default().push(rule);
        }
    }

    fn unregister_blockers(&mut self, rule: RuleId, cut_against: &[RuleId]) {
        for b in cut_against {
            if let Some(v) = self.blockers.get_mut(b) {
                v.retain(|r| *r != rule);
                if v.is_empty() {
                    self.blockers.remove(b);
                }
            }
        }
    }

    /// One device op with retry: transient failures back off exponentially
    /// (with jitter) up to the policy's attempt budget, and the backoff
    /// time is charged into the returned report's latency — a retried
    /// insert can still honestly violate its guarantee. Success resets the
    /// degraded-mode failure streak; exhaustion extends it.
    // INVARIANT: intent-neutral chokepoint — every public caller records
    // the matching IntentOp itself before or after the physical write.
    fn dev_apply(&mut self, slice: usize, action: &ControlAction) -> Result<OpReport, TcamError> {
        let mut penalty = SimDuration::ZERO;
        let mut attempt = 1u32;
        loop {
            match self.device.apply(slice, action) {
                Ok(mut rep) => {
                    self.recovery.on_success(self.clock);
                    rep.latency += penalty;
                    return Ok(rep);
                }
                Err(e) if e.is_transient() => {
                    self.recovery.stats.transient_failures += 1;
                    if attempt >= self.recovery.policy.max_attempts {
                        self.recovery.on_permanent_failure(self.clock);
                        return Err(e);
                    }
                    self.recovery.stats.retries += 1;
                    penalty += self.recovery.backoff(attempt);
                    attempt += 1;
                }
                // State errors (full / not-found / duplicate): retrying
                // cannot change the answer. A lost control session opens
                // the crash window instead of burning retries — the
                // resync engine owns recovery from here.
                Err(e) => {
                    if matches!(e, TcamError::Disconnected) {
                        self.note_crash();
                    }
                    return Err(e);
                }
            }
        }
    }

    /// One batched device transaction with retry, mirroring
    /// [`dev_apply`](Self::dev_apply): transient failures back off
    /// exponentially up to the policy's attempt budget, with the backoff
    /// charged into the returned report's latency. The device batch is
    /// atomic — a rejected transaction applied nothing — so retrying the
    /// identical op sequence is always safe.
    // INVARIANT: intent-neutral chokepoint — every public caller records
    // the matching IntentOp itself before or after the physical write.
    fn dev_apply_batch(&mut self, slice: usize, ops: &[TcamOp]) -> Result<BatchOpReport, TcamError> {
        let mut penalty = SimDuration::ZERO;
        let mut attempt = 1u32;
        loop {
            match self.device.apply_batch(slice, ops) {
                Ok(mut rep) => {
                    self.recovery.on_success(self.clock);
                    rep.latency += penalty;
                    return Ok(rep);
                }
                Err(e) if e.is_transient() => {
                    self.recovery.stats.transient_failures += 1;
                    if attempt >= self.recovery.policy.max_attempts {
                        self.recovery.on_permanent_failure(self.clock);
                        return Err(e);
                    }
                    self.recovery.stats.retries += 1;
                    penalty += self.recovery.backoff(attempt);
                    attempt += 1;
                }
                // Validation errors (full / not-found / duplicate): the
                // answer cannot change on retry; the caller picks the
                // fallback (per-op path or abort). A lost control session
                // opens the crash window for the resync engine.
                Err(e) => {
                    if matches!(e, TcamError::Disconnected) {
                        self.note_crash();
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Insert with stale-duplicate self-healing. The caller's bookkeeping
    /// says the id is free, so a device `Duplicate` can only mean a
    /// silently-dropped delete left a stale entry behind — replace it.
    /// Also purges any journaled delete for the id, which would otherwise
    /// replay later and destroy the legitimate new entry.
    fn dev_insert(&mut self, slice: usize, rule: Rule) -> Result<OpReport, TcamError> {
        self.recovery
            .pending_gc
            .retain(|(s, p)| *s != slice || *p != rule.id);
        match self.dev_apply(slice, &ControlAction::Insert(rule)) {
            Err(TcamError::Duplicate(id)) => {
                let penalty = match self.dev_apply(slice, &ControlAction::Delete(id)) {
                    Ok(rep) => rep.latency,
                    Err(_) => SimDuration::ZERO,
                };
                self.recovery.stats.actions_fixed += 1;
                self.dev_apply(slice, &ControlAction::Insert(rule))
                    .map(|mut rep| {
                        rep.latency += penalty;
                        rep
                    })
            }
            r => r,
        }
    }

    /// Best-effort physical delete. `NotFound` counts as success (the
    /// install was silently dropped, so there is nothing to remove);
    /// retry exhaustion journals the delete for idempotent replay so the
    /// entry can never be stranded.
    fn dev_delete_or_journal(&mut self, slice: usize, pid: RuleId) -> SimDuration {
        match self.dev_apply(slice, &ControlAction::Delete(pid)) {
            Ok(rep) => rep.latency,
            Err(TcamError::NotFound(_)) => SimDuration::ZERO,
            Err(_) => {
                self.recovery.pending_gc.push((slice, pid));
                SimDuration::ZERO
            }
        }
    }

    /// Replays the journal of failed physical deletes. Idempotent: an
    /// entry already gone is simply dropped. Returns how many journal
    /// entries were cleared and the device time spent.
    fn replay_journal(&mut self) -> (usize, SimDuration) {
        if self.recovery.pending_gc.is_empty() {
            return (0, SimDuration::ZERO);
        }
        let pending = std::mem::take(&mut self.recovery.pending_gc);
        let mut cleared = 0;
        let mut latency = SimDuration::ZERO;
        for (slice, pid) in pending {
            match self.dev_apply(slice, &ControlAction::Delete(pid)) {
                Ok(rep) => {
                    latency += rep.latency;
                    cleared += 1;
                    self.recovery.stats.journal_replays += 1;
                }
                Err(TcamError::NotFound(_)) => {
                    cleared += 1;
                    self.recovery.stats.journal_replays += 1;
                }
                Err(_) => self.recovery.pending_gc.push((slice, pid)),
            }
        }
        (cleared, latency)
    }

    /// Submits a control-plane action (the OpenFlow `flow-mod` surface).
    pub fn submit(
        &mut self,
        action: &ControlAction,
        now: SimTime,
    ) -> Result<ActionReport, HermesError> {
        match action {
            ControlAction::Insert(rule) => self.insert(*rule, now),
            ControlAction::Delete(id) => self.delete(*id, now),
            ControlAction::Modify {
                id,
                action,
                priority,
            } => self.modify(*id, *action, *priority, now),
        }
    }

    /// Inserts a rule.
    ///
    /// While the Gate Keeper is in degraded mode (the control channel has
    /// repeatedly timed out) the admission is queued instead of hammering
    /// the dead channel, reported as [`Route::Deferred`]; queued rules are
    /// applied by the next tick or audit once the channel recovers.
    pub fn insert(&mut self, rule: Rule, now: SimTime) -> Result<ActionReport, HermesError> {
        self.clock = self.clock.max(now);
        if rule.id.0 >= PHYS_BASE {
            return Err(HermesError::IdOutOfRange(rule.id));
        }
        if self.contains(rule.id) {
            return Err(HermesError::Duplicate(rule.id));
        }
        if self.recovery.is_degraded() {
            let guaranteed = self.gate.qualifies(&rule);
            self.recovery.defer(rule);
            Route::Deferred.record();
            return Ok(ActionReport {
                latency: SimDuration::from_us(10.0),
                detail: ReportDetail::Insert {
                    route: Route::Deferred,
                    pieces: 0,
                    guaranteed,
                    // Deferral is surfaced through the health counters,
                    // not the violation count: during an outage there is
                    // no latency to measure against the bound.
                    violated: false,
                },
            });
        }
        self.insert_live(rule, now)
    }

    /// The live insert path (Gate Keeper healthy). Factored out so the
    /// degraded-mode queue can drain through the exact same logic.
    fn insert_live(&mut self, rule: Rule, now: SimTime) -> Result<ActionReport, HermesError> {
        self.stats.inserts += 1;
        self.manager.record_arrival();
        let guaranteed = self.gate.qualifies(&rule);

        if let Some(route) = self.gate.pre_route(&rule, now, self.lowest_live_priority()) {
            return self.insert_to_main(rule, route, guaranteed);
        }

        // Algorithm 1 against the main table, with a fragmentation budget:
        // rules that would explode into partitions go straight to the main
        // table (§4.2's footnote), detected early to keep insertion cheap.
        // The budget equals the Gate Keeper's own partition cap — anything
        // beyond it would be diverted by post_route anyway.
        let limit = self.config.max_partitions;
        let outcome = match partition_new_rule_bounded(&rule, &self.main_index, limit) {
            Ok(o) => o,
            Err(_) => {
                return self.insert_to_main(rule, Route::MainTooFragmented, guaranteed);
            }
        };
        let shadow_free = self.device.slice(SHADOW).table.free();
        let mut route = self.gate.post_route(outcome.pieces.len(), shadow_free);

        // A partitioned rule writes several shadow entries and the
        // guarantee covers their *sum*: divert to the main table when even
        // the worst-case cumulative cost cannot fit the bound. (Heavily
        // partitioned rules are exactly the ones §4.2 argues belong in the
        // main table.)
        if route == Route::Shadow && outcome.pieces.len() > 1 {
            let mut est = SimDuration::ZERO;
            let occ = self.shadow_len();
            for j in 0..outcome.pieces.len() {
                est += self.device.model().worst_insert_latency(occ + j);
            }
            if est > self.config.guarantee {
                route = Route::MainTooFragmented;
            }
        }

        let report = match route {
            Route::Redundant => {
                // Logically installed; nothing written (Fig. 5(a)). Charged
                // only agent processing time.
                self.stats.redundant_inserts += 1;
                let entry = ShadowEntry {
                    original: rule,
                    pieces: Vec::new(),
                    cut_against: outcome.cut_against.clone(),
                };
                self.register_blockers(rule.id, &outcome.cut_against);
                self.shadow.insert(rule.id, entry);
                self.shadow_order.push(rule.id);
                self.prio_add(rule.priority);
                self.intent.record(IntentOp::Install(rule));
                route.record();
                Ok(ActionReport {
                    latency: SimDuration::from_us(10.0),
                    detail: ReportDetail::Insert {
                        route,
                        pieces: 0,
                        guaranteed,
                        violated: false,
                    },
                })
            }
            Route::Shadow => {
                let mut latency = SimDuration::ZERO;
                let mut piece_ids = Vec::with_capacity(outcome.pieces.len());
                let mut failed: Option<TcamError> = None;
                for key in &outcome.pieces {
                    let pid = self.alloc_phys();
                    let phys = Rule {
                        id: pid,
                        key: *key,
                        ..rule
                    };
                    match self.dev_apply(SHADOW, &ControlAction::Insert(phys)) {
                        Ok(rep) => {
                            latency += rep.latency;
                            piece_ids.push((pid, *key));
                        }
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
                if let Some(e) = failed {
                    // Transaction rollback: remove the partial install so
                    // no piece of a never-acknowledged rule can match.
                    // Pieces the dead channel refuses to delete go to the
                    // GC journal for idempotent replay.
                    for (pid, _) in &piece_ids {
                        self.dev_delete_or_journal(SHADOW, *pid);
                    }
                    self.recovery.stats.rollbacks += 1;
                    return Err(match e {
                        TcamError::Full => HermesError::DeviceFull,
                        e => HermesError::Device(e),
                    });
                }
                self.stats.shadow_inserts += 1;
                self.stats.pieces_written += outcome.pieces.len() as u64;
                if !outcome.is_intact(&rule.key) {
                    self.stats.rules_cut += 1;
                }
                let violated = guaranteed && latency > self.config.guarantee;
                if violated {
                    self.stats.violations += 1;
                }
                let entry = ShadowEntry {
                    original: rule,
                    pieces: piece_ids,
                    cut_against: outcome.cut_against.clone(),
                };
                self.register_blockers(rule.id, &outcome.cut_against);
                self.shadow.insert(rule.id, entry);
                self.shadow_order.push(rule.id);
                self.prio_add(rule.priority);
                self.intent.record(IntentOp::Install(rule));
                route.record();
                hermes_telemetry::observe("gatekeeper.shadow_insert_ns", latency.as_nanos());
                Ok(ActionReport {
                    latency,
                    detail: ReportDetail::Insert {
                        route,
                        pieces: outcome.pieces.len(),
                        guaranteed,
                        violated,
                    },
                })
            }
            other => self.insert_to_main(rule, other, guaranteed),
        };

        // Hermes-SIMPLE checks its threshold after every insert; the
        // predictive manager additionally gets an emergency check so a
        // burst arriving between ticks cannot silently fill the shadow
        // (the threshold baseline deliberately has no such safety net —
        // that naivety is exactly what §8.5 measures).
        let emergency = matches!(self.config.trigger, MigrationTrigger::Predictive { .. })
            && self.shadow_len() as f64 >= 0.9 * self.shadow_capacity() as f64;
        if (self
            .manager
            .wants_migration_inline(self.shadow_len(), self.shadow_capacity())
            || emergency)
            && !self.manager.is_busy(now)
        {
            self.migrate(now);
        }
        report
    }

    /// Installs a rule directly in the main table, then re-cuts any
    /// lower-priority shadow rules it now overlaps (the symmetric case of
    /// Fig. 6 — required to keep the shadow-first lookup correct).
    fn insert_to_main(
        &mut self,
        rule: Rule,
        route: Route,
        guaranteed: bool,
    ) -> Result<ActionReport, HermesError> {
        route.record();
        let rep = self.dev_insert(MAIN, rule).map_err(|e| match e {
            TcamError::Full => HermesError::DeviceFull,
            e => HermesError::Device(e),
        })?;
        self.main_index.insert(rule);
        self.prio_add(rule.priority);
        self.intent.record(IntentOp::Install(rule));
        self.stats.main_inserts += 1;

        let latency = rep.latency + self.recut_below(rule);

        // Main-table routes are outside the guarantee contract except for
        // MainShadowFull: over-rate traffic is explicitly best-effort
        // ("Hermes uses the main table to service the additional commands
        // over the approved rate"), and the low-priority / fragmentation
        // bypasses are Hermes's own optimizations that stay cheap. Only a
        // shadow-table overflow breaks a promise.
        let violated = guaranteed && route.breaks_guarantee();
        if violated {
            self.stats.violations += 1;
        }
        Ok(ActionReport {
            latency,
            detail: ReportDetail::Insert {
                route,
                pieces: 1,
                guaranteed,
                violated,
            },
        })
    }

    /// Inserts a whole slice of rules as a batched control-plane pipeline:
    /// one Gate Keeper admission pass over the slice, then every run of
    /// consecutive shadow-bound rules pushed through a *single* device
    /// transaction (one handshake, one coalesced shift plan). Returns one
    /// outcome per rule, in submission order.
    ///
    /// Semantics match [`insert`](Self::insert) called once per rule, with
    /// two documented deviations inherent to batching:
    ///
    /// * the token bucket and low-priority bypass see the batch's single
    ///   arrival instant and a pre-batch `lowest_live_priority` snapshot
    ///   (see [`GateKeeper::admit_batch`]);
    /// * the shared transaction's latency is split evenly across the
    ///   batch's shadow-bound rules, and the migration trigger is
    ///   evaluated once after the batch rather than after every rule.
    ///
    /// Correctness is *not* relaxed: a rule routed to the main table mid-
    /// batch first flushes the pending shadow transaction, so the Fig. 6
    /// re-cut always runs against fully installed pieces and the
    /// shadow-first lookup invariant holds at every device-op boundary.
    pub fn admit_batch(
        &mut self,
        rules: &[Rule],
        now: SimTime,
    ) -> Vec<Result<ActionReport, HermesError>> {
        self.clock = self.clock.max(now);
        let mut results: Vec<Option<Result<ActionReport, HermesError>>> =
            (0..rules.len()).map(|_| None).collect();

        // Phase 0: validation and degraded-mode deferral, in order.
        let mut admitted: Vec<(usize, Rule)> = Vec::new();
        let mut seen: BTreeSet<RuleId> = BTreeSet::new();
        for (i, rule) in rules.iter().enumerate() {
            if rule.id.0 >= PHYS_BASE {
                results[i] = Some(Err(HermesError::IdOutOfRange(rule.id)));
                continue;
            }
            if self.contains(rule.id) || !seen.insert(rule.id) {
                results[i] = Some(Err(HermesError::Duplicate(rule.id)));
                continue;
            }
            if self.recovery.is_degraded() {
                let guaranteed = self.gate.qualifies(rule);
                self.recovery.defer(*rule);
                Route::Deferred.record();
                results[i] = Some(Ok(ActionReport {
                    latency: SimDuration::from_us(10.0),
                    detail: ReportDetail::Insert {
                        route: Route::Deferred,
                        pieces: 0,
                        guaranteed,
                        violated: false,
                    },
                }));
                continue;
            }
            admitted.push((i, *rule));
        }

        // Phase 1: one Gate Keeper pass over the admitted slice.
        let lowest = self.lowest_live_priority();
        let admitted_rules: Vec<Rule> = admitted.iter().map(|(_, r)| *r).collect();
        let routes = self.gate.admit_batch(&admitted_rules, now, lowest);

        // Phase 2: route each rule, accumulating consecutive shadow-bound
        // installs into one pending transaction. Any main-table landing
        // flushes the pending batch first (see the doc comment).
        let mut pending: Vec<PlannedShadow> = Vec::new();
        let mut pending_ops: Vec<TcamOp> = Vec::new();
        let mut pending_pieces = 0usize;
        for ((idx, rule), route) in admitted.into_iter().zip(routes) {
            self.stats.inserts += 1;
            self.manager.record_arrival();
            let guaranteed = self.gate.qualifies(&rule);
            if let Some(route) = route {
                self.flush_shadow_batch(&mut pending, &mut pending_ops, &mut results);
                pending_pieces = 0;
                results[idx] = Some(self.insert_to_main(rule, route, guaranteed));
                continue;
            }
            let limit = self.config.max_partitions;
            let outcome = match partition_new_rule_bounded(&rule, &self.main_index, limit) {
                Ok(o) => o,
                Err(_) => {
                    self.flush_shadow_batch(&mut pending, &mut pending_ops, &mut results);
                    pending_pieces = 0;
                    results[idx] =
                        Some(self.insert_to_main(rule, Route::MainTooFragmented, guaranteed));
                    continue;
                }
            };
            // Capacity and guarantee estimates must count the pieces
            // already planned but not yet written.
            let shadow_free = self
                .device
                .slice(SHADOW)
                .table
                .free()
                .saturating_sub(pending_pieces);
            let mut route = self.gate.post_route(outcome.pieces.len(), shadow_free);
            if route == Route::Shadow && outcome.pieces.len() > 1 {
                let mut est = SimDuration::ZERO;
                let occ = self.shadow_len() + pending_pieces;
                for j in 0..outcome.pieces.len() {
                    est += self.device.model().worst_insert_latency(occ + j);
                }
                if est > self.config.guarantee {
                    route = Route::MainTooFragmented;
                }
            }
            match route {
                Route::Redundant => {
                    // Installs nothing (Fig. 5(a)) — pure bookkeeping, no
                    // flush needed.
                    self.stats.redundant_inserts += 1;
                    let entry = ShadowEntry {
                        original: rule,
                        pieces: Vec::new(),
                        cut_against: outcome.cut_against.clone(),
                    };
                    self.register_blockers(rule.id, &outcome.cut_against);
                    self.shadow.insert(rule.id, entry);
                    self.shadow_order.push(rule.id);
                    self.prio_add(rule.priority);
                    self.intent.record(IntentOp::Install(rule));
                    Route::Redundant.record();
                    results[idx] = Some(Ok(ActionReport {
                        latency: SimDuration::from_us(10.0),
                        detail: ReportDetail::Insert {
                            route: Route::Redundant,
                            pieces: 0,
                            guaranteed,
                            violated: false,
                        },
                    }));
                }
                Route::Shadow => {
                    let intact = outcome.is_intact(&rule.key);
                    let mut piece_ids = Vec::with_capacity(outcome.pieces.len());
                    for key in &outcome.pieces {
                        let pid = self.alloc_phys();
                        piece_ids.push((pid, *key));
                        pending_ops.push(TcamOp::Insert(Rule {
                            id: pid,
                            key: *key,
                            ..rule
                        }));
                    }
                    pending_pieces += piece_ids.len();
                    pending.push(PlannedShadow {
                        idx,
                        rule,
                        pieces: piece_ids,
                        cut_against: outcome.cut_against,
                        intact,
                        guaranteed,
                    });
                }
                other => {
                    self.flush_shadow_batch(&mut pending, &mut pending_ops, &mut results);
                    pending_pieces = 0;
                    results[idx] = Some(self.insert_to_main(rule, other, guaranteed));
                }
            }
        }
        self.flush_shadow_batch(&mut pending, &mut pending_ops, &mut results);

        // Phase 3: one migration-trigger check for the whole batch (the
        // per-insert check of `insert_live`, amortized).
        let emergency = matches!(self.config.trigger, MigrationTrigger::Predictive { .. })
            && self.shadow_len() as f64 >= 0.9 * self.shadow_capacity() as f64;
        if (self
            .manager
            .wants_migration_inline(self.shadow_len(), self.shadow_capacity())
            || emergency)
            && !self.manager.is_busy(now)
        {
            self.migrate(now);
        }
        results
            .into_iter()
            .map(|r| {
                r.expect("INVARIANT: every submitted rule is resolved by one admit_batch phase")
            })
            .collect()
    }

    /// Writes one pending shadow transaction and completes each planned
    /// rule's bookkeeping. The shared handshake's latency is split evenly
    /// across the batch; if the transaction is rejected whole, each rule
    /// falls back to its own per-piece install so one unplaceable rule
    /// cannot sink its batch-mates.
    fn flush_shadow_batch(
        &mut self,
        pending: &mut Vec<PlannedShadow>,
        ops: &mut Vec<TcamOp>,
        results: &mut [Option<Result<ActionReport, HermesError>>],
    ) {
        if pending.is_empty() {
            return;
        }
        let planned = std::mem::take(pending);
        let ops = std::mem::take(ops);
        match self.dev_apply_batch(SHADOW, &ops) {
            Ok(rep) => {
                let share = rep.latency.mul_f64(1.0 / planned.len() as f64);
                for p in planned {
                    let idx = p.idx;
                    results[idx] = Some(self.commit_shadow_rule(p, share));
                }
            }
            Err(_) => {
                for p in planned {
                    let idx = p.idx;
                    results[idx] = Some(self.install_shadow_rule_singly(p));
                }
            }
        }
    }

    /// Bookkeeping for one shadow rule whose pieces are physically
    /// installed (shared by the batched and per-op fallback paths).
    // INVARIANT: the physical write already happened in the caller
    // (batched flush or per-op fallback) — intent is recorded here so the
    // checkpoint sees exactly the rules whose pieces reached the device.
    fn commit_shadow_rule(
        &mut self,
        p: PlannedShadow,
        latency: SimDuration,
    ) -> Result<ActionReport, HermesError> {
        self.stats.shadow_inserts += 1;
        self.stats.pieces_written += p.pieces.len() as u64;
        if !p.intact {
            self.stats.rules_cut += 1;
        }
        let violated = p.guaranteed && latency > self.config.guarantee;
        if violated {
            self.stats.violations += 1;
        }
        let pieces = p.pieces.len();
        let entry = ShadowEntry {
            original: p.rule,
            pieces: p.pieces,
            cut_against: p.cut_against.clone(),
        };
        self.register_blockers(p.rule.id, &p.cut_against);
        self.shadow.insert(p.rule.id, entry);
        self.shadow_order.push(p.rule.id);
        self.prio_add(p.rule.priority);
        self.intent.record(IntentOp::Install(p.rule));
        Route::Shadow.record();
        hermes_telemetry::observe("gatekeeper.shadow_insert_ns", latency.as_nanos());
        Ok(ActionReport {
            latency,
            detail: ReportDetail::Insert {
                route: Route::Shadow,
                pieces,
                guaranteed: p.guaranteed,
                violated,
            },
        })
    }

    /// Per-op fallback for one planned shadow rule (reusing its allocated
    /// physical ids): install each piece individually, rolling back the
    /// partial transaction on failure — a replica of the `insert_live`
    /// shadow arm.
    fn install_shadow_rule_singly(
        &mut self,
        p: PlannedShadow,
    ) -> Result<ActionReport, HermesError> {
        let mut latency = SimDuration::ZERO;
        let mut installed: Vec<(RuleId, TernaryKey)> = Vec::with_capacity(p.pieces.len());
        for (pid, key) in &p.pieces {
            let phys = Rule {
                id: *pid,
                key: *key,
                ..p.rule
            };
            match self.dev_apply(SHADOW, &ControlAction::Insert(phys)) {
                Ok(rep) => {
                    latency += rep.latency;
                    installed.push((*pid, *key));
                }
                Err(e) => {
                    for (pid, _) in &installed {
                        self.dev_delete_or_journal(SHADOW, *pid);
                    }
                    self.recovery.stats.rollbacks += 1;
                    return Err(match e {
                        TcamError::Full => HermesError::DeviceFull,
                        e => HermesError::Device(e),
                    });
                }
            }
        }
        self.commit_shadow_rule(p, latency)
    }

    /// Narrows every shadow-resident rule of *strictly lower* priority
    /// whose *installed pieces* overlap a rule that just landed in the
    /// main table. Without this, the shadow-first lookup would let those
    /// rules wrongly win inside the new rule's region (the symmetric case
    /// of the Fig. 4(b) violation).
    ///
    /// This is incremental: the pieces already avoid every older
    /// higher-priority main rule, so only a cut against the *new* rule is
    /// needed — not a full re-partition.
    fn recut_below(&mut self, new_main: Rule) -> SimDuration {
        let mut affected: Vec<RuleId> = self
            .shadow
            .values()
            .filter(|e| {
                e.original.priority < new_main.priority
                    && e.pieces.iter().any(|(_, k)| k.overlaps(&new_main.key))
            })
            .map(|e| e.original.id)
            .collect();
        // The op sequence must be deterministic (fault plans and latencies
        // depend on it). BTreeMap iteration is already RuleId-sorted; the
        // explicit sort documents the requirement and keeps it true even
        // if the container changes again.
        affected.sort_unstable_by_key(|id| id.0);
        let mut latency = SimDuration::ZERO;
        for id in affected {
            latency += self.narrow_shadow_rule(id, new_main);
        }
        latency
    }

    /// Cuts the overlapping pieces of one shadow rule against a single new
    /// main-table key (make-before-break). Falls back to evicting the rule
    /// to the main table if the shadow cannot hold the replacements.
    fn narrow_shadow_rule(&mut self, id: RuleId, against: Rule) -> SimDuration {
        let entry = match self.shadow.get(&id) {
            Some(e) => e.clone(),
            None => return SimDuration::ZERO,
        };
        let mut kept: Vec<(RuleId, TernaryKey)> = Vec::with_capacity(entry.pieces.len());
        let mut doomed: Vec<RuleId> = Vec::new();
        let mut replacements: Vec<TernaryKey> = Vec::new();
        for (pid, key) in &entry.pieces {
            if key.overlaps(&against.key) {
                doomed.push(*pid);
                replacements.extend(key.difference(&against.key));
            } else {
                kept.push((*pid, *key));
            }
        }
        if doomed.is_empty() {
            // A recursive eviction triggered by an earlier rule in this
            // recut pass may have already narrowed this rule.
            return SimDuration::ZERO;
        }
        let replacements = hermes_rules::merge::minimize_keys(replacements);
        if kept.len() + replacements.len() > self.config.max_partitions {
            return self.evict_shadow_rule_to_main(&entry);
        }
        let mut latency = SimDuration::ZERO;
        let mut new_ids = Vec::with_capacity(replacements.len());
        for key in &replacements {
            let pid = self.alloc_phys();
            let phys = Rule {
                id: pid,
                key: *key,
                ..entry.original
            };
            match self.dev_apply(SHADOW, &ControlAction::Insert(phys)) {
                Ok(rep) => {
                    latency += rep.latency;
                    new_ids.push((pid, *key));
                }
                Err(_) => {
                    // Roll back the partial narrow and fall back to the
                    // main table (correct, unguaranteed).
                    for (pid, _) in &new_ids {
                        latency += self.dev_delete_or_journal(SHADOW, *pid);
                    }
                    self.recovery.stats.rollbacks += 1;
                    return latency + self.evict_shadow_rule_to_main(&entry);
                }
            }
        }
        for pid in &doomed {
            latency += self.dev_delete_or_journal(SHADOW, *pid);
        }
        kept.extend(new_ids);
        // The rule now also depends on the new main rule for its shape —
        // registered by identity (two main rules may share a key).
        if let Some(e) = self.shadow.get_mut(&id) {
            e.pieces = kept;
            if !e.cut_against.contains(&against.id) {
                e.cut_against.push(against.id);
            }
        }
        self.register_blockers(id, &[against.id]);
        self.stats.repartitions += 1;
        latency
    }

    /// Recomputes the partition of a shadow-resident rule against the
    /// current main table, replacing its pieces. Returns the TCAM time
    /// spent.
    fn repartition_shadow_rule(&mut self, id: RuleId) -> SimDuration {
        let entry = match self.shadow.get(&id) {
            Some(e) => e.clone(),
            None => return SimDuration::ZERO,
        };
        let limit = self.config.max_partitions;
        let outcome = match partition_new_rule_bounded(&entry.original, &self.main_index, limit) {
            Ok(o) => o,
            // Fragmentation blow-up on re-partition: move the rule to the
            // main table instead (correct, unguaranteed), mirroring the
            // insert-time bypass.
            Err(_) => return self.evict_shadow_rule_to_main(&entry),
        };
        let mut latency = SimDuration::ZERO;

        // Install the new pieces first (make-before-break), then remove the
        // old ones, so the rule's coverage never drops below its target.
        let mut new_ids = Vec::with_capacity(outcome.pieces.len());
        for key in &outcome.pieces {
            let pid = self.alloc_phys();
            let phys = Rule {
                id: pid,
                key: *key,
                ..entry.original
            };
            match self.dev_apply(SHADOW, &ControlAction::Insert(phys)) {
                Ok(rep) => {
                    latency += rep.latency;
                    new_ids.push((pid, *key));
                }
                Err(_) => {
                    // Shadow full (or channel dead) mid-repartition: roll
                    // back the new pieces and fall back to the main table.
                    for (pid, _) in &new_ids {
                        latency += self.dev_delete_or_journal(SHADOW, *pid);
                    }
                    self.recovery.stats.rollbacks += 1;
                    return latency + self.evict_shadow_rule_to_main(&entry);
                }
            }
        }
        for (pid, _) in &entry.pieces {
            latency += self.dev_delete_or_journal(SHADOW, *pid);
        }
        self.unregister_blockers(id, &entry.cut_against);
        self.register_blockers(id, &outcome.cut_against);
        if let Some(e) = self.shadow.get_mut(&id) {
            e.pieces = new_ids;
            e.cut_against = outcome.cut_against;
        }
        self.stats.repartitions += 1;
        latency
    }

    /// Moves a shadow-resident logical rule into the main table: deletes
    /// its shadow pieces, installs the original in the main slice and
    /// re-cuts any lower-priority shadow rules it now overlaps. Correct
    /// (TCAM priority resolution takes over) but unguaranteed.
    fn evict_shadow_rule_to_main(&mut self, entry: &ShadowEntry) -> SimDuration {
        let id = entry.original.id;
        let mut latency = SimDuration::ZERO;
        for (pid, _) in &entry.pieces {
            latency += self.dev_delete_or_journal(SHADOW, *pid);
        }
        self.unregister_blockers(id, &entry.cut_against);
        self.shadow.remove(&id);
        self.shadow_order.retain(|r| *r != id);
        // The rule is main-resident by *intent* from here on, whether or
        // not the write lands right now: on a channel failure the audit
        // re-installs it from `main_index` instead of the rule being lost.
        if let Ok(rep) = self.dev_insert(MAIN, entry.original) {
            latency += rep.latency;
        }
        self.main_index.insert(entry.original);
        // The rule is now a main rule: lower-priority shadow rules
        // overlapping it must be re-cut, exactly as on any other
        // main-table insertion.
        latency += self.recut_below(entry.original);
        self.stats.repartitions += 1;
        latency
    }

    /// Deletes a logical rule.
    pub fn delete(&mut self, id: RuleId, now: SimTime) -> Result<ActionReport, HermesError> {
        self.clock = self.clock.max(now);
        self.stats.deletes += 1;
        // A rule still queued by degraded mode is logically installed but
        // physically nowhere: deleting it is pure bookkeeping.
        if let Some(pos) = self.recovery.deferred.iter().position(|r| r.id == id) {
            self.recovery.deferred.remove(pos);
            self.recovery.stats.deferred_dropped += 1;
            return Ok(ActionReport {
                latency: SimDuration::from_us(10.0),
                detail: ReportDetail::Delete {
                    pieces_removed: 0,
                    repartitioned: 0,
                },
            });
        }
        if let Some(entry) = self.shadow.remove(&id) {
            let mut latency = SimDuration::ZERO;
            for (pid, _) in &entry.pieces {
                latency += self.dev_delete_or_journal(SHADOW, *pid);
            }
            if entry.pieces.is_empty() {
                latency += SimDuration::from_us(10.0); // agent bookkeeping only
            }
            self.unregister_blockers(id, &entry.cut_against);
            self.shadow_order.retain(|r| *r != id);
            self.prio_remove(entry.original.priority);
            self.intent.record(IntentOp::Remove(id));
            return Ok(ActionReport {
                latency,
                detail: ReportDetail::Delete {
                    pieces_removed: entry.pieces.len(),
                    repartitioned: 0,
                },
            });
        }
        if let Some(rule) = self.main_index.remove(id) {
            // Journaled on failure; NotFound means the original install
            // was silently dropped, so the entry is already gone.
            let mut latency = self.dev_delete_or_journal(MAIN, id);
            self.prio_remove(rule.priority);
            self.intent.record(IntentOp::Remove(id));
            // Fig. 6: un-partition every shadow rule that was cut against
            // the deleted rule.
            let dependents = self.blockers.remove(&id).unwrap_or_default();
            let repartitioned = dependents.len();
            for dep in dependents {
                latency += self.repartition_shadow_rule(dep);
            }
            return Ok(ActionReport {
                latency,
                detail: ReportDetail::Delete {
                    pieces_removed: 1,
                    repartitioned,
                },
            });
        }
        self.stats.deletes -= 1;
        Err(HermesError::NotFound(id))
    }

    /// Modifies a logical rule. Priority changes become delete+insert
    /// (§4.1); action-only changes are applied in place.
    pub fn modify(
        &mut self,
        id: RuleId,
        action: Option<Action>,
        priority: Option<Priority>,
        now: SimTime,
    ) -> Result<ActionReport, HermesError> {
        self.clock = self.clock.max(now);
        let current = self.get(id).ok_or(HermesError::NotFound(id))?;
        // A rule still queued by degraded mode is modified in the queue.
        if let Some(queued) = self.recovery.deferred.iter_mut().find(|r| r.id == id) {
            if let Some(a) = action {
                queued.action = a;
            }
            let in_place = match priority {
                Some(p) if p != queued.priority => {
                    queued.priority = p;
                    false
                }
                _ => true,
            };
            self.stats.modifies += 1;
            return Ok(ActionReport {
                latency: SimDuration::from_us(10.0),
                detail: ReportDetail::Modify { in_place },
            });
        }
        if let Some(new_prio) = priority {
            if new_prio != current.priority {
                let del = self.delete(id, now)?;
                let mut rule = current;
                rule.priority = new_prio;
                if let Some(a) = action {
                    rule.action = a;
                }
                let ins = match self.insert(rule, now) {
                    Ok(rep) => rep,
                    Err(e) => {
                        // Atomicity under faults: the delete leg already
                        // landed, so a failed re-insert must not lose the
                        // rule — a failed modify means "old rule still
                        // stands". Restore the original; if the channel is
                        // still refusing writes, park it in the degraded
                        // queue, where it stays logically present and
                        // flushes on recovery.
                        if self.insert(current, now).is_err()
                            && !self.recovery.deferred.iter().any(|r| r.id == id)
                        {
                            self.recovery.defer(current);
                        }
                        return Err(e);
                    }
                };
                // The delete+insert counts as one modify.
                self.stats.deletes -= 1;
                self.stats.inserts -= 1;
                self.stats.modifies += 1;
                return Ok(ActionReport {
                    latency: del.latency + ins.latency,
                    detail: ReportDetail::Modify { in_place: false },
                });
            }
        }
        let Some(new_action) = action else {
            // Nothing to change.
            self.stats.modifies += 1;
            return Ok(ActionReport {
                latency: SimDuration::from_us(10.0),
                detail: ReportDetail::Modify { in_place: true },
            });
        };
        self.stats.modifies += 1;
        let mut latency = SimDuration::ZERO;
        if let Some(entry) = self.shadow.get_mut(&id) {
            entry.original.action = new_action;
            let pieces = entry.pieces.clone();
            for (pid, _) in pieces {
                // Bookkeeping already carries the new action; a device
                // failure here (or a silently-dropped piece, surfacing as
                // NotFound) leaves action drift for the audit to repair.
                if let Ok(rep) = self.dev_apply(
                    SHADOW,
                    &ControlAction::Modify {
                        id: pid,
                        action: Some(new_action),
                        priority: None,
                    },
                ) {
                    latency += rep.latency;
                }
            }
        } else {
            // INVARIANT: `current` came from get(), the deferred and
            // shadow branches returned above, so the rule is main-resident.
            let mut rule = self.main_index.get(id).expect("checked contains");
            rule.action = new_action;
            self.main_index.insert(rule); // replace
            if let Ok(rep) = self.dev_apply(
                MAIN,
                &ControlAction::Modify {
                    id,
                    action: Some(new_action),
                    priority: None,
                },
            ) {
                latency += rep.latency;
            }
        }
        self.intent.record(IntentOp::Modify {
            id,
            action: new_action,
        });
        Ok(ActionReport {
            latency,
            detail: ReportDetail::Modify { in_place: true },
        })
    }

    /// Periodic Rule Manager tick: feeds the predictor and migrates when
    /// the trigger fires. Call every `config.tick` of simulated time.
    ///
    /// The tick is also the recovery heartbeat: it replays the journal of
    /// failed physical deletes and drains the degraded-mode queue (which
    /// doubles as the channel probe — the first successful flush ends the
    /// degraded episode automatically).
    pub fn tick(&mut self, now: SimTime) -> Option<MigrationReport> {
        self.clock = self.clock.max(now);
        if self.is_down() {
            self.resync(now);
            if self.is_down() {
                // Reconnect denied: the journal, queue and migration all
                // need a live session — retry on the next tick.
                return None;
            }
        }
        if hermes_telemetry::enabled() {
            hermes_telemetry::gauge(
                "recovery.journal_depth",
                self.recovery.pending_gc.len() as f64,
            );
            hermes_telemetry::gauge(
                "gatekeeper.deferred_depth",
                self.recovery.deferred.len() as f64,
            );
            hermes_telemetry::gauge(
                "resync.intent_journal_depth",
                self.intent.journal_depth() as f64,
            );
        }
        self.replay_journal();
        self.flush_deferred(now);
        let r_p = self.stats.expected_partitions();
        let migrated = if self
            .manager
            .on_tick(now, self.shadow_len(), self.shadow_capacity(), r_p)
        {
            Some(self.migrate(now))
        } else {
            None
        };
        if hermes_telemetry::enabled() {
            hermes_telemetry::series(
                "manager.shadow_occupancy",
                now.as_nanos(),
                self.shadow_len() as f64,
            );
        }
        migrated
    }

    /// Drains the degraded-mode admission queue through the live insert
    /// path, in arrival order. Stops at the first device failure (the
    /// channel is still dead) and re-queues the remainder. Returns the
    /// number flushed and the control-plane time spent.
    fn flush_deferred(&mut self, now: SimTime) -> (usize, SimDuration) {
        let mut flushed = 0;
        let mut latency = SimDuration::ZERO;
        while !self.recovery.deferred.is_empty() {
            let rule = self.recovery.deferred.remove(0);
            match self.insert_live(rule, now) {
                Ok(rep) => {
                    latency += rep.latency;
                    flushed += 1;
                    self.recovery.stats.deferred_flushed += 1;
                }
                Err(HermesError::Device(_)) => {
                    // Channel still dead: put it back at the front and
                    // stop probing.
                    self.recovery.deferred.insert(0, rule);
                    break;
                }
                Err(_) => {
                    // Permanently unplaceable (e.g. the table filled while
                    // the rule waited): drop it, surfaced by the counter.
                    self.recovery.stats.deferred_dropped += 1;
                }
            }
        }
        (flushed, latency)
    }

    /// Runs one migration pass (Fig. 7): every logical shadow rule is
    /// rewritten into its original (un-cut) form in the main table — the
    /// optimization step, since one original replaces up to `r_p` pieces —
    /// then its shadow pieces are deleted. Rules move in ascending priority
    /// order so remaining (higher-priority) shadow rules never need
    /// re-cutting mid-flight.
    pub fn migrate(&mut self, now: SimTime) -> MigrationReport {
        if self.is_down() {
            // The session is dead mid-crash: every op would fail and the
            // pass would abort anyway. Resync re-opens the path first.
            return MigrationReport::default();
        }
        if self.config.batched_migration {
            self.migrate_batched(now)
        } else {
            self.migrate_per_rule(now)
        }
    }

    /// The batched migration pass: the whole shadow drain planned up front
    /// ([`RuleManager::plan_migration_batch`]) and pushed through two
    /// device transactions — one main-table insert batch (step 3 for every
    /// rule at once, make-before-break held batch-wise), then one shadow
    /// piece-delete batch (step 4). Falls back to the per-rule path when
    /// the insert batch cannot apply atomically (main table full, or a
    /// stale duplicate needing per-rule self-healing), and aborts the pass
    /// wholesale on a transient channel failure — the rejected batch moved
    /// nothing, so the cut invariant is untouched.
    fn migrate_batched(&mut self, now: SimTime) -> MigrationReport {
        let mut report = MigrationReport::default();
        if self.shadow_order.is_empty() {
            return report;
        }
        let items: Vec<(Rule, Vec<RuleId>)> = self
            .shadow_order
            .iter()
            .map(|id| {
                let e = &self.shadow[id];
                (e.original, e.pieces.iter().map(|(pid, _)| *pid).collect())
            })
            .collect();
        let plan = self.manager.plan_migration_batch(&items);
        let insert_ops: Vec<TcamOp> = plan.inserts.iter().copied().map(TcamOp::Insert).collect();
        match self.dev_apply_batch(MAIN, &insert_ops) {
            Ok(rep) => {
                report.duration += rep.latency;
                report.entries_written += rep.report.inserts;
            }
            // Main full or a stale duplicate: the batch rejects whole, but
            // the per-rule path can still make partial progress (and
            // self-heal stale duplicates) — retarget the pass there.
            Err(TcamError::Full) | Err(TcamError::Duplicate(_)) => {
                return self.migrate_per_rule(now);
            }
            // Channel dead even after retries: abort the whole pass. The
            // atomic batch applied nothing, so every rule simply stays in
            // the shadow — make-before-break means nothing was broken.
            Err(_) => return self.finish_migration(now, report),
        }
        for id in &plan.order {
            let Some(entry) = self.shadow.remove(id) else {
                continue;
            };
            self.main_index.insert(entry.original);
            self.unregister_blockers(*id, &entry.cut_against);
            report.entries_saved += entry.pieces.len().saturating_sub(1);
            report.rules_migrated += 1;
        }
        self.shadow_order.clear();
        let delete_ops: Vec<TcamOp> = plan
            .piece_deletes
            .iter()
            .copied()
            .map(TcamOp::Delete)
            .collect();
        match self.dev_apply_batch(SHADOW, &delete_ops) {
            Ok(rep) => {
                report.duration += rep.latency;
                report.pieces_deleted += rep.report.deletes;
            }
            // The delete batch rejects whole on its first bad op (e.g. a
            // silently-dropped piece surfacing as NotFound): release each
            // piece individually instead, where NotFound is success and a
            // channel refusal journals the delete for idempotent replay.
            Err(_) => {
                for pid in &plan.piece_deletes {
                    report.duration += self.dev_delete_or_journal(SHADOW, *pid);
                    report.pieces_deleted += 1;
                }
            }
        }
        self.finish_migration(now, report)
    }

    /// The legacy one-op-per-rule migration pass (ablation baseline, and
    /// the fallback when a batched pass cannot apply atomically).
    fn migrate_per_rule(&mut self, now: SimTime) -> MigrationReport {
        let mut report = MigrationReport::default();
        if self.shadow_order.is_empty() {
            return report;
        }
        // Ascending priority, FIFO among equals (sort is stable).
        let mut order = self.shadow_order.clone();
        order.sort_by_key(|id| self.shadow[id].original.priority);

        for id in order {
            let entry = match self.shadow.get(&id) {
                Some(e) => e.clone(),
                None => continue,
            };
            // Step 3: write the original into the main table first…
            match self.dev_insert(MAIN, entry.original) {
                Ok(rep) => {
                    report.duration += rep.latency;
                    report.entries_written += 1;
                }
                // Main full or channel dead: the per-rule transaction
                // aborts with no side effects — the rule simply stays in
                // the shadow (make-before-break means nothing was broken).
                // The whole PASS must abort too, not just this rule: later
                // rules in the order have priority ≥ this one, and moving
                // any of them to the main table would leave this rule's
                // shadow pieces un-cut against a higher-priority main rule,
                // breaking the shadow-first lookup invariant.
                Err(_) => break,
            }
            self.main_index.insert(entry.original);
            // …then (step 4) remove its shadow pieces. A piece the channel
            // refuses to release is journaled; until replay or audit GCs
            // it, the duplicate coverage is harmless (same rule, both
            // tables — make-before-break's own intermediate state).
            for (pid, _) in &entry.pieces {
                report.duration += self.dev_delete_or_journal(SHADOW, *pid);
                report.pieces_deleted += 1;
            }
            report.entries_saved += entry.pieces.len().saturating_sub(1);
            self.unregister_blockers(id, &entry.cut_against);
            self.shadow.remove(&id);
            self.shadow_order.retain(|r| *r != id);
            report.rules_migrated += 1;
        }
        self.finish_migration(now, report)
    }

    /// Shared migration epilogue: pause accounting, the busy window, stats
    /// and telemetry.
    fn finish_migration(&mut self, now: SimTime, mut report: MigrationReport) -> MigrationReport {
        if self.config.mode == MigrationMode::PauseAndSwap {
            report.pipeline_paused = report.duration;
        }
        self.manager.migration_started(now, report.duration);
        self.stats.migrations += 1;
        self.stats.rules_migrated += report.rules_migrated as u64;
        if hermes_telemetry::enabled() {
            hermes_telemetry::counter("manager.migrations", 1);
            hermes_telemetry::counter("manager.entries_saved", report.entries_saved as u64);
            hermes_telemetry::observe("manager.migration_batch", report.rules_migrated as u64);
            hermes_telemetry::observe("manager.migration_ns", report.duration.as_nanos());
            hermes_telemetry::span(
                "manager",
                "migrate",
                now.as_nanos(),
                report.duration.as_nanos(),
            );
        }
        report
    }

    /// Reconciliation audit (recovery layer 3): one sweep that makes the
    /// device converge to the controller's logical view.
    ///
    /// The sweep (1) replays the journal of failed physical deletes,
    /// (2) diffs each slice against the bookkeeping — deleting orphans,
    /// repairing action/shape drift in place, re-installing silently
    /// dropped entries — (3) evicts shadow rules whose pieces no longer
    /// fit (silent drops can let the admission path oversubscribe the
    /// shadow), and (4) drains the degraded-mode queue. Every repair op
    /// goes through the retry layer; if the channel is still faulty the
    /// report comes back with `complete = false` and the sweep can simply
    /// be run again — all repairs are idempotent. A report for which
    /// [`AuditReport::clean`] holds certifies that the device exactly
    /// matches the logical view.
    pub fn audit(&mut self, now: SimTime) -> AuditReport {
        self.clock = self.clock.max(now);
        if self.is_down() {
            let resynced = self.resync(now);
            if self.is_down() {
                // Reconnect denied: the sweep cannot read the device.
                // Incomplete by definition — callers loop until clean.
                return AuditReport {
                    complete: false,
                    duration: resynced.map(|r| r.duration).unwrap_or(SimDuration::ZERO),
                    ..AuditReport::default()
                };
            }
        }
        let mut report = AuditReport {
            complete: true,
            ..AuditReport::default()
        };
        let (replayed, lat) = self.replay_journal();
        report.journal_replayed = replayed;
        report.duration += lat;
        if !self.recovery.pending_gc.is_empty() {
            report.complete = false;
        }

        // Expected physical state of the shadow slice: the union of every
        // resident rule's pieces, carrying the owner's priority and action.
        let expected_shadow = self.expected_slice(SHADOW);
        let evict = self.reconcile_slice(SHADOW, &expected_shadow, &mut report);

        let expected_main = self.expected_slice(MAIN);
        // Main reinstalls hit `Full` only when the table is genuinely out
        // of space; there is no eviction target, so the list is empty.
        let _ = self.reconcile_slice(MAIN, &expected_main, &mut report);

        for id in evict {
            if let Some(entry) = self.shadow.get(&id).cloned() {
                report.duration += self.evict_shadow_rule_to_main(&entry);
                report.evicted += 1;
            }
        }

        let (flushed, lat) = self.flush_deferred(now);
        report.deferred_flushed = flushed;
        report.duration += lat;

        self.recovery.stats.audits += 1;
        self.recovery.stats.audit_diffs += report.diffs() as u64;
        self.recovery.stats.reinstalled += report.reinstalled as u64;
        self.recovery.stats.orphans_removed += report.orphans_removed as u64;
        self.recovery.stats.actions_fixed += report.actions_fixed as u64;
        if hermes_telemetry::enabled() {
            hermes_telemetry::counter("recovery.audits", 1);
            hermes_telemetry::counter("recovery.audit_diffs", report.diffs() as u64);
            hermes_telemetry::span(
                "recovery",
                "audit",
                now.as_nanos(),
                report.duration.as_nanos(),
            );
        }
        report
    }

    /// Diffs one slice against its expected physical entries and repairs
    /// the device. Returns shadow rules that must be evicted because their
    /// pieces no longer fit.
    fn reconcile_slice(
        &mut self,
        slice: usize,
        expected: &BTreeMap<RuleId, Rule>,
        report: &mut AuditReport,
    ) -> Vec<RuleId> {
        let actual: Vec<Rule> = self.device.slice(slice).table.entries();
        let mut healthy: BTreeSet<RuleId> = BTreeSet::new();
        // Pass 1: orphans and drifted entries.
        for dev_rule in &actual {
            match expected.get(&dev_rule.id) {
                None => {
                    // No logical owner: a stranded piece or stale entry.
                    match self.dev_apply(slice, &ControlAction::Delete(dev_rule.id)) {
                        Ok(rep) => {
                            report.duration += rep.latency;
                            report.orphans_removed += 1;
                        }
                        Err(TcamError::NotFound(_)) => report.orphans_removed += 1,
                        Err(_) => {
                            self.recovery.pending_gc.push((slice, dev_rule.id));
                            report.complete = false;
                        }
                    }
                }
                Some(want) if want.priority != dev_rule.priority || want.key != dev_rule.key => {
                    // Wrong shape (a stale entry under a reused logical
                    // id): remove it; pass 2 installs the intended rule.
                    match self.dev_apply(slice, &ControlAction::Delete(dev_rule.id)) {
                        Ok(rep) => {
                            report.duration += rep.latency;
                            report.actions_fixed += 1;
                        }
                        Err(TcamError::NotFound(_)) => report.actions_fixed += 1,
                        Err(_) => {
                            // Could not clear the stale entry: skip the
                            // reinstall too (it would collide).
                            report.complete = false;
                            healthy.insert(dev_rule.id);
                        }
                    }
                }
                Some(want) if want.action != dev_rule.action => {
                    match self.dev_apply(
                        slice,
                        &ControlAction::Modify {
                            id: dev_rule.id,
                            action: Some(want.action),
                            priority: None,
                        },
                    ) {
                        Ok(rep) => {
                            report.duration += rep.latency;
                            report.actions_fixed += 1;
                        }
                        Err(_) => report.complete = false,
                    }
                    healthy.insert(dev_rule.id);
                }
                Some(_) => {
                    healthy.insert(dev_rule.id);
                }
            }
        }
        // Pass 2: expected entries the device lost (silent drops), in
        // deterministic id order (the map's own order is not).
        let mut missing: Vec<Rule> = expected
            .values()
            .filter(|r| !healthy.contains(&r.id))
            .copied()
            .collect();
        missing.sort_unstable_by_key(|r| r.id.0);
        let mut evict: Vec<RuleId> = Vec::new();
        for want in missing {
            match self.dev_apply(slice, &ControlAction::Insert(want)) {
                Ok(rep) => {
                    report.duration += rep.latency;
                    report.reinstalled += 1;
                }
                Err(TcamError::Full) if slice == SHADOW => {
                    // Silent drops let the admission path oversubscribe
                    // the shadow: move the owning rule to the main table.
                    let owner = self
                        .shadow
                        .values()
                        .find(|e| e.pieces.iter().any(|(pid, _)| *pid == want.id))
                        .map(|e| e.original.id);
                    if let Some(owner) = owner {
                        if !evict.contains(&owner) {
                            evict.push(owner);
                        }
                    }
                }
                Err(_) => report.complete = false,
            }
        }
        evict
    }

    /// The expected physical entries of one slice, as the audit computes
    /// them: the union of every shadow rule's pieces, or the main index.
    fn expected_slice(&self, slice: usize) -> BTreeMap<RuleId, Rule> {
        if slice == SHADOW {
            let mut expected = BTreeMap::new();
            for e in self.shadow.values() {
                for (pid, key) in &e.pieces {
                    expected.insert(
                        *pid,
                        Rule {
                            id: *pid,
                            key: *key,
                            ..e.original
                        },
                    );
                }
            }
            expected
        } else {
            self.main_index.iter().map(|r| (r.id, r)).collect()
        }
    }

    /// Crash-resync pass (see [`crate::resync`]): reconnects the lost
    /// control session with capped deterministic backoff, drains the
    /// delete journal, rebuilds the post-crash table from the durable
    /// intent store — warm mode diffs against survivors, cold mode wipes
    /// and reinstalls the full snapshot, both through the batched
    /// `apply_batch` path — and finally re-establishes the guarantee:
    /// degraded mode ends and the deferred admission queue drains.
    ///
    /// Returns `None` when no crash window is open. An incomplete report
    /// (reconnect still denied, or a repair op failed) keeps the window
    /// open; the next tick/audit retries — every step is idempotent.
    pub fn resync(&mut self, now: SimTime) -> Option<ResyncReport> {
        self.clock = self.clock.max(now);
        if self.device.is_connected() && !self.crash_pending {
            return None;
        }
        // A crash can land between ops (netsim injection, or the fault
        // plan inside another rule's transaction): book it before the
        // rebuild so the window and degraded mode are always stamped.
        self.note_crash();
        self.resync_stats.resyncs_started += 1;
        hermes_telemetry::counter("resync.started", 1);
        let mode = self.config.resync.mode;
        let mut report = ResyncReport::new(mode);

        // Step 1: reconnect. The device may deny the first attempts while
        // it reboots; backoff is deterministic (no jitter) so a crash plan
        // replays byte-for-byte from its seeds.
        let mut attempt = 0u32;
        while !self.device.is_connected() {
            if attempt >= self.config.resync.max_reconnect_attempts {
                self.resync_stats.reconnect_failures += 1;
                hermes_telemetry::counter("resync.reconnect_failures", 1);
                report.complete = false;
                return Some(report);
            }
            attempt += 1;
            if attempt > 1 {
                report.duration += self.config.resync.reconnect_backoff(attempt - 1);
            }
            report.reconnect_attempts += 1;
            self.resync_stats.reconnect_attempts += 1;
            hermes_telemetry::counter("resync.reconnect_attempts", 1);
            self.device.reconnect();
        }

        // Step 2: the delete journal drains first — against a wiped table
        // every journaled delete resolves as already-gone.
        let (_, lat) = self.replay_journal();
        report.duration += lat;

        // Step 3: diff + batched replay.
        match mode {
            ResyncMode::Warm => self.warm_resync(&mut report),
            ResyncMode::Cold => self.cold_resync(&mut report),
        }
        if !self.recovery.pending_gc.is_empty() {
            report.complete = false;
        }

        // Step 4: re-admission. Only a fully-repaired pass closes the
        // crash window; an incomplete one keeps it open so the next
        // tick/audit reruns the (idempotent) rebuild.
        if report.complete {
            self.crash_pending = false;
            let gap = self
                .crash_detected_at
                .take()
                .map(|t| self.clock.since(t).as_nanos())
                .unwrap_or(0)
                + report.duration.as_nanos();
            self.resync_stats.resyncs_completed += 1;
            self.resync_stats.guarantee_gap_ns += gap;
            match mode {
                ResyncMode::Warm => {
                    self.resync_stats.warm_resyncs += 1;
                    hermes_telemetry::counter("resync.warm", 1);
                }
                ResyncMode::Cold => {
                    self.resync_stats.cold_resyncs += 1;
                    hermes_telemetry::counter("resync.cold", 1);
                }
            }
            hermes_telemetry::counter("resync.completed", 1);
            hermes_telemetry::counter("resync.guarantee_gap_ns", gap);
            // The channel is provably live again: end the degraded
            // episode explicitly (a zero-diff resync never touches the
            // device) and drain the queued admissions through the live
            // insert path — the guarantee is formally re-established.
            self.recovery.on_success(self.clock);
            let (_, lat) = self.flush_deferred(now);
            report.duration += lat;
        }
        self.resync_stats.rules_reinstalled += report.reinstalled as u64;
        self.resync_stats.entries_deleted += report.deleted as u64;
        self.resync_stats.survivors_kept += report.survivors as u64;
        hermes_telemetry::counter("resync.reinstalled", report.reinstalled as u64);
        hermes_telemetry::counter("resync.deleted", report.deleted as u64);
        hermes_telemetry::counter("resync.survivors_kept", report.survivors as u64);
        hermes_telemetry::span("resync", "run", now.as_nanos(), report.duration.as_nanos());
        Some(report)
    }

    /// Warm-mode rebuild: per slice, diff the expected physical entries
    /// against the post-crash table and push the minimal repair set
    /// through one batched device transaction. A rejected batch falls
    /// back to the audit's per-op reconciliation, evictions included.
    fn warm_resync(&mut self, report: &mut ResyncReport) {
        for slice in [SHADOW, MAIN] {
            let expected = self.expected_slice(slice);
            let actual = self.device.slice(slice).table.entries();
            let plan = plan_slice(&expected, &actual);
            report.survivors += plan.survivors;
            if plan.is_noop() {
                continue;
            }
            match self.dev_apply_batch(slice, &plan.to_ops()) {
                Ok(rep) => {
                    report.duration += rep.latency;
                    report.deleted += plan.deletes.len();
                    report.fixed += plan.fixes.len();
                    report.reinstalled += plan.installs.len();
                }
                Err(_) => {
                    // Batch rejected (e.g. a pre-crash oversubscribed
                    // shadow): the per-op audit path makes partial
                    // progress and can evict rules to the main table.
                    let mut audit = AuditReport {
                        complete: true,
                        ..AuditReport::default()
                    };
                    let evict = self.reconcile_slice(slice, &expected, &mut audit);
                    for id in evict {
                        if let Some(entry) = self.shadow.get(&id).cloned() {
                            audit.duration += self.evict_shadow_rule_to_main(&entry);
                        }
                    }
                    report.duration += audit.duration;
                    report.deleted += audit.orphans_removed;
                    report.fixed += audit.actions_fixed;
                    report.reinstalled += audit.reinstalled;
                    if !audit.complete {
                        report.complete = false;
                    }
                }
            }
        }
    }

    /// Cold-mode rebuild: distrust every survivor — wipe both slices,
    /// then reinstall the intent snapshot into the main table in chunked
    /// batched transactions. The shadow restarts empty; rules the main
    /// slice cannot hold re-enter through the normal admission path via
    /// the deferred queue.
    fn cold_resync(&mut self, report: &mut ResyncReport) {
        for slice in [SHADOW, MAIN] {
            let actual = self.device.slice(slice).table.entries();
            if actual.is_empty() {
                continue;
            }
            let ops: Vec<TcamOp> = actual.iter().map(|r| TcamOp::Delete(r.id)).collect();
            match self.dev_apply_batch(slice, &ops) {
                Ok(rep) => {
                    report.duration += rep.latency;
                    report.deleted += ops.len();
                }
                Err(_) => {
                    for r in &actual {
                        report.duration += self.dev_delete_or_journal(slice, r.id);
                        report.deleted += 1;
                    }
                }
            }
        }
        // Every logical rule is main-resident by intent after a cold
        // reboot; the old shadow bookkeeping (pieces, cut graph, FIFO
        // order) describes entries that no longer exist.
        let snapshot = self.intent.snapshot();
        self.shadow.clear();
        self.shadow_order.clear();
        self.blockers.clear();
        self.main_index.clear();
        self.prio_counts.clear();
        for r in snapshot.values() {
            self.main_index.insert(*r);
            self.prio_add(r.priority);
        }
        // Reinstall priority-descending (appends under the TCAM priority
        // order — the cheapest shift plan), id-tiebroken for determinism,
        // in bounded chunks so one bad op cannot reject the whole reboot.
        let mut rules: Vec<Rule> = snapshot.into_values().collect();
        rules.sort_unstable_by(|a, b| b.priority.cmp(&a.priority).then(a.id.0.cmp(&b.id.0)));
        for chunk in rules.chunks(1024) {
            let ops: Vec<TcamOp> = chunk.iter().copied().map(TcamOp::Insert).collect();
            match self.dev_apply_batch(MAIN, &ops) {
                Ok(rep) => {
                    report.duration += rep.latency;
                    report.reinstalled += chunk.len();
                }
                Err(_) => {
                    for r in chunk {
                        match self.dev_insert(MAIN, *r) {
                            Ok(rep) => {
                                report.duration += rep.latency;
                                report.reinstalled += 1;
                            }
                            Err(TcamError::Full) => {
                                // The main slice alone cannot hold rules
                                // that lived in the shadow: requeue them
                                // through the normal admission path.
                                self.main_index.remove(r.id);
                                self.prio_remove(r.priority);
                                self.recovery.defer(*r);
                            }
                            Err(_) => report.complete = false,
                        }
                    }
                }
            }
        }
    }

    /// Rewrites a matched partition piece back to its controller-visible
    /// logical rule (same key semantics, logical id and original match).
    fn resolve(&self, result: LookupResult) -> LookupResult {
        if let LookupResult::Matched { slice, rule } = result {
            if rule.id.0 >= PHYS_BASE {
                for entry in self.shadow.values() {
                    if entry.pieces.iter().any(|(pid, _)| *pid == rule.id) {
                        return LookupResult::Matched {
                            slice,
                            rule: Rule {
                                id: entry.original.id,
                                ..rule
                            },
                        };
                    }
                }
            }
        }
        result
    }

    /// Packet lookup through the shadow→main pipeline. Matched partition
    /// pieces are reported under their logical rule id.
    pub fn lookup(&mut self, packet: u128) -> LookupResult {
        let raw = self.device.lookup(packet);
        self.resolve(raw)
    }

    /// Lookup without statistics (oracle comparisons).
    pub fn peek(&self, packet: u128) -> LookupResult {
        self.resolve(self.device.peek(packet))
    }

    /// Re-targets the admission rate after a `ModQoSConfig` (§7).
    pub fn set_rate_limit(&mut self, rate: Option<f64>) {
        self.gate
            .set_rate(rate.map(|r| (r, self.shadow_capacity() as f64)));
    }

    /// Replaces the QoS predicate (`ModQoSMatch`, §7).
    pub fn set_predicate(&mut self, predicate: crate::config::RulePredicate) {
        self.config.predicate = predicate.clone();
        let rate = self.gate.rate();
        self.gate = GateKeeper::new(
            predicate,
            rate.map(|r| (r, self.shadow_capacity() as f64)),
            self.config.max_partitions,
        );
        self.gate
            .set_low_priority_bypass(self.config.low_priority_bypass);
    }

    /// Resets time-dependent state after a warm-up/preload phase: refills
    /// the admission bucket, clears the migration busy window and pending
    /// arrival counts. Call when installed state should carry over but the
    /// clock conceptually restarts at zero (e.g. simulator preloading).
    pub fn end_warmup(&mut self) {
        let rate = self.gate.rate();
        self.gate
            .set_rate(rate.map(|r| (r, (self.shadow_capacity() as f64 / 2.0).max(1.0))));
        self.manager.busy_until = SimTime::ZERO;
    }

    /// The migration trigger currently configured.
    pub fn trigger(&self) -> MigrationTrigger {
        self.manager.trigger()
    }

    /// Number of migration passes so far.
    pub fn migrations(&self) -> u64 {
        self.manager.migrations
    }
}
