//! `HermesSwitch`: the logical-table facade over a shadow/main TCAM pair.
//!
//! This is the paper's architecture (Fig. 3) end to end: control-plane
//! actions enter through the Gate Keeper, insertions are partitioned
//! (Algorithm 1) and placed in the small shadow slice, the Rule Manager
//! migrates rules into the main slice before the shadow overflows, and
//! packet lookups traverse shadow-then-main so the pair behaves exactly
//! like one monolithic table.
//!
//! ## Correctness invariant
//!
//! At *every* TCAM-operation boundary — including mid-migration — a lookup
//! against the shadow/main pair returns the same action as a monolithic
//! table holding the logical rules, except for packets covered only by
//! overlapping same-priority rules with different actions (behaviour
//! OpenFlow leaves undefined for a single table too). The integration
//! tests run this oracle in lockstep.
//!
//! Two mechanisms maintain the invariant beyond Algorithm 1 itself:
//!
//! * **Re-partitioning** (Fig. 6): deleting a main rule that shadow rules
//!   were cut against re-cuts those rules; symmetrically, inserting a
//!   higher-priority rule *directly into the main table* (rate-limit
//!   overflow, fragmentation bypass) re-cuts any overlapping lower-priority
//!   shadow rules.
//! * **Make-before-break migration** (§5.2): each migrated rule is written
//!   to the main table *before* its shadow pieces are removed, and rules
//!   migrate in ascending priority order, so no intermediate state can
//!   drop or misroute a packet.

use crate::config::{HermesConfig, MigrationMode, MigrationTrigger};
use crate::gatekeeper::{GateKeeper, Route};
use crate::manager::{MigrationReport, RuleManager};
use crate::partition::partition_new_rule_bounded;
use hermes_rules::overlap::OverlapIndex;
use hermes_rules::prelude::*;
use hermes_tcam::{LookupResult, MissBehavior, SimDuration, SimTime, SwitchModel, TcamDevice};
use std::collections::{BTreeMap, HashMap};

/// Slice index of the shadow table.
pub const SHADOW: usize = 0;
/// Slice index of the main table.
pub const MAIN: usize = 1;

/// Physical piece ids live above this bit so they can never collide with
/// controller-assigned logical ids.
const PHYS_BASE: u64 = 1 << 62;

/// Errors surfaced to the controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HermesError {
    /// A rule with this id is already installed.
    Duplicate(RuleId),
    /// No rule with this id is installed.
    NotFound(RuleId),
    /// The TCAM is out of space.
    DeviceFull,
    /// The requested guarantee is below the switch's fixed per-operation
    /// cost — no shadow size can honour it.
    InfeasibleGuarantee,
    /// Logical rule ids must stay below 2^62 (the physical-id space).
    IdOutOfRange(RuleId),
}

impl std::fmt::Display for HermesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HermesError::Duplicate(id) => write!(f, "rule {id} already installed"),
            HermesError::NotFound(id) => write!(f, "rule {id} not installed"),
            HermesError::DeviceFull => write!(f, "TCAM full"),
            HermesError::InfeasibleGuarantee => write!(f, "guarantee below switch base cost"),
            HermesError::IdOutOfRange(id) => write!(f, "rule id {id} out of range"),
        }
    }
}

impl std::error::Error for HermesError {}

/// What happened to a submitted control-plane action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReportDetail {
    /// An insertion.
    Insert {
        /// Where the Gate Keeper routed it.
        route: Route,
        /// TCAM entries written (partition pieces, or 1 in the main table).
        pieces: usize,
        /// Whether the rule was entitled to the guarantee.
        guaranteed: bool,
        /// Whether an entitled rule missed its guarantee.
        violated: bool,
    },
    /// A deletion.
    Delete {
        /// TCAM entries removed.
        pieces_removed: usize,
        /// Shadow rules re-partitioned because of this deletion (Fig. 6).
        repartitioned: usize,
    },
    /// A modification.
    Modify {
        /// Whether it was applied in place (no priority change).
        in_place: bool,
    },
}

/// The controller-visible outcome of one control-plane action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ActionReport {
    /// Total simulated latency until the action took effect.
    pub latency: SimDuration,
    /// Action-specific detail.
    pub detail: ReportDetail,
}

impl ActionReport {
    /// Convenience: whether this was a guaranteed insert that missed its
    /// bound.
    pub fn violated(&self) -> bool {
        matches!(self.detail, ReportDetail::Insert { violated: true, .. })
    }

    /// Convenience: the route for insert reports.
    pub fn route(&self) -> Option<Route> {
        match self.detail {
            ReportDetail::Insert { route, .. } => Some(route),
            _ => None,
        }
    }
}

/// Lifetime counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HermesStats {
    /// Insert actions accepted.
    pub inserts: u64,
    /// Inserts serviced from the shadow table.
    pub shadow_inserts: u64,
    /// Inserts serviced from the main table (any reason).
    pub main_inserts: u64,
    /// Inserts that installed nothing (Fig. 5(a) redundancy).
    pub redundant_inserts: u64,
    /// Guaranteed inserts that missed the bound.
    pub violations: u64,
    /// Total shadow entries written (partition pieces).
    pub pieces_written: u64,
    /// Inserts whose rule was actually cut (pieces != original).
    pub rules_cut: u64,
    /// Delete actions.
    pub deletes: u64,
    /// Modify actions.
    pub modifies: u64,
    /// Shadow rules re-partitioned due to main-table churn.
    pub repartitions: u64,
    /// Migration passes.
    pub migrations: u64,
    /// Logical rules migrated shadow→main.
    pub rules_migrated: u64,
}

impl HermesStats {
    /// Running estimate of TCAM entries per logical shadow insert — the
    /// `r_p` of Equation 2.
    pub fn expected_partitions(&self) -> f64 {
        if self.shadow_inserts == 0 {
            1.0
        } else {
            (self.pieces_written as f64 / self.shadow_inserts as f64).max(1.0)
        }
    }
}

/// A logical rule resident in the shadow table.
#[derive(Clone, Debug)]
struct ShadowEntry {
    original: Rule,
    /// Partition pieces — physical id and key (empty for redundant rules).
    pieces: Vec<(RuleId, TernaryKey)>,
    /// Main rules it was cut against.
    cut_against: Vec<RuleId>,
}

/// The Hermes agent for one switch.
#[derive(Debug)]
pub struct HermesSwitch {
    device: TcamDevice,
    config: HermesConfig,
    gate: GateKeeper,
    manager: RuleManager,
    /// Logical rules resident in the main table, with original priorities.
    main_index: OverlapIndex,
    /// Logical rules resident in the shadow table.
    shadow: HashMap<RuleId, ShadowEntry>,
    /// Shadow insertion order (FIFO semantics + migration order).
    shadow_order: Vec<RuleId>,
    /// main rule id → shadow rules cut against it (the reverse of `M`).
    blockers: HashMap<RuleId, Vec<RuleId>>,
    /// Priority histogram over all logical rules (for the low-priority
    /// bypass check).
    prio_counts: BTreeMap<u32, usize>,
    next_phys: u64,
    stats: HermesStats,
}

impl HermesSwitch {
    /// Builds a Hermes agent on the given switch model.
    ///
    /// The shadow slice is sized as the largest table whose *worst-case*
    /// insertion latency meets the guarantee (or `config.shadow_size` when
    /// overridden); the main slice gets the remainder of the TCAM.
    pub fn new(model: SwitchModel, config: HermesConfig) -> Result<Self, HermesError> {
        let shadow_size = match config.shadow_size {
            Some(s) => s.min(model.capacity / 2),
            None => model
                .max_table_for_guarantee(config.guarantee)
                .ok_or(HermesError::InfeasibleGuarantee)?
                .clamp(1, model.capacity / 2),
        };
        if shadow_size == 0 {
            return Err(HermesError::InfeasibleGuarantee);
        }
        let main_size = model.capacity - shadow_size;
        let device = TcamDevice::carved(
            model,
            &[
                ("shadow", shadow_size, MissBehavior::GotoNextSlice),
                ("main", main_size, MissBehavior::ToController),
            ],
        );
        // Admission rate from Equation 2, λ = S_ST / (r_p · t_m), reading
        // t_m as the time to drain the full shadow (S_ST rules at the
        // per-rule migration cost — the only reading with consistent
        // units): λ = 1 / (r_p · per_rule_migration_time). Initial
        // estimates: r_p = 1, migration cost at half main occupancy. The
        // token bucket's burst is the shadow capacity itself.
        let per_rule = device.model().mean_update_latency(main_size / 2).as_secs();
        let derived = if per_rule > 0.0 {
            1.0 / per_rule
        } else {
            f64::INFINITY
        };
        let rate = config.rate_limit.unwrap_or(derived);
        let mut gate = GateKeeper::new(
            config.predicate.clone(),
            if rate.is_finite() {
                Some((rate, shadow_size as f64))
            } else {
                None
            },
            config.max_partitions,
        );
        gate.set_low_priority_bypass(config.low_priority_bypass);
        let manager = RuleManager::new(config.trigger);
        Ok(HermesSwitch {
            device,
            config,
            gate,
            manager,
            main_index: OverlapIndex::new(),
            shadow: HashMap::new(),
            shadow_order: Vec::new(),
            blockers: HashMap::new(),
            prio_counts: BTreeMap::new(),
            next_phys: PHYS_BASE,
            stats: HermesStats::default(),
        })
    }

    /// The agent's configuration.
    pub fn config(&self) -> &HermesConfig {
        &self.config
    }

    /// Lifetime counters.
    pub fn stats(&self) -> HermesStats {
        self.stats
    }

    /// Shadow-slice capacity (the TCAM overhead Hermes pays).
    pub fn shadow_capacity(&self) -> usize {
        self.device.slice(SHADOW).table.capacity()
    }

    /// Current shadow occupancy in entries.
    pub fn shadow_len(&self) -> usize {
        self.device.slice(SHADOW).table.len()
    }

    /// Current main-table occupancy in entries.
    pub fn main_len(&self) -> usize {
        self.device.slice(MAIN).table.len()
    }

    /// Number of logical rules installed (shadow + main).
    pub fn logical_len(&self) -> usize {
        self.shadow.len() + self.main_index.len()
    }

    /// TCAM overhead as a fraction of total capacity (`QoSOverheads`, §7).
    pub fn overhead_fraction(&self) -> f64 {
        self.shadow_capacity() as f64 / self.device.model().capacity as f64
    }

    /// The maximum *sustained* guaranteed insertion rate λ (Equation 2,
    /// `λ = S_ST / (r_p · t_m)` with `t_m` the time to drain the full
    /// shadow): rules cannot enter the shadow faster than migration can
    /// move them out, so λ = 1 / (r_p · per-rule migration cost). Bursts
    /// up to the shadow capacity on top of this are absorbed by the
    /// token bucket.
    pub fn max_supported_rate(&self) -> f64 {
        let per_rule = self
            .device
            .model()
            .mean_update_latency(
                self.main_len()
                    .max(self.device.slice(MAIN).table.capacity() / 2),
            )
            .as_secs();
        if per_rule <= 0.0 {
            return f64::INFINITY;
        }
        1.0 / (self.stats.expected_partitions() * per_rule)
    }

    /// Borrow the underlying device (telemetry/tests).
    pub fn device(&self) -> &TcamDevice {
        &self.device
    }

    /// All logical rules currently installed, in no particular order.
    pub fn logical_rules(&self) -> Vec<Rule> {
        let mut out: Vec<Rule> = self.main_index.iter().collect();
        out.extend(self.shadow.values().map(|e| e.original));
        out
    }

    /// Whether a logical rule is installed.
    pub fn contains(&self, id: RuleId) -> bool {
        self.shadow.contains_key(&id) || self.main_index.contains(id)
    }

    /// Looks up a logical rule.
    pub fn get(&self, id: RuleId) -> Option<Rule> {
        self.shadow
            .get(&id)
            .map(|e| e.original)
            .or_else(|| self.main_index.get(id))
    }

    fn alloc_phys(&mut self) -> RuleId {
        let id = RuleId(self.next_phys);
        self.next_phys += 1;
        id
    }

    fn lowest_live_priority(&self) -> Option<Priority> {
        self.prio_counts.keys().next().map(|&p| Priority(p))
    }

    fn prio_add(&mut self, p: Priority) {
        *self.prio_counts.entry(p.0).or_insert(0) += 1;
    }

    fn prio_remove(&mut self, p: Priority) {
        if let Some(c) = self.prio_counts.get_mut(&p.0) {
            *c -= 1;
            if *c == 0 {
                self.prio_counts.remove(&p.0);
            }
        }
    }

    fn register_blockers(&mut self, rule: RuleId, cut_against: &[RuleId]) {
        for b in cut_against {
            self.blockers.entry(*b).or_default().push(rule);
        }
    }

    fn unregister_blockers(&mut self, rule: RuleId, cut_against: &[RuleId]) {
        for b in cut_against {
            if let Some(v) = self.blockers.get_mut(b) {
                v.retain(|r| *r != rule);
                if v.is_empty() {
                    self.blockers.remove(b);
                }
            }
        }
    }

    /// Submits a control-plane action (the OpenFlow `flow-mod` surface).
    pub fn submit(
        &mut self,
        action: &ControlAction,
        now: SimTime,
    ) -> Result<ActionReport, HermesError> {
        match action {
            ControlAction::Insert(rule) => self.insert(*rule, now),
            ControlAction::Delete(id) => self.delete(*id, now),
            ControlAction::Modify {
                id,
                action,
                priority,
            } => self.modify(*id, *action, *priority, now),
        }
    }

    /// Inserts a rule.
    pub fn insert(&mut self, rule: Rule, now: SimTime) -> Result<ActionReport, HermesError> {
        if rule.id.0 >= PHYS_BASE {
            return Err(HermesError::IdOutOfRange(rule.id));
        }
        if self.contains(rule.id) {
            return Err(HermesError::Duplicate(rule.id));
        }
        self.stats.inserts += 1;
        self.manager.record_arrival();
        let guaranteed = self.gate.qualifies(&rule);

        if let Some(route) = self.gate.pre_route(&rule, now, self.lowest_live_priority()) {
            return self.insert_to_main(rule, route, guaranteed);
        }

        // Algorithm 1 against the main table, with a fragmentation budget:
        // rules that would explode into partitions go straight to the main
        // table (§4.2's footnote), detected early to keep insertion cheap.
        // The budget equals the Gate Keeper's own partition cap — anything
        // beyond it would be diverted by post_route anyway.
        let limit = self.config.max_partitions;
        let outcome = match partition_new_rule_bounded(&rule, &self.main_index, limit) {
            Ok(o) => o,
            Err(_) => {
                return self.insert_to_main(rule, Route::MainTooFragmented, guaranteed);
            }
        };
        let shadow_free = self.device.slice(SHADOW).table.free();
        let mut route = self.gate.post_route(outcome.pieces.len(), shadow_free);

        // A partitioned rule writes several shadow entries and the
        // guarantee covers their *sum*: divert to the main table when even
        // the worst-case cumulative cost cannot fit the bound. (Heavily
        // partitioned rules are exactly the ones §4.2 argues belong in the
        // main table.)
        if route == Route::Shadow && outcome.pieces.len() > 1 {
            let mut est = SimDuration::ZERO;
            let occ = self.shadow_len();
            for j in 0..outcome.pieces.len() {
                est += self.device.model().worst_insert_latency(occ + j);
            }
            if est > self.config.guarantee {
                route = Route::MainTooFragmented;
            }
        }

        let report = match route {
            Route::Redundant => {
                // Logically installed; nothing written (Fig. 5(a)). Charged
                // only agent processing time.
                self.stats.redundant_inserts += 1;
                let entry = ShadowEntry {
                    original: rule,
                    pieces: Vec::new(),
                    cut_against: outcome.cut_against.clone(),
                };
                self.register_blockers(rule.id, &outcome.cut_against);
                self.shadow.insert(rule.id, entry);
                self.shadow_order.push(rule.id);
                self.prio_add(rule.priority);
                Ok(ActionReport {
                    latency: SimDuration::from_us(10.0),
                    detail: ReportDetail::Insert {
                        route,
                        pieces: 0,
                        guaranteed,
                        violated: false,
                    },
                })
            }
            Route::Shadow => {
                let mut latency = SimDuration::ZERO;
                let mut piece_ids = Vec::with_capacity(outcome.pieces.len());
                for key in &outcome.pieces {
                    let pid = self.alloc_phys();
                    let phys = Rule {
                        id: pid,
                        key: *key,
                        ..rule
                    };
                    let rep = self
                        .device
                        .apply(SHADOW, &ControlAction::Insert(phys))
                        .expect("post_route checked capacity");
                    latency += rep.latency;
                    piece_ids.push((pid, *key));
                }
                self.stats.shadow_inserts += 1;
                self.stats.pieces_written += outcome.pieces.len() as u64;
                if !outcome.is_intact(&rule.key) {
                    self.stats.rules_cut += 1;
                }
                let violated = guaranteed && latency > self.config.guarantee;
                if violated {
                    self.stats.violations += 1;
                }
                let entry = ShadowEntry {
                    original: rule,
                    pieces: piece_ids,
                    cut_against: outcome.cut_against.clone(),
                };
                self.register_blockers(rule.id, &outcome.cut_against);
                self.shadow.insert(rule.id, entry);
                self.shadow_order.push(rule.id);
                self.prio_add(rule.priority);
                Ok(ActionReport {
                    latency,
                    detail: ReportDetail::Insert {
                        route,
                        pieces: outcome.pieces.len(),
                        guaranteed,
                        violated,
                    },
                })
            }
            other => self.insert_to_main(rule, other, guaranteed),
        };

        // Hermes-SIMPLE checks its threshold after every insert; the
        // predictive manager additionally gets an emergency check so a
        // burst arriving between ticks cannot silently fill the shadow
        // (the threshold baseline deliberately has no such safety net —
        // that naivety is exactly what §8.5 measures).
        let emergency = matches!(self.config.trigger, MigrationTrigger::Predictive { .. })
            && self.shadow_len() as f64 >= 0.9 * self.shadow_capacity() as f64;
        if (self
            .manager
            .wants_migration_inline(self.shadow_len(), self.shadow_capacity())
            || emergency)
            && !self.manager.is_busy(now)
        {
            self.migrate(now);
        }
        report
    }

    /// Installs a rule directly in the main table, then re-cuts any
    /// lower-priority shadow rules it now overlaps (the symmetric case of
    /// Fig. 6 — required to keep the shadow-first lookup correct).
    fn insert_to_main(
        &mut self,
        rule: Rule,
        route: Route,
        guaranteed: bool,
    ) -> Result<ActionReport, HermesError> {
        let rep = self
            .device
            .apply(MAIN, &ControlAction::Insert(rule))
            .map_err(|_| HermesError::DeviceFull)?;
        self.main_index.insert(rule);
        self.prio_add(rule.priority);
        self.stats.main_inserts += 1;

        let latency = rep.latency + self.recut_below(rule);

        // Main-table routes are outside the guarantee contract except for
        // MainShadowFull: over-rate traffic is explicitly best-effort
        // ("Hermes uses the main table to service the additional commands
        // over the approved rate"), and the low-priority / fragmentation
        // bypasses are Hermes's own optimizations that stay cheap. Only a
        // shadow-table overflow breaks a promise.
        let violated = guaranteed && route.breaks_guarantee();
        if violated {
            self.stats.violations += 1;
        }
        Ok(ActionReport {
            latency,
            detail: ReportDetail::Insert {
                route,
                pieces: 1,
                guaranteed,
                violated,
            },
        })
    }

    /// Narrows every shadow-resident rule of *strictly lower* priority
    /// whose *installed pieces* overlap a rule that just landed in the
    /// main table. Without this, the shadow-first lookup would let those
    /// rules wrongly win inside the new rule's region (the symmetric case
    /// of the Fig. 4(b) violation).
    ///
    /// This is incremental: the pieces already avoid every older
    /// higher-priority main rule, so only a cut against the *new* rule is
    /// needed — not a full re-partition.
    fn recut_below(&mut self, new_main: Rule) -> SimDuration {
        let affected: Vec<RuleId> = self
            .shadow
            .values()
            .filter(|e| {
                e.original.priority < new_main.priority
                    && e.pieces.iter().any(|(_, k)| k.overlaps(&new_main.key))
            })
            .map(|e| e.original.id)
            .collect();
        let mut latency = SimDuration::ZERO;
        for id in affected {
            latency += self.narrow_shadow_rule(id, new_main);
        }
        latency
    }

    /// Cuts the overlapping pieces of one shadow rule against a single new
    /// main-table key (make-before-break). Falls back to evicting the rule
    /// to the main table if the shadow cannot hold the replacements.
    fn narrow_shadow_rule(&mut self, id: RuleId, against: Rule) -> SimDuration {
        let entry = match self.shadow.get(&id) {
            Some(e) => e.clone(),
            None => return SimDuration::ZERO,
        };
        let mut kept: Vec<(RuleId, TernaryKey)> = Vec::with_capacity(entry.pieces.len());
        let mut doomed: Vec<RuleId> = Vec::new();
        let mut replacements: Vec<TernaryKey> = Vec::new();
        for (pid, key) in &entry.pieces {
            if key.overlaps(&against.key) {
                doomed.push(*pid);
                replacements.extend(key.difference(&against.key));
            } else {
                kept.push((*pid, *key));
            }
        }
        if doomed.is_empty() {
            // A recursive eviction triggered by an earlier rule in this
            // recut pass may have already narrowed this rule.
            return SimDuration::ZERO;
        }
        let replacements = hermes_rules::merge::minimize_keys(replacements);
        if kept.len() + replacements.len() > self.config.max_partitions {
            return self.evict_shadow_rule_to_main(&entry);
        }
        let mut latency = SimDuration::ZERO;
        let mut new_ids = Vec::with_capacity(replacements.len());
        for key in &replacements {
            let pid = self.alloc_phys();
            let phys = Rule {
                id: pid,
                key: *key,
                ..entry.original
            };
            match self.device.apply(SHADOW, &ControlAction::Insert(phys)) {
                Ok(rep) => {
                    latency += rep.latency;
                    new_ids.push((pid, *key));
                }
                Err(_) => {
                    for (pid, _) in &new_ids {
                        if let Ok(rep) = self.device.apply(SHADOW, &ControlAction::Delete(*pid)) {
                            latency += rep.latency;
                        }
                    }
                    return latency + self.evict_shadow_rule_to_main(&entry);
                }
            }
        }
        for pid in &doomed {
            let rep = self
                .device
                .apply(SHADOW, &ControlAction::Delete(*pid))
                .expect("piece tracked");
            latency += rep.latency;
        }
        kept.extend(new_ids);
        // The rule now also depends on the new main rule for its shape —
        // registered by identity (two main rules may share a key).
        if let Some(e) = self.shadow.get_mut(&id) {
            e.pieces = kept;
            if !e.cut_against.contains(&against.id) {
                e.cut_against.push(against.id);
            }
        }
        self.register_blockers(id, &[against.id]);
        self.stats.repartitions += 1;
        latency
    }

    /// Recomputes the partition of a shadow-resident rule against the
    /// current main table, replacing its pieces. Returns the TCAM time
    /// spent.
    fn repartition_shadow_rule(&mut self, id: RuleId) -> SimDuration {
        let entry = match self.shadow.get(&id) {
            Some(e) => e.clone(),
            None => return SimDuration::ZERO,
        };
        let limit = self.config.max_partitions;
        let outcome = match partition_new_rule_bounded(&entry.original, &self.main_index, limit) {
            Ok(o) => o,
            // Fragmentation blow-up on re-partition: move the rule to the
            // main table instead (correct, unguaranteed), mirroring the
            // insert-time bypass.
            Err(_) => return self.evict_shadow_rule_to_main(&entry),
        };
        let mut latency = SimDuration::ZERO;

        // Install the new pieces first (make-before-break), then remove the
        // old ones, so the rule's coverage never drops below its target.
        let mut new_ids = Vec::with_capacity(outcome.pieces.len());
        for key in &outcome.pieces {
            let pid = self.alloc_phys();
            let phys = Rule {
                id: pid,
                key: *key,
                ..entry.original
            };
            match self.device.apply(SHADOW, &ControlAction::Insert(phys)) {
                Ok(rep) => {
                    latency += rep.latency;
                    new_ids.push((pid, *key));
                }
                Err(_) => {
                    // Shadow full mid-repartition: roll back the new pieces
                    // and fall back to the main table.
                    for (pid, _) in &new_ids {
                        let rep = self
                            .device
                            .apply(SHADOW, &ControlAction::Delete(*pid))
                            .expect("just inserted");
                        latency += rep.latency;
                    }
                    return latency + self.evict_shadow_rule_to_main(&entry);
                }
            }
        }
        for (pid, _) in &entry.pieces {
            let rep = self
                .device
                .apply(SHADOW, &ControlAction::Delete(*pid))
                .expect("piece tracked");
            latency += rep.latency;
        }
        self.unregister_blockers(id, &entry.cut_against);
        self.register_blockers(id, &outcome.cut_against);
        if let Some(e) = self.shadow.get_mut(&id) {
            e.pieces = new_ids;
            e.cut_against = outcome.cut_against;
        }
        self.stats.repartitions += 1;
        latency
    }

    /// Moves a shadow-resident logical rule into the main table: deletes
    /// its shadow pieces, installs the original in the main slice and
    /// re-cuts any lower-priority shadow rules it now overlaps. Correct
    /// (TCAM priority resolution takes over) but unguaranteed.
    fn evict_shadow_rule_to_main(&mut self, entry: &ShadowEntry) -> SimDuration {
        let id = entry.original.id;
        let mut latency = SimDuration::ZERO;
        for (pid, _) in &entry.pieces {
            if let Ok(rep) = self.device.apply(SHADOW, &ControlAction::Delete(*pid)) {
                latency += rep.latency;
            }
        }
        self.unregister_blockers(id, &entry.cut_against);
        self.shadow.remove(&id);
        self.shadow_order.retain(|r| *r != id);
        if let Ok(rep) = self
            .device
            .apply(MAIN, &ControlAction::Insert(entry.original))
        {
            latency += rep.latency;
            self.main_index.insert(entry.original);
            // The rule is now a main rule: lower-priority shadow rules
            // overlapping it must be re-cut, exactly as on any other
            // main-table insertion.
            latency += self.recut_below(entry.original);
        }
        self.stats.repartitions += 1;
        latency
    }

    /// Deletes a logical rule.
    pub fn delete(&mut self, id: RuleId, _now: SimTime) -> Result<ActionReport, HermesError> {
        self.stats.deletes += 1;
        if let Some(entry) = self.shadow.remove(&id) {
            let mut latency = SimDuration::ZERO;
            for (pid, _) in &entry.pieces {
                let rep = self
                    .device
                    .apply(SHADOW, &ControlAction::Delete(*pid))
                    .expect("piece tracked");
                latency += rep.latency;
            }
            if entry.pieces.is_empty() {
                latency += SimDuration::from_us(10.0); // agent bookkeeping only
            }
            self.unregister_blockers(id, &entry.cut_against);
            self.shadow_order.retain(|r| *r != id);
            self.prio_remove(entry.original.priority);
            return Ok(ActionReport {
                latency,
                detail: ReportDetail::Delete {
                    pieces_removed: entry.pieces.len(),
                    repartitioned: 0,
                },
            });
        }
        if let Some(rule) = self.main_index.remove(id) {
            let rep = self
                .device
                .apply(MAIN, &ControlAction::Delete(id))
                .expect("main rule tracked");
            self.prio_remove(rule.priority);
            let mut latency = rep.latency;
            // Fig. 6: un-partition every shadow rule that was cut against
            // the deleted rule.
            let dependents = self.blockers.remove(&id).unwrap_or_default();
            let repartitioned = dependents.len();
            for dep in dependents {
                latency += self.repartition_shadow_rule(dep);
            }
            return Ok(ActionReport {
                latency,
                detail: ReportDetail::Delete {
                    pieces_removed: 1,
                    repartitioned,
                },
            });
        }
        self.stats.deletes -= 1;
        Err(HermesError::NotFound(id))
    }

    /// Modifies a logical rule. Priority changes become delete+insert
    /// (§4.1); action-only changes are applied in place.
    pub fn modify(
        &mut self,
        id: RuleId,
        action: Option<Action>,
        priority: Option<Priority>,
        now: SimTime,
    ) -> Result<ActionReport, HermesError> {
        let current = self.get(id).ok_or(HermesError::NotFound(id))?;
        if let Some(new_prio) = priority {
            if new_prio != current.priority {
                let del = self.delete(id, now)?;
                let mut rule = current;
                rule.priority = new_prio;
                if let Some(a) = action {
                    rule.action = a;
                }
                let ins = self.insert(rule, now)?;
                // The delete+insert counts as one modify.
                self.stats.deletes -= 1;
                self.stats.inserts -= 1;
                self.stats.modifies += 1;
                return Ok(ActionReport {
                    latency: del.latency + ins.latency,
                    detail: ReportDetail::Modify { in_place: false },
                });
            }
        }
        let Some(new_action) = action else {
            // Nothing to change.
            self.stats.modifies += 1;
            return Ok(ActionReport {
                latency: SimDuration::from_us(10.0),
                detail: ReportDetail::Modify { in_place: true },
            });
        };
        self.stats.modifies += 1;
        let mut latency = SimDuration::ZERO;
        if let Some(entry) = self.shadow.get_mut(&id) {
            entry.original.action = new_action;
            let pieces = entry.pieces.clone();
            for (pid, _) in pieces {
                let rep = self
                    .device
                    .apply(
                        SHADOW,
                        &ControlAction::Modify {
                            id: pid,
                            action: Some(new_action),
                            priority: None,
                        },
                    )
                    .expect("piece tracked");
                latency += rep.latency;
            }
        } else {
            let mut rule = self.main_index.get(id).expect("checked contains");
            rule.action = new_action;
            self.main_index.insert(rule); // replace
            let rep = self
                .device
                .apply(
                    MAIN,
                    &ControlAction::Modify {
                        id,
                        action: Some(new_action),
                        priority: None,
                    },
                )
                .expect("main rule tracked");
            latency += rep.latency;
        }
        Ok(ActionReport {
            latency,
            detail: ReportDetail::Modify { in_place: true },
        })
    }

    /// Periodic Rule Manager tick: feeds the predictor and migrates when
    /// the trigger fires. Call every `config.tick` of simulated time.
    pub fn tick(&mut self, now: SimTime) -> Option<MigrationReport> {
        let r_p = self.stats.expected_partitions();
        if self
            .manager
            .on_tick(now, self.shadow_len(), self.shadow_capacity(), r_p)
        {
            Some(self.migrate(now))
        } else {
            None
        }
    }

    /// Runs one migration pass (Fig. 7): every logical shadow rule is
    /// rewritten into its original (un-cut) form in the main table — the
    /// optimization step, since one original replaces up to `r_p` pieces —
    /// then its shadow pieces are deleted. Rules move in ascending priority
    /// order so remaining (higher-priority) shadow rules never need
    /// re-cutting mid-flight.
    pub fn migrate(&mut self, now: SimTime) -> MigrationReport {
        let mut report = MigrationReport::default();
        if self.shadow_order.is_empty() {
            return report;
        }
        // Ascending priority, FIFO among equals (sort is stable).
        let mut order = self.shadow_order.clone();
        order.sort_by_key(|id| self.shadow[id].original.priority);

        for id in order {
            let entry = match self.shadow.get(&id) {
                Some(e) => e.clone(),
                None => continue,
            };
            // Step 3: write the original into the main table first…
            match self
                .device
                .apply(MAIN, &ControlAction::Insert(entry.original))
            {
                Ok(rep) => {
                    report.duration += rep.latency;
                    report.entries_written += 1;
                }
                Err(_) => continue, // main full: rule stays in shadow
            }
            self.main_index.insert(entry.original);
            // …then (step 4) remove its shadow pieces.
            for (pid, _) in &entry.pieces {
                let rep = self
                    .device
                    .apply(SHADOW, &ControlAction::Delete(*pid))
                    .expect("piece tracked");
                report.duration += rep.latency;
                report.pieces_deleted += 1;
            }
            report.entries_saved += entry.pieces.len().saturating_sub(1);
            self.unregister_blockers(id, &entry.cut_against);
            self.shadow.remove(&id);
            self.shadow_order.retain(|r| *r != id);
            report.rules_migrated += 1;
        }
        if self.config.mode == MigrationMode::PauseAndSwap {
            report.pipeline_paused = report.duration;
        }
        self.manager.migration_started(now, report.duration);
        self.stats.migrations += 1;
        self.stats.rules_migrated += report.rules_migrated as u64;
        report
    }

    /// Rewrites a matched partition piece back to its controller-visible
    /// logical rule (same key semantics, logical id and original match).
    fn resolve(&self, result: LookupResult) -> LookupResult {
        if let LookupResult::Matched { slice, rule } = result {
            if rule.id.0 >= PHYS_BASE {
                for entry in self.shadow.values() {
                    if entry.pieces.iter().any(|(pid, _)| *pid == rule.id) {
                        return LookupResult::Matched {
                            slice,
                            rule: Rule {
                                id: entry.original.id,
                                ..rule
                            },
                        };
                    }
                }
            }
        }
        result
    }

    /// Packet lookup through the shadow→main pipeline. Matched partition
    /// pieces are reported under their logical rule id.
    pub fn lookup(&mut self, packet: u128) -> LookupResult {
        let raw = self.device.lookup(packet);
        self.resolve(raw)
    }

    /// Lookup without statistics (oracle comparisons).
    pub fn peek(&self, packet: u128) -> LookupResult {
        self.resolve(self.device.peek(packet))
    }

    /// Re-targets the admission rate after a `ModQoSConfig` (§7).
    pub fn set_rate_limit(&mut self, rate: Option<f64>) {
        self.gate
            .set_rate(rate.map(|r| (r, self.shadow_capacity() as f64)));
    }

    /// Replaces the QoS predicate (`ModQoSMatch`, §7).
    pub fn set_predicate(&mut self, predicate: crate::config::RulePredicate) {
        self.config.predicate = predicate.clone();
        let rate = self.gate.rate();
        self.gate = GateKeeper::new(
            predicate,
            rate.map(|r| (r, self.shadow_capacity() as f64)),
            self.config.max_partitions,
        );
        self.gate
            .set_low_priority_bypass(self.config.low_priority_bypass);
    }

    /// Resets time-dependent state after a warm-up/preload phase: refills
    /// the admission bucket, clears the migration busy window and pending
    /// arrival counts. Call when installed state should carry over but the
    /// clock conceptually restarts at zero (e.g. simulator preloading).
    pub fn end_warmup(&mut self) {
        let rate = self.gate.rate();
        self.gate
            .set_rate(rate.map(|r| (r, (self.shadow_capacity() as f64 / 2.0).max(1.0))));
        self.manager.busy_until = SimTime::ZERO;
    }

    /// The migration trigger currently configured.
    pub fn trigger(&self) -> MigrationTrigger {
        self.manager.trigger()
    }

    /// Number of migration passes so far.
    pub fn migrations(&self) -> u64 {
        self.manager.migrations
    }
}
