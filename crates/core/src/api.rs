//! The operator-facing API (§7, "Novel Abstractions").
//!
//! The paper's interface lets a network operator request performance
//! guarantees per switch and explore the performance/overhead trade-off:
//!
//! ```text
//! int    CreateTCAMQoS(SwitchID, perf-guarantee, match-predicate);
//! bool   DeleteQoS(ShadowID)
//! bool   ModQoSConfig(ShadowID, perf-guarantee)
//! bool   ModQoSMatch(ShadowID, match-predicate)
//! double QoSOverheads(SwitchID, perf-guarantee, match-predicate)
//! ```
//!
//! [`HermesApi`] is the Rust rendering: `create_tcam_qos` returns a
//! [`QosHandle`] carrying the shadow id and the *max burst rate* the Gate
//! Keeper will admit (Equation 2), and `qos_overheads` answers "what would
//! this guarantee cost?" without configuring anything.

use crate::config::{HermesConfig, RulePredicate};
use crate::switch::{HermesError, HermesSwitch};
use hermes_tcam::{SimDuration, SwitchModel};
use std::collections::BTreeMap;

/// Identifies a switch under management.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SwitchId(pub u32);

/// Identifies a configured QoS (shadow table) — the "file descriptor"
/// returned by `CreateTCAMQoS`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShadowId(pub u32);

/// The result of configuring a guarantee.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QosHandle {
    /// Handle for later `DeleteQoS` / `ModQoS*` calls.
    pub shadow_id: ShadowId,
    /// Maximum insert rate (rules/s) Hermes will admit under the guarantee
    /// (Equation 2).
    pub max_burst_rate: f64,
    /// Fraction of the switch's TCAM consumed by the shadow table.
    pub overhead: f64,
}

/// Errors from the management API.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApiError {
    /// Unknown switch.
    UnknownSwitch(SwitchId),
    /// Unknown QoS handle.
    UnknownShadow(ShadowId),
    /// A QoS is already configured on this switch (one shadow per table in
    /// the single-table model).
    AlreadyConfigured(SwitchId),
    /// The switch cannot honour the guarantee.
    Infeasible(HermesError),
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::UnknownSwitch(id) => write!(f, "unknown switch {id:?}"),
            ApiError::UnknownShadow(id) => write!(f, "unknown shadow {id:?}"),
            ApiError::AlreadyConfigured(id) => write!(f, "switch {id:?} already has a QoS"),
            ApiError::Infeasible(e) => write!(f, "infeasible guarantee: {e}"),
        }
    }
}

impl std::error::Error for ApiError {}

/// The management plane: registered switches and their Hermes agents.
#[derive(Debug, Default)]
pub struct HermesApi {
    models: BTreeMap<SwitchId, SwitchModel>,
    agents: BTreeMap<SwitchId, HermesSwitch>,
    handles: BTreeMap<ShadowId, SwitchId>,
    next_shadow: u32,
}

impl HermesApi {
    /// An empty management plane.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a switch (its empirical model) with the management plane.
    pub fn register_switch(&mut self, id: SwitchId, model: SwitchModel) {
        self.models.insert(id, model);
    }

    /// `CreateTCAMQoS`: configures a guarantee on a switch and returns the
    /// handle plus the admitted burst rate.
    pub fn create_tcam_qos(
        &mut self,
        switch: SwitchId,
        guarantee: SimDuration,
        predicate: RulePredicate,
    ) -> Result<QosHandle, ApiError> {
        let model = self
            .models
            .get(&switch)
            .ok_or(ApiError::UnknownSwitch(switch))?
            .clone();
        if self.agents.contains_key(&switch) {
            return Err(ApiError::AlreadyConfigured(switch));
        }
        let config = HermesConfig {
            guarantee,
            predicate,
            ..Default::default()
        };
        let agent = HermesSwitch::new(model, config).map_err(ApiError::Infeasible)?;
        let handle = QosHandle {
            shadow_id: ShadowId(self.next_shadow),
            max_burst_rate: agent.max_supported_rate(),
            overhead: agent.overhead_fraction(),
        };
        self.next_shadow += 1;
        self.handles.insert(handle.shadow_id, switch);
        self.agents.insert(switch, agent);
        Ok(handle)
    }

    /// `DeleteQoS`: removes a configured guarantee (the switch reverts to
    /// unmanaged).
    pub fn delete_qos(&mut self, shadow: ShadowId) -> Result<(), ApiError> {
        let switch = self
            .handles
            .remove(&shadow)
            .ok_or(ApiError::UnknownShadow(shadow))?;
        self.agents.remove(&switch);
        Ok(())
    }

    /// `ModQoSConfig`: re-targets the guarantee. Re-sizes the shadow table,
    /// which requires re-building the agent (the paper notes TCAM slice
    /// re-sizing is a heavyweight reconfiguration).
    pub fn mod_qos_config(
        &mut self,
        shadow: ShadowId,
        guarantee: SimDuration,
    ) -> Result<QosHandle, ApiError> {
        let switch = *self
            .handles
            .get(&shadow)
            .ok_or(ApiError::UnknownShadow(shadow))?;
        // INVARIANT: `handles` entries are only created by `create_qos`,
        // which requires the switch to exist in `models`, and models are
        // never removed.
        let model = self
            .models
            .get(&switch)
            .expect("INVARIANT: handle implies model")
            .clone();
        let predicate = self
            .agents
            .get(&switch)
            .map(|a| a.config().predicate.clone())
            .unwrap_or(RulePredicate::All);
        let config = HermesConfig {
            guarantee,
            predicate,
            ..Default::default()
        };
        let agent = HermesSwitch::new(model, config).map_err(ApiError::Infeasible)?;
        let handle = QosHandle {
            shadow_id: shadow,
            max_burst_rate: agent.max_supported_rate(),
            overhead: agent.overhead_fraction(),
        };
        self.agents.insert(switch, agent);
        Ok(handle)
    }

    /// `ModQoSMatch`: replaces the predicate selecting guaranteed rules.
    pub fn mod_qos_match(
        &mut self,
        shadow: ShadowId,
        predicate: RulePredicate,
    ) -> Result<(), ApiError> {
        let switch = *self
            .handles
            .get(&shadow)
            .ok_or(ApiError::UnknownShadow(shadow))?;
        let agent = self
            .agents
            .get_mut(&switch)
            .ok_or(ApiError::UnknownShadow(shadow))?;
        agent.set_predicate(predicate);
        Ok(())
    }

    /// `QoSOverheads`: the TCAM fraction a guarantee would consume on a
    /// switch — *without* configuring it. This is the trade-off explorer
    /// behind Figure 14.
    pub fn qos_overheads(&self, switch: SwitchId, guarantee: SimDuration) -> Result<f64, ApiError> {
        let model = self
            .models
            .get(&switch)
            .ok_or(ApiError::UnknownSwitch(switch))?;
        match model.max_table_for_guarantee(guarantee) {
            Some(size) => Ok(size.min(model.capacity / 2) as f64 / model.capacity as f64),
            None => Err(ApiError::Infeasible(HermesError::InfeasibleGuarantee)),
        }
    }

    /// Access a configured agent (the data path for simulations).
    pub fn agent_mut(&mut self, switch: SwitchId) -> Option<&mut HermesSwitch> {
        self.agents.get_mut(&switch)
    }

    /// Read-only agent access.
    pub fn agent(&self, switch: SwitchId) -> Option<&HermesSwitch> {
        self.agents.get(&switch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn api_with_pica8() -> (HermesApi, SwitchId) {
        let mut api = HermesApi::new();
        let id = SwitchId(1);
        api.register_switch(id, SwitchModel::pica8_p3290());
        (api, id)
    }

    #[test]
    fn create_returns_rate_and_overhead() {
        let (mut api, id) = api_with_pica8();
        let h = api
            .create_tcam_qos(id, SimDuration::from_ms(5.0), RulePredicate::All)
            .unwrap();
        assert!(h.max_burst_rate > 0.0);
        assert!(
            h.overhead > 0.0 && h.overhead < 0.05,
            "overhead {:.3}",
            h.overhead
        );
        assert!(api.agent(id).is_some());
    }

    #[test]
    fn double_create_rejected() {
        let (mut api, id) = api_with_pica8();
        api.create_tcam_qos(id, SimDuration::from_ms(5.0), RulePredicate::All)
            .unwrap();
        assert_eq!(
            api.create_tcam_qos(id, SimDuration::from_ms(5.0), RulePredicate::All),
            Err(ApiError::AlreadyConfigured(id))
        );
    }

    #[test]
    fn unknown_switch_rejected() {
        let mut api = HermesApi::new();
        assert_eq!(
            api.create_tcam_qos(SwitchId(9), SimDuration::from_ms(5.0), RulePredicate::All),
            Err(ApiError::UnknownSwitch(SwitchId(9)))
        );
        assert!(api
            .qos_overheads(SwitchId(9), SimDuration::from_ms(5.0))
            .is_err());
    }

    #[test]
    fn delete_qos_removes_agent() {
        let (mut api, id) = api_with_pica8();
        let h = api
            .create_tcam_qos(id, SimDuration::from_ms(5.0), RulePredicate::All)
            .unwrap();
        api.delete_qos(h.shadow_id).unwrap();
        assert!(api.agent(id).is_none());
        assert_eq!(
            api.delete_qos(h.shadow_id),
            Err(ApiError::UnknownShadow(h.shadow_id))
        );
        // Can configure again afterwards.
        api.create_tcam_qos(id, SimDuration::from_ms(5.0), RulePredicate::All)
            .unwrap();
    }

    #[test]
    fn mod_qos_config_resizes() {
        let (mut api, id) = api_with_pica8();
        let h = api
            .create_tcam_qos(id, SimDuration::from_ms(1.0), RulePredicate::All)
            .unwrap();
        let h2 = api
            .mod_qos_config(h.shadow_id, SimDuration::from_ms(10.0))
            .unwrap();
        assert!(h2.overhead > h.overhead, "looser guarantee → larger shadow");
    }

    #[test]
    fn overheads_grow_with_guarantee() {
        let (api, id) = api_with_pica8();
        let o1 = api.qos_overheads(id, SimDuration::from_ms(1.0)).unwrap();
        let o5 = api.qos_overheads(id, SimDuration::from_ms(5.0)).unwrap();
        let o10 = api.qos_overheads(id, SimDuration::from_ms(10.0)).unwrap();
        assert!(o1 < o5 && o5 < o10);
        // Headline number: 5 ms under 5%.
        assert!(o5 < 0.05);
        let _ = api;
    }

    #[test]
    fn infeasible_guarantee_reported() {
        let (api, id) = api_with_pica8();
        assert!(matches!(
            api.qos_overheads(id, SimDuration::from_nanos(1)),
            Err(ApiError::Infeasible(_))
        ));
    }
}
