//! Crash resync subsystem: the intent store and the diff-based resync
//! planner that re-establishes the Hermes guarantee after a device crash.
//!
//! The per-op recovery layers (see [`crate::recovery`]) assume the TCAM
//! *keeps its state* across a fault — they repair individual divergences.
//! A crash-class fault (full wipe, partial retention, control-session
//! loss; see `hermes_tcam::fault::CrashKind`) breaks that assumption: the
//! device may come back with an empty table, a random survivor subset, or
//! just a dead control session. Resync restores the controller's intent
//! in four steps:
//!
//! 1. **Reconnect** with capped exponential backoff (the device may deny
//!    the first few attempts while it reboots).
//! 2. **Journal replay**: the PR 2 delete journal drains first — against
//!    a wiped table every journaled delete resolves as already-gone.
//! 3. **Diff + replay**: a [`SlicePlan`] per slice computes the minimal
//!    delete/fix/install set between the durable [`IntentStore`] view and
//!    the post-crash table read back via audit, and replays it through
//!    the batched `apply_batch` path — warm mode diffs against survivors,
//!    cold mode wipes and reinstalls the full snapshot.
//! 4. **Re-admission**: degraded mode ends and the deferred admission
//!    queue drains, formally re-establishing the guarantee.
//!
//! Everything here is deterministic: no wall clock, no unseeded
//! randomness — a crash plan replays byte-for-byte from its seeds.

use hermes_rules::prelude::*;
use hermes_tcam::{SimDuration, TcamOp};
use std::collections::BTreeMap;

/// How the resync engine rebuilds a post-crash table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ResyncMode {
    /// Diff against whatever entries survived the crash and apply only
    /// the delta (the paper-faithful minimal-churn mode).
    #[default]
    Warm,
    /// Distrust every survivor: wipe the table and reinstall the full
    /// intent snapshot (the conservative reboot mode).
    Cold,
}

/// Policy knobs for the resync engine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResyncPolicy {
    /// Warm (diff against survivors) or cold (full reinstall).
    pub mode: ResyncMode,
    /// Reconnect attempts per resync pass before giving up until the
    /// next tick/audit.
    pub max_reconnect_attempts: u32,
    /// Backoff before the second reconnect attempt; doubles per attempt.
    pub reconnect_base_backoff: SimDuration,
    /// Reconnect backoff ceiling.
    pub reconnect_max_backoff: SimDuration,
    /// Journal length at which the intent store folds its journal into
    /// the checkpoint.
    pub checkpoint_interval: usize,
}

impl Default for ResyncPolicy {
    fn default() -> Self {
        ResyncPolicy {
            mode: ResyncMode::Warm,
            max_reconnect_attempts: 8,
            reconnect_base_backoff: SimDuration::from_ms(1.0),
            reconnect_max_backoff: SimDuration::from_ms(50.0),
            checkpoint_interval: 256,
        }
    }
}

impl ResyncPolicy {
    /// Deterministic capped exponential backoff before reconnect attempt
    /// `attempt` (1-based). No jitter: reconnect pacing must replay
    /// byte-for-byte from the crash seed alone.
    pub fn reconnect_backoff(&self, attempt: u32) -> SimDuration {
        let exp = attempt.saturating_sub(1).min(16);
        (self.reconnect_base_backoff * (1u64 << exp)).min(self.reconnect_max_backoff)
    }
}

/// One journaled change to the controller's installed-rule intent.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum IntentOp {
    /// A logical rule became installed.
    Install(Rule),
    /// A logical rule was removed.
    Remove(RuleId),
    /// A logical rule's action changed in place (priority changes are
    /// journaled as remove + install by the switch).
    Modify {
        /// Target rule.
        id: RuleId,
        /// Replacement action.
        action: Action,
    },
}

/// Durable checkpoint + journal of the rules the controller believes
/// installed — the authoritative store a crashed switch is rebuilt from
/// (the FDRC "controller as rule store" model).
///
/// Writes append to the journal; once the journal reaches
/// `checkpoint_interval` entries it is folded into the checkpoint map
/// (a *checkpoint*, counted in `resync.checkpoints`). [`snapshot`]
/// (Self::snapshot) materializes checkpoint ⊕ journal.
#[derive(Clone, Debug)]
pub struct IntentStore {
    checkpoint: BTreeMap<RuleId, Rule>,
    journal: Vec<IntentOp>,
    checkpoint_interval: usize,
    checkpoints: u64,
}

impl IntentStore {
    /// An empty store compacting at the given journal length.
    pub fn new(checkpoint_interval: usize) -> Self {
        IntentStore {
            checkpoint: BTreeMap::new(),
            journal: Vec::new(),
            checkpoint_interval: checkpoint_interval.max(1),
            checkpoints: 0,
        }
    }

    /// Journals one intent change, folding the journal into the
    /// checkpoint when it reaches the configured interval.
    pub fn record(&mut self, op: IntentOp) {
        self.journal.push(op);
        if self.journal.len() >= self.checkpoint_interval {
            self.compact();
        }
    }

    /// Folds the journal into the checkpoint now.
    pub fn compact(&mut self) {
        if self.journal.is_empty() {
            return;
        }
        let journal = std::mem::take(&mut self.journal);
        for op in journal {
            Self::apply(&mut self.checkpoint, op);
        }
        self.checkpoints += 1;
        hermes_telemetry::counter("resync.checkpoints", 1);
    }

    fn apply(map: &mut BTreeMap<RuleId, Rule>, op: IntentOp) {
        match op {
            IntentOp::Install(rule) => {
                map.insert(rule.id, rule);
            }
            IntentOp::Remove(id) => {
                map.remove(&id);
            }
            IntentOp::Modify { id, action } => {
                if let Some(r) = map.get_mut(&id) {
                    r.action = action;
                }
            }
        }
    }

    /// The full intended rule set: checkpoint with the journal replayed
    /// on top.
    pub fn snapshot(&self) -> BTreeMap<RuleId, Rule> {
        let mut map = self.checkpoint.clone();
        for op in &self.journal {
            Self::apply(&mut map, *op);
        }
        map
    }

    /// Whether the intended set holds the given rule (checkpoint with
    /// the journal replayed on top — the view a resync would rebuild).
    pub fn contains(&self, id: RuleId) -> bool {
        let mut present = self.checkpoint.contains_key(&id);
        for op in &self.journal {
            match op {
                IntentOp::Install(rule) if rule.id == id => present = true,
                IntentOp::Remove(rid) if *rid == id => present = false,
                _ => {}
            }
        }
        present
    }

    /// Number of rules in the intended set.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// No rules intended?
    pub fn is_empty(&self) -> bool {
        self.checkpoint.is_empty() && self.journal.is_empty()
    }

    /// Un-compacted journal entries.
    pub fn journal_depth(&self) -> usize {
        self.journal.len()
    }

    /// Checkpoints taken so far.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }
}

/// Minimal repair set for one TCAM slice: what a resync pass must delete,
/// fix in place and install to make the device match the expected
/// physical view.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SlicePlan {
    /// Device entries with no owner, or whose key/priority drifted
    /// (replacements arrive via `installs`).
    pub deletes: Vec<RuleId>,
    /// Entries whose action drifted, rewritten in place.
    pub fixes: Vec<(RuleId, Action)>,
    /// Expected entries the device lost.
    pub installs: Vec<Rule>,
    /// Entries that survived the crash exactly right.
    pub survivors: usize,
}

impl SlicePlan {
    /// Nothing to repair?
    pub fn is_noop(&self) -> bool {
        self.deletes.is_empty() && self.fixes.is_empty() && self.installs.is_empty()
    }

    /// Total repair ops the plan will issue.
    pub fn ops_len(&self) -> usize {
        self.deletes.len() + self.fixes.len() + self.installs.len()
    }

    /// The plan as one batched device transaction: deletes first (freeing
    /// capacity and clearing drifted shapes), then in-place fixes, then
    /// installs — the order `apply_batch` validates sequentially.
    pub fn to_ops(&self) -> Vec<TcamOp> {
        let mut ops = Vec::with_capacity(self.ops_len());
        ops.extend(self.deletes.iter().copied().map(TcamOp::Delete));
        ops.extend(
            self.fixes
                .iter()
                .map(|(id, action)| TcamOp::ModifyAction {
                    id: *id,
                    action: *action,
                }),
        );
        ops.extend(self.installs.iter().copied().map(TcamOp::Insert));
        ops
    }
}

/// Diffs the expected physical entries of one slice against what the
/// device actually holds after a crash, producing the minimal repair set.
/// Pure and deterministic: outputs are sorted by rule id.
pub fn plan_slice(expected: &BTreeMap<RuleId, Rule>, actual: &[Rule]) -> SlicePlan {
    let mut plan = SlicePlan::default();
    let mut healthy: std::collections::BTreeSet<RuleId> = std::collections::BTreeSet::new();
    for dev_rule in actual {
        match expected.get(&dev_rule.id) {
            None => plan.deletes.push(dev_rule.id),
            Some(want) if want.priority != dev_rule.priority || want.key != dev_rule.key => {
                // Wrong shape: clear it; the replacement installs below.
                plan.deletes.push(dev_rule.id);
            }
            Some(want) if want.action != dev_rule.action => {
                plan.fixes.push((dev_rule.id, want.action));
                healthy.insert(dev_rule.id);
                plan.survivors += 1;
            }
            Some(_) => {
                healthy.insert(dev_rule.id);
                plan.survivors += 1;
            }
        }
    }
    plan.installs = expected
        .values()
        .filter(|r| !healthy.contains(&r.id))
        .copied()
        .collect();
    plan.deletes.sort_unstable_by_key(|id| id.0);
    plan.fixes.sort_unstable_by_key(|(id, _)| id.0);
    plan.installs.sort_unstable_by_key(|r| r.id.0);
    plan
}

/// Lifetime health counters for the resync subsystem.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResyncStats {
    /// Crashes detected (first failed op or explicit injection).
    pub crashes_detected: u64,
    /// Resync passes started (incomplete passes retry and re-count).
    pub resyncs_started: u64,
    /// Resync passes that fully re-established the guarantee.
    pub resyncs_completed: u64,
    /// Completed passes that ran in warm (diff) mode.
    pub warm_resyncs: u64,
    /// Completed passes that ran in cold (full reinstall) mode.
    pub cold_resyncs: u64,
    /// Reconnect attempts issued (denied attempts included).
    pub reconnect_attempts: u64,
    /// Resync passes abandoned with the session still down.
    pub reconnect_failures: u64,
    /// Physical entries (re)installed by resync.
    pub rules_reinstalled: u64,
    /// Physical entries deleted by resync (orphans, drift, cold wipes).
    pub entries_deleted: u64,
    /// Survivor entries a warm pass kept in place.
    pub survivors_kept: u64,
    /// Simulated ns between crash detection and guarantee re-establishment.
    pub guarantee_gap_ns: u64,
}

/// Outcome of one `HermesSwitch::resync` pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResyncReport {
    /// The mode the pass ran in.
    pub mode: ResyncMode,
    /// Reconnect attempts this pass issued.
    pub reconnect_attempts: u32,
    /// Physical entries deleted (orphans, drifted shapes, cold wipes).
    pub deleted: usize,
    /// Physical entries (re)installed.
    pub reinstalled: usize,
    /// Action drift repaired in place.
    pub fixed: usize,
    /// Survivor entries kept in place (always 0 in cold mode).
    pub survivors: usize,
    /// Control-plane time the pass consumed (backoff included).
    pub duration: SimDuration,
    /// `false` when the session is still down or a repair op failed;
    /// the pass retries on the next tick/audit.
    pub complete: bool,
}

impl ResyncReport {
    /// An empty (not-yet-complete) report for the given mode.
    pub fn new(mode: ResyncMode) -> Self {
        ResyncReport {
            mode,
            reconnect_attempts: 0,
            deleted: 0,
            reinstalled: 0,
            fixed: 0,
            survivors: 0,
            duration: SimDuration::ZERO,
            complete: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(id: u64, prio: u32) -> Rule {
        let p: Ipv4Prefix = format!("10.{}.0.0/16", id % 200).parse().unwrap();
        Rule::new(id, p.to_key(), Priority(prio), Action::Forward(prio % 5 + 1))
    }

    #[test]
    fn intent_store_snapshot_replays_journal() {
        let mut store = IntentStore::new(1000);
        store.record(IntentOp::Install(rule(1, 5)));
        store.record(IntentOp::Install(rule(2, 7)));
        store.record(IntentOp::Modify {
            id: RuleId(1),
            action: Action::Drop,
        });
        store.record(IntentOp::Remove(RuleId(2)));
        let snap = store.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[&RuleId(1)].action, Action::Drop);
        assert_eq!(store.journal_depth(), 4);
        assert_eq!(store.checkpoints(), 0);
    }

    #[test]
    fn intent_store_compacts_at_interval() {
        let mut store = IntentStore::new(4);
        for i in 0..10 {
            store.record(IntentOp::Install(rule(i, 3)));
        }
        assert!(store.checkpoints() >= 2);
        assert!(store.journal_depth() < 4);
        assert_eq!(store.len(), 10);
        // Compaction preserves the snapshot exactly.
        store.compact();
        assert_eq!(store.journal_depth(), 0);
        assert_eq!(store.snapshot().len(), 10);
    }

    #[test]
    fn plan_slice_wiped_table_reinstalls_everything() {
        let expected: BTreeMap<RuleId, Rule> =
            (1..=5).map(|i| (RuleId(i), rule(i, i as u32))).collect();
        let plan = plan_slice(&expected, &[]);
        assert!(plan.deletes.is_empty());
        assert_eq!(plan.installs.len(), 5);
        assert_eq!(plan.survivors, 0);
        // Installs are id-sorted for deterministic replay.
        let ids: Vec<u64> = plan.installs.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn plan_slice_partial_survivors_diff_only() {
        let expected: BTreeMap<RuleId, Rule> =
            (1..=4).map(|i| (RuleId(i), rule(i, i as u32))).collect();
        // 1 survives intact, 2 drifted action, 3 lost, plus an orphan 9.
        let mut drifted = rule(2, 2);
        drifted.action = Action::Drop;
        let actual = vec![rule(1, 1), drifted, rule(4, 4), rule(9, 9)];
        let plan = plan_slice(&expected, &actual);
        assert_eq!(plan.deletes, vec![RuleId(9)]);
        assert_eq!(plan.fixes.len(), 1);
        assert_eq!(plan.fixes[0].0, RuleId(2));
        assert_eq!(plan.installs.len(), 1);
        assert_eq!(plan.installs[0].id, RuleId(3));
        assert_eq!(plan.survivors, 3);
        assert_eq!(plan.ops_len(), 3);
        assert!(!plan.is_noop());
    }

    #[test]
    fn plan_slice_shape_drift_becomes_delete_plus_install() {
        let expected: BTreeMap<RuleId, Rule> = [(RuleId(1), rule(1, 5))].into_iter().collect();
        let wrong_prio = Rule {
            priority: Priority(9),
            ..rule(1, 5)
        };
        let plan = plan_slice(&expected, &[wrong_prio]);
        assert_eq!(plan.deletes, vec![RuleId(1)]);
        assert_eq!(plan.installs.len(), 1);
        assert_eq!(plan.survivors, 0);
        // Batch order: the delete precedes the replacing insert.
        let ops = plan.to_ops();
        assert!(matches!(ops[0], TcamOp::Delete(_)));
        assert!(matches!(ops[1], TcamOp::Insert(_)));
    }

    #[test]
    fn reconnect_backoff_doubles_and_caps() {
        let p = ResyncPolicy::default();
        assert_eq!(p.reconnect_backoff(1), SimDuration::from_ms(1.0));
        assert_eq!(p.reconnect_backoff(2), SimDuration::from_ms(2.0));
        assert_eq!(p.reconnect_backoff(7), SimDuration::from_ms(50.0));
        assert_eq!(p.reconnect_backoff(60), SimDuration::from_ms(50.0));
    }
}
