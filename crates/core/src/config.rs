//! Hermes configuration: guarantees, predicates and migration policy.

use crate::predict::{Corrector, PredictorKind};
use crate::recovery::RetryPolicy;
use crate::resync::ResyncPolicy;
use hermes_rules::prelude::*;
use hermes_tcam::SimDuration;

/// Which rules receive the performance guarantee — the `match-predicate`
/// argument of `CreateTCAMQoS` (§7).
#[derive(Clone, Debug, PartialEq)]
pub enum RulePredicate {
    /// Every rule.
    All,
    /// Rules whose destination prefix lies within the given prefix.
    DstWithin(Ipv4Prefix),
    /// Rules with priority at least the given value.
    PriorityAtLeast(Priority),
    /// Conjunction of predicates.
    And(Vec<RulePredicate>),
    /// Disjunction of predicates.
    Or(Vec<RulePredicate>),
}

impl RulePredicate {
    /// Does the rule qualify for the guarantee?
    pub fn matches(&self, rule: &Rule) -> bool {
        match self {
            RulePredicate::All => true,
            RulePredicate::DstWithin(p) => FlowMatch::dst_prefix_of_key(&rule.key)
                .map(|d| p.contains(&d))
                .unwrap_or(false),
            RulePredicate::PriorityAtLeast(p) => rule.priority >= *p,
            RulePredicate::And(ps) => ps.iter().all(|q| q.matches(rule)),
            RulePredicate::Or(ps) => ps.iter().any(|q| q.matches(rule)),
        }
    }
}

/// When the Rule Manager migrates (§5.1). The paper's design chooses the
/// predictive trigger; the threshold variant is the Hermes-SIMPLE baseline
/// of §8.5.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MigrationTrigger {
    /// Predict next-interval arrivals; migrate when the predicted occupancy
    /// would overflow the shadow table.
    Predictive {
        /// Which predictor to run.
        predictor: PredictorKind,
        /// Error-correction applied to the prediction.
        corrector: Corrector,
    },
    /// Hermes-SIMPLE: migrate when occupancy exceeds `fraction` of the
    /// shadow capacity (0.0 = migrate on any occupancy, i.e. constantly).
    Threshold {
        /// Occupancy fraction in `[0, 1]`.
        fraction: f64,
    },
}

impl Default for MigrationTrigger {
    /// The paper's default: Cubic Spline with 100% slack (§8.6: "Hermes is
    /// by default configured to Cubic Spline with a slack inflation of
    /// 100%").
    fn default() -> Self {
        MigrationTrigger::Predictive {
            predictor: PredictorKind::CubicSpline,
            corrector: Corrector::Slack(1.0),
        }
    }
}

/// How the Rule Manager writes the migrated rules into the main table
/// (§5.2, "Correctness During Migration Consistency").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MigrationMode {
    /// Incremental update: install each rule in the main table before
    /// removing its shadow pieces — no packet ever loses its matching rule
    /// (the paper's choice).
    #[default]
    MakeBeforeBreak,
    /// Stall the pipeline and swap atomically. Perfectly consistent but
    /// pauses the data plane for the whole migration (the alternative the
    /// paper rejects); kept for the ablation benchmark.
    PauseAndSwap,
}

/// Full Hermes configuration for one switch.
#[derive(Clone, Debug)]
pub struct HermesConfig {
    /// The requested insertion-latency guarantee (the paper's headline
    /// configuration is 5 ms).
    pub guarantee: SimDuration,
    /// Which rules get the guarantee.
    pub predicate: RulePredicate,
    /// Migration trigger policy.
    pub trigger: MigrationTrigger,
    /// How the migration writes are sequenced.
    pub mode: MigrationMode,
    /// Period between Rule Manager wake-ups (prediction + trigger check).
    pub tick: SimDuration,
    /// Admission-control rate in inserts/s; `None` derives the rate from
    /// Equation 2 at runtime.
    pub rate_limit: Option<f64>,
    /// Rules that would fragment into more than this many partitions are
    /// sent straight to the main table (§4.2's footnote: a lowest-priority
    /// `0.0.0.0/0` would overlap everything).
    pub max_partitions: usize,
    /// Explicit shadow-table size override; `None` sizes the shadow from
    /// the guarantee (largest size whose worst-case insert meets it).
    pub shadow_size: Option<usize>,
    /// §4.2's insertion optimization: rules that are the lowest priority of
    /// all installed rules insert directly into the main table (they append
    /// without shifting and are the rules that fragment worst). Disable to
    /// force every qualifying rule through the shadow path (ablation).
    pub low_priority_bypass: bool,
    /// Per-op retry policy for transient control-channel failures.
    pub retry: RetryPolicy,
    /// Consecutive retry-exhausted device ops before the Gate Keeper
    /// enters degraded mode and queues admissions.
    pub degraded_threshold: u32,
    /// Drain the shadow table in one planned device transaction per slice
    /// (batched control channel: one handshake, one coalesced shift plan).
    /// Disable for the legacy per-rule migration path (ablation).
    pub batched_migration: bool,
    /// Crash-resync policy: warm/cold reboot mode, reconnect backoff and
    /// the intent-store checkpoint interval.
    pub resync: ResyncPolicy,
}

impl Default for HermesConfig {
    fn default() -> Self {
        HermesConfig {
            guarantee: SimDuration::from_ms(5.0),
            predicate: RulePredicate::All,
            trigger: MigrationTrigger::default(),
            mode: MigrationMode::default(),
            tick: SimDuration::from_ms(100.0),
            rate_limit: None,
            max_partitions: 16,
            shadow_size: None,
            low_priority_bypass: true,
            retry: RetryPolicy::default(),
            degraded_threshold: 2,
            batched_migration: true,
            resync: ResyncPolicy::default(),
        }
    }
}

impl HermesConfig {
    /// A config with the given guarantee and defaults elsewhere.
    pub fn with_guarantee(guarantee: SimDuration) -> Self {
        HermesConfig {
            guarantee,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(pfx: &str, prio: u32) -> Rule {
        let p: Ipv4Prefix = pfx.parse().unwrap();
        Rule::new(1, p.to_key(), Priority(prio), Action::Drop)
    }

    #[test]
    fn predicate_all() {
        assert!(RulePredicate::All.matches(&rule("10.0.0.0/8", 1)));
    }

    #[test]
    fn predicate_dst_within() {
        let p = RulePredicate::DstWithin("10.0.0.0/8".parse().unwrap());
        assert!(p.matches(&rule("10.1.0.0/16", 1)));
        assert!(!p.matches(&rule("11.0.0.0/8", 1)));
        assert!(!p.matches(&rule("0.0.0.0/0", 1)));
    }

    #[test]
    fn predicate_priority() {
        let p = RulePredicate::PriorityAtLeast(Priority(10));
        assert!(p.matches(&rule("10.0.0.0/8", 10)));
        assert!(!p.matches(&rule("10.0.0.0/8", 9)));
    }

    #[test]
    fn predicate_combinators() {
        let p = RulePredicate::And(vec![
            RulePredicate::DstWithin("10.0.0.0/8".parse().unwrap()),
            RulePredicate::PriorityAtLeast(Priority(5)),
        ]);
        assert!(p.matches(&rule("10.1.0.0/16", 5)));
        assert!(!p.matches(&rule("10.1.0.0/16", 4)));
        let q = RulePredicate::Or(vec![
            RulePredicate::DstWithin("10.0.0.0/8".parse().unwrap()),
            RulePredicate::PriorityAtLeast(Priority(5)),
        ]);
        assert!(q.matches(&rule("11.0.0.0/8", 9)));
        assert!(!q.matches(&rule("11.0.0.0/8", 1)));
    }

    #[test]
    fn default_config_matches_paper() {
        let c = HermesConfig::default();
        assert_eq!(c.guarantee, SimDuration::from_ms(5.0));
        assert_eq!(
            c.trigger,
            MigrationTrigger::Predictive {
                predictor: PredictorKind::CubicSpline,
                corrector: Corrector::Slack(1.0)
            }
        );
        assert_eq!(c.mode, MigrationMode::MakeBeforeBreak);
    }
}
