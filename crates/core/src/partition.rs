//! Algorithm 1: `PartitionNewRule` (§4.1).
//!
//! Hermes looks up the shadow table *before* the main table, so a new
//! (lower-priority) rule placed in the shadow would wrongly win over any
//! higher-priority main-table rule it overlaps (Fig. 4(b)). Algorithm 1
//! repairs this by *cutting* the new rule against every higher-priority
//! overlapping main-table rule, inserting only the remainder:
//!
//! 1. detect overlaps between the new rule and main-table rules with higher
//!    priority (the `O` set);
//! 2. eliminate overlaps by iteratively cutting the new rule's key into a
//!    partition set `P` disjoint from every rule in `O`;
//! 3. merge `P` into a minimal set `N` of TCAM entries;
//! 4. record the mapping `M : original rule → partitions` so deletions can
//!    un-partition (Fig. 6).
//!
//! Overlaps with *shadow*-table rules need no treatment: within one TCAM
//! table the hardware resolves priorities natively.

use hermes_rules::merge::minimize_keys;
use hermes_rules::overlap::OverlapIndex;
use hermes_rules::prelude::*;

/// The result of partitioning one new rule against the main table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionOutcome {
    /// The minimized partition keys to install in the shadow table. Empty
    /// when the rule is wholly subsumed by higher-priority main rules
    /// (Fig. 5(a): the rule is redundant and installs nothing).
    pub pieces: Vec<TernaryKey>,
    /// Ids of the main-table rules the new rule was cut against. If any of
    /// these is later deleted, the rule must be re-partitioned (Fig. 6).
    pub cut_against: Vec<RuleId>,
}

impl PartitionOutcome {
    /// `true` when the rule installs nothing (fully subsumed).
    pub fn is_redundant(&self) -> bool {
        self.pieces.is_empty()
    }

    /// `true` when the rule was not cut at all.
    pub fn is_intact(&self, original: &TernaryKey) -> bool {
        self.pieces.len() == 1 && self.pieces[0] == *original
    }
}

/// Runs Algorithm 1: cuts `rule` against every higher-priority overlapping
/// rule in `main`, returning the minimized partition set and the mapping
/// information.
///
/// ```
/// use hermes_core::partition::partition_new_rule;
/// use hermes_rules::overlap::OverlapIndex;
/// use hermes_rules::prelude::*;
///
/// // Fig. 4 of the paper: the main table holds a higher-priority /26…
/// let mut main = OverlapIndex::new();
/// let hi: Ipv4Prefix = "192.168.1.0/26".parse().unwrap();
/// main.insert(Rule::new(1, hi.to_key(), Priority(10), Action::Forward(1)));
///
/// // …so the incoming lower-priority /24 is cut into two pieces
/// // (192.168.1.64/26 and 192.168.1.128/25).
/// let lo: Ipv4Prefix = "192.168.1.0/24".parse().unwrap();
/// let new = Rule::new(2, lo.to_key(), Priority(1), Action::Forward(2));
/// let outcome = partition_new_rule(&new, &main);
/// assert_eq!(outcome.pieces.len(), 2);
/// assert_eq!(outcome.cut_against, vec![RuleId(1)]);
/// ```
pub fn partition_new_rule(rule: &Rule, main: &OverlapIndex) -> PartitionOutcome {
    // INVARIANT: the only error is `OverBudget`, and a working set can
    // never exceed a `usize::MAX` limit.
    partition_new_rule_bounded(rule, main, usize::MAX).expect("unbounded partition")
}

/// Returned by [`partition_new_rule_bounded`] when the intermediate
/// partition set exceeds the working budget: the rule belongs in the main
/// table, not the shadow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverBudget;

/// [`partition_new_rule`] with a working-set budget: if the intermediate
/// partition set exceeds `limit` keys the computation aborts with
/// [`OverBudget`].
///
/// This is the efficient form of the §4.2 footnote — a rule that would
/// fragment into very many partitions (a wide, low-priority rule
/// overlapping much of the main table) is routed straight to the main
/// table; detecting that early keeps the insertion algorithm's runtime
/// flat (Fig. 15(b)) instead of quadratic under adversarial overlap.
pub fn partition_new_rule_bounded(
    rule: &Rule,
    main: &OverlapIndex,
    limit: usize,
) -> Result<PartitionOutcome, OverBudget> {
    // Step 1 (lines 2-4): the overlap set O.
    let overlaps = main.overlapping_above(&rule.key, rule.priority);
    if overlaps.is_empty() {
        if hermes_telemetry::enabled() {
            hermes_telemetry::counter("partition.calls", 1);
            hermes_telemetry::observe("partition.pieces", 1);
        }
        return Ok(PartitionOutcome {
            pieces: vec![rule.key],
            cut_against: Vec::new(),
        });
    }

    // Step 2 (lines 5-6): iteratively eliminate each overlap from the
    // current partition set. Cutting against more-specific rules first
    // keeps intermediate sets smaller.
    let mut ordered: Vec<&Rule> = overlaps.iter().collect();
    ordered.sort_by_key(|r| std::cmp::Reverse(r.key.specificity()));
    let mut pieces = vec![rule.key];
    for o in ordered {
        if pieces.is_empty() {
            break;
        }
        let mut next = Vec::with_capacity(pieces.len());
        for piece in &pieces {
            next.extend(piece.difference(&o.key));
        }
        if next.len() > limit.saturating_mul(4) {
            // Far over budget: no merge will save this rule.
            return Err(OverBudget);
        }
        if next.len() > limit {
            // Modestly over: the merge step often collapses sibling cuts.
            next = minimize_keys(next);
            if next.len() > limit {
                return Err(OverBudget);
            }
        }
        pieces = next;
    }

    // Step 3 (line 7): merge into a minimal entry set.
    let pieces = minimize_keys(pieces);

    // Step 4 (line 8): the mapping set M is materialized by the caller from
    // `cut_against`.
    if hermes_telemetry::enabled() {
        hermes_telemetry::counter("partition.calls", 1);
        hermes_telemetry::counter("partition.cuts", overlaps.len() as u64);
        hermes_telemetry::observe("partition.pieces", pieces.len() as u64);
    }
    Ok(PartitionOutcome {
        pieces,
        cut_against: overlaps.iter().map(|r| r.id).collect(),
    })
}

/// Debug/test helper: verifies that a partition outcome is semantically
/// correct with respect to the main table, i.e. for every packet:
/// * a piece matches ⟺ the original rule matches **and** no
///   higher-priority main rule matches;
/// * pieces never overlap a higher-priority main rule.
///
/// Checked by sampling `samples` packets inside the original rule's region.
pub fn verify_partition(
    rule: &Rule,
    outcome: &PartitionOutcome,
    main: &OverlapIndex,
    samples: &[u128],
) -> bool {
    for &pkt in samples {
        let in_original = rule.key.matches(pkt);
        let in_piece = outcome.pieces.iter().any(|p| p.matches(pkt));
        let masked = main
            .overlapping_above(&rule.key, rule.priority)
            .iter()
            .any(|o| o.key.matches(pkt));
        let expect = in_original && !masked;
        if in_piece != expect {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_rules::fields::DST_SHIFT;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn rule(id: u64, pfx: &str, prio: u32) -> Rule {
        Rule::new(
            id,
            p(pfx).to_key(),
            Priority(prio),
            Action::Forward(id as u32),
        )
    }

    fn pkt(addr: u32) -> u128 {
        (addr as u128) << DST_SHIFT
    }

    #[test]
    fn no_overlap_is_identity() {
        let mut main = OverlapIndex::new();
        main.insert(rule(1, "11.0.0.0/8", 10));
        let new = rule(2, "10.0.0.0/8", 1);
        let out = partition_new_rule(&new, &main);
        assert!(out.is_intact(&new.key));
        assert!(out.cut_against.is_empty());
    }

    #[test]
    fn lower_priority_main_rules_ignored() {
        let mut main = OverlapIndex::new();
        main.insert(rule(1, "10.0.0.0/8", 1));
        let new = rule(2, "10.1.0.0/16", 10);
        let out = partition_new_rule(&new, &main);
        assert!(out.is_intact(&new.key));
    }

    #[test]
    fn figure5a_subsumed_rule_is_redundant() {
        // Main holds a larger, higher-priority rule wholly subsuming the
        // new rule: nothing to install.
        let mut main = OverlapIndex::new();
        main.insert(rule(1, "10.0.0.0/8", 10));
        let new = rule(2, "10.1.0.0/16", 1);
        let out = partition_new_rule(&new, &main);
        assert!(out.is_redundant());
        assert_eq!(out.cut_against, vec![RuleId(1)]);
    }

    #[test]
    fn figure5b_paper_example() {
        // Fig. 4: main holds 192.168.1.0/26 (higher priority); the new
        // 192.168.1.0/24 must be cut into {.64/26, .128/25}.
        let mut main = OverlapIndex::new();
        main.insert(rule(1, "192.168.1.0/26", 10));
        let new = rule(2, "192.168.1.0/24", 1);
        let out = partition_new_rule(&new, &main);
        let mut got = out.pieces.clone();
        got.sort_by_key(|k| k.value());
        let mut want = vec![
            p("192.168.1.64/26").to_key(),
            p("192.168.1.128/25").to_key(),
        ];
        want.sort_by_key(|k| k.value());
        assert_eq!(got, want);
        assert_eq!(out.cut_against, vec![RuleId(1)]);
    }

    #[test]
    fn figure5c_multiple_overlaps() {
        let mut main = OverlapIndex::new();
        main.insert(rule(1, "10.0.0.0/10", 10));
        main.insert(rule(2, "10.128.0.0/10", 20));
        let new = rule(3, "10.0.0.0/8", 1);
        let out = partition_new_rule(&new, &main);
        assert!(!out.is_redundant());
        assert_eq!(out.cut_against.len(), 2);
        // Sampled semantic check.
        let samples: Vec<u128> = (0..1024u32)
            .map(|i| pkt(0x0a000000 | i.wrapping_mul(4_194_301)))
            .collect();
        assert!(verify_partition(&new, &out, &main, &samples));
    }

    #[test]
    fn merge_step_minimizes() {
        // Cutting 10.0.0.0/8 against a tiny high-priority /32 produces 24
        // prefix pieces before merging; merging cannot reduce a minimal
        // prefix difference, but cutting against two adjacent /26s must
        // re-merge into the same set as cutting against their /25 parent.
        let mut main_pair = OverlapIndex::new();
        main_pair.insert(rule(1, "10.0.0.0/26", 10));
        main_pair.insert(rule(2, "10.0.0.64/26", 10));
        let new = rule(3, "10.0.0.0/24", 1);
        let out_pair = partition_new_rule(&new, &main_pair);

        let mut main_parent = OverlapIndex::new();
        main_parent.insert(rule(1, "10.0.0.0/25", 10));
        let out_parent = partition_new_rule(&new, &main_parent);

        let mut a = out_pair.pieces.clone();
        let mut b = out_parent.pieces.clone();
        a.sort_by_key(|k| (k.value(), k.mask()));
        b.sort_by_key(|k| (k.value(), k.mask()));
        assert_eq!(a, b, "merge step should collapse sibling cuts");
    }

    #[test]
    fn multi_field_cut() {
        // Higher-priority TCP-only rule; new rule matches all protocols for
        // the same destination. The partition must exclude exactly TCP.
        let mut main = OverlapIndex::new();
        let tcp = Rule::new(
            1,
            FlowMatch::dst_prefix(p("10.0.0.0/8"))
                .with_proto(6)
                .to_key(),
            Priority(10),
            Action::Drop,
        );
        main.insert(tcp);
        let new = rule(2, "10.0.0.0/8", 1);
        let out = partition_new_rule(&new, &main);
        assert!(!out.is_redundant());
        // TCP packet must not match any piece; UDP must.
        let tcp_pkt = PacketHeader {
            dst: 0x0a010101,
            src: 0,
            proto: 6,
            dst_port: 0,
            src_port: 0,
            vlan: 0,
        }
        .to_word();
        let udp_pkt = PacketHeader {
            dst: 0x0a010101,
            src: 0,
            proto: 17,
            dst_port: 0,
            src_port: 0,
            vlan: 0,
        }
        .to_word();
        assert!(!out.pieces.iter().any(|k| k.matches(tcp_pkt)));
        assert!(out.pieces.iter().any(|k| k.matches(udp_pkt)));
    }

    #[test]
    fn randomized_partitions_verified_against_oracle() {
        use hermes_util::rng::{Rng, SeedableRng};
        let mut rng = hermes_util::rng::rngs::StdRng::seed_from_u64(23);
        for _ in 0..30 {
            let mut main = OverlapIndex::new();
            for i in 0..rng.gen_range(1..30u64) {
                let len = rng.gen_range(6..=24);
                let addr = (rng.gen_range(0..4u32)) << 28 | rng.gen_range(0..1u32 << 24);
                main.insert(rule(
                    i,
                    &Ipv4Prefix::new(addr, len).to_string(),
                    rng.gen_range(5..20),
                ));
            }
            let new_len = rng.gen_range(4..=16);
            let new_addr = (rng.gen_range(0..4u32)) << 28;
            let new = rule(
                1000,
                &Ipv4Prefix::new(new_addr, new_len).to_string(),
                rng.gen_range(1..5),
            );
            let out = partition_new_rule(&new, &main);
            let samples: Vec<u128> = (0..2000)
                .map(|_| pkt(new_addr | rng.gen_range(0..1u32 << (32 - new_len))))
                .collect();
            assert!(verify_partition(&new, &out, &main, &samples));
        }
    }
}
