//! A wall-clock micro-benchmark harness: the workspace's `criterion`
//! replacement for the `crates/bench/benches/*` targets.
//!
//! Deliberately small: warmup, auto-calibrated batch sizes, percentile
//! reporting. Results print as one aligned row per benchmark:
//!
//! ```text
//! tcam_insert/1000            n=100     mean=1.82µs  p50=1.79µs  p95=2.01µs  p99=2.35µs
//! ```
//!
//! Env knobs: `HERMES_BENCH_SAMPLES` (default 100 timed samples),
//! `HERMES_BENCH_WARMUP_MS` (default 100 ms), `HERMES_BENCH_FAST=1`
//! (10 samples, 10 ms warmup — for CI smoke runs).

use std::time::{Duration, Instant};

/// A wall-clock stopwatch: the sanctioned way for experiment binaries to
/// measure *host* runtime (Fig. 15 reports algorithm time on the build
/// machine, not simulated time). hermes-lint's R1 allowlist covers only
/// this module, so every wall-clock read in the workspace funnels through
/// here and is greppable in one place.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Wall-clock time since `start()` (or the last `lap()`).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Returns the elapsed time and restarts the stopwatch.
    pub fn lap(&mut self) -> Duration {
        let e = self.start.elapsed();
        self.start = Instant::now();
        e
    }
}

/// Per-sample timing statistics, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct Stats {
    /// Benchmark label.
    pub name: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample (1 for batched runs).
    pub iters_per_sample: u64,
    /// Mean ns/iter.
    pub mean_ns: f64,
    /// Median ns/iter.
    pub p50_ns: f64,
    /// 95th percentile ns/iter.
    pub p95_ns: f64,
    /// 99th percentile ns/iter.
    pub p99_ns: f64,
    /// Fastest sample ns/iter.
    pub min_ns: f64,
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2}µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else {
        format!("{:.3}s", ns / 1_000_000_000.0)
    }
}

impl Stats {
    fn from_samples(name: &str, iters: u64, mut ns: Vec<f64>) -> Stats {
        crate::stats::sort_samples(&mut ns);
        let pct = |p: f64| crate::stats::quantile_sorted(&ns, p);
        Stats {
            name: name.to_string(),
            samples: ns.len(),
            iters_per_sample: iters,
            mean_ns: ns.iter().sum::<f64>() / ns.len() as f64,
            p50_ns: pct(0.50),
            p95_ns: pct(0.95),
            p99_ns: pct(0.99),
            min_ns: ns[0],
        }
    }

    /// Prints the standard aligned row.
    pub fn print(&self) {
        println!(
            "{:<36} n={:<5} mean={:>9}  p50={:>9}  p95={:>9}  p99={:>9}  min={:>9}",
            self.name,
            self.samples,
            fmt_ns(self.mean_ns),
            fmt_ns(self.p50_ns),
            fmt_ns(self.p95_ns),
            fmt_ns(self.p99_ns),
            fmt_ns(self.min_ns),
        );
    }
}

/// A named benchmark group with shared warmup/sample settings.
pub struct Bench {
    group: String,
    warmup: Duration,
    samples: usize,
}

impl Bench {
    /// A group with env-derived defaults (see module docs).
    pub fn new(group: &str) -> Bench {
        let fast = std::env::var("HERMES_BENCH_FAST").is_ok_and(|v| v != "0");
        let parse = |k: &str| std::env::var(k).ok().and_then(|v| v.parse::<u64>().ok());
        let samples = parse("HERMES_BENCH_SAMPLES")
            .unwrap_or(if fast { 10 } else { 100 })
            .max(2) as usize;
        let warmup_ms = parse("HERMES_BENCH_WARMUP_MS").unwrap_or(if fast { 10 } else { 100 });
        Bench {
            group: group.to_string(),
            warmup: Duration::from_millis(warmup_ms),
            samples,
        }
    }

    /// Overrides the number of timed samples (e.g. for slow end-to-end
    /// benchmarks, mirroring criterion's `sample_size`).
    pub fn samples(mut self, n: usize) -> Bench {
        self.samples = n.max(2);
        self
    }

    fn label(&self, id: &str) -> String {
        if id.is_empty() {
            self.group.clone()
        } else {
            format!("{}/{}", self.group, id)
        }
    }

    /// Times `f` per call, auto-batching fast routines so each timed
    /// sample spans at least ~200µs. Prints and returns the stats.
    pub fn run<R>(&self, id: &str, mut f: impl FnMut() -> R) -> Stats {
        // Warmup, also measuring one-call cost for calibration.
        let warm_start = Instant::now();
        let mut calls = 0u64;
        while warm_start.elapsed() < self.warmup || calls == 0 {
            std::hint::black_box(f());
            calls += 1;
        }
        let per_call = warm_start.elapsed().as_nanos() as f64 / calls as f64;
        let iters = ((200_000.0 / per_call.max(1.0)).ceil() as u64).clamp(1, 1_000_000);

        let mut ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        let stats = Stats::from_samples(&self.label(id), iters, ns);
        stats.print();
        stats
    }

    /// Times `routine` on a fresh `setup()` value per sample, excluding
    /// setup time (the `iter_batched` analog for routines that consume or
    /// mutate their input).
    pub fn run_batched<S, R>(
        &self,
        id: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) -> Stats {
        // Warmup.
        let warm_start = Instant::now();
        let mut warmed = false;
        while warm_start.elapsed() < self.warmup || !warmed {
            let s = setup();
            std::hint::black_box(routine(s));
            warmed = true;
        }

        let mut ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let s = setup();
            let t = Instant::now();
            std::hint::black_box(routine(s));
            ns.push(t.elapsed().as_nanos() as f64);
        }
        let stats = Stats::from_samples(&self.label(id), 1, ns);
        stats.print();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> Bench {
        Bench {
            group: "t".into(),
            warmup: Duration::from_millis(1),
            samples: 5,
        }
    }

    #[test]
    fn run_reports_sane_percentiles() {
        let s = quiet().run("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            acc
        });
        assert_eq!(s.samples, 5);
        assert!(s.min_ns > 0.0);
        assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns);
        assert!(s.mean_ns >= s.min_ns);
        assert!(s.iters_per_sample >= 1);
    }

    #[test]
    fn run_batched_excludes_setup() {
        // Setup is deliberately much heavier than the routine; per-sample
        // time must reflect the routine, not the setup.
        let s = quiet().run_batched(
            "cheap_routine",
            || vec![0u8; 1 << 20],
            |v| v.len(),
        );
        // Reading a len is far below 1 ms even with timer overhead; the
        // megabyte allocation above would not be.
        assert!(s.p50_ns < 1_000_000.0, "{}", s.p50_ns);
    }

    #[test]
    fn label_composition() {
        let b = quiet();
        assert_eq!(b.label(""), "t");
        assert_eq!(b.label("x"), "t/x");
    }

    #[test]
    fn stopwatch_measures_and_laps() {
        let mut w = Stopwatch::start();
        let mut acc = 0u64;
        for i in 0..10_000u64 {
            acc = acc.wrapping_add(std::hint::black_box(i));
        }
        std::hint::black_box(acc);
        let first = w.lap();
        assert!(first > Duration::ZERO);
        // After a lap the clock restarts: an immediate read is at most
        // the pre-lap total.
        assert!(w.elapsed() <= first + Duration::from_millis(50));
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.0), "12ns");
        assert_eq!(fmt_ns(1_500.0), "1.50µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50ms");
        assert_eq!(fmt_ns(3_200_000_000.0), "3.200s");
    }
}
