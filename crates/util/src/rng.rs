//! Seedable pseudo-random numbers without external crates.
//!
//! The core generator is xoshiro256** (Blackman & Vigna), seeded through
//! SplitMix64 exactly as its authors recommend. The trait surface mirrors
//! the subset of `rand` 0.8 the workspace used — [`Rng`], [`SeedableRng`],
//! `rngs::StdRng`, `gen_range`, `gen_bool`, `gen` — so porting a call site
//! is a path change, plus the distribution helpers the workload generators
//! need (exponential inter-arrivals, Poisson counts, Pareto and log-normal
//! sizes, weighted choice, Fisher–Yates shuffle).
//!
//! Everything is deterministic given the seed; there is deliberately no
//! OS-entropy constructor.

/// Core of every generator: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step: the seeding PRNG (and a decent mixer in its own
/// right). Advances `state` and returns the next output.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The workspace's standard generator: xoshiro256**.
///
/// Fast, 256-bit state, passes BigCrush; the name matches `rand`'s
/// `StdRng` so ported call sites read the same (the streams differ, so
/// seed-pinned expectations were re-pinned when the workspace migrated).
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 cannot emit
        // four zeros in a row, but keep the guard explicit.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Compatibility module so `rand::rngs::StdRng` call sites port by
/// rewriting the crate path only.
pub mod rngs {
    pub use super::StdRng;
}

/// Types a range can be sampled over (the `gen_range` argument).
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

#[inline]
fn mul_shift(r: u64, span: u128) -> u128 {
    // Uniform-ish multiply-shift mapping of a 64-bit draw onto [0, span):
    // bias is < 2^-64 per draw, far below anything these simulations can
    // observe.
    (r as u128 * span) >> 64
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let lo = self.start as i128;
                let span = (self.end as i128 - lo) as u128;
                (lo + mul_shift(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let lo = start as i128;
                let span = (end as i128 - lo) as u128 + 1;
                (lo + mul_shift(rng.next_u64(), span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = unit_f64(rng.next_u64());
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        // 53-bit draw over the closed interval.
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = unit_f64(rng.next_u64()) as f32;
        self.start + u * (self.end - self.start)
    }
}

/// `u64` → uniform `f64` in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(r: u64) -> f64 {
    (r >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types `gen()` can produce (the `rand::distributions::Standard` analog:
/// full-width integers, fair bools, `f64`/`f32` in `[0, 1)`).
pub trait Standard {
    /// Draws one value.
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> Self;
}

macro_rules! int_standard {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<G: RngCore + ?Sized>(rng: &mut G) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> f32 {
        unit_f64(rng.next_u64()) as f32
    }
}

/// The user-facing sampling surface, blanket-implemented for every
/// [`RngCore`]. Mirrors `rand::Rng` plus the distribution helpers the
/// workload generators use.
pub trait Rng: RngCore {
    /// Uniform draw from an integer or float range (`lo..hi`, `lo..=hi`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// One draw of a [`Standard`] type (full-width ints, fair bool,
    /// `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }

    /// Exponential draw with the given mean (inter-arrival times of a
    /// Poisson process with rate `1/mean`).
    fn exp(&mut self, mean: f64) -> f64
    where
        Self: Sized,
    {
        let u: f64 = self.gen_range(1e-300f64..1.0);
        -u.ln() * mean
    }

    /// Poisson-distributed count with the given mean, by inversion for
    /// small `lambda` and a normal approximation past 30 (plenty for
    /// per-tick arrival counts).
    fn poisson(&mut self, lambda: f64) -> u64
    where
        Self: Sized,
    {
        if lambda <= 0.0 {
            return 0;
        }
        if lambda < 30.0 {
            // Knuth inversion on the exponential product.
            let l = (-lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= unit_f64(self.next_u64());
                if p <= l {
                    return k;
                }
                k += 1;
            }
        }
        let n = self.normal(lambda, lambda.sqrt());
        n.round().max(0.0) as u64
    }

    /// Normal draw (Box–Muller).
    fn normal(&mut self, mean: f64, std_dev: f64) -> f64
    where
        Self: Sized,
    {
        let u1: f64 = self.gen_range(1e-300f64..1.0);
        let u2: f64 = self.gen_range(0.0f64..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Log-normal draw: `exp(N(mu, sigma))` of the underlying normal.
    fn log_normal(&mut self, mu: f64, sigma: f64) -> f64
    where
        Self: Sized,
    {
        self.normal(mu, sigma).exp()
    }

    /// Pareto draw with minimum `scale` and tail index `shape` (heavy
    /// tails for `shape <= 2`, the flow-size regime the paper cites).
    fn pareto(&mut self, scale: f64, shape: f64) -> f64
    where
        Self: Sized,
    {
        let u: f64 = self.gen_range(1e-300f64..1.0);
        scale / u.powf(1.0 / shape)
    }

    /// Index draw proportional to non-negative `weights` (all-zero weight
    /// vectors fall back to uniform).
    fn weighted_index(&mut self, weights: &[f64]) -> usize
    where
        Self: Sized,
    {
        assert!(!weights.is_empty(), "weighted_index: empty weights");
        let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
        if total <= 0.0 {
            return self.gen_range(0..weights.len());
        }
        let mut x = unit_f64(self.next_u64()) * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w.max(0.0);
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Uniform choice from a slice (`None` iff empty).
    fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T>
    where
        Self: Sized,
    {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.gen_range(0..xs.len())])
        }
    }

    /// In-place Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, xs: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..=i);
            xs.swap(i, j);
        }
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256** from the SplitMix64(0) seeding,
        // pinned so the stream can never silently change (every pinned
        // workload seed in the workspace depends on it).
        let mut r = StdRng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532
            ]
        );
    }

    #[test]
    fn streams_are_seed_deterministic_and_distinct() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = r.gen_range(1e-12f64..1.0);
            assert!((1e-12..1.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "{frac}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = StdRng::seed_from_u64(4);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exp(2.5)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "{mean}");
    }

    #[test]
    fn poisson_mean_and_variance_converge() {
        let mut r = StdRng::seed_from_u64(5);
        for lambda in [0.5, 4.0, 50.0] {
            let n = 50_000;
            let draws: Vec<f64> = (0..n).map(|_| r.poisson(lambda) as f64).collect();
            let mean = draws.iter().sum::<f64>() / n as f64;
            let var =
                draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
            assert!((mean - lambda).abs() < lambda * 0.1 + 0.05, "mean {mean} vs {lambda}");
            assert!((var - lambda).abs() < lambda * 0.2 + 0.1, "var {var} vs {lambda}");
        }
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn pareto_respects_scale_and_tail() {
        let mut r = StdRng::seed_from_u64(6);
        let draws: Vec<f64> = (0..100_000).map(|_| r.pareto(10.0, 1.5)).collect();
        assert!(draws.iter().all(|&d| d >= 10.0));
        // Median of Pareto(scale, shape) = scale * 2^(1/shape).
        let mut sorted = draws.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        let expect = 10.0 * 2f64.powf(1.0 / 1.5);
        assert!((median - expect).abs() / expect < 0.05, "{median} vs {expect}");
    }

    #[test]
    fn log_normal_median_is_exp_mu() {
        let mut r = StdRng::seed_from_u64(7);
        let mut draws: Vec<f64> = (0..100_000).map(|_| r.log_normal(1.0, 0.75)).collect();
        draws.sort_by(f64::total_cmp);
        let median = draws[draws.len() / 2];
        let expect = 1f64.exp();
        assert!((median - expect).abs() / expect < 0.05, "{median} vs {expect}");
    }

    #[test]
    fn weighted_index_tracks_weights() {
        let mut r = StdRng::seed_from_u64(8);
        let w = [1.0, 3.0, 0.0, 6.0];
        let mut counts = [0u32; 4];
        for _ in 0..100_000 {
            counts[r.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[2], 0);
        let frac3 = counts[3] as f64 / 100_000.0;
        assert!((frac3 - 0.6).abs() < 0.01, "{frac3}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut r = StdRng::seed_from_u64(9);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "astronomically unlikely identity shuffle");
        assert!(r.choose(&xs).is_some());
        let empty: &[u32] = &[];
        assert!(r.choose(empty).is_none());
    }
}
