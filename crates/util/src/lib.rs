//! # hermes-util — the zero-dependency substrate
//!
//! Everything the Hermes workspace needs that would otherwise come from
//! crates.io, in-tree so the repo builds and tests fully offline:
//!
//! * [`rng`] — a seedable xoshiro256** PRNG with the distribution helpers
//!   the workloads use (uniform ranges, Bernoulli, exponential/Poisson
//!   arrivals, Pareto and log-normal sizes, weighted choice, shuffle).
//!   The API mirrors the subset of `rand` 0.8 this workspace used, so
//!   `rand::` call sites port by switching the path to `hermes_util::rng::`.
//! * [`json`] — a minimal JSON value, writer and reader for experiment
//!   output and trace files.
//! * [`check`] — a compact property-testing harness (see [`check!`]) with
//!   generator combinators, fixed default seeds, failure minimization by
//!   halving the generation size, and `HERMES_CHECK_*` env overrides.
//! * [`bench`] — a wall-clock timer harness with warmup and percentile
//!   reporting for the `crates/bench/benches/*` targets.
//! * [`stats`] — the shared nearest-rank quantile used by both the bench
//!   harness and the netsim metric distributions.
//!
//! Policy (see README.md "Hermetic build"): this workspace takes **no**
//! external crate dependencies. Anything new must live here or be
//! vendored in-tree.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench;
pub mod check;
pub mod json;
pub mod rng;
pub mod scenario;
pub mod stats;
