//! A compact property-testing harness: the workspace's `proptest`
//! replacement.
//!
//! Tests are declared with the [`check!`](crate::check!) macro:
//!
//! ```
//! use hermes_util::check::{range, vec_of};
//!
//! hermes_util::check! {
//!     #![cases = 256]
//!     fn sort_is_idempotent(xs in vec_of(range(0u32..100), 0..20)) {
//!         let mut once = xs.clone();
//!         once.sort_unstable();
//!         let mut twice = once.clone();
//!         twice.sort_unstable();
//!         assert_eq!(once, twice);
//!     }
//! }
//! # fn main() {}
//! ```
//!
//! Each case derives its own seed from a fixed default base, so runs are
//! deterministic; a growing `size` parameter bounds generated collection
//! lengths. On failure the harness *minimizes by halving*: it re-generates
//! the failing case at size/2, size/4, … while the property still fails,
//! then reports the smallest failing input together with a one-line
//! reproduction command.
//!
//! Env overrides:
//!
//! * `HERMES_CHECK_CASES` — number of cases per property (default is the
//!   per-test `#![cases = N]`, itself defaulting to 256);
//! * `HERMES_CHECK_SEED` — base seed (case `i` uses `base + i`);
//! * `HERMES_CHECK_SIZE` — pin the generation size (used by the printed
//!   reproduction command).

use crate::rng::{SampleRange, SeedableRng, Standard, StdRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

/// The workspace-wide default base seed (stable across releases so CI
/// failures reproduce anywhere).
pub const DEFAULT_SEED: u64 = 0x4845_524d_4553_2131; // "HERMES!1"

/// Default number of cases per property.
pub const DEFAULT_CASES: u64 = 256;

/// Harness configuration, normally produced by [`Config::from_env`].
#[derive(Clone, Debug)]
pub struct Config {
    /// Cases to run.
    pub cases: u64,
    /// Base seed; case `i` is generated from `seed + i`.
    pub seed: u64,
    /// Pin the generation size instead of ramping it.
    pub size: Option<usize>,
}

impl Config {
    /// Reads `HERMES_CHECK_CASES` / `HERMES_CHECK_SEED` /
    /// `HERMES_CHECK_SIZE`, falling back to `default_cases` and
    /// [`DEFAULT_SEED`].
    pub fn from_env(default_cases: u64) -> Config {
        let parse = |k: &str| std::env::var(k).ok().and_then(|v| v.parse().ok());
        Config {
            cases: parse("HERMES_CHECK_CASES").unwrap_or(default_cases).max(1),
            seed: parse("HERMES_CHECK_SEED").unwrap_or(DEFAULT_SEED),
            size: parse("HERMES_CHECK_SIZE").map(|s: u64| s as usize),
        }
    }
}

/// The sampling function backing a [`Gen`].
type SampleFn<T> = Rc<dyn Fn(&mut StdRng, usize) -> T>;

/// A value generator: a sized, seeded sampling function. Combinators
/// compose by closure; cloning is cheap (`Rc`).
pub struct Gen<T> {
    f: SampleFn<T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen { f: Rc::clone(&self.f) }
    }
}

impl<T: 'static> Gen<T> {
    /// Wraps a raw sampling function. `size` grows over a run and should
    /// bound any collection lengths so halving it shrinks the input.
    pub fn from_fn(f: impl Fn(&mut StdRng, usize) -> T + 'static) -> Gen<T> {
        Gen { f: Rc::new(f) }
    }

    /// Draws one value.
    pub fn generate(&self, rng: &mut StdRng, size: usize) -> T {
        (self.f)(rng, size)
    }

    /// Maps the generated value (the `prop_map` analog).
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        Gen::from_fn(move |rng, size| f(self.generate(rng, size)))
    }
}

/// Always produces a clone of `v` (the `Just` analog).
pub fn just<T: Clone + 'static>(v: T) -> Gen<T> {
    Gen::from_fn(move |_, _| v.clone())
}

/// Uniform draw from an integer or float range: `range(0u32..100)`,
/// `range(8u8..=28)`, `range(0.0f64..1.0)`.
pub fn range<T: 'static, R: SampleRange<T> + Clone + 'static>(r: R) -> Gen<T> {
    Gen::from_fn(move |rng, _| crate::rng::Rng::gen_range(rng, r.clone()))
}

/// Full-width draw of a [`Standard`] type (the `any::<T>()` analog).
pub fn arb<T: Standard + 'static>() -> Gen<T> {
    Gen::from_fn(|rng, _| crate::rng::Rng::gen::<T>(rng))
}

/// A vector of `item` draws with length in `len`, additionally capped by
/// the current generation size so shrinking produces shorter vectors.
pub fn vec_of<T: 'static>(item: Gen<T>, len: std::ops::Range<usize>) -> Gen<Vec<T>> {
    assert!(len.start < len.end, "vec_of: empty length range");
    Gen::from_fn(move |rng, size| {
        let hi = len.end.min(len.start + size + 1).max(len.start + 1);
        let n = crate::rng::Rng::gen_range(rng, len.start..hi);
        (0..n).map(|_| item.generate(rng, size)).collect()
    })
}

/// Uniform choice among generators (the unweighted `prop_oneof!` analog).
pub fn one_of<T: 'static>(choices: Vec<Gen<T>>) -> Gen<T> {
    assert!(!choices.is_empty(), "one_of: no choices");
    Gen::from_fn(move |rng, size| {
        let i = crate::rng::Rng::gen_range(rng, 0..choices.len());
        choices[i].generate(rng, size)
    })
}

/// Weighted choice among generators (the weighted `prop_oneof!` analog).
pub fn weighted<T: 'static>(choices: Vec<(u32, Gen<T>)>) -> Gen<T> {
    assert!(!choices.is_empty(), "weighted: no choices");
    let total: u64 = choices.iter().map(|(w, _)| *w as u64).sum();
    assert!(total > 0, "weighted: zero total weight");
    Gen::from_fn(move |rng, size| {
        let mut x = crate::rng::Rng::gen_range(rng, 0..total);
        for (w, g) in &choices {
            if x < *w as u64 {
                return g.generate(rng, size);
            }
            x -= *w as u64;
        }
        // INVARIANT: total > 0 is asserted above, so choices is
        // non-empty; x only underflows past the loop by rounding.
        choices.last().unwrap().1.generate(rng, size)
    })
}

/// Pairs two generators.
pub fn zip2<A: 'static, B: 'static>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)> {
    Gen::from_fn(move |rng, size| (a.generate(rng, size), b.generate(rng, size)))
}

/// Triples three generators.
pub fn zip3<A: 'static, B: 'static, C: 'static>(
    a: Gen<A>,
    b: Gen<B>,
    c: Gen<C>,
) -> Gen<(A, B, C)> {
    Gen::from_fn(move |rng, size| {
        (a.generate(rng, size), b.generate(rng, size), c.generate(rng, size))
    })
}

/// Quadruples four generators.
pub fn zip4<A: 'static, B: 'static, C: 'static, D: 'static>(
    a: Gen<A>,
    b: Gen<B>,
    c: Gen<C>,
    d: Gen<D>,
) -> Gen<(A, B, C, D)> {
    Gen::from_fn(move |rng, size| {
        (
            a.generate(rng, size),
            b.generate(rng, size),
            c.generate(rng, size),
            d.generate(rng, size),
        )
    })
}

fn ramp(case: u64, cases: u64) -> usize {
    // Size grows 8 → 256 across the run, so early cases are small and
    // fast and later cases stress larger structures.
    (8 + case * 248 / cases.max(1)) as usize
}

fn payload_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn run_case<T, P: Fn(T)>(prop: &P, value: T) -> Result<(), String> {
    catch_unwind(AssertUnwindSafe(|| prop(value))).map_err(payload_text)
}

/// Drives one property: `cases` generated inputs through `prop`, with
/// halving minimization and a reproduction line on failure. Used by the
/// [`check!`](crate::check!) macro; callable directly for custom shapes.
pub fn run<T: std::fmt::Debug, G, P>(name: &str, cfg: Config, gen: G, prop: P)
where
    G: Fn(&mut StdRng, usize) -> T,
    P: Fn(T),
{
    for case in 0..cfg.cases {
        let case_seed = cfg.seed.wrapping_add(case);
        let size = cfg.size.unwrap_or_else(|| ramp(case, cfg.cases));
        let value = gen(&mut StdRng::seed_from_u64(case_seed), size);
        let Err(first_cause) = run_case(&prop, value) else {
            continue;
        };

        // Minimize by halving the generation size while the failure
        // persists (same per-case seed, so each attempt is deterministic).
        let mut best = (size, first_cause);
        let mut s = size / 2;
        while s >= 1 {
            let v = gen(&mut StdRng::seed_from_u64(case_seed), s);
            match run_case(&prop, v) {
                Err(cause) => {
                    best = (s, cause);
                    if s == 1 {
                        break;
                    }
                    s /= 2;
                }
                Ok(()) => break,
            }
        }

        let (min_size, cause) = best;
        let minimal = gen(&mut StdRng::seed_from_u64(case_seed), min_size);
        let mut shown = format!("{minimal:?}");
        if shown.len() > 4096 {
            shown.truncate(4096);
            shown.push_str("… (truncated)");
        }
        // hermes-lint: allow(R2, reason = "this panic is the product: it is how a failed property reaches the test harness")
        panic!(
            "\n[hermes-check] property '{name}' failed at case {case}/{cases} \
             (seed {case_seed}, size {size}, minimized to size {min_size})\n\
             [hermes-check] minimal input: {shown}\n\
             [hermes-check] cause: {cause}\n\
             [hermes-check] reproduce: HERMES_CHECK_SEED={case_seed} HERMES_CHECK_CASES=1 \
             HERMES_CHECK_SIZE={min_size} cargo test {name}\n",
            cases = cfg.cases,
        );
    }
}

/// Declares property tests (the `proptest!` analog).
///
/// ```ignore
/// hermes_util::check! {
///     #![cases = 256]
///     fn my_property(a in gen_a(), b in range(0u32..10)) { … }
/// }
/// ```
///
/// Each `fn` becomes a `#[test]` running its body over generated inputs
/// via [`check::run`](crate::check::run). Arguments bind by value, one
/// draw per case.
#[macro_export]
macro_rules! check {
    ( #![cases = $cases:expr] $($rest:tt)* ) => {
        $crate::__check_impl! { $cases; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__check_impl! { $crate::check::DEFAULT_CASES; $($rest)* }
    };
}

/// Implementation detail of [`check!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __check_impl {
    ( $cases:expr ; $( $(#[$meta:meta])* fn $name:ident (
        $($arg:ident in $gen:expr),+ $(,)?
    ) $body:block )* ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __cfg = $crate::check::Config::from_env(($cases) as u64);
                $( let $arg = ($gen); )+
                $crate::check::run(
                    stringify!($name),
                    __cfg,
                    move |__rng, __size| ( $( $arg.generate(__rng, __size) ),+ , ),
                    |( $($arg),+ , )| { $body },
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0u64);
        let cfg = Config { cases: 100, seed: 1, size: None };
        run(
            "counter",
            cfg,
            |rng, _| crate::rng::Rng::gen_range(rng, 0u32..10),
            |_x| count.set(count.get() + 1),
        );
        assert_eq!(count.get(), 100);
    }

    #[test]
    fn failing_property_panics_with_repro_line() {
        let cfg = Config { cases: 50, seed: DEFAULT_SEED, size: None };
        let result = catch_unwind(AssertUnwindSafe(|| {
            run(
                "always_small",
                cfg,
                |rng, size| {
                    let n = crate::rng::Rng::gen_range(rng, 0..size.max(1) + 1);
                    vec![0u8; n]
                },
                |v: Vec<u8>| assert!(v.len() < 3, "too long: {}", v.len()),
            );
        }));
        let msg = payload_text(result.unwrap_err());
        assert!(msg.contains("HERMES_CHECK_SEED="), "{msg}");
        assert!(msg.contains("minimized to size"), "{msg}");
        assert!(msg.contains("always_small"), "{msg}");
    }

    #[test]
    fn minimization_halves_toward_small_inputs() {
        // A property failing for any vec with ≥ 1 element: the minimized
        // report must be at size 1 (the smallest halving step).
        let cfg = Config { cases: 10, seed: 7, size: None };
        let result = catch_unwind(AssertUnwindSafe(|| {
            run(
                "nonempty_fails",
                cfg,
                |rng, size| {
                    let hi = (size + 2).min(50);
                    let n = crate::rng::Rng::gen_range(rng, 1..hi);
                    vec![1u8; n]
                },
                |v: Vec<u8>| assert!(v.is_empty()),
            );
        }));
        let msg = payload_text(result.unwrap_err());
        assert!(msg.contains("minimized to size 1"), "{msg}");
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let g = vec_of(range(0u32..1000), 1..20);
        let a = g.generate(&mut StdRng::seed_from_u64(11), 64);
        let b = g.generate(&mut StdRng::seed_from_u64(11), 64);
        let c = g.generate(&mut StdRng::seed_from_u64(12), 64);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn combinators_compose() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = weighted(vec![
            (3, range(0u32..10).map(|x| (x, false))),
            (1, zip2(range(100u32..200), just(true)).map(|(x, b)| (x, b))),
        ]);
        let mut lo = 0;
        let mut hi = 0;
        for _ in 0..2000 {
            let (x, tagged) = g.generate(&mut rng, 32);
            if tagged {
                assert!((100..200).contains(&x));
                hi += 1;
            } else {
                assert!(x < 10);
                lo += 1;
            }
        }
        // 3:1 weighting within loose statistical bounds.
        assert!(lo > hi * 2, "lo {lo} hi {hi}");
        assert!(hi > 200, "hi {hi}");
    }

    #[test]
    fn vec_of_respects_bounds_and_size_cap() {
        let g = vec_of(arb::<u8>(), 2..40);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let small = g.generate(&mut rng, 1);
            assert!((2..4).contains(&small.len()), "{}", small.len());
            let big = g.generate(&mut rng, 256);
            assert!((2..40).contains(&big.len()));
        }
    }

    #[test]
    fn config_env_overrides_parse() {
        // No env set in the normal test run: defaults apply.
        let cfg = Config::from_env(123);
        assert_eq!(cfg.cases, 123);
        assert_eq!(cfg.seed, DEFAULT_SEED);
    }

    // The macro itself, self-hosted.
    crate::check! {
        #![cases = 64]
        fn macro_single_arg(x in range(0u32..100)) {
            assert!(x < 100);
        }

        fn macro_multi_arg(a in range(0u32..10), b in vec_of(range(0u8..5), 1..8)) {
            assert!(a < 10);
            assert!(!b.is_empty() && b.len() < 8);
            assert!(b.iter().all(|&v| v < 5));
        }
    }
}
