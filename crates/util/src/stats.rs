//! Shared sample statistics: the workspace's one nearest-rank quantile.
//!
//! Both the wall-clock bench harness ([`crate::bench`]) and the netsim
//! metric distributions compute percentiles; they must agree on the
//! estimator (nearest rank over `n` samples: index `round(p·(n−1))`) so a
//! latency quoted by a micro-benchmark and by a simulation summary mean
//! the same thing.

/// Sorts samples into the total order quantile queries expect (`NaN`s
/// sort last, so they only surface at the extreme upper quantiles).
pub fn sort_samples(values: &mut [f64]) {
    values.sort_by(f64::total_cmp);
}

/// The nearest-rank p-quantile of a slice already ordered by
/// [`sort_samples`]. `p` is clamped to `[0, 1]`; an empty slice yields
/// `NaN`.
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = (p.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_yields_nan() {
        assert!(quantile_sorted(&[], 0.5).is_nan());
        assert!(quantile_sorted(&[], 0.0).is_nan());
    }

    #[test]
    fn single_sample_answers_every_quantile() {
        for p in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(quantile_sorted(&[42.0], p), 42.0);
        }
    }

    #[test]
    fn nearest_rank_on_five() {
        let mut v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        sort_samples(&mut v);
        assert_eq!(quantile_sorted(&v, 0.0), 1.0);
        assert_eq!(quantile_sorted(&v, 0.5), 3.0);
        assert_eq!(quantile_sorted(&v, 1.0), 5.0);
        // Out-of-range p clamps rather than panicking.
        assert_eq!(quantile_sorted(&v, -1.0), 1.0);
        assert_eq!(quantile_sorted(&v, 2.0), 5.0);
    }

    #[test]
    fn nans_sort_last_and_stay_contained() {
        let mut v = vec![2.0, f64::NAN, 1.0];
        sort_samples(&mut v);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 2.0);
        assert!(v[2].is_nan());
        // Mid quantiles are unaffected by the NaN tail…
        assert_eq!(quantile_sorted(&v, 0.5), 2.0);
        // …and only the extreme upper quantile surfaces it.
        assert!(quantile_sorted(&v, 1.0).is_nan());
    }

    #[test]
    fn negative_zero_orders_before_positive_zero() {
        let mut v = vec![0.0, -0.0];
        sort_samples(&mut v);
        assert!(v[0].is_sign_negative() && v[1].is_sign_positive());
    }
}
