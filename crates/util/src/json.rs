//! Minimal JSON: a value type, a compact writer and a small reader.
//!
//! Replaces the `serde` derives the workspace used for experiment output.
//! Types opt in by implementing [`ToJson`]; the `exp_*` binaries write
//! documents with [`Json::to_string`]; trace files read back through
//! [`Json::parse`]. Output is deterministic: object keys keep insertion
//! order, floats print through Rust's shortest-roundtrip formatter, and
//! non-finite floats become `null` (matching the previous serializer).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact rather than routed through `f64`).
    Int(i128),
    /// A float; non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs (insertion order preserved).
    pub fn obj<I: IntoIterator<Item = (S, Json)>, S: Into<String>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a key of an object (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    #[allow(clippy::inherent_to_string)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (strict enough for the workspace's own
    /// output and simple trace files; rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from [`Json::parse`] with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn lit(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let v = self.value()?;
                    pairs.push((k, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates (used only for astral chars) are
                            // out of scope for experiment traces.
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    // INVARIANT: the Some(_) arm means rest is
                    // non-empty, and from_utf8 succeeded just above.
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        // INVARIANT: every byte consumed by the number scanner is
        // ASCII (digits, sign, dot, exponent), so the slice is UTF-8.
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

/// Conversion into a [`Json`] value — the workspace's replacement for
/// `serde::Serialize` on experiment-output types.
pub trait ToJson {
    /// Renders `self` as a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

macro_rules! int_to_json {
    ($($t:ty),* $(,)?) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i128)
            }
        }
    )*};
}

int_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_structures_compactly() {
        let doc = Json::obj([
            ("name", "fig8 \"RIT\"\n".to_json()),
            ("points", vec![(1.0f64, 0.5f64), (2.5, 1.0)].to_json()),
            ("n", 42u64.to_json()),
            ("tail", Option::<f64>::None.to_json()),
            ("ok", true.to_json()),
        ]);
        assert_eq!(
            doc.to_string(),
            "{\"name\":\"fig8 \\\"RIT\\\"\\n\",\"points\":[[1,0.5],[2.5,1]],\"n\":42,\"tail\":null,\"ok\":true}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(vec![f64::NAN, 1.0].to_json().to_string(), "[null,1]");
        assert_eq!(f64::INFINITY.to_json().to_string(), "null");
    }

    #[test]
    fn parse_round_trips_own_output() {
        let doc = Json::obj([
            ("a", Json::Arr(vec![Json::Int(1), Json::Num(2.5), Json::Null])),
            ("s", Json::Str("x\n\"y\"".into())),
            ("b", Json::Bool(false)),
            ("nested", Json::obj([("k", Json::Int(-7))])),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn parse_accepts_whitespace_and_escapes() {
        let v = Json::parse(" { \"k\" : [ 1 , 2.0e1 , \"\\u0041\\t\" ] } ").unwrap();
        assert_eq!(
            v.get("k").unwrap().as_arr().unwrap(),
            &[Json::Int(1), Json::Num(20.0), Json::Str("A\t".into())]
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("true false").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse("{\"x\":3,\"y\":\"s\"}").unwrap();
        assert_eq!(v.get("x").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("y").unwrap().as_str(), Some("s"));
        assert_eq!(v.get("z"), None);
        assert_eq!(Json::Int(5).get("x"), None);
    }
}
