//! The shared scenario-config format (`hermes-scenario/1`).
//!
//! One file — the **scenario matrix** — names every workload configuration
//! the workspace knows how to run: which release binary to spawn, how many
//! seeded repetitions, the standard environment knobs (`HERMES_SCALE`,
//! `HERMES_FAULT_SEED`, `HERMES_TRACE`) and free-form per-experiment knobs.
//! Both sides of the process boundary parse the *same* file with this
//! module:
//!
//! * `hermes-harness` (the orchestrator) loads the matrix, spawns the
//!   named binary once per repetition with the scenario's environment
//!   ([`Scenario::env`]), and merges the emitted `BENCH_*.json` reports;
//! * the `exp_*` binaries (via `hermes_bench::scenario()`) load the same
//!   scenario back from `HERMES_SCENARIO_FILE`/`HERMES_SCENARIO` and read
//!   their workload knobs from the [`Scenario`] struct.
//!
//! Because there is exactly one parser and one struct, the matrix and the
//! binaries cannot drift: a knob renamed in one place is a load error in
//! the other. Unknown scenario keys are rejected for the same reason.
//!
//! The syntax is a deliberately small TOML subset — `#` comments,
//! `[scenario.<name>]` sections, and `key = value` pairs where a value is
//! a double-quoted string, integer, float, or `true`/`false`. Per-
//! experiment knobs use the dotted prefix `knobs.<name>`. Example:
//!
//! ```toml
//! schema = "hermes-scenario/1"
//!
//! [scenario.bgp-replay]
//! bin = "exp_bgp"
//! runs = 5
//! scale = 1
//! trace = true
//! knobs.prefixes = 900000
//! knobs.full_table = true
//! ```

use std::collections::BTreeMap;
use std::path::Path;

/// Schema identifier the matrix file must declare.
pub const SCHEMA: &str = "hermes-scenario/1";

/// A scenario-config value: the four scalar shapes the format admits.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A double-quoted string.
    Str(String),
    /// A decimal integer.
    Int(i64),
    /// A decimal float.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
}

impl Value {
    /// Integer view; `Float` values with an exact integral value coerce.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Float view; integers coerce.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// One named workload configuration from the matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Scenario name (the `[scenario.<name>]` header).
    pub name: String,
    /// Release binary to spawn (an `exp_*` file stem).
    pub bin: String,
    /// Seeded repetitions the harness runs.
    pub runs: u32,
    /// Workload multiplier exported as `HERMES_SCALE`.
    pub scale: u64,
    /// Base fault seed; repetition `r` runs under `fault_seed + r`
    /// (`HERMES_FAULT_SEED`). `None` leaves fault injection disarmed.
    pub fault_seed: Option<u64>,
    /// Whether to arm telemetry (`HERMES_TRACE=1`) so the run emits a
    /// `BENCH_*.json` report the harness can merge.
    pub trace: bool,
    /// Free-form per-experiment knobs (`knobs.<name> = …`).
    pub knobs: BTreeMap<String, Value>,
}

impl Scenario {
    /// A scenario with the format's defaults (no binary, 5 runs, scale 1,
    /// no faults, telemetry on) — the parser's starting point and the
    /// shape `hermes_bench` synthesizes from bare environment variables.
    pub fn with_defaults(name: &str) -> Scenario {
        Scenario {
            name: name.to_string(),
            bin: String::new(),
            runs: 5,
            scale: 1,
            fault_seed: None,
            trace: true,
            knobs: BTreeMap::new(),
        }
    }

    /// Raw knob lookup.
    pub fn knob(&self, name: &str) -> Option<&Value> {
        self.knobs.get(name)
    }

    /// Integer knob with a default for absent keys. A present knob of the
    /// wrong shape is a configuration bug and fails loudly.
    pub fn knob_u64(&self, name: &str, default: u64) -> u64 {
        match self.knobs.get(name) {
            None => default,
            Some(v) => v
                .as_u64()
                // hermes-lint: allow(R2, reason = "a mistyped knob is operator error; the panic becomes a one-line nonzero exit via hermes_bench::catch_panic")
                .unwrap_or_else(|| panic!("scenario {}: knob {name} is not an integer", self.name)),
        }
    }

    /// Float knob with a default for absent keys.
    pub fn knob_f64(&self, name: &str, default: f64) -> f64 {
        match self.knobs.get(name) {
            None => default,
            Some(v) => v
                .as_f64()
                // hermes-lint: allow(R2, reason = "a mistyped knob is operator error; the panic becomes a one-line nonzero exit via hermes_bench::catch_panic")
                .unwrap_or_else(|| panic!("scenario {}: knob {name} is not a number", self.name)),
        }
    }

    /// Boolean knob with a default for absent keys.
    pub fn knob_bool(&self, name: &str, default: bool) -> bool {
        match self.knobs.get(name) {
            None => default,
            Some(v) => v
                .as_bool()
                // hermes-lint: allow(R2, reason = "a mistyped knob is operator error; the panic becomes a one-line nonzero exit via hermes_bench::catch_panic")
                .unwrap_or_else(|| panic!("scenario {}: knob {name} is not a bool", self.name)),
        }
    }

    /// The environment for repetition `rep`, as `(set, remove)` variable
    /// lists. `matrix_path`, when given, lets the child re-load this
    /// scenario through the same parser (`HERMES_SCENARIO_FILE` +
    /// `HERMES_SCENARIO`). Variables in the remove list must be cleared so
    /// a stale shell environment cannot leak into a seeded run.
    pub fn env(
        &self,
        matrix_path: Option<&str>,
        rep: u32,
    ) -> (Vec<(String, String)>, Vec<String>) {
        let mut set = vec![
            ("HERMES_SCALE".to_string(), self.scale.to_string()),
            (
                "HERMES_TRACE".to_string(),
                if self.trace { "1" } else { "0" }.to_string(),
            ),
            ("HERMES_REP".to_string(), rep.to_string()),
            ("HERMES_SCENARIO".to_string(), self.name.clone()),
        ];
        let mut remove = Vec::new();
        match self.fault_seed {
            Some(base) => set.push((
                "HERMES_FAULT_SEED".to_string(),
                (base + rep as u64).to_string(),
            )),
            None => remove.push("HERMES_FAULT_SEED".to_string()),
        }
        match matrix_path {
            Some(p) => set.push(("HERMES_SCENARIO_FILE".to_string(), p.to_string())),
            None => remove.push("HERMES_SCENARIO_FILE".to_string()),
        }
        (set, remove)
    }
}

/// The parsed scenario matrix, in file order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Matrix {
    /// Scenarios in declaration order (the report preserves it).
    pub scenarios: Vec<Scenario>,
}

impl Matrix {
    /// Looks a scenario up by name.
    pub fn get(&self, name: &str) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// Parses matrix text. See the module docs for the grammar.
    pub fn parse(text: &str) -> Result<Matrix, ScenarioError> {
        let mut matrix = Matrix::default();
        let mut current: Option<Scenario> = None;
        let err = |line: usize, message: String| Err(ScenarioError { line, message });
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let Some(header) = header.strip_suffix(']') else {
                    return err(lineno, format!("unterminated section header: {line}"));
                };
                let Some(name) = header.trim().strip_prefix("scenario.") else {
                    return err(
                        lineno,
                        format!("unknown section [{header}] (only [scenario.<name>])"),
                    );
                };
                let name = name.trim();
                if name.is_empty()
                    || !name
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
                {
                    return err(lineno, format!("invalid scenario name {name:?}"));
                }
                if let Some(done) = current.take() {
                    matrix.push_checked(done, lineno)?;
                }
                if matrix.get(name).is_some() {
                    return err(lineno, format!("duplicate scenario {name:?}"));
                }
                current = Some(Scenario::with_defaults(name));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return err(lineno, format!("expected `key = value`, got {line:?}"));
            };
            let key = key.trim();
            let value = parse_value(value.trim())
                .ok_or_else(|| ScenarioError {
                    line: lineno,
                    message: format!("unparseable value for {key}: {}", value.trim()),
                })?;
            match current.as_mut() {
                None => {
                    // Top-level: only the schema declaration is allowed.
                    if key != "schema" {
                        return err(lineno, format!("unexpected top-level key {key:?}"));
                    }
                    if value.as_str() != Some(SCHEMA) {
                        return err(lineno, format!("unsupported schema {value} (want {SCHEMA})"));
                    }
                }
                Some(s) => match key {
                    "bin" => match value.as_str() {
                        Some(b) if !b.is_empty() => s.bin = b.to_string(),
                        _ => return err(lineno, "bin must be a non-empty string".into()),
                    },
                    "runs" => match value.as_u64() {
                        Some(r) if r >= 1 && r <= u32::MAX as u64 => s.runs = r as u32,
                        _ => return err(lineno, "runs must be an integer >= 1".into()),
                    },
                    "scale" => match value.as_u64() {
                        Some(v) if v >= 1 => s.scale = v,
                        _ => return err(lineno, "scale must be an integer >= 1".into()),
                    },
                    "fault_seed" => match value.as_u64() {
                        Some(v) => s.fault_seed = Some(v),
                        None => return err(lineno, "fault_seed must be an integer".into()),
                    },
                    "trace" => match value.as_bool() {
                        Some(b) => s.trace = b,
                        None => return err(lineno, "trace must be true or false".into()),
                    },
                    _ => match key.strip_prefix("knobs.") {
                        Some(k) if !k.is_empty() && !k.contains('.') => {
                            if s.knobs.insert(k.to_string(), value).is_some() {
                                return err(lineno, format!("duplicate knob {k:?}"));
                            }
                        }
                        // Unknown keys are drift, not extension points.
                        _ => return err(lineno, format!("unknown scenario key {key:?}")),
                    },
                },
            }
        }
        if let Some(done) = current.take() {
            let last = text.lines().count();
            matrix.push_checked(done, last)?;
        }
        Ok(matrix)
    }

    fn push_checked(&mut self, s: Scenario, line: usize) -> Result<(), ScenarioError> {
        if s.bin.is_empty() {
            return Err(ScenarioError {
                line,
                message: format!("scenario {:?} declares no bin", s.name),
            });
        }
        self.scenarios.push(s);
        Ok(())
    }

    /// Loads and parses a matrix file.
    pub fn load(path: &Path) -> Result<Matrix, ScenarioError> {
        let text = std::fs::read_to_string(path).map_err(|e| ScenarioError {
            line: 0,
            message: format!("cannot read {}: {e}", path.display()),
        })?;
        Matrix::parse(&text).map_err(|e| ScenarioError {
            line: e.line,
            message: format!("{}: {}", path.display(), e.message),
        })
    }
}

fn parse_value(text: &str) -> Option<Value> {
    if let Some(rest) = text.strip_prefix('"') {
        let inner = rest.strip_suffix('"')?;
        // Strings are literal: the format needs names and paths, not
        // escape sequences.
        if inner.contains('"') {
            return None;
        }
        return Some(Value::Str(inner.to_string()));
    }
    match text {
        "true" => return Some(Value::Bool(true)),
        "false" => return Some(Value::Bool(false)),
        _ => {}
    }
    if let Ok(i) = text.parse::<i64>() {
        return Some(Value::Int(i));
    }
    if let Ok(f) = text.parse::<f64>() {
        if f.is_finite() {
            return Some(Value::Float(f));
        }
    }
    None
}

/// A scenario-config load/parse error with the offending line.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioError {
    /// 1-based line number (0 for I/O errors).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "scenario config: {}", self.message)
        } else {
            write!(f, "scenario config line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ScenarioError {}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
schema = "hermes-scenario/1"

[scenario.baseline]
bin = "exp_fig9"
runs = 5
scale = 2
trace = true
knobs.facebook_jobs = 600

[scenario.chaos-suite]
bin = "exp_fig12"
fault_seed = 42
knobs.rate = 1.5
knobs.label = "storm"
knobs.hard = false
"#;

    #[test]
    fn parses_sections_defaults_and_knobs() {
        let m = Matrix::parse(SAMPLE).unwrap();
        assert_eq!(m.scenarios.len(), 2);
        let b = m.get("baseline").unwrap();
        assert_eq!(b.bin, "exp_fig9");
        assert_eq!((b.runs, b.scale, b.trace, b.fault_seed), (5, 2, true, None));
        assert_eq!(b.knob_u64("facebook_jobs", 0), 600);
        assert_eq!(b.knob_u64("absent", 7), 7);
        let c = m.get("chaos-suite").unwrap();
        assert_eq!(c.fault_seed, Some(42));
        assert_eq!(c.runs, 5, "runs defaults to 5");
        assert_eq!(c.knob_f64("rate", 0.0), 1.5);
        assert_eq!(c.knob("label").and_then(Value::as_str), Some("storm"));
        assert!(!c.knob_bool("hard", true));
    }

    #[test]
    fn env_mapping_seeds_each_rep() {
        let m = Matrix::parse(SAMPLE).unwrap();
        let (set, remove) = m.get("chaos-suite").unwrap().env(Some("m.toml"), 3);
        let get = |k: &str| {
            set.iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v.as_str())
                .unwrap_or_else(|| panic!("{k} not set"))
        };
        assert_eq!(get("HERMES_FAULT_SEED"), "45");
        assert_eq!(get("HERMES_SCALE"), "1");
        assert_eq!(get("HERMES_TRACE"), "1");
        assert_eq!(get("HERMES_REP"), "3");
        assert_eq!(get("HERMES_SCENARIO"), "chaos-suite");
        assert_eq!(get("HERMES_SCENARIO_FILE"), "m.toml");
        assert!(remove.is_empty());
        // No fault seed → the variable is actively cleared.
        let (_, remove) = m.get("baseline").unwrap().env(None, 0);
        assert!(remove.contains(&"HERMES_FAULT_SEED".to_string()));
        assert!(remove.contains(&"HERMES_SCENARIO_FILE".to_string()));
    }

    #[test]
    fn rejects_drift() {
        let bad = |text: &str, needle: &str| {
            let e = Matrix::parse(text).unwrap_err();
            assert!(
                e.message.contains(needle),
                "error {:?} should mention {needle:?}",
                e.message
            );
        };
        bad("[scenario.x]\nbin = \"b\"\ntypo_knob = 1\n", "unknown scenario key");
        bad("[scenario.x]\nruns = 3\n", "declares no bin");
        bad("[scenario.x]\nbin = \"b\"\n[scenario.x]\nbin = \"b\"\n", "duplicate scenario");
        bad("[scenario.x]\nbin = \"b\"\nruns = 0\n", "runs must be");
        bad("[other.x]\nbin = \"b\"\n", "unknown section");
        bad("schema = \"hermes-scenario/9\"\n", "unsupported schema");
        bad("loose = 1\n", "unexpected top-level key");
        bad("[scenario.bad name]\nbin = \"b\"\n", "invalid scenario name");
        bad("[scenario.x]\nbin = \"b\"\nknobs.a = 1\nknobs.a = 2\n", "duplicate knob");
        bad("[scenario.x]\nbin = \"b\"\nknobs.a = what\n", "unparseable value");
    }

    #[test]
    fn value_coercions() {
        assert_eq!(parse_value("3"), Some(Value::Int(3)));
        assert_eq!(parse_value("3.5"), Some(Value::Float(3.5)));
        assert_eq!(parse_value("\"x\""), Some(Value::Str("x".into())));
        assert_eq!(parse_value("true"), Some(Value::Bool(true)));
        assert_eq!(parse_value("nan"), None);
        assert_eq!(parse_value("\"a\"b\""), None);
        assert_eq!(Value::Int(900_000).as_u64(), Some(900_000));
        assert_eq!(Value::Float(2.0).as_u64(), Some(2));
        assert_eq!(Value::Float(2.5).as_u64(), None);
        assert_eq!(Value::Int(-1).as_u64(), None);
        assert_eq!(Value::Int(2).as_f64(), Some(2.0));
    }

    #[test]
    fn scenario_order_is_file_order() {
        let m = Matrix::parse(SAMPLE).unwrap();
        let names: Vec<&str> = m.scenarios.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["baseline", "chaos-suite"]);
    }
}
