//! Synthetic BGP update traces (§8.1.3, "BGPTrace").
//!
//! The paper replays BGPStream \[5\] captures from four high-traffic routers
//! (Equinix Chicago, TELXATL, NWAX, University of Oregon). The captures
//! are not redistributable; this generator reproduces the statistical
//! property the evaluation relies on (§2.3): "traditional control planes
//! generally have low update rates **except at the tail** where updates
//! occur with high frequency (over 1000 updates per second)" — i.e. a low
//! Poisson baseline punctuated by intense bursts (session resets, path
//! hunting).
//!
//! Updates reference a realistic prefix pool with announce/withdraw churn
//! and multiple peers per prefix, so the RIB→FIB conversion in
//! `hermes-bgp` exhibits realistic suppression (many updates never reach
//! the FIB).

use hermes_bgp::prelude::*;
use hermes_rules::prefix::Ipv4Prefix;
use hermes_tcam::SimTime;
use hermes_util::rng::rngs::StdRng;
use hermes_util::rng::{Rng, SeedableRng};

/// A timestamped BGP update.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimedUpdate {
    /// Arrival instant.
    pub at: SimTime,
    /// The update message.
    pub update: BgpUpdate,
}

/// Configuration of the synthetic BGPStream-like trace.
#[derive(Clone, Debug)]
pub struct BgpTrace {
    /// Size of the prefix pool the router carries.
    pub prefixes: usize,
    /// Number of BGP peers.
    pub peers: usize,
    /// Baseline update rate (updates/s) outside bursts.
    pub base_rate: f64,
    /// Burst update rate (updates/s) — the >1000/s tail of §2.3.
    pub burst_rate: f64,
    /// Expected number of burst episodes per 100 s of trace.
    pub bursts_per_100s: f64,
    /// Mean burst duration in seconds.
    pub burst_len_s: f64,
    /// Trace duration in seconds.
    pub duration_s: f64,
    /// Probability an update is a withdrawal.
    pub withdraw_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BgpTrace {
    fn default() -> Self {
        BgpTrace {
            prefixes: 5000,
            peers: 4,
            base_rate: 20.0,
            burst_rate: 1500.0,
            bursts_per_100s: 2.0,
            burst_len_s: 2.0,
            duration_s: 120.0,
            withdraw_frac: 0.25,
            seed: 17,
        }
    }
}

impl BgpTrace {
    /// The prefix pool (deterministic for the seed): a mix of /16–/24
    /// allocations like a DFZ slice.
    pub fn prefix_pool(&self) -> Vec<Ipv4Prefix> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xbeef);
        (0..self.prefixes)
            .map(|i| {
                let len = *[16u8, 19, 20, 22, 24, 24, 24]
                    .get(rng.gen_range(0..7usize))
                    .expect("INVARIANT: gen_range(0..7) indexes a 7-element array");
                // Spread pools over 1.0.0.0/8 .. 223.0.0.0/8 unicast space.
                let octet1 = 1 + (i as u32 * 7919) % 222;
                let rest = rng.gen::<u32>() & 0x00ff_ffff;
                Ipv4Prefix::new((octet1 << 24) | rest, len)
            })
            .collect()
    }

    /// Generates the update stream, sorted by time.
    pub fn generate(&self) -> Vec<TimedUpdate> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let pool = self.prefix_pool();
        let mut out = Vec::new();

        // Burst schedule: Poisson episode starts, exponential lengths.
        let mut bursts: Vec<(f64, f64)> = Vec::new();
        let mut t = 0.0;
        let episode_rate = self.bursts_per_100s / 100.0;
        while t < self.duration_s && episode_rate > 0.0 {
            let u: f64 = rng.gen_range(1e-12..1.0);
            t += -u.ln() / episode_rate;
            if t >= self.duration_s {
                break;
            }
            let v: f64 = rng.gen_range(1e-12..1.0);
            let len = -v.ln() * self.burst_len_s;
            bursts.push((t, (t + len).min(self.duration_s)));
        }

        // Which burst window (if any) a time falls in, for per-episode
        // session-reset state.
        let burst_of = |time: f64| bursts.iter().position(|&(s, e)| time >= s && time < e);

        // Prefix→peer homing: a good fraction of prefixes are single-homed
        // (as in real tables), so a session reset produces FIB deletes and
        // re-inserts rather than silent RIB churn.
        let home_peer = |idx: usize| PeerId((idx % self.peers) as u32);

        let mut now = 0.0f64;
        while now < self.duration_s {
            let burst = burst_of(now);
            let rate = if burst.is_some() {
                self.burst_rate
            } else {
                self.base_rate
            };
            let u: f64 = rng.gen_range(1e-12..1.0);
            now += -u.ln() / rate;
            if now >= self.duration_s {
                break;
            }
            let update = if let Some(b) = burst_of(now) {
                // A session reset: the episode's peer withdraws its homed
                // prefixes during the first half of the window, then
                // re-announces them during the second half — the classic
                // >1000 update/s pattern that hammers the FIB.
                let (bs, be) = bursts[b];
                let reset_peer = PeerId((b % self.peers) as u32);
                let homed: Vec<usize> = (0..pool.len())
                    .filter(|&i| home_peer(i) == reset_peer)
                    .collect();
                let idx = homed[rng.gen_range(0..homed.len())];
                let prefix = pool[idx];
                if now < bs + (be - bs) / 2.0 {
                    BgpUpdate::Withdraw {
                        prefix,
                        peer: reset_peer,
                    }
                } else {
                    BgpUpdate::Announce {
                        prefix,
                        route: BgpRoute {
                            local_pref: 100,
                            as_path_len: rng.gen_range(1..4),
                            med: rng.gen_range(0..10),
                            peer: reset_peer,
                            next_hop_port: reset_peer.0 + 1,
                        },
                    }
                }
            } else {
                // Baseline churn: mostly announcements from the prefix's
                // home peer, occasionally an alternate path or withdrawal.
                let idx = rng.gen_range(0..pool.len());
                let prefix = pool[idx];
                let peer = if rng.gen_bool(0.8) {
                    home_peer(idx)
                } else {
                    PeerId(rng.gen_range(0..self.peers as u32))
                };
                if rng.gen_bool(self.withdraw_frac) {
                    BgpUpdate::Withdraw { prefix, peer }
                } else {
                    BgpUpdate::Announce {
                        prefix,
                        route: BgpRoute {
                            local_pref: 100,
                            as_path_len: rng.gen_range(1..8u32)
                                + if peer == home_peer(idx) { 0 } else { 2 },
                            med: rng.gen_range(0..10),
                            peer,
                            next_hop_port: peer.0 + 1,
                        },
                    }
                }
            };
            out.push(TimedUpdate {
                at: SimTime::from_secs(now),
                update,
            });
        }
        out
    }

    /// Peak update rate over 1-second windows (diagnostic: the trace must
    /// reproduce the >1000/s tail).
    pub fn peak_rate(updates: &[TimedUpdate]) -> f64 {
        if updates.is_empty() {
            return 0.0;
        }
        let end = updates.last().expect("INVARIANT: emptiness checked above").at.as_secs().ceil() as usize;
        let mut counts = vec![0usize; end + 1];
        for u in updates {
            counts[u.at.as_secs() as usize] += 1;
        }
        counts.into_iter().max().unwrap_or(0) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = BgpTrace {
            duration_s: 30.0,
            ..Default::default()
        };
        assert_eq!(cfg.generate(), cfg.generate());
    }

    #[test]
    fn low_baseline_with_heavy_tail() {
        let cfg = BgpTrace::default();
        let trace = cfg.generate();
        assert!(!trace.is_empty());
        let total_rate = trace.len() as f64 / cfg.duration_s;
        let peak = BgpTrace::peak_rate(&trace);
        // §2.3's shape: the peak second is far above the mean, and above
        // 1000 updates/s.
        assert!(peak > 1000.0, "peak {peak}");
        assert!(peak > 5.0 * total_rate, "peak {peak} vs mean {total_rate}");
        // Sorted.
        assert!(trace.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn no_bursts_means_low_steady_rate() {
        let cfg = BgpTrace {
            bursts_per_100s: 0.0,
            duration_s: 60.0,
            ..Default::default()
        };
        let trace = cfg.generate();
        let peak = BgpTrace::peak_rate(&trace);
        assert!(peak < 100.0, "peak {peak} without bursts");
    }

    #[test]
    fn fib_suppression_is_realistic() {
        // Run the trace through the RIB: a meaningful fraction of updates
        // must NOT reach the FIB (the paper's preprocessing rationale).
        let cfg = BgpTrace {
            duration_s: 60.0,
            ..Default::default()
        };
        let trace = cfg.generate();
        let mut rib = Rib::new();
        let mut fib_ops = 0usize;
        for u in &trace {
            if rib.process(u.update).is_some() {
                fib_ops += 1;
            }
        }
        let ratio = fib_ops as f64 / trace.len() as f64;
        assert!(ratio < 0.95, "FIB ratio {ratio} suspiciously high");
        assert!(ratio > 0.2, "FIB ratio {ratio} suspiciously low");
    }

    #[test]
    fn withdraw_fraction_respected() {
        let cfg = BgpTrace {
            withdraw_frac: 0.5,
            duration_s: 60.0,
            ..Default::default()
        };
        let trace = cfg.generate();
        let withdraws = trace
            .iter()
            .filter(|u| matches!(u.update, BgpUpdate::Withdraw { .. }))
            .count() as f64;
        let frac = withdraws / trace.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "withdraw frac {frac}");
    }

    #[test]
    fn prefix_pool_is_valid_unicast() {
        let cfg = BgpTrace::default();
        for p in cfg.prefix_pool() {
            let first = p.octets()[0];
            assert!((1..=223).contains(&first), "{p}");
            assert!(p.len() >= 16 && p.len() <= 24);
        }
    }
}
