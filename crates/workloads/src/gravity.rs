//! Gravity-model traffic matrices and ISP flow generation (§8.1.3).
//!
//! The paper's Abilene workload uses measured traffic matrices; the Geant
//! and Quest workloads use matrices synthesized with the tomo-gravity
//! model \[65\]. Both are then turned into individual flows the same way:
//! "flow inter-arrivals follow a Poisson process and flow sizes are
//! partitioned evenly according to the total data given in the traffic
//! matrices". This module implements that pipeline: gravity matrix →
//! per-OD-pair Poisson flow arrivals whose sizes sum to the matrix cell.

use crate::facebook::FlowSpec;
use hermes_util::rng::rngs::StdRng;
use hermes_util::rng::{Rng, SeedableRng};

/// A traffic matrix over `n` nodes: `demand[i][j]` bytes per second from
/// ingress `i` to egress `j`.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficMatrix {
    /// Per-pair demand in bytes/s, row-major `n × n`.
    pub demand: Vec<Vec<f64>>,
}

impl TrafficMatrix {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.demand.len()
    }

    /// `true` for an empty matrix.
    pub fn is_empty(&self) -> bool {
        self.demand.is_empty()
    }

    /// Total offered load in bytes/s.
    pub fn total(&self) -> f64 {
        self.demand.iter().flatten().sum()
    }

    /// Builds a gravity-model matrix: node masses are log-normal (heavy
    /// hitters exist, as in real ISP ingresses), `demand[i][j] ∝ m_i·m_j`,
    /// scaled so the whole matrix offers `total_bytes_per_s`.
    pub fn gravity(nodes: usize, total_bytes_per_s: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Log-normal masses: exp(N(0, 1)).
        let masses: Vec<f64> = (0..nodes)
            .map(|_| {
                // Box–Muller from two uniforms.
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let n = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                n.exp()
            })
            .collect();
        let mass_sum: f64 = masses.iter().sum();
        let mut demand = vec![vec![0.0; nodes]; nodes];
        let mut unnormalized_total = 0.0;
        for i in 0..nodes {
            for j in 0..nodes {
                if i != j {
                    let d = masses[i] * masses[j] / mass_sum;
                    demand[i][j] = d;
                    unnormalized_total += d;
                }
            }
        }
        let scale = if unnormalized_total > 0.0 {
            total_bytes_per_s / unnormalized_total
        } else {
            0.0
        };
        for row in &mut demand {
            for cell in row {
                *cell *= scale;
            }
        }
        TrafficMatrix { demand }
    }
}

/// A flow with an arrival time (the ISP analogue of a MapReduce job's
/// flows; each ISP flow is its own "job" for FCT purposes).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimedFlow {
    /// Arrival in seconds from trace start.
    pub arrival_s: f64,
    /// The flow.
    pub flow: FlowSpec,
}

/// Converts a traffic matrix into individual flows over a time window.
///
/// For each OD pair with demand `d` bytes/s, flows arrive Poisson at
/// `rate = d / mean_flow_bytes` and sizes are drawn so their sum matches
/// the cell's total over the window ("partitioned evenly" with
/// exponential jitter).
pub fn flows_from_matrix(
    tm: &TrafficMatrix,
    duration_s: f64,
    mean_flow_bytes: f64,
    seed: u64,
) -> Vec<TimedFlow> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for (i, row) in tm.demand.iter().enumerate() {
        for (j, &d) in row.iter().enumerate() {
            if d <= 0.0 {
                continue;
            }
            let rate = d / mean_flow_bytes; // flows per second
            let expected = (rate * duration_s).round() as usize;
            if expected == 0 {
                continue;
            }
            let per_flow = d * duration_s / expected as f64;
            let mut t = 0.0f64;
            for _ in 0..expected {
                let u: f64 = rng.gen_range(1e-12..1.0);
                t += -u.ln() / rate;
                if t >= duration_s {
                    break;
                }
                let jitter: f64 = rng.gen_range(0.5..1.5);
                out.push(TimedFlow {
                    arrival_s: t,
                    flow: FlowSpec {
                        src: i,
                        dst: j,
                        bytes: (per_flow * jitter).max(1.0) as u64,
                    },
                });
            }
        }
    }
    out.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gravity_matrix_properties() {
        let tm = TrafficMatrix::gravity(12, 1e9, 3);
        assert_eq!(tm.len(), 12);
        // Diagonal is zero.
        for i in 0..12 {
            assert_eq!(tm.demand[i][i], 0.0);
        }
        // Scales to the requested total.
        assert!((tm.total() - 1e9).abs() / 1e9 < 1e-9);
        // Deterministic.
        assert_eq!(tm, TrafficMatrix::gravity(12, 1e9, 3));
        assert_ne!(tm, TrafficMatrix::gravity(12, 1e9, 4));
    }

    #[test]
    fn gravity_is_rank_one_like() {
        // demand[i][j] / demand[k][j] should be constant over j (i.e. the
        // matrix factors into node masses) — the defining gravity property.
        let tm = TrafficMatrix::gravity(8, 1e9, 5);
        let ratio = tm.demand[0][2] / tm.demand[1][2];
        for j in 3..8 {
            let r = tm.demand[0][j] / tm.demand[1][j];
            assert!((r - ratio).abs() / ratio < 1e-9, "column {j}");
        }
    }

    #[test]
    fn flows_cover_demand() {
        let tm = TrafficMatrix::gravity(6, 1e8, 9);
        let flows = flows_from_matrix(&tm, 10.0, 1e6, 11);
        assert!(!flows.is_empty());
        // Total bytes within 25% of matrix total over the window (Poisson
        // truncation + jitter).
        let total: f64 = flows.iter().map(|f| f.flow.bytes as f64).sum();
        let expect = tm.total() * 10.0;
        assert!(
            (total - expect).abs() / expect < 0.25,
            "generated {total:.3e} vs demand {expect:.3e}"
        );
        // Sorted arrivals within the window.
        assert!(flows.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert!(flows.iter().all(|f| f.arrival_s < 10.0));
    }

    #[test]
    fn heavier_pairs_get_more_flows() {
        let mut tm = TrafficMatrix::gravity(4, 1e8, 1);
        tm.demand[0][1] = 9e7;
        tm.demand[2][3] = 1e6;
        let flows = flows_from_matrix(&tm, 5.0, 1e6, 2);
        let heavy = flows
            .iter()
            .filter(|f| f.flow.src == 0 && f.flow.dst == 1)
            .count();
        let light = flows
            .iter()
            .filter(|f| f.flow.src == 2 && f.flow.dst == 3)
            .count();
        assert!(heavy > light * 5, "heavy {heavy} vs light {light}");
    }
}
