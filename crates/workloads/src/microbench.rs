//! MicroBench traces (§8.1.3).
//!
//! "We generated a stream of rule insertions in a systematic manner,
//! varying … the arrival rate (to understand the impact of bursts),
//! overlap rate (to understand the impact of partitioning), and priorities
//! (to understand the impact of TCAM moving/rearrangement)."
//!
//! The overlap rate is the probability that a new rule overlaps rules
//! already generated; an overlapping rule is emitted as a *wider,
//! lower-priority* cover of an existing rule, which is exactly the shape
//! that forces Hermes's Algorithm 1 to cut it (a narrower or
//! higher-priority overlap would install intact).

use hermes_rules::prelude::*;
use hermes_tcam::SimTime;
use hermes_util::rng::rngs::StdRng;
use hermes_util::rng::{Rng, SeedableRng};

/// How rule priorities are assigned across the stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PriorityMode {
    /// Uniform random in `[lo, hi]`.
    Random {
        /// Lowest priority generated.
        lo: u32,
        /// Highest priority generated.
        hi: u32,
    },
    /// Strictly ascending (worst case for low-packed TCAMs).
    Ascending,
    /// Strictly descending (worst case for high-packed TCAMs).
    Descending,
    /// Every rule priority-less ([`Priority::NONE`]).
    None,
}

/// Configuration of a MicroBench stream.
#[derive(Clone, Debug)]
pub struct MicroBench {
    /// Mean insert arrival rate in rules/s (Poisson arrivals).
    pub arrival_rate: f64,
    /// Probability that a new rule overlaps previously generated rules.
    pub overlap_rate: f64,
    /// Priority assignment.
    pub priorities: PriorityMode,
    /// Number of insertions to generate.
    pub count: usize,
    /// RNG seed (streams are fully deterministic given the config).
    pub seed: u64,
}

impl Default for MicroBench {
    fn default() -> Self {
        MicroBench {
            arrival_rate: 200.0,
            overlap_rate: 0.2,
            priorities: PriorityMode::Random { lo: 10, hi: 1000 },
            count: 1000,
            seed: 42,
        }
    }
}

/// One timestamped control action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimedAction {
    /// Arrival instant.
    pub at: SimTime,
    /// The action.
    pub action: ControlAction,
}

impl MicroBench {
    /// Generates the insertion stream.
    pub fn generate(&self) -> Vec<TimedAction> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(self.count);
        let mut now_s = 0.0f64;
        // Existing narrow rules available to overlap with: (prefix, priority).
        let mut overlappable: Vec<(Ipv4Prefix, u32)> = Vec::new();
        let mut next_disjoint: u32 = 0;

        for i in 0..self.count {
            // Poisson arrivals: exponential inter-arrival times.
            let u: f64 = rng.gen_range(1e-12..1.0);
            now_s += -u.ln() / self.arrival_rate;
            let at = SimTime::from_secs(now_s);

            let prio = match self.priorities {
                PriorityMode::Random { lo, hi } => rng.gen_range(lo..=hi),
                PriorityMode::Ascending => 10 + i as u32,
                PriorityMode::Descending => 10 + (self.count - i) as u32,
                PriorityMode::None => 0,
            };

            let (prefix, priority) =
                if !overlappable.is_empty() && rng.gen_bool(self.overlap_rate.clamp(0.0, 1.0)) {
                    // A wider, lower-priority cover of an existing rule.
                    let &(existing, existing_prio) = overlappable
                        .get(rng.gen_range(0..overlappable.len()))
                        .expect("INVARIANT: overlappable emptiness checked in the branch guard");
                    let wider_len = existing.len().saturating_sub(rng.gen_range(2..=6)).max(4);
                    let wider = Ipv4Prefix::new(existing.addr(), wider_len);
                    let lower = match self.priorities {
                        PriorityMode::None => 0,
                        _ => existing_prio.saturating_sub(rng.gen_range(1..=5)).max(1),
                    };
                    (wider, lower)
                } else {
                    // A fresh rule in its own /16 so disjointness is guaranteed.
                    let block = next_disjoint % (1 << 14);
                    next_disjoint += 1;
                    let addr = (0b01u32 << 30) | (block << 16) | rng.gen_range(0..1u32 << 16);
                    let len = rng.gen_range(20..=28);
                    let p = Ipv4Prefix::new(addr, len);
                    overlappable.push((p, prio.max(1)));
                    (p, prio)
                };

            let rule = Rule::new(
                i as u64,
                prefix.to_key(),
                Priority(priority),
                Action::Forward(rng.gen_range(1..48)),
            );
            out.push(TimedAction {
                at,
                action: ControlAction::Insert(rule),
            });
        }
        out
    }

    /// The fraction of generated rules that overlap an earlier rule
    /// (diagnostic used by tests and experiment logs).
    pub fn measured_overlap(actions: &[TimedAction]) -> f64 {
        let rules: Vec<Rule> = actions
            .iter()
            .filter_map(|t| match t.action {
                ControlAction::Insert(r) => Some(r),
                _ => None,
            })
            .collect();
        if rules.len() < 2 {
            return 0.0;
        }
        let mut overlapping = 0usize;
        for (i, r) in rules.iter().enumerate() {
            if rules[..i].iter().any(|e| e.key.overlaps(&r.key)) {
                overlapping += 1;
            }
        }
        overlapping as f64 / rules.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = MicroBench::default();
        assert_eq!(cfg.generate(), cfg.generate());
        let other = MicroBench {
            seed: 43,
            ..MicroBench::default()
        };
        assert_ne!(cfg.generate(), other.generate());
    }

    #[test]
    fn arrival_rate_respected() {
        let cfg = MicroBench {
            arrival_rate: 1000.0,
            count: 5000,
            ..Default::default()
        };
        let stream = cfg.generate();
        let span = stream.last().unwrap().at.as_secs();
        let rate = stream.len() as f64 / span;
        assert!((rate - 1000.0).abs() < 100.0, "measured rate {rate}");
        // Timestamps monotone.
        for w in stream.windows(2) {
            assert!(w[1].at >= w[0].at);
        }
    }

    #[test]
    fn overlap_rate_zero_generates_disjoint_rules() {
        let cfg = MicroBench {
            overlap_rate: 0.0,
            count: 500,
            ..Default::default()
        };
        let stream = cfg.generate();
        assert_eq!(MicroBench::measured_overlap(&stream), 0.0);
    }

    #[test]
    fn overlap_rate_tracks_configuration() {
        for target in [0.2, 0.6, 1.0] {
            let cfg = MicroBench {
                overlap_rate: target,
                count: 800,
                ..Default::default()
            };
            let got = MicroBench::measured_overlap(&cfg.generate());
            assert!(
                (got - target).abs() < 0.1,
                "target {target}, measured {got}"
            );
        }
    }

    #[test]
    fn overlapping_rules_are_wider_and_lower_priority() {
        let cfg = MicroBench {
            overlap_rate: 1.0,
            count: 100,
            ..Default::default()
        };
        let stream = cfg.generate();
        let rules: Vec<Rule> = stream
            .iter()
            .filter_map(|t| match t.action {
                ControlAction::Insert(r) => Some(r),
                _ => None,
            })
            .collect();
        // Each overlapping rule (all but the first) must contain some
        // earlier rule with strictly higher priority — the partition-forcing
        // shape.
        for (i, r) in rules.iter().enumerate().skip(1) {
            let cut_forcing = rules[..i]
                .iter()
                .any(|e| r.key.contains(&e.key) && e.priority > r.priority);
            assert!(cut_forcing, "rule {i} does not force a cut");
        }
    }

    #[test]
    fn priority_modes() {
        let asc = MicroBench {
            priorities: PriorityMode::Ascending,
            overlap_rate: 0.0,
            count: 50,
            ..Default::default()
        };
        let prios: Vec<u32> = asc
            .generate()
            .iter()
            .filter_map(|t| match t.action {
                ControlAction::Insert(r) => Some(r.priority.0),
                _ => None,
            })
            .collect();
        assert!(prios.windows(2).all(|w| w[1] > w[0]));

        let none = MicroBench {
            priorities: PriorityMode::None,
            overlap_rate: 0.0,
            count: 20,
            ..Default::default()
        };
        assert!(none.generate().iter().all(|t| match t.action {
            ControlAction::Insert(r) => r.priority.is_none(),
            _ => false,
        }));
    }
}
