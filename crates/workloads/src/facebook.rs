//! Facebook MapReduce workload (§8.1.3).
//!
//! The paper replays "Facebook's large-scale Map Reduce deployment
//! consisting of 24402 Map Reduce jobs run over 1 day on a 600-machine
//! cluster" \[29\] on a k=16 fat tree. The trace itself is not public in
//! raw form; this generator reproduces the published characterization the
//! experiments depend on (documented substitution, DESIGN.md §2):
//!
//! * heavy-tailed job sizes — most jobs ship well under 1 GB ("short
//!   jobs"), a small fraction are multi-hundred-GB shuffles;
//! * per-job fan-out: each reducer pulls one flow from each mapper;
//! * Poisson job arrivals over the trace duration.
//!
//! The figures built on this workload (1, 8, 9) depend on the short/long
//! dichotomy and the reconfiguration pressure, both preserved here.

use hermes_util::rng::rngs::StdRng;
use hermes_util::rng::{Rng, SeedableRng};

/// One flow of a job: a shuffle transfer between two hosts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowSpec {
    /// Source host index.
    pub src: usize,
    /// Destination host index.
    pub dst: usize,
    /// Transfer size in bytes.
    pub bytes: u64,
}

/// One MapReduce job: a set of shuffle flows starting together.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Job id.
    pub id: usize,
    /// Arrival time in seconds from trace start.
    pub arrival_s: f64,
    /// The job's shuffle flows.
    pub flows: Vec<FlowSpec>,
}

impl JobSpec {
    /// Total bytes shuffled by the job.
    pub fn total_bytes(&self) -> u64 {
        self.flows.iter().map(|f| f.bytes).sum()
    }

    /// The paper's short/long split: short jobs move less than 1 GB.
    pub fn is_short(&self) -> bool {
        self.total_bytes() < 1_000_000_000
    }
}

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct FacebookWorkload {
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Number of hosts in the cluster.
    pub hosts: usize,
    /// Trace duration in seconds (arrivals are Poisson over this window).
    pub duration_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FacebookWorkload {
    fn default() -> Self {
        // Scaled-down default: the full 24402-job/86400-s trace is
        // reproduced by the experiment binaries with explicit parameters.
        FacebookWorkload {
            jobs: 1000,
            hosts: 1024,
            duration_s: 3600.0,
            seed: 7,
        }
    }
}

impl FacebookWorkload {
    /// Generates the job trace, sorted by arrival time.
    pub fn generate(&self) -> Vec<JobSpec> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut jobs = Vec::with_capacity(self.jobs);
        for id in 0..self.jobs {
            let arrival_s = rng.gen_range(0.0..self.duration_s);
            // Job scale: Pareto-distributed total shuffle bytes. Shape 0.9
            // with a 100 MB scale leaves ~87% of jobs under 1 GB and a
            // heavy multi-hundred-GB tail (capped at 500 GB).
            let u: f64 = rng.gen_range(1e-9..1.0);
            let total_bytes = (100e6 / u.powf(1.0 / 0.9)).min(500e9) as u64;

            // Fan-out grows sub-linearly with job size (small jobs use few
            // workers).
            let width = (((total_bytes as f64) / 100e6).sqrt().ceil() as usize).clamp(1, 32);
            let mappers = width;
            let reducers = width.max(1);

            // Place workers on random hosts (rack locality is the fat
            // tree's concern, not the trace's).
            let mut hosts: Vec<usize> = (0..mappers + reducers)
                .map(|_| rng.gen_range(0..self.hosts))
                .collect();
            // Avoid zero-length flows host→itself by nudging collisions.
            for i in mappers..hosts.len() {
                if hosts[..mappers].contains(&hosts[i]) {
                    hosts[i] = (hosts[i] + 1) % self.hosts;
                }
            }
            let (map_hosts, red_hosts) = hosts.split_at(mappers);

            let n_flows = mappers * reducers;
            let per_flow = (total_bytes / n_flows as u64).max(1);
            let mut flows = Vec::with_capacity(n_flows);
            for &m in map_hosts {
                for &r in red_hosts {
                    // ±50% jitter per flow.
                    let jitter = rng.gen_range(0.5..1.5);
                    flows.push(FlowSpec {
                        src: m,
                        dst: r,
                        bytes: ((per_flow as f64) * jitter) as u64,
                    });
                }
            }
            jobs.push(JobSpec {
                id,
                arrival_s,
                flows,
            });
        }
        jobs.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
        // Re-number in arrival order for stable reporting.
        for (i, j) in jobs.iter_mut().enumerate() {
            j.id = i;
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sorted() {
        let cfg = FacebookWorkload::default();
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert_eq!(a.len(), cfg.jobs);
    }

    #[test]
    fn short_long_mix_matches_characterization() {
        let cfg = FacebookWorkload {
            jobs: 3000,
            ..Default::default()
        };
        let jobs = cfg.generate();
        let short = jobs.iter().filter(|j| j.is_short()).count() as f64 / jobs.len() as f64;
        // Most jobs are short, but a real long tail exists.
        assert!(short > 0.6 && short < 0.98, "short fraction {short}");
        let max = jobs.iter().map(|j| j.total_bytes()).max().unwrap();
        assert!(max > 10_000_000_000, "tail too light: max {max}");
    }

    #[test]
    fn hosts_in_range_and_no_self_flows_dominate() {
        let cfg = FacebookWorkload {
            jobs: 300,
            hosts: 64,
            ..Default::default()
        };
        let jobs = cfg.generate();
        let mut self_flows = 0usize;
        let mut total = 0usize;
        for j in &jobs {
            for f in &j.flows {
                assert!(f.src < 64 && f.dst < 64);
                assert!(f.bytes > 0);
                total += 1;
                if f.src == f.dst {
                    self_flows += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            (self_flows as f64) < 0.05 * total as f64,
            "{self_flows}/{total} self flows"
        );
    }

    #[test]
    fn fanout_scales_with_job_size() {
        let cfg = FacebookWorkload {
            jobs: 2000,
            ..Default::default()
        };
        let jobs = cfg.generate();
        let small_avg_flows: f64 = {
            let s: Vec<_> = jobs.iter().filter(|j| j.is_short()).collect();
            s.iter().map(|j| j.flows.len()).sum::<usize>() as f64 / s.len() as f64
        };
        let big_avg_flows: f64 = {
            let b: Vec<_> = jobs.iter().filter(|j| !j.is_short()).collect();
            assert!(!b.is_empty());
            b.iter().map(|j| j.flows.len()).sum::<usize>() as f64 / b.len() as f64
        };
        assert!(big_avg_flows > small_avg_flows * 2.0);
    }
}
