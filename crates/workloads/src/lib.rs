//! # hermes-workloads — the evaluation's datasets, generated
//!
//! The paper evaluates Hermes on six datasets (§8.1.3); each proprietary
//! or non-redistributable source is replaced by a documented statistical
//! generator (DESIGN.md §2):
//!
//! * [`facebook`] — MapReduce jobs with heavy-tailed shuffle sizes on a
//!   1024-host cluster (stands in for the Facebook trace \[29\]);
//! * [`gravity`] — tomo-gravity traffic matrices \[65\] + Poisson flow
//!   decomposition (stands in for Abilene measurements and drives the
//!   Geant/Quest synthetic workloads);
//! * [`microbench`] — systematic rule-insertion streams parameterized by
//!   arrival rate × overlap rate × priority mode;
//! * [`bgptrace`] — BGPStream-like update streams: low baseline rate with
//!   >1000 updates/s bursts (stands in for the four-router captures \[5\]).
//!
//! All generators are deterministic given their seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bgptrace;
pub mod facebook;
pub mod gravity;
pub mod microbench;

pub use bgptrace::{BgpTrace, TimedUpdate};
pub use facebook::{FacebookWorkload, FlowSpec, JobSpec};
pub use gravity::{flows_from_matrix, TimedFlow, TrafficMatrix};
pub use microbench::{MicroBench, PriorityMode, TimedAction};
