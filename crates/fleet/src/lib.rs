//! Sharded multi-switch fleet controller.
//!
//! The paper evaluates Hermes one switch at a time; netsim builds fat-tree
//! and ISP topologies where *every* switch runs its own shadow/main pair.
//! [`Fleet`] owns one [`ControlPlane`] per switch and shards their control
//! channels across a fixed set of deterministic **worker lanes**:
//!
//! * a lane models one controller worker driving device handshakes
//!   synchronously — an operation occupies both its switch's serial
//!   control channel *and* its lane for the modeled execution time;
//! * switches on different lanes overlap freely, so a shadow install on
//!   one switch proceeds while a migration is in flight on another —
//!   the event-driven pipelined device channel;
//! * `lanes = 1` reproduces the historical single-threaded driver (every
//!   device op in the fleet serializes), `lanes = 0` gives every member a
//!   dedicated lane (fully parallel dispatch, the netsim default);
//! * lane assignment is a seeded shuffle of the sorted member ids, so the
//!   interleaving is a pure function of the seed (R1 determinism).
//!
//! Dependency tracking rides [`OpToken`]s: a submission handed the tokens
//! of earlier submissions starts only after all of them complete, even
//! across lanes — dependent cuts land after their pieces.
//!
//! On top of the channel, [`Fleet::install_path`] installs a rule set
//! along a path as a **two-phase transaction**: stage on every member via
//! the batched admission pipeline, commit once the last member's pieces
//! land, and roll back *everywhere* if any member is inside a crash
//! window or rejects a piece. Rollback deletes ride the normal per-switch
//! machinery — the PR 2 delete journal absorbs device faults and the
//! intent store retraction keeps a post-crash resync from resurrecting
//! aborted rules.

#![forbid(unsafe_code)]

use hermes_baselines::{BatchOutcome, ControlPlane, CpQueue, OpOutcome};
use hermes_rules::prelude::*;
use hermes_tcam::SimTime;
use hermes_util::rng::rngs::StdRng;
use hermes_util::rng::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Fleet member identifier (a netsim `NodeId` or any dense index).
pub type SwitchId = usize;

/// Fleet construction knobs.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Worker lanes the member control channels shard across. `0` gives
    /// every member a dedicated lane (fully parallel dispatch); `1` is
    /// the single-threaded driver every device op serializes through.
    pub lanes: usize,
    /// Seed for the lane-assignment shuffle. The interleaving the lanes
    /// produce is a pure function of this seed (R1 determinism).
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig { lanes: 0, seed: 1 }
    }
}

/// Completion handle for a submission: dependency tracking currency.
/// Passing tokens to [`Fleet::submit_after`] delays the new submission
/// until every referenced one has completed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpToken {
    /// Absolute completion instant of the submission.
    pub done: SimTime,
}

/// Fleet health counters (mirrored into `fleet.*` telemetry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Batches dispatched through the lanes.
    pub submits: u64,
    /// Control actions inside those batches.
    pub ops: u64,
    /// Two-phase path transactions started.
    pub txns: u64,
    /// Transactions whose every member staged cleanly.
    pub txn_commits: u64,
    /// Transactions rolled back on a member fault or crash.
    pub txn_rollbacks: u64,
    /// Members that failed staging across all rolled-back transactions.
    pub txn_member_failures: u64,
    /// Rollback deletes re-driven by `tick_all` after a member's crash
    /// window kept the first attempt from landing.
    pub rollback_retries: u64,
}

/// Per-rule outcome of a path transaction, with absolute times.
#[derive(Clone, Copy, Debug)]
pub struct PathOp {
    /// The member the piece was staged on.
    pub switch: SwitchId,
    /// The staged rule.
    pub id: RuleId,
    /// Absolute completion instant of the stage write.
    pub done: SimTime,
    /// Whether the member reported a guarantee violation for this piece.
    pub violated: bool,
}

/// Outcome of a two-phase path install.
#[derive(Clone, Debug)]
pub struct PathOutcome {
    /// Transaction sequence number (per fleet).
    pub txn: u64,
    /// `true` once every member staged cleanly; `false` after a rollback.
    pub committed: bool,
    /// Commit barrier (all pieces landed) or rollback completion.
    pub ready: SimTime,
    /// Members that failed staging (empty on commit).
    pub failed: Vec<SwitchId>,
    /// Per-piece stage outcomes, in member order.
    pub ops: Vec<PathOp>,
}

struct Member<P> {
    queue: CpQueue<P>,
    lane: usize,
}

/// The fleet controller: N per-switch control planes sharded across
/// deterministic worker lanes.
pub struct Fleet<P: ControlPlane> {
    members: BTreeMap<SwitchId, Member<P>>,
    /// Per-lane busy horizon (the lane's serial clock).
    lanes: Vec<SimTime>,
    next_txn: u64,
    /// Rollback deletes that have not yet been confirmed gone (a crash
    /// window can delay the device-side removal); re-driven by
    /// [`tick_all`](Self::tick_all).
    pending_rollbacks: BTreeMap<SwitchId, Vec<RuleId>>,
    stats: FleetStats,
}

impl<P: ControlPlane> Fleet<P> {
    /// Builds a fleet over the given members. Lane assignment is a
    /// seeded shuffle of the sorted member ids so reruns interleave
    /// identically.
    pub fn new(members: Vec<(SwitchId, P)>, config: FleetConfig) -> Self {
        let n = members.len();
        let lane_count = if config.lanes == 0 {
            n.max(1)
        } else {
            config.lanes.min(n.max(1))
        };
        // Round-robin over the sorted ids, then a Fisher-Yates shuffle of
        // the assignment vector: balanced *and* seed-dependent.
        let mut assignment: Vec<usize> = (0..n).map(|i| i % lane_count).collect();
        let mut rng = StdRng::seed_from_u64(config.seed ^ LANE_SHUFFLE_SALT);
        for i in (1..assignment.len()).rev() {
            let j = Rng::gen_range(&mut rng, 0..=i);
            assignment.swap(i, j);
        }
        let mut sorted = members;
        sorted.sort_by_key(|(id, _)| *id);
        let members: BTreeMap<SwitchId, Member<P>> = sorted
            .into_iter()
            .zip(assignment)
            .map(|((id, plane), lane)| {
                (
                    id,
                    Member {
                        queue: CpQueue::new(plane),
                        lane,
                    },
                )
            })
            .collect();
        if hermes_telemetry::enabled() {
            hermes_telemetry::gauge("fleet.lanes", lane_count as f64);
            hermes_telemetry::gauge("fleet.members", members.len() as f64);
        }
        Fleet {
            members,
            lanes: vec![SimTime::ZERO; lane_count],
            next_txn: 0,
            pending_rollbacks: BTreeMap::new(),
            stats: FleetStats::default(),
        }
    }

    /// Number of worker lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The lane a member is sharded onto.
    pub fn lane_of(&self, sw: SwitchId) -> usize {
        self.member(sw).lane
    }

    /// Sorted member ids.
    pub fn switch_ids(&self) -> Vec<SwitchId> {
        self.members.keys().copied().collect()
    }

    /// Iterates members as `(id, plane)`.
    pub fn planes(&self) -> impl Iterator<Item = (SwitchId, &P)> {
        self.members.iter().map(|(id, m)| (*id, m.queue.plane()))
    }

    /// Borrows one member's plane.
    pub fn plane(&self, sw: SwitchId) -> &P {
        self.member(sw).queue.plane()
    }

    /// Mutably borrows one member's plane (preload, crash injection).
    pub fn plane_mut(&mut self, sw: SwitchId) -> &mut P {
        self.member_mut(sw).queue.plane_mut()
    }

    /// Whether a member's control session is inside a crash window.
    pub fn is_down(&self, sw: SwitchId) -> bool {
        self.plane(sw).is_down()
    }

    /// Total installed entries across the fleet.
    pub fn occupancy(&self) -> usize {
        self.members.values().map(|m| m.queue.plane().occupancy()).sum()
    }

    /// The latest busy horizon over all lanes: the modeled makespan of
    /// everything dispatched so far.
    pub fn horizon(&self) -> SimTime {
        self.lanes.iter().copied().fold(SimTime::ZERO, SimTime::max)
    }

    /// Health counters.
    pub fn stats(&self) -> FleetStats {
        self.stats
    }

    /// Rollback deletes still awaiting confirmation.
    pub fn pending_rollback_len(&self) -> usize {
        self.pending_rollbacks.values().map(Vec::len).sum()
    }

    fn member(&self, sw: SwitchId) -> &Member<P> {
        self.members
            .get(&sw)
            .expect("INVARIANT: fleet calls target a registered member")
    }

    fn member_mut(&mut self, sw: SwitchId) -> &mut Member<P> {
        self.members
            .get_mut(&sw)
            .expect("INVARIANT: fleet calls target a registered member")
    }

    /// Submits a batch to one member through its lane.
    pub fn submit(
        &mut self,
        sw: SwitchId,
        actions: &[ControlAction],
        now: SimTime,
    ) -> (SimTime, BatchOutcome) {
        let (start, outcome, _) = self.submit_after(sw, actions, now, &[]);
        (start, outcome)
    }

    /// Submits a batch that must start only after every dependency
    /// completes (dependent cuts land after their pieces). Start of
    /// service additionally waits for the member's control channel and
    /// its lane; both advance to the batch's completion.
    pub fn submit_after(
        &mut self,
        sw: SwitchId,
        actions: &[ControlAction],
        now: SimTime,
        deps: &[OpToken],
    ) -> (SimTime, BatchOutcome, OpToken) {
        let mut at = now;
        for t in deps {
            if t.done > at {
                at = t.done;
            }
        }
        let lane = self.member(sw).lane;
        if self.lanes[lane] > at {
            at = self.lanes[lane];
        }
        let (start, outcome) = self.member_mut(sw).queue.submit(actions, at);
        let done = start + outcome.total;
        self.lanes[lane] = done;
        self.stats.submits += 1;
        self.stats.ops += actions.len() as u64;
        if hermes_telemetry::enabled() {
            hermes_telemetry::counter("fleet.submits", 1);
            hermes_telemetry::counter("fleet.ops", actions.len() as u64);
            hermes_telemetry::observe("fleet.dispatch_wait_ns", start.since(now).as_nanos());
        }
        (start, outcome, OpToken { done })
    }

    /// Installs a rule set along a path as a two-phase transaction.
    ///
    /// Phase 1 stages every member's pieces through the batched admission
    /// pipeline (members shard across lanes, so stages overlap). A member
    /// fails staging when its control session is inside a crash window or
    /// any of its pieces did not become logically live. Phase 2 commits —
    /// the barrier over every stage token, so the transaction is ready
    /// only after its last piece — or rolls back: every member's pieces
    /// are deleted, with the deletes depending on the full stage barrier
    /// so they land after what they undo. Deletes on a still-down member
    /// retract the durable intent immediately (resync will not resurrect
    /// the rule) and the device-side removal rides the delete journal;
    /// [`tick_all`](Self::tick_all) re-drives any stragglers.
    pub fn install_path(&mut self, rules: &[(SwitchId, Rule)], now: SimTime) -> PathOutcome {
        let txn = self.next_txn;
        self.next_txn += 1;
        self.stats.txns += 1;
        let traced = hermes_telemetry::enabled();
        let span = hermes_telemetry::span_enter("fleet", "install_path", now.as_nanos());
        if traced {
            hermes_telemetry::counter("fleet.txns", 1);
        }
        let mut by_member: BTreeMap<SwitchId, Vec<Rule>> = BTreeMap::new();
        for (sw, r) in rules {
            by_member.entry(*sw).or_default().push(*r);
        }

        // Phase 1: stage on every member.
        let mut tokens = Vec::with_capacity(by_member.len());
        let mut ops = Vec::with_capacity(rules.len());
        let mut failed = Vec::new();
        for (sw, batch) in &by_member {
            let actions: Vec<ControlAction> =
                batch.iter().map(|r| ControlAction::Insert(*r)).collect();
            let (start, outcome, token) = self.submit_after(*sw, &actions, now, &[]);
            record_stage_ops(*sw, batch, start, &outcome, &mut ops);
            let plane = self.plane(*sw);
            let staged_ok = !plane.is_down()
                && batch
                    .iter()
                    .all(|r| plane.contains_rule(r.id).unwrap_or(true));
            if !staged_ok {
                failed.push(*sw);
            }
            tokens.push(token);
        }
        let stage_barrier = tokens
            .iter()
            .map(|t| t.done)
            .fold(now, SimTime::max);

        if failed.is_empty() {
            // Phase 2a: commit — nothing to write, the stage barrier *is*
            // the commit point.
            self.stats.txn_commits += 1;
            if traced {
                hermes_telemetry::counter("fleet.txn_commits", 1);
            }
            span.end(stage_barrier.as_nanos());
            return PathOutcome {
                txn,
                committed: true,
                ready: stage_barrier,
                failed,
                ops,
            };
        }

        // Phase 2b: roll back everywhere.
        self.stats.txn_rollbacks += 1;
        self.stats.txn_member_failures += failed.len() as u64;
        if traced {
            hermes_telemetry::counter("fleet.txn_rollbacks", 1);
            hermes_telemetry::counter("fleet.txn_member_failures", failed.len() as u64);
        }
        let mut ready = stage_barrier;
        let members: Vec<SwitchId> = by_member.keys().copied().collect();
        for sw in members {
            let ids: Vec<RuleId> = by_member[&sw].iter().map(|r| r.id).collect();
            let deletes: Vec<ControlAction> =
                ids.iter().map(|id| ControlAction::Delete(*id)).collect();
            let (_, _, token) = self.submit_after(sw, &deletes, now, &tokens);
            if token.done > ready {
                ready = token.done;
            }
            // A member mid-crash may not confirm the removal yet; park the
            // ids for the tick loop to re-drive after resync.
            let plane = self.plane(sw);
            let leftovers: Vec<RuleId> = ids
                .into_iter()
                .filter(|id| plane.contains_rule(*id) == Some(true))
                .collect();
            if !leftovers.is_empty() {
                self.pending_rollbacks.entry(sw).or_default().extend(leftovers);
            }
        }
        span.end(ready.as_nanos());
        PathOutcome {
            txn,
            committed: false,
            ready,
            failed,
            ops,
        }
    }

    /// Periodic housekeeping across the fleet: ticks every member (Rule
    /// Manager migrations, crash-window reconnects) and re-drives any
    /// rollback deletes a crash window previously swallowed.
    pub fn tick_all(&mut self, now: SimTime) {
        for m in self.members.values_mut() {
            m.queue.plane_mut().tick(now);
        }
        if self.pending_rollbacks.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending_rollbacks);
        for (sw, ids) in pending {
            let retry: Vec<RuleId> = ids
                .into_iter()
                .filter(|id| self.plane(sw).contains_rule(*id) == Some(true))
                .collect();
            if retry.is_empty() {
                continue;
            }
            if self.plane(sw).is_down() {
                // Still inside the crash window: keep them parked.
                self.pending_rollbacks.entry(sw).or_default().extend(retry);
                continue;
            }
            self.stats.rollback_retries += retry.len() as u64;
            if hermes_telemetry::enabled() {
                hermes_telemetry::counter("fleet.rollback_retries", retry.len() as u64);
            }
            let deletes: Vec<ControlAction> =
                retry.iter().map(|id| ControlAction::Delete(*id)).collect();
            self.submit(sw, &deletes, now);
            let leftovers: Vec<RuleId> = retry
                .into_iter()
                .filter(|id| self.plane(sw).contains_rule(*id) == Some(true))
                .collect();
            if !leftovers.is_empty() {
                self.pending_rollbacks.entry(sw).or_default().extend(leftovers);
            }
        }
    }

    /// Ends the preload/warm-up phase fleet-wide: member state stays,
    /// time-dependent state (lane horizons, admission buckets) resets to
    /// the epoch.
    pub fn end_warmup_all(&mut self) {
        for m in self.members.values_mut() {
            m.queue.plane_mut().end_warmup();
        }
        for lane in &mut self.lanes {
            *lane = SimTime::ZERO;
        }
    }
}

/// Stamps absolute completion times onto the staged pieces. The batched
/// admission pipeline preserves submission order, so outcomes zip with
/// the staged rules positionally.
fn record_stage_ops(
    sw: SwitchId,
    batch: &[Rule],
    start: SimTime,
    outcome: &BatchOutcome,
    ops: &mut Vec<PathOp>,
) {
    for (r, op) in batch.iter().zip(outcome.ops.iter()) {
        let op: &OpOutcome = op;
        ops.push(PathOp {
            switch: sw,
            id: r.id,
            done: start + op.completed_at,
            violated: op.violated,
        });
    }
}

/// Seed-mixing constant for the lane shuffle (keeps the assignment
/// stream distinct from every other stream derived from the same seed).
const LANE_SHUFFLE_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_baselines::{HermesPlane, RawSwitch};
    use hermes_core::prelude::{HermesConfig, HermesSwitch};
    use hermes_tcam::{CrashKind, SimDuration, SwitchModel};

    fn rule(id: u64) -> Rule {
        Rule::new(
            id,
            Ipv4Prefix::new(0x0a00_0000 | ((id as u32) << 8), 24).to_key(),
            Priority(10 + (id as u32 % 100)),
            Action::Forward(1),
        )
    }

    fn raw_fleet(n: usize, lanes: usize) -> Fleet<RawSwitch> {
        let members = (0..n)
            .map(|i| (i, RawSwitch::new(SwitchModel::pica8_p3290())))
            .collect();
        Fleet::new(members, FleetConfig { lanes, seed: 7 })
    }

    fn hermes_fleet(n: usize, lanes: usize) -> Fleet<HermesPlane> {
        let members = (0..n)
            .map(|i| {
                let sw = HermesSwitch::new(SwitchModel::pica8_p3290(), HermesConfig::default())
                    .unwrap();
                (i, HermesPlane::new(sw))
            })
            .collect();
        Fleet::new(members, FleetConfig { lanes, seed: 7 })
    }

    #[test]
    fn zero_lanes_means_one_per_member() {
        let fleet = raw_fleet(5, 0);
        assert_eq!(fleet.lane_count(), 5);
        let mut lanes: Vec<usize> = (0..5).map(|sw| fleet.lane_of(sw)).collect();
        lanes.sort_unstable();
        assert_eq!(lanes, vec![0, 1, 2, 3, 4], "dedicated lane per member");
    }

    #[test]
    fn lane_assignment_is_deterministic_and_balanced() {
        let a = raw_fleet(8, 3);
        let b = raw_fleet(8, 3);
        let la: Vec<usize> = (0..8).map(|sw| a.lane_of(sw)).collect();
        let lb: Vec<usize> = (0..8).map(|sw| b.lane_of(sw)).collect();
        assert_eq!(la, lb, "same seed, same shuffle");
        for lane in 0..3 {
            let n = la.iter().filter(|&&l| l == lane).count();
            assert!((2..=3).contains(&n), "lane {lane} holds {n} members");
        }
    }

    #[test]
    fn single_lane_serializes_across_switches() {
        let mut fleet = raw_fleet(2, 1);
        let now = SimTime::ZERO;
        let (s0, o0, t0) = fleet.submit_after(0, &[ControlAction::Insert(rule(1))], now, &[]);
        assert_eq!(s0, now);
        assert!(o0.total > SimDuration::ZERO);
        let (s1, _, _) = fleet.submit_after(1, &[ControlAction::Insert(rule(2))], now, &[]);
        assert_eq!(s1, t0.done, "second switch waits for the shared lane");
    }

    #[test]
    fn dedicated_lanes_overlap_across_switches() {
        let mut fleet = raw_fleet(2, 0);
        let now = SimTime::ZERO;
        let (s0, _, _) = fleet.submit_after(0, &[ControlAction::Insert(rule(1))], now, &[]);
        let (s1, _, _) = fleet.submit_after(1, &[ControlAction::Insert(rule(2))], now, &[]);
        assert_eq!(s0, now);
        assert_eq!(s1, now, "different members on different lanes overlap");
    }

    #[test]
    fn dependencies_delay_dependent_cuts() {
        let mut fleet = raw_fleet(2, 0);
        let now = SimTime::ZERO;
        let (_, _, t0) = fleet.submit_after(0, &[ControlAction::Insert(rule(1))], now, &[]);
        let (s1, _, _) = fleet.submit_after(1, &[ControlAction::Insert(rule(2))], now, &[t0]);
        assert_eq!(s1, t0.done, "dependent batch starts after its dependency");
    }

    #[test]
    fn install_path_commits_on_healthy_members() {
        let mut fleet = hermes_fleet(3, 2);
        let pieces: Vec<(SwitchId, Rule)> = (0..3).map(|sw| (sw, rule(sw as u64 + 1))).collect();
        let out = fleet.install_path(&pieces, SimTime::ZERO);
        assert!(out.committed);
        assert!(out.failed.is_empty());
        assert_eq!(out.ops.len(), 3);
        for (sw, r) in &pieces {
            assert_eq!(fleet.plane(*sw).contains_rule(r.id), Some(true));
        }
        assert!(out.ops.iter().all(|op| op.done <= out.ready));
        assert_eq!(fleet.stats().txn_commits, 1);
    }

    #[test]
    fn install_path_rolls_back_everywhere_on_a_down_member() {
        let mut fleet = hermes_fleet(3, 2);
        fleet
            .plane_mut(1)
            .inject_crash(CrashKind::Disconnect, 5, 2, SimTime::ZERO);
        assert!(fleet.is_down(1));
        let pieces: Vec<(SwitchId, Rule)> = (0..3).map(|sw| (sw, rule(sw as u64 + 1))).collect();
        let out = fleet.install_path(&pieces, SimTime::ZERO);
        assert!(!out.committed);
        assert_eq!(out.failed, vec![1]);
        for (sw, r) in &pieces {
            assert_eq!(
                fleet.plane(*sw).contains_rule(r.id),
                Some(false),
                "rollback retracts the piece on member {sw}"
            );
        }
        assert_eq!(fleet.stats().txn_rollbacks, 1);
        // The crash window eventually closes under ticks and the fleet
        // carries no rollback debt.
        let mut now = SimTime::ZERO;
        for _ in 0..64 {
            now += SimDuration::from_ms(5.0);
            fleet.tick_all(now);
            if !fleet.is_down(1) {
                break;
            }
        }
        assert!(!fleet.is_down(1), "member rejoined after resync");
        assert_eq!(fleet.pending_rollback_len(), 0);
    }

    #[test]
    fn end_warmup_resets_lane_horizons() {
        let mut fleet = raw_fleet(2, 1);
        fleet.submit(0, &[ControlAction::Insert(rule(1))], SimTime::ZERO);
        assert!(fleet.horizon() > SimTime::ZERO);
        fleet.end_warmup_all();
        assert_eq!(fleet.horizon(), SimTime::ZERO);
    }

    #[test]
    fn raw_planes_always_commit() {
        // Raw switches expose no membership introspection and no fault
        // domain: transactions over them always commit.
        let mut fleet = raw_fleet(2, 1);
        let pieces: Vec<(SwitchId, Rule)> = (0..2).map(|sw| (sw, rule(sw as u64 + 1))).collect();
        let out = fleet.install_path(&pieces, SimTime::ZERO);
        assert!(out.committed);
        assert_eq!(fleet.occupancy(), 2);
    }
}
