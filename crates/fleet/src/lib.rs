//! Sharded multi-switch fleet controller.
//!
//! The paper evaluates Hermes one switch at a time; netsim builds fat-tree
//! and ISP topologies where *every* switch runs its own shadow/main pair.
//! [`Fleet`] owns one [`ControlPlane`] per switch and shards their control
//! channels across a fixed set of deterministic **worker lanes**:
//!
//! * a lane models one controller worker driving device handshakes
//!   synchronously — an operation occupies both its switch's serial
//!   control channel *and* its lane for the modeled execution time;
//! * switches on different lanes overlap freely, so a shadow install on
//!   one switch proceeds while a migration is in flight on another —
//!   the event-driven pipelined device channel;
//! * `lanes = 1` reproduces the historical single-threaded driver (every
//!   device op in the fleet serializes), `lanes = 0` gives every member a
//!   dedicated lane (fully parallel dispatch, the netsim default);
//! * every member has a **home lane** — round-robin over the sorted ids
//!   plus a seeded shuffle — and [`LaneSched`] picks where an op actually
//!   runs: `Pinned` always uses the home lane (the phase-1 behaviour),
//!   `Weighted` sends each op to the least-loaded lane, and `WorkSteal`
//!   keeps the home lane unless it is busy and a strictly less busy lane
//!   can steal the op. All three are pure functions of the seed and the
//!   submission history (R1 determinism); with dedicated lanes
//!   (`lanes = 0`) scheduling is a no-op and the phase-1 timing is
//!   bit-preserved.
//!
//! Dependency tracking rides [`OpToken`]s: a submission handed the tokens
//! of earlier submissions starts only after all of them complete, even
//! across lanes — dependent cuts land after their pieces.
//!
//! On top of the channel, [`Fleet::install_path`] installs a rule set
//! along a path as a **two-phase transaction**: stage on every member via
//! the batched admission pipeline, commit once the last member's pieces
//! land, and roll back *everywhere* if any member is inside a crash
//! window or rejects a piece. Pieces sharing a member ride **one**
//! `apply_batch` cut per member per transaction (`FleetConfig::coalesce`;
//! the per-piece mode survives as the measurement strawman). Rollback
//! deletes ride the normal per-switch machinery — the PR 2 delete journal
//! absorbs device faults and the intent store retraction keeps a
//! post-crash resync from resurrecting aborted rules.
//!
//! The [`rebalance`] module layers TE-driven placement on top:
//! [`rebalance::Rebalancer`] scores members from [`MemberHealth`]
//! (occupancy, channel backlog, mean RIT, crash/resync history), steers
//! new path transactions away from slow or crash-looping members, and
//! plans rule migrations off hot members which
//! [`Fleet::migrate_rules`] executes through the batched pipeline.

#![forbid(unsafe_code)]

pub mod rebalance;

pub use rebalance::{MemberHealth, RebalancePolicy, Rebalancer, RebalanceStats};

use hermes_baselines::{BatchOutcome, ControlPlane, CpQueue, OpOutcome};
use hermes_rules::prelude::*;
use hermes_tcam::SimTime;
use hermes_util::rng::rngs::StdRng;
use hermes_util::rng::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Fleet member identifier (a netsim `NodeId` or any dense index).
pub type SwitchId = usize;

/// How ops are assigned to worker lanes (phase 2; DESIGN.md §13).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LaneSched {
    /// Every op runs on its member's home lane — the phase-1 static
    /// round-robin sharding.
    #[default]
    Pinned,
    /// Occupancy-weighted assignment: every op runs on the least-loaded
    /// lane (earliest busy horizon), ties broken by a seeded lane
    /// permutation. Keeps all lanes busy when one member dominates.
    Weighted,
    /// Work stealing: an op runs on its home lane unless the home lane is
    /// busy at submission and a strictly less busy lane exists — then the
    /// least-loaded lane steals it.
    WorkSteal,
}

/// Fleet construction knobs.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Worker lanes the member control channels shard across. `0` gives
    /// every member a dedicated lane (fully parallel dispatch); `1` is
    /// the single-threaded driver every device op serializes through.
    pub lanes: usize,
    /// Seed for the lane-assignment shuffle and the scheduler tie-break
    /// permutation. The interleaving the lanes produce is a pure function
    /// of this seed (R1 determinism).
    pub seed: u64,
    /// Lane-scheduling mode. With dedicated lanes (`lanes = 0`) every
    /// mode degenerates to `Pinned` and the phase-1 timing is
    /// bit-preserved.
    pub sched: LaneSched,
    /// Coalesce path-transaction pieces sharing a member into one
    /// `apply_batch` cut per member per transaction (the default).
    /// `false` submits every piece on its own — the per-piece strawman
    /// the `exp_fleet` rebalancing phase measures against.
    pub coalesce: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            lanes: 0,
            seed: 1,
            sched: LaneSched::Pinned,
            coalesce: true,
        }
    }
}

/// Completion handle for a submission: dependency tracking currency.
/// Passing tokens to [`Fleet::submit_after`] delays the new submission
/// until every referenced one has completed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpToken {
    /// Absolute completion instant of the submission.
    pub done: SimTime,
}

/// Fleet health counters (mirrored into `fleet.*` telemetry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Batches dispatched through the lanes.
    pub submits: u64,
    /// Control actions inside those batches.
    pub ops: u64,
    /// Two-phase path transactions started.
    pub txns: u64,
    /// Transactions whose every member staged cleanly.
    pub txn_commits: u64,
    /// Transactions rolled back on a member fault or crash.
    pub txn_rollbacks: u64,
    /// Members that failed staging across all rolled-back transactions.
    pub txn_member_failures: u64,
    /// Rollback deletes re-driven by `tick_all` after a member's crash
    /// window kept the first attempt from landing.
    pub rollback_retries: u64,
    /// Ops dispatched to a lane other than their member's home lane
    /// (`Weighted` / `WorkSteal` scheduling).
    pub steals: u64,
    /// Path-transaction pieces beyond the first on their member that rode
    /// a shared per-member cut instead of their own submit.
    pub coalesced_pieces: u64,
    /// Rule-load migrations committed by [`Fleet::migrate_rules`].
    pub migrations: u64,
    /// Migrations aborted because the target member failed to stage the
    /// moved rules (source left untouched).
    pub migrations_aborted: u64,
    /// Rules moved off their member by committed migrations.
    pub rules_moved: u64,
}

/// Per-rule outcome of a path transaction, with absolute times.
#[derive(Clone, Copy, Debug)]
pub struct PathOp {
    /// The member the piece was staged on.
    pub switch: SwitchId,
    /// The staged rule.
    pub id: RuleId,
    /// Absolute completion instant of the stage write.
    pub done: SimTime,
    /// Whether the member reported a guarantee violation for this piece.
    pub violated: bool,
}

/// Outcome of a two-phase path install.
#[derive(Clone, Debug)]
pub struct PathOutcome {
    /// Transaction sequence number (per fleet).
    pub txn: u64,
    /// `true` once every member staged cleanly; `false` after a rollback.
    pub committed: bool,
    /// Commit barrier (all pieces landed) or rollback completion.
    pub ready: SimTime,
    /// Members that failed staging (empty on commit).
    pub failed: Vec<SwitchId>,
    /// Per-piece stage outcomes, in member order.
    pub ops: Vec<PathOp>,
}

/// Outcome of a [`Fleet::migrate_rules`] rule-load move.
#[derive(Clone, Copy, Debug)]
pub struct MigrateOutcome {
    /// `true` once the target staged every rule and the source deletes
    /// were issued; `false` when the target failed staging (the source
    /// keeps the load, the partial landing is retracted).
    pub committed: bool,
    /// Completion instant of the final cut (deletes on the source, or the
    /// retraction on the target).
    pub ready: SimTime,
}

struct Member<P> {
    queue: CpQueue<P>,
    lane: usize,
    /// Batches dispatched to this member.
    ops: u64,
    /// Cumulative dispatch wait (start − submit), ns.
    wait_ns: u64,
    /// Cumulative modeled execution time, ns.
    service_ns: u64,
}

/// Computes the home-lane assignment for `n` sorted members over
/// `lane_count` lanes under `seed`: round-robin over the sorted ids, then
/// a seeded Fisher–Yates shuffle of the assignment vector — balanced
/// *and* seed-dependent. Exposed so experiments can reconstruct which
/// members share a lane without building a fleet.
pub fn lane_assignment(n: usize, lanes: usize, seed: u64) -> Vec<usize> {
    let lane_count = if lanes == 0 { n.max(1) } else { lanes.min(n.max(1)) };
    let mut assignment: Vec<usize> = (0..n).map(|i| i % lane_count).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ LANE_SHUFFLE_SALT);
    for i in (1..assignment.len()).rev() {
        let j = Rng::gen_range(&mut rng, 0..=i);
        assignment.swap(i, j);
    }
    assignment
}

/// The fleet controller: N per-switch control planes sharded across
/// deterministic worker lanes.
pub struct Fleet<P: ControlPlane> {
    members: BTreeMap<SwitchId, Member<P>>,
    /// Per-lane busy horizon (the lane's serial clock).
    lanes: Vec<SimTime>,
    /// Seeded lane permutation breaking ties in least-loaded scans.
    lane_order: Vec<usize>,
    sched: LaneSched,
    coalesce: bool,
    /// `lanes = 0`: every member owns its lane, scheduling is a no-op.
    dedicated: bool,
    next_txn: u64,
    /// Rollback deletes that have not yet been confirmed gone (a crash
    /// window can delay the device-side removal); re-driven by
    /// [`tick_all`](Self::tick_all).
    pending_rollbacks: BTreeMap<SwitchId, Vec<RuleId>>,
    stats: FleetStats,
}

impl<P: ControlPlane> Fleet<P> {
    /// Builds a fleet over the given members. Lane assignment is a
    /// seeded shuffle of the sorted member ids so reruns interleave
    /// identically.
    pub fn new(members: Vec<(SwitchId, P)>, config: FleetConfig) -> Self {
        let n = members.len();
        let lane_count = if config.lanes == 0 {
            n.max(1)
        } else {
            config.lanes.min(n.max(1))
        };
        let assignment = lane_assignment(n, config.lanes, config.seed);
        let mut sorted = members;
        sorted.sort_by_key(|(id, _)| *id);
        let members: BTreeMap<SwitchId, Member<P>> = sorted
            .into_iter()
            .zip(assignment)
            .map(|((id, plane), lane)| {
                (
                    id,
                    Member {
                        queue: CpQueue::new(plane),
                        lane,
                        ops: 0,
                        wait_ns: 0,
                        service_ns: 0,
                    },
                )
            })
            .collect();
        // Tie-break permutation for least-loaded scans: a second seeded
        // shuffle over the lane indices, on its own salted stream.
        let mut lane_order: Vec<usize> = (0..lane_count).collect();
        let mut rng = StdRng::seed_from_u64(config.seed ^ LANE_ORDER_SALT);
        for i in (1..lane_order.len()).rev() {
            let j = Rng::gen_range(&mut rng, 0..=i);
            lane_order.swap(i, j);
        }
        if hermes_telemetry::enabled() {
            hermes_telemetry::gauge("fleet.lanes", lane_count as f64);
            hermes_telemetry::gauge("fleet.members", members.len() as f64);
        }
        Fleet {
            members,
            lanes: vec![SimTime::ZERO; lane_count],
            lane_order,
            sched: config.sched,
            coalesce: config.coalesce,
            dedicated: config.lanes == 0,
            next_txn: 0,
            pending_rollbacks: BTreeMap::new(),
            stats: FleetStats::default(),
        }
    }

    /// Number of worker lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The home lane a member is sharded onto (where its ops run under
    /// `Pinned` scheduling).
    pub fn lane_of(&self, sw: SwitchId) -> usize {
        self.member(sw).lane
    }

    /// Sorted member ids.
    pub fn switch_ids(&self) -> Vec<SwitchId> {
        self.members.keys().copied().collect()
    }

    /// Iterates members as `(id, plane)`.
    pub fn planes(&self) -> impl Iterator<Item = (SwitchId, &P)> {
        self.members.iter().map(|(id, m)| (*id, m.queue.plane()))
    }

    /// Borrows one member's plane.
    pub fn plane(&self, sw: SwitchId) -> &P {
        self.member(sw).queue.plane()
    }

    /// Mutably borrows one member's plane (preload, crash injection).
    pub fn plane_mut(&mut self, sw: SwitchId) -> &mut P {
        self.member_mut(sw).queue.plane_mut()
    }

    /// Whether a member's control session is inside a crash window.
    pub fn is_down(&self, sw: SwitchId) -> bool {
        self.plane(sw).is_down()
    }

    /// Total installed entries across the fleet.
    pub fn occupancy(&self) -> usize {
        self.members.values().map(|m| m.queue.plane().occupancy()).sum()
    }

    /// The latest busy horizon over all lanes: the modeled makespan of
    /// everything dispatched so far.
    pub fn horizon(&self) -> SimTime {
        self.lanes.iter().copied().fold(SimTime::ZERO, SimTime::max)
    }

    /// Health counters.
    pub fn stats(&self) -> FleetStats {
        self.stats
    }

    /// Rollback deletes still awaiting confirmation.
    pub fn pending_rollback_len(&self) -> usize {
        self.pending_rollbacks.values().map(Vec::len).sum()
    }

    /// Per-member health snapshot at `now` — the [`Rebalancer`] scoring
    /// input: occupancy, control-channel backlog, mean modeled RIT and
    /// the crash/resync history (zero for planes without a fault domain).
    pub fn member_health(&self, now: SimTime) -> Vec<MemberHealth> {
        self.members
            .iter()
            .map(|(id, m)| {
                let p = m.queue.plane();
                let (crashes, resyncs) = p
                    .resync_stats()
                    .map(|rs| (rs.crashes_detected, rs.resyncs_completed))
                    .unwrap_or((0, 0));
                let busy = m.queue.busy_until();
                MemberHealth {
                    id: *id,
                    lane: m.lane,
                    occupancy: p.occupancy(),
                    backlog_ns: if busy > now { busy.since(now).as_nanos() } else { 0 },
                    mean_rit_ns: (m.wait_ns + m.service_ns).checked_div(m.ops).unwrap_or(0),
                    is_down: p.is_down(),
                    crashes,
                    resyncs,
                }
            })
            .collect()
    }

    fn member(&self, sw: SwitchId) -> &Member<P> {
        self.members
            .get(&sw)
            .expect("INVARIANT: fleet calls target a registered member")
    }

    fn member_mut(&mut self, sw: SwitchId) -> &mut Member<P> {
        self.members
            .get_mut(&sw)
            .expect("INVARIANT: fleet calls target a registered member")
    }

    /// The lane with the earliest busy horizon, scanned in the seeded
    /// tie-break order (strict less-than keeps the scan a pure function
    /// of the horizons and the seed).
    fn least_loaded_lane(&self) -> usize {
        let mut best = self.lane_order[0];
        for &l in &self.lane_order[1..] {
            if self.lanes[l] < self.lanes[best] {
                best = l;
            }
        }
        best
    }

    /// Picks the lane an op dispatched to `sw` at `at` runs on, per the
    /// configured [`LaneSched`]. Dedicated lanes (`lanes = 0`) always use
    /// the home lane — scheduling cannot improve on one lane per member
    /// and staying home bit-preserves the phase-1 timing.
    fn pick_lane(&mut self, sw: SwitchId, at: SimTime) -> usize {
        let home = self.member(sw).lane;
        if self.dedicated || self.lanes.len() == 1 {
            return home;
        }
        let chosen = match self.sched {
            LaneSched::Pinned => home,
            LaneSched::Weighted => self.least_loaded_lane(),
            LaneSched::WorkSteal => {
                if self.lanes[home] <= at {
                    home
                } else {
                    let best = self.least_loaded_lane();
                    if self.lanes[best] < self.lanes[home] {
                        best
                    } else {
                        home
                    }
                }
            }
        };
        if chosen != home {
            self.stats.steals += 1;
            if hermes_telemetry::enabled() {
                hermes_telemetry::counter("fleet.sched.steals", 1);
            }
        }
        chosen
    }

    /// Submits a batch to one member through its lane.
    pub fn submit(
        &mut self,
        sw: SwitchId,
        actions: &[ControlAction],
        now: SimTime,
    ) -> (SimTime, BatchOutcome) {
        let (start, outcome, _) = self.submit_after(sw, actions, now, &[]);
        (start, outcome)
    }

    /// Submits a batch that must start only after every dependency
    /// completes (dependent cuts land after their pieces). Start of
    /// service additionally waits for the member's control channel and
    /// the scheduled lane; both advance to the batch's completion.
    pub fn submit_after(
        &mut self,
        sw: SwitchId,
        actions: &[ControlAction],
        now: SimTime,
        deps: &[OpToken],
    ) -> (SimTime, BatchOutcome, OpToken) {
        let mut at = now;
        for t in deps {
            if t.done > at {
                at = t.done;
            }
        }
        let lane = self.pick_lane(sw, at);
        if self.lanes[lane] > at {
            at = self.lanes[lane];
        }
        let (start, outcome) = self.member_mut(sw).queue.submit(actions, at);
        let done = start + outcome.total;
        self.lanes[lane] = done;
        let m = self.member_mut(sw);
        m.ops += 1;
        m.wait_ns += start.since(now).as_nanos();
        m.service_ns += outcome.total.as_nanos();
        self.stats.submits += 1;
        self.stats.ops += actions.len() as u64;
        if hermes_telemetry::enabled() {
            hermes_telemetry::counter("fleet.submits", 1);
            hermes_telemetry::counter("fleet.ops", actions.len() as u64);
            hermes_telemetry::observe("fleet.dispatch_wait_ns", start.since(now).as_nanos());
        }
        (start, outcome, OpToken { done })
    }

    /// Stages one member's pieces: one coalesced `apply_batch` cut per
    /// member (default), or one submit per piece in the per-piece
    /// strawman mode. Returns the stage tokens.
    fn stage_member(
        &mut self,
        sw: SwitchId,
        batch: &[Rule],
        now: SimTime,
        ops: &mut Vec<PathOp>,
        tokens: &mut Vec<OpToken>,
    ) {
        if self.coalesce || batch.len() == 1 {
            let actions: Vec<ControlAction> =
                batch.iter().map(|r| ControlAction::Insert(*r)).collect();
            let (start, outcome, token) = self.submit_after(sw, &actions, now, &[]);
            record_stage_ops(sw, batch, start, &outcome, ops);
            tokens.push(token);
            if batch.len() > 1 {
                let shared = batch.len() as u64 - 1;
                self.stats.coalesced_pieces += shared;
                if hermes_telemetry::enabled() {
                    hermes_telemetry::counter("fleet.txn_coalesced_pieces", shared);
                }
            }
        } else {
            for r in batch {
                let action = [ControlAction::Insert(*r)];
                let (start, outcome, token) = self.submit_after(sw, &action, now, &[]);
                record_stage_ops(sw, std::slice::from_ref(r), start, &outcome, ops);
                tokens.push(token);
            }
        }
    }

    /// Installs a rule set along a path as a two-phase transaction.
    ///
    /// Phase 1 stages every member's pieces through the batched admission
    /// pipeline (members shard across lanes, so stages overlap; pieces
    /// sharing a member ride one cut under `coalesce`). A member fails
    /// staging when its control session is inside a crash window or any
    /// of its pieces did not become logically live. Phase 2 commits —
    /// the barrier over every stage token, so the transaction is ready
    /// only after its last piece — or rolls back: every member's pieces
    /// are deleted, with the deletes depending on the full stage barrier
    /// so they land after what they undo. Deletes on a still-down member
    /// retract the durable intent immediately (resync will not resurrect
    /// the rule) and the device-side removal rides the delete journal;
    /// [`tick_all`](Self::tick_all) re-drives any stragglers.
    pub fn install_path(&mut self, rules: &[(SwitchId, Rule)], now: SimTime) -> PathOutcome {
        let txn = self.next_txn;
        self.next_txn += 1;
        self.stats.txns += 1;
        let traced = hermes_telemetry::enabled();
        let span = hermes_telemetry::span_enter("fleet", "install_path", now.as_nanos());
        if traced {
            hermes_telemetry::counter("fleet.txns", 1);
        }
        let mut by_member: BTreeMap<SwitchId, Vec<Rule>> = BTreeMap::new();
        for (sw, r) in rules {
            by_member.entry(*sw).or_default().push(*r);
        }

        // Phase 1: stage on every member.
        let mut tokens = Vec::with_capacity(by_member.len());
        let mut ops = Vec::with_capacity(rules.len());
        let mut failed = Vec::new();
        for (sw, batch) in &by_member.clone() {
            self.stage_member(*sw, batch, now, &mut ops, &mut tokens);
            let plane = self.plane(*sw);
            let staged_ok = !plane.is_down()
                && batch
                    .iter()
                    .all(|r| plane.contains_rule(r.id).unwrap_or(true));
            if !staged_ok {
                failed.push(*sw);
            }
        }
        let stage_barrier = tokens
            .iter()
            .map(|t| t.done)
            .fold(now, SimTime::max);

        if failed.is_empty() {
            // Phase 2a: commit — nothing to write, the stage barrier *is*
            // the commit point.
            self.stats.txn_commits += 1;
            if traced {
                hermes_telemetry::counter("fleet.txn_commits", 1);
            }
            span.end(stage_barrier.as_nanos());
            return PathOutcome {
                txn,
                committed: true,
                ready: stage_barrier,
                failed,
                ops,
            };
        }

        // Phase 2b: roll back everywhere.
        self.stats.txn_rollbacks += 1;
        self.stats.txn_member_failures += failed.len() as u64;
        if traced {
            hermes_telemetry::counter("fleet.txn_rollbacks", 1);
            hermes_telemetry::counter("fleet.txn_member_failures", failed.len() as u64);
        }
        let mut ready = stage_barrier;
        let members: Vec<SwitchId> = by_member.keys().copied().collect();
        for sw in members {
            let ids: Vec<RuleId> = by_member[&sw].iter().map(|r| r.id).collect();
            if self.coalesce || ids.len() == 1 {
                let deletes: Vec<ControlAction> =
                    ids.iter().map(|id| ControlAction::Delete(*id)).collect();
                let (_, _, token) = self.submit_after(sw, &deletes, now, &tokens);
                if token.done > ready {
                    ready = token.done;
                }
            } else {
                for id in &ids {
                    let delete = [ControlAction::Delete(*id)];
                    let (_, _, token) = self.submit_after(sw, &delete, now, &tokens);
                    if token.done > ready {
                        ready = token.done;
                    }
                }
            }
            // A member mid-crash may not confirm the removal yet; park the
            // ids for the tick loop to re-drive after resync.
            let plane = self.plane(sw);
            let leftovers: Vec<RuleId> = ids
                .into_iter()
                .filter(|id| plane.contains_rule(*id) == Some(true))
                .collect();
            if !leftovers.is_empty() {
                self.pending_rollbacks.entry(sw).or_default().extend(leftovers);
            }
        }
        span.end(ready.as_nanos());
        PathOutcome {
            txn,
            committed: false,
            ready,
            failed,
            ops,
        }
    }

    /// Moves a batch of rules from one member to another through the
    /// batched pipeline — the [`Rebalancer`]'s executor for draining rule
    /// load off a hot member.
    ///
    /// The insert cut on `to` goes first; the delete cut on `from`
    /// depends on it, so the rules are never absent from both members.
    /// If `to` fails staging (down, or a rule verifiably missing) the
    /// move aborts: the partial landing on `to` is retracted (dependent
    /// deletes, stragglers parked for [`tick_all`](Self::tick_all)) and
    /// `from` keeps the load untouched.
    pub fn migrate_rules(
        &mut self,
        from: SwitchId,
        to: SwitchId,
        rules: &[Rule],
        now: SimTime,
    ) -> MigrateOutcome {
        assert!(from != to, "INVARIANT: migrations move load between distinct members");
        let traced = hermes_telemetry::enabled();
        let inserts: Vec<ControlAction> =
            rules.iter().map(|r| ControlAction::Insert(*r)).collect();
        let (_, _, tok_in) = self.submit_after(to, &inserts, now, &[]);
        let target = self.plane(to);
        let landed = !target.is_down()
            && rules
                .iter()
                .all(|r| target.contains_rule(r.id).unwrap_or(true));
        let ids: Vec<RuleId> = rules.iter().map(|r| r.id).collect();
        let deletes: Vec<ControlAction> =
            ids.iter().map(|id| ControlAction::Delete(*id)).collect();
        // Committed: clear the source; aborted: retract the partial
        // landing on the target. Either way the deletes depend on the
        // insert cut and stragglers ride the rollback re-drive loop.
        let victim = if landed { from } else { to };
        let (_, _, tok_del) = self.submit_after(victim, &deletes, now, &[tok_in]);
        let plane = self.plane(victim);
        let leftovers: Vec<RuleId> = ids
            .into_iter()
            .filter(|id| plane.contains_rule(*id) == Some(true))
            .collect();
        if !leftovers.is_empty() {
            self.pending_rollbacks.entry(victim).or_default().extend(leftovers);
        }
        if landed {
            self.stats.migrations += 1;
            self.stats.rules_moved += rules.len() as u64;
            if traced {
                hermes_telemetry::counter("fleet.rebalance.migrations", 1);
                hermes_telemetry::counter("fleet.rebalance.rules_moved", rules.len() as u64);
            }
        } else {
            self.stats.migrations_aborted += 1;
            if traced {
                hermes_telemetry::counter("fleet.rebalance.migrations_aborted", 1);
            }
        }
        MigrateOutcome {
            committed: landed,
            ready: tok_del.done,
        }
    }

    /// Periodic housekeeping across the fleet: ticks every member (Rule
    /// Manager migrations, crash-window reconnects) and re-drives any
    /// rollback deletes a crash window previously swallowed.
    pub fn tick_all(&mut self, now: SimTime) {
        for m in self.members.values_mut() {
            m.queue.plane_mut().tick(now);
        }
        if self.pending_rollbacks.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending_rollbacks);
        for (sw, ids) in pending {
            let retry: Vec<RuleId> = ids
                .into_iter()
                .filter(|id| self.plane(sw).contains_rule(*id) == Some(true))
                .collect();
            if retry.is_empty() {
                continue;
            }
            if self.plane(sw).is_down() {
                // Still inside the crash window: keep them parked.
                self.pending_rollbacks.entry(sw).or_default().extend(retry);
                continue;
            }
            self.stats.rollback_retries += retry.len() as u64;
            if hermes_telemetry::enabled() {
                hermes_telemetry::counter("fleet.rollback_retries", retry.len() as u64);
            }
            let deletes: Vec<ControlAction> =
                retry.iter().map(|id| ControlAction::Delete(*id)).collect();
            self.submit(sw, &deletes, now);
            let leftovers: Vec<RuleId> = retry
                .into_iter()
                .filter(|id| self.plane(sw).contains_rule(*id) == Some(true))
                .collect();
            if !leftovers.is_empty() {
                self.pending_rollbacks.entry(sw).or_default().extend(leftovers);
            }
        }
    }

    /// Ends the preload/warm-up phase fleet-wide: member state stays,
    /// time-dependent state (lane horizons, admission buckets, the
    /// per-member RIT aggregates) resets to the epoch.
    pub fn end_warmup_all(&mut self) {
        for m in self.members.values_mut() {
            m.queue.plane_mut().end_warmup();
            m.ops = 0;
            m.wait_ns = 0;
            m.service_ns = 0;
        }
        for lane in &mut self.lanes {
            *lane = SimTime::ZERO;
        }
    }
}

/// Stamps absolute completion times onto the staged pieces. The batched
/// admission pipeline preserves submission order, so outcomes zip with
/// the staged rules positionally.
fn record_stage_ops(
    sw: SwitchId,
    batch: &[Rule],
    start: SimTime,
    outcome: &BatchOutcome,
    ops: &mut Vec<PathOp>,
) {
    for (r, op) in batch.iter().zip(outcome.ops.iter()) {
        let op: &OpOutcome = op;
        ops.push(PathOp {
            switch: sw,
            id: r.id,
            done: start + op.completed_at,
            violated: op.violated,
        });
    }
}

/// Seed-mixing constant for the lane shuffle (keeps the assignment
/// stream distinct from every other stream derived from the same seed).
const LANE_SHUFFLE_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Seed-mixing constant for the scheduler tie-break permutation (its own
/// stream, so adding it never perturbs the home-lane assignment).
const LANE_ORDER_SALT: u64 = 0x5ca1_ab1e_0f1e_e75c;

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_baselines::{HermesPlane, RawSwitch};
    use hermes_core::prelude::{HermesConfig, HermesSwitch};
    use hermes_tcam::{CrashKind, SimDuration, SwitchModel};

    fn rule(id: u64) -> Rule {
        Rule::new(
            id,
            Ipv4Prefix::new(0x0a00_0000 | ((id as u32) << 8), 24).to_key(),
            Priority(10 + (id as u32 % 100)),
            Action::Forward(1),
        )
    }

    fn raw_fleet(n: usize, lanes: usize) -> Fleet<RawSwitch> {
        raw_fleet_sched(n, lanes, LaneSched::Pinned)
    }

    fn raw_fleet_sched(n: usize, lanes: usize, sched: LaneSched) -> Fleet<RawSwitch> {
        let members = (0..n)
            .map(|i| (i, RawSwitch::new(SwitchModel::pica8_p3290())))
            .collect();
        Fleet::new(
            members,
            FleetConfig {
                lanes,
                seed: 7,
                sched,
                ..FleetConfig::default()
            },
        )
    }

    fn hermes_fleet(n: usize, lanes: usize) -> Fleet<HermesPlane> {
        let members = (0..n)
            .map(|i| {
                let sw = HermesSwitch::new(SwitchModel::pica8_p3290(), HermesConfig::default())
                    .unwrap();
                (i, HermesPlane::new(sw))
            })
            .collect();
        Fleet::new(
            members,
            FleetConfig {
                lanes,
                seed: 7,
                ..FleetConfig::default()
            },
        )
    }

    #[test]
    fn zero_lanes_means_one_per_member() {
        let fleet = raw_fleet(5, 0);
        assert_eq!(fleet.lane_count(), 5);
        let mut lanes: Vec<usize> = (0..5).map(|sw| fleet.lane_of(sw)).collect();
        lanes.sort_unstable();
        assert_eq!(lanes, vec![0, 1, 2, 3, 4], "dedicated lane per member");
    }

    #[test]
    fn lane_assignment_is_deterministic_and_balanced() {
        let a = raw_fleet(8, 3);
        let b = raw_fleet(8, 3);
        let la: Vec<usize> = (0..8).map(|sw| a.lane_of(sw)).collect();
        let lb: Vec<usize> = (0..8).map(|sw| b.lane_of(sw)).collect();
        assert_eq!(la, lb, "same seed, same shuffle");
        for lane in 0..3 {
            let n = la.iter().filter(|&&l| l == lane).count();
            assert!((2..=3).contains(&n), "lane {lane} holds {n} members");
        }
    }

    #[test]
    fn lane_assignment_helper_matches_fleet() {
        let fleet = raw_fleet(8, 3);
        let helper = lane_assignment(8, 3, 7);
        let actual: Vec<usize> = (0..8).map(|sw| fleet.lane_of(sw)).collect();
        assert_eq!(helper, actual, "exported helper mirrors Fleet::new");
    }

    #[test]
    fn single_lane_serializes_across_switches() {
        let mut fleet = raw_fleet(2, 1);
        let now = SimTime::ZERO;
        let (s0, o0, t0) = fleet.submit_after(0, &[ControlAction::Insert(rule(1))], now, &[]);
        assert_eq!(s0, now);
        assert!(o0.total > SimDuration::ZERO);
        let (s1, _, _) = fleet.submit_after(1, &[ControlAction::Insert(rule(2))], now, &[]);
        assert_eq!(s1, t0.done, "second switch waits for the shared lane");
    }

    #[test]
    fn dedicated_lanes_overlap_across_switches() {
        let mut fleet = raw_fleet(2, 0);
        let now = SimTime::ZERO;
        let (s0, _, _) = fleet.submit_after(0, &[ControlAction::Insert(rule(1))], now, &[]);
        let (s1, _, _) = fleet.submit_after(1, &[ControlAction::Insert(rule(2))], now, &[]);
        assert_eq!(s0, now);
        assert_eq!(s1, now, "different members on different lanes overlap");
    }

    #[test]
    fn dependencies_delay_dependent_cuts() {
        let mut fleet = raw_fleet(2, 0);
        let now = SimTime::ZERO;
        let (_, _, t0) = fleet.submit_after(0, &[ControlAction::Insert(rule(1))], now, &[]);
        let (s1, _, _) = fleet.submit_after(1, &[ControlAction::Insert(rule(2))], now, &[t0]);
        assert_eq!(s1, t0.done, "dependent batch starts after its dependency");
    }

    #[test]
    fn weighted_sched_fills_idle_lanes() {
        // Two members sharing a home lane under the pinned assignment:
        // back-to-back ops serialize when pinned, overlap when the
        // weighted scheduler sends the second op to the idle lane.
        let shared = |f: &Fleet<RawSwitch>| {
            let ids = f.switch_ids();
            for i in 0..ids.len() {
                for j in i + 1..ids.len() {
                    if f.lane_of(ids[i]) == f.lane_of(ids[j]) {
                        return (ids[i], ids[j]);
                    }
                }
            }
            panic!("4 members over 2 lanes must share one");
        };
        let mut pinned = raw_fleet_sched(4, 2, LaneSched::Pinned);
        let (a, b) = shared(&pinned);
        let now = SimTime::ZERO;
        pinned.submit(a, &[ControlAction::Insert(rule(1))], now);
        let (sp, _, _) = pinned.submit_after(b, &[ControlAction::Insert(rule(2))], now, &[]);
        assert!(sp > now, "pinned: shared home lane serializes");

        let mut weighted = raw_fleet_sched(4, 2, LaneSched::Weighted);
        weighted.submit(a, &[ControlAction::Insert(rule(1))], now);
        let (sw, _, _) = weighted.submit_after(b, &[ControlAction::Insert(rule(2))], now, &[]);
        assert_eq!(sw, now, "weighted: second op runs on the idle lane");
        assert!(weighted.stats().steals >= 1, "the off-home dispatch is a steal");
    }

    #[test]
    fn worksteal_keeps_home_lane_when_free() {
        let mut fleet = raw_fleet_sched(4, 2, LaneSched::WorkSteal);
        let now = SimTime::ZERO;
        let ids = fleet.switch_ids();
        // With every lane idle, ops stay home: no steals.
        for (i, sw) in ids.iter().enumerate() {
            let done = fleet.horizon() + SimDuration::from_ms(50.0);
            fleet.submit(*sw, &[ControlAction::Insert(rule(i as u64 + 1))], done.max(now));
        }
        assert_eq!(fleet.stats().steals, 0, "idle home lanes are never stolen from");
    }

    #[test]
    fn worksteal_moves_work_off_a_busy_home_lane() {
        let mut fleet = raw_fleet_sched(4, 2, LaneSched::WorkSteal);
        let ids = fleet.switch_ids();
        let (a, b) = {
            let mut pair = None;
            for i in 0..ids.len() {
                for j in i + 1..ids.len() {
                    if fleet.lane_of(ids[i]) == fleet.lane_of(ids[j]) {
                        pair = Some((ids[i], ids[j]));
                    }
                }
            }
            pair.expect("4 members over 2 lanes must share one")
        };
        let now = SimTime::ZERO;
        fleet.submit(a, &[ControlAction::Insert(rule(1))], now);
        let (s, _, _) = fleet.submit_after(b, &[ControlAction::Insert(rule(2))], now, &[]);
        assert_eq!(s, now, "steal: the idle lane runs the op immediately");
        assert_eq!(fleet.stats().steals, 1);
    }

    #[test]
    fn sched_modes_are_identical_on_dedicated_lanes() {
        // lanes = 0 gives every member its own lane; scheduling must be a
        // no-op so the phase-1 (PR 8) timing is bit-preserved.
        let drive = |sched: LaneSched| {
            let mut fleet = raw_fleet_sched(5, 0, sched);
            let mut now = SimTime::ZERO;
            for i in 0..40u64 {
                let sw = (i as usize * 7) % 5;
                now += SimDuration::from_us(3.0);
                fleet.submit(sw, &[ControlAction::Insert(rule(i + 1))], now);
            }
            (fleet.horizon(), fleet.stats())
        };
        let pinned = drive(LaneSched::Pinned);
        let weighted = drive(LaneSched::Weighted);
        let steal = drive(LaneSched::WorkSteal);
        assert_eq!(pinned, weighted);
        assert_eq!(pinned, steal);
        assert_eq!(pinned.1.steals, 0);
    }

    #[test]
    fn install_path_commits_on_healthy_members() {
        let mut fleet = hermes_fleet(3, 2);
        let pieces: Vec<(SwitchId, Rule)> = (0..3).map(|sw| (sw, rule(sw as u64 + 1))).collect();
        let out = fleet.install_path(&pieces, SimTime::ZERO);
        assert!(out.committed);
        assert!(out.failed.is_empty());
        assert_eq!(out.ops.len(), 3);
        for (sw, r) in &pieces {
            assert_eq!(fleet.plane(*sw).contains_rule(r.id), Some(true));
        }
        assert!(out.ops.iter().all(|op| op.done <= out.ready));
        assert_eq!(fleet.stats().txn_commits, 1);
    }

    #[test]
    fn install_path_rolls_back_everywhere_on_a_down_member() {
        let mut fleet = hermes_fleet(3, 2);
        fleet
            .plane_mut(1)
            .inject_crash(CrashKind::Disconnect, 5, 2, SimTime::ZERO);
        assert!(fleet.is_down(1));
        let pieces: Vec<(SwitchId, Rule)> = (0..3).map(|sw| (sw, rule(sw as u64 + 1))).collect();
        let out = fleet.install_path(&pieces, SimTime::ZERO);
        assert!(!out.committed);
        assert_eq!(out.failed, vec![1]);
        for (sw, r) in &pieces {
            assert_eq!(
                fleet.plane(*sw).contains_rule(r.id),
                Some(false),
                "rollback retracts the piece on member {sw}"
            );
        }
        assert_eq!(fleet.stats().txn_rollbacks, 1);
        // The crash window eventually closes under ticks and the fleet
        // carries no rollback debt.
        let mut now = SimTime::ZERO;
        for _ in 0..64 {
            now += SimDuration::from_ms(5.0);
            fleet.tick_all(now);
            if !fleet.is_down(1) {
                break;
            }
        }
        assert!(!fleet.is_down(1), "member rejoined after resync");
        assert_eq!(fleet.pending_rollback_len(), 0);
    }

    #[test]
    fn shared_member_pieces_coalesce_into_one_cut() {
        let mut fleet = hermes_fleet(2, 1);
        let before = fleet.stats().submits;
        // Three pieces, two sharing member 0.
        let pieces = vec![(0, rule(1)), (0, rule(2)), (1, rule(3))];
        let out = fleet.install_path(&pieces, SimTime::ZERO);
        assert!(out.committed);
        assert_eq!(out.ops.len(), 3);
        let stats = fleet.stats();
        assert_eq!(stats.submits - before, 2, "one cut per member, not per piece");
        assert_eq!(stats.coalesced_pieces, 1, "the shared piece rode member 0's cut");
    }

    #[test]
    fn per_piece_mode_submits_every_piece_alone() {
        let members = (0..2)
            .map(|i| {
                let sw = HermesSwitch::new(SwitchModel::pica8_p3290(), HermesConfig::default())
                    .unwrap();
                (i, HermesPlane::new(sw))
            })
            .collect();
        let mut fleet = Fleet::new(
            members,
            FleetConfig {
                lanes: 1,
                seed: 7,
                coalesce: false,
                ..FleetConfig::default()
            },
        );
        let pieces = vec![(0usize, rule(1)), (0, rule(2)), (1, rule(3))];
        let out = fleet.install_path(&pieces, SimTime::ZERO);
        assert!(out.committed);
        let stats = fleet.stats();
        assert_eq!(stats.submits, 3, "strawman mode pays one submit per piece");
        assert_eq!(stats.coalesced_pieces, 0);
        for (sw, r) in &pieces {
            assert_eq!(fleet.plane(*sw).contains_rule(r.id), Some(true));
        }
    }

    #[test]
    fn migrate_rules_moves_load_between_members() {
        let mut fleet = hermes_fleet(2, 2);
        let rules: Vec<Rule> = (1..=5).map(rule).collect();
        let inserts: Vec<ControlAction> =
            rules.iter().map(|r| ControlAction::Insert(*r)).collect();
        fleet.submit(0, &inserts, SimTime::ZERO);
        let out = fleet.migrate_rules(0, 1, &rules, SimTime::from_secs(1.0));
        assert!(out.committed);
        let mut now = SimTime::from_secs(1.0);
        for _ in 0..8 {
            now += SimDuration::from_ms(5.0);
            fleet.tick_all(now);
        }
        for r in &rules {
            assert_eq!(fleet.plane(1).contains_rule(r.id), Some(true), "landed on target");
            assert_eq!(fleet.plane(0).contains_rule(r.id), Some(false), "cleared from source");
        }
        let stats = fleet.stats();
        assert_eq!(stats.migrations, 1);
        assert_eq!(stats.rules_moved, 5);
    }

    #[test]
    fn migrate_rules_aborts_onto_a_down_target() {
        let mut fleet = hermes_fleet(2, 2);
        let rules: Vec<Rule> = (1..=3).map(rule).collect();
        let inserts: Vec<ControlAction> =
            rules.iter().map(|r| ControlAction::Insert(*r)).collect();
        fleet.submit(0, &inserts, SimTime::ZERO);
        fleet
            .plane_mut(1)
            .inject_crash(CrashKind::Disconnect, 5, 2, SimTime::ZERO);
        let out = fleet.migrate_rules(0, 1, &rules, SimTime::from_ms(1.0));
        assert!(!out.committed, "a down target aborts the move");
        assert_eq!(fleet.stats().migrations_aborted, 1);
        // The source keeps the load; the partial landing on the target is
        // retracted once the crash window closes.
        let mut now = SimTime::from_ms(1.0);
        for _ in 0..64 {
            now += SimDuration::from_ms(5.0);
            fleet.tick_all(now);
            if !fleet.is_down(1) {
                break;
            }
        }
        for _ in 0..8 {
            now += SimDuration::from_ms(5.0);
            fleet.tick_all(now);
        }
        for r in &rules {
            assert_eq!(fleet.plane(0).contains_rule(r.id), Some(true), "source untouched");
            assert_eq!(fleet.plane(1).contains_rule(r.id), Some(false), "target retracted");
        }
        assert_eq!(fleet.pending_rollback_len(), 0);
    }

    #[test]
    fn member_health_reports_backlog_and_rit() {
        let mut fleet = hermes_fleet(2, 2);
        let rules: Vec<ControlAction> = (1..=20)
            .map(|i| ControlAction::Insert(rule(i)))
            .collect();
        fleet.submit(0, &rules, SimTime::ZERO);
        let health = fleet.member_health(SimTime::ZERO);
        assert_eq!(health.len(), 2);
        let h0 = health.iter().find(|h| h.id == 0).unwrap();
        let h1 = health.iter().find(|h| h.id == 1).unwrap();
        assert!(h0.backlog_ns > 0, "member 0 has queued work");
        assert!(h0.mean_rit_ns > 0);
        assert!(h0.occupancy >= 20);
        assert_eq!(h1.backlog_ns, 0, "member 1 is idle");
        assert!(!h0.is_down && !h1.is_down);
    }

    #[test]
    fn end_warmup_resets_lane_horizons() {
        let mut fleet = raw_fleet(2, 1);
        fleet.submit(0, &[ControlAction::Insert(rule(1))], SimTime::ZERO);
        assert!(fleet.horizon() > SimTime::ZERO);
        fleet.end_warmup_all();
        assert_eq!(fleet.horizon(), SimTime::ZERO);
        let health = fleet.member_health(SimTime::ZERO);
        assert!(health.iter().all(|h| h.mean_rit_ns == 0), "RIT aggregates reset");
    }

    #[test]
    fn raw_planes_always_commit() {
        // Raw switches expose no membership introspection and no fault
        // domain: transactions over them always commit.
        let mut fleet = raw_fleet(2, 1);
        let pieces: Vec<(SwitchId, Rule)> = (0..2).map(|sw| (sw, rule(sw as u64 + 1))).collect();
        let out = fleet.install_path(&pieces, SimTime::ZERO);
        assert!(out.committed);
        assert_eq!(fleet.occupancy(), 2);
    }
}
