//! TE-driven fleet rebalancing (DESIGN.md §13, phase 2).
//!
//! The phase-1 fleet placed path transactions wherever the TE layer drew
//! them and left rule load wherever flows happened to land it. This
//! module closes the loop: [`Rebalancer`] turns per-member
//! [`MemberHealth`] snapshots (occupancy, control-channel backlog, mean
//! modeled RIT, crash/resync history) into a scalar **pressure score**
//! per member, then
//!
//! * **steers** new `install_path` transactions by picking, among a set
//!   of candidate paths, the one whose worst member carries the least
//!   pressure ([`Rebalancer::pick_slice`]) — crash-looping or backlogged
//!   switches stop attracting new state;
//! * **plans migrations** off members whose pressure exceeds the fleet
//!   mean by [`RebalancePolicy::hot_factor`], pairing each hot member
//!   with the coldest healthy member
//!   ([`Rebalancer::plan_moves`]) — the caller executes the move through
//!   `Fleet::migrate_rules`, which keeps the rules continuously
//!   installed somewhere.
//!
//! Scoring is pure integer/float arithmetic over the snapshot — no RNG,
//! no hidden state — so the same health history always yields the same
//! placement (R1 determinism). FDRC (PAPERS.md) motivates reacting to
//! observed skew rather than static assignment; the weights follow the
//! Sadeh et al. weighted-load-balancing line: load terms are additive
//! and fault terms dominate, so a crash-looping member loses placement
//! even when momentarily idle.

use crate::SwitchId;
use std::collections::BTreeMap;

/// Per-member health snapshot — the scoring input, produced by
/// `Fleet::member_health`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemberHealth {
    /// Member id.
    pub id: SwitchId,
    /// The member's home lane.
    pub lane: usize,
    /// Entries installed on the member.
    pub occupancy: usize,
    /// Unserved control-channel backlog at the snapshot instant, ns.
    pub backlog_ns: u64,
    /// Mean modeled rule-installation time (dispatch wait + service), ns.
    pub mean_rit_ns: u64,
    /// Whether the control session is inside a crash window right now.
    pub is_down: bool,
    /// Crashes detected over the member's lifetime.
    pub crashes: u64,
    /// Resyncs completed over the member's lifetime.
    pub resyncs: u64,
}

/// Scoring weights and migration limits. Defaults are tuned for the
/// netsim scale (tens of switches, hundreds of rules per member): load
/// terms are comparable to each other, a single crash outweighs any
/// plausible load signal, and a live crash window is effectively a veto.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RebalancePolicy {
    /// Pressure per installed entry.
    pub occupancy_weight: f64,
    /// Pressure per microsecond of control-channel backlog.
    pub backlog_us_weight: f64,
    /// Pressure per microsecond of mean RIT.
    pub rit_us_weight: f64,
    /// Pressure per detected crash (crash-looping members repel load).
    pub crash_weight: f64,
    /// Flat pressure while the member is inside a crash window.
    pub down_penalty: f64,
    /// A member is *hot* when its score exceeds the fleet mean by this
    /// factor (and the fleet has a non-trivial mean).
    pub hot_factor: f64,
    /// Migrations planned per rebalance pass (bounds control-plane churn
    /// per TE tick).
    pub max_moves: usize,
}

impl Default for RebalancePolicy {
    fn default() -> Self {
        RebalancePolicy {
            occupancy_weight: 1.0,
            backlog_us_weight: 2.0,
            rit_us_weight: 0.5,
            crash_weight: 250.0,
            down_penalty: 10_000.0,
            hot_factor: 1.5,
            max_moves: 2,
        }
    }
}

/// Rebalancing decision counters (mirrored into `fleet.rebalance.*`
/// telemetry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RebalanceStats {
    /// Candidate-set placements decided by [`Rebalancer::pick_slice`].
    pub picks: u64,
    /// Picks that chose other than the first candidate — the default
    /// placement was overruled by member health.
    pub steered: u64,
    /// Migration pairs planned by [`Rebalancer::plan_moves`].
    pub moves_planned: u64,
}

/// Deterministic member scorer and placement policy.
#[derive(Clone, Debug, Default)]
pub struct Rebalancer {
    policy: RebalancePolicy,
    stats: RebalanceStats,
}

impl Rebalancer {
    /// Builds a rebalancer with the given policy.
    pub fn new(policy: RebalancePolicy) -> Self {
        Rebalancer {
            policy,
            stats: RebalanceStats::default(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &RebalancePolicy {
        &self.policy
    }

    /// Decision counters.
    pub fn stats(&self) -> RebalanceStats {
        self.stats
    }

    /// Pressure score of one member: a weighted sum of its load terms
    /// plus its fault history. Monotone in every input.
    pub fn score(&self, h: &MemberHealth) -> f64 {
        let p = &self.policy;
        let mut s = h.occupancy as f64 * p.occupancy_weight
            + h.backlog_ns as f64 / 1_000.0 * p.backlog_us_weight
            + h.mean_rit_ns as f64 / 1_000.0 * p.rit_us_weight
            + h.crashes as f64 * p.crash_weight;
        if h.is_down {
            s += p.down_penalty;
        }
        s
    }

    /// Scores every member in one pass.
    pub fn scores(&self, health: &[MemberHealth]) -> BTreeMap<SwitchId, f64> {
        health.iter().map(|h| (h.id, self.score(h))).collect()
    }

    /// Picks the best candidate member set (e.g. the switch list of one
    /// candidate path): primarily the set whose **worst** member carries
    /// the least pressure — a path is as healthy as its sickest switch —
    /// with total pressure breaking worst-member ties (candidate paths to
    /// one destination often share the bottleneck switch; the tail still
    /// distinguishes them). Exact ties keep the earliest candidate, and
    /// members missing from `scores` count as zero pressure, so with
    /// uniform health the first candidate (the TE layer's default draw)
    /// always wins: steering only activates on observed skew.
    pub fn pick_slice(
        &mut self,
        candidates: &[Vec<SwitchId>],
        scores: &BTreeMap<SwitchId, f64>,
    ) -> usize {
        assert!(!candidates.is_empty(), "INVARIANT: pick_slice needs a candidate");
        let pressure = |set: &[SwitchId]| -> (f64, f64) {
            let mut worst = 0.0_f64;
            let mut total = 0.0_f64;
            for id in set {
                let s = scores.get(id).copied().unwrap_or(0.0);
                worst = worst.max(s);
                total += s;
            }
            (worst, total)
        };
        let mut best = 0;
        let mut best_p = pressure(&candidates[0]);
        for (i, cand) in candidates.iter().enumerate().skip(1) {
            let p = pressure(cand);
            if p.0 < best_p.0 || (p.0 == best_p.0 && p.1 < best_p.1) {
                best = i;
                best_p = p;
            }
        }
        self.stats.picks += 1;
        if hermes_telemetry::enabled() {
            hermes_telemetry::counter("fleet.rebalance.picks", 1);
        }
        if best != 0 {
            self.stats.steered += 1;
            if hermes_telemetry::enabled() {
                hermes_telemetry::counter("fleet.rebalance.steered", 1);
            }
        }
        best
    }

    /// Plans up to `max_moves` migrations `(hot, cold)`: healthy members
    /// scoring above `hot_factor ×` the healthy-fleet mean drain toward
    /// the least-pressured healthy members. Down members are out of the
    /// pass entirely — a migration needs a cooperative source, and their
    /// `down_penalty` would otherwise inflate the mean and mask genuine
    /// load skew (steering already shields them from *new* load). Hot
    /// members are taken hottest first; each move gets its own cold
    /// target (coldest first, never a member already involved in this
    /// pass), so a single pass never funnels the whole fleet's load onto
    /// one target. Returns an empty plan when nothing is hot or no
    /// healthy target exists.
    pub fn plan_moves(&mut self, health: &[MemberHealth]) -> Vec<(SwitchId, SwitchId)> {
        let scored: Vec<(SwitchId, f64)> = health
            .iter()
            .filter(|h| !h.is_down)
            .map(|h| (h.id, self.score(h)))
            .collect();
        if scored.len() < 2 {
            return Vec::new();
        }
        let mean = scored.iter().map(|(_, s)| s).sum::<f64>() / scored.len() as f64;
        if mean <= 0.0 {
            return Vec::new();
        }
        let threshold = mean * self.policy.hot_factor;
        // Hottest first; ties broken by id (scored is already in id order).
        let mut hot: Vec<(SwitchId, f64)> = scored
            .iter()
            .filter(|(_, s)| *s > threshold)
            .copied()
            .collect();
        hot.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        // Coldest first.
        let mut cold: Vec<(SwitchId, f64)> = scored.clone();
        cold.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut used: Vec<SwitchId> = Vec::new();
        let mut plan = Vec::new();
        for (hot_id, hot_score) in hot.into_iter().take(self.policy.max_moves) {
            let target = cold.iter().find(|(id, s)| {
                *id != hot_id && !used.contains(id) && *s < hot_score
            });
            if let Some((cold_id, _)) = target {
                used.push(hot_id);
                used.push(*cold_id);
                plan.push((hot_id, *cold_id));
            }
        }
        self.stats.moves_planned += plan.len() as u64;
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn health(id: SwitchId, occupancy: usize) -> MemberHealth {
        MemberHealth {
            id,
            lane: 0,
            occupancy,
            backlog_ns: 0,
            mean_rit_ns: 0,
            is_down: false,
            crashes: 0,
            resyncs: 0,
        }
    }

    #[test]
    fn score_is_monotone_in_load_and_faults() {
        let r = Rebalancer::default();
        let base = health(0, 10);
        let loaded = MemberHealth { occupancy: 50, ..base };
        let backlogged = MemberHealth { backlog_ns: 500_000, ..base };
        let crashed = MemberHealth { crashes: 1, ..base };
        let down = MemberHealth { is_down: true, ..base };
        let s = |h: &MemberHealth| r.score(h);
        assert!(s(&loaded) > s(&base));
        assert!(s(&backlogged) > s(&base));
        assert!(s(&crashed) > s(&loaded), "one crash outweighs load skew");
        assert!(s(&down) > s(&crashed), "a live crash window dominates everything");
    }

    #[test]
    fn pick_slice_keeps_the_default_under_uniform_health() {
        let mut r = Rebalancer::default();
        let scores = r.scores(&[health(0, 10), health(1, 10), health(2, 10), health(3, 10)]);
        let pick = r.pick_slice(&[vec![0, 1], vec![2, 3]], &scores);
        assert_eq!(pick, 0, "ties keep the TE layer's default draw");
        assert_eq!(r.stats().picks, 1);
        assert_eq!(r.stats().steered, 0);
    }

    #[test]
    fn pick_slice_steers_away_from_a_crash_looping_member() {
        let mut r = Rebalancer::default();
        let sick = MemberHealth { crashes: 4, ..health(1, 10) };
        let scores = r.scores(&[health(0, 10), sick, health(2, 10), health(3, 10)]);
        let pick = r.pick_slice(&[vec![0, 1], vec![2, 3]], &scores);
        assert_eq!(pick, 1, "the path through the crash-looper loses");
        assert_eq!(r.stats().steered, 1);
    }

    #[test]
    fn pick_slice_judges_a_path_by_its_worst_member() {
        let mut r = Rebalancer::default();
        // Candidate 0 has the lower total but contains the single worst
        // member; candidate 1 wins.
        let scores = r.scores(&[
            health(0, 0),
            MemberHealth { occupancy: 100, ..health(1, 0) },
            health(2, 30),
            health(3, 30),
        ]);
        let pick = r.pick_slice(&[vec![0, 1], vec![2, 3]], &scores);
        assert_eq!(pick, 1);
    }

    #[test]
    fn plan_moves_pairs_hot_with_cold() {
        let mut r = Rebalancer::default();
        let fleet = [
            health(0, 200),
            health(1, 10),
            health(2, 10),
            health(3, 10),
        ];
        let plan = r.plan_moves(&fleet);
        assert_eq!(plan, vec![(0, 1)], "hottest drains to the coldest");
        assert_eq!(r.stats().moves_planned, 1);
    }

    #[test]
    fn plan_moves_skips_down_targets_and_bounds_churn() {
        let mut r = Rebalancer::new(RebalancePolicy {
            max_moves: 1,
            hot_factor: 1.2,
            ..RebalancePolicy::default()
        });
        let fleet = [
            health(0, 300),
            health(1, 280),
            MemberHealth { is_down: true, ..health(2, 0) },
            health(3, 5),
        ];
        let plan = r.plan_moves(&fleet);
        assert_eq!(plan.len(), 1, "two members are hot but max_moves bounds the pass");
        let (hot, cold) = plan[0];
        assert_eq!(hot, 0, "hottest member drains first");
        assert_eq!(cold, 3, "the down member never receives load");
    }

    #[test]
    fn plan_moves_is_empty_when_balanced() {
        let mut r = Rebalancer::default();
        let fleet = [health(0, 20), health(1, 22), health(2, 18)];
        assert!(r.plan_moves(&fleet).is_empty(), "no member is hot");
        let empty: [MemberHealth; 0] = [];
        assert!(r.plan_moves(&empty).is_empty());
        assert!(r.plan_moves(&[health(0, 50)]).is_empty(), "nowhere to move");
    }

    #[test]
    fn scoring_is_deterministic() {
        let r1 = Rebalancer::default();
        let r2 = Rebalancer::default();
        let fleet = [
            MemberHealth { backlog_ns: 123_456, mean_rit_ns: 9_876, crashes: 2, ..health(0, 77) },
            health(1, 3),
        ];
        assert_eq!(r1.scores(&fleet), r2.scores(&fleet));
    }
}
