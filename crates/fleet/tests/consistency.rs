//! Cross-switch consistency oracle for the fleet controller.
//!
//! Random multi-switch workloads — background inserts/deletes, two-phase
//! path transactions (with duplicate-member pieces so per-member
//! coalescing engages), rebalance migrations, per-op fault plans and
//! injected switch crashes — driven through a [`Fleet`] of Hermes planes
//! must satisfy, once the faults clear and every member quiesces:
//!
//! 1. **Path atomicity**: every committed transaction's pieces are live on
//!    every member; every rolled-back transaction left no piece anywhere.
//! 2. **Flat equivalence**: each member's table classifies identically to
//!    a flat priority-ordered table driven in lockstep with the acked
//!    operations (the PR 5 sequential oracle, per member).
//!
//! The property is quantified over every lane scheduler (pinned, weighted,
//! work-stealing) and both commit shapes (coalesced per-member cuts and
//! the per-piece strawman): scheduling and batching decide *when* ops run,
//! never *what* state they leave behind.

use hermes_baselines::{ControlPlane, HermesPlane};
use hermes_core::prelude::{HermesConfig, HermesSwitch};
use hermes_fleet::{Fleet, FleetConfig, LaneSched, SwitchId};
use hermes_rules::fields::DST_SHIFT;
use hermes_rules::prelude::*;
use hermes_tcam::{
    CrashKind, FaultPlan, LookupResult, PlacementStrategy, SimDuration, SimTime, SwitchModel,
    TcamTable,
};
use hermes_util::rng::rngs::StdRng;
use hermes_util::rng::{Rng, SeedableRng};
use std::collections::BTreeMap;

const MEMBERS: usize = 4;

fn pkt(addr: u32) -> u128 {
    (addr as u128) << DST_SHIFT
}

fn action_of(result: LookupResult) -> Option<Action> {
    match result {
        LookupResult::Matched { rule, .. } => Some(rule.action),
        _ => None,
    }
}

/// Rule whose action is a pure function of its priority (equal priority ⇒
/// equal action keeps the flat oracle unambiguous), clustered into 10/8 so
/// overlaps and partitioned rewrites are common.
fn gen_rule(rng: &mut StdRng, id: u64) -> Rule {
    let len = rng.gen_range(8..=28);
    let addr = 0x0a00_0000u32 | rng.gen_range(0..1u32 << 24);
    let prio = rng.gen_range(1..40u32);
    Rule::new(
        id,
        Ipv4Prefix::new(addr, len).to_key(),
        Priority(prio),
        Action::Forward(prio % 5 + 1),
    )
}

hermes_util::check! {
    #![cases = 256]

    fn path_txns_are_atomic_and_members_match_flat_oracle(
        workload_seed in hermes_util::check::arb::<u64>(),
        fault_seed in hermes_util::check::arb::<u64>(),
        lanes in hermes_util::check::range(1usize..5),
        sched_mode in hermes_util::check::range(0usize..3),
        coalesce_mode in hermes_util::check::range(0usize..2),
    ) {
        let mut rng = StdRng::seed_from_u64(workload_seed);
        let sched = match sched_mode {
            0 => LaneSched::Pinned,
            1 => LaneSched::Weighted,
            _ => LaneSched::WorkSteal,
        };
        let config = HermesConfig {
            rate_limit: Some(f64::INFINITY),
            ..Default::default()
        };
        let members: Vec<(SwitchId, HermesPlane)> = (0..MEMBERS)
            .map(|i| {
                let mut sw =
                    HermesSwitch::new(SwitchModel::pica8_p3290(), config.clone()).unwrap();
                // Per-member fault plan: write failures, silent drops,
                // latency spikes, outage windows — all seed-derived.
                sw.install_fault_plan(Some(FaultPlan::seeded(
                    fault_seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                )));
                (i, HermesPlane::new(sw))
            })
            .collect();
        let mut fleet = Fleet::new(
            members,
            FleetConfig {
                lanes,
                seed: workload_seed,
                sched,
                coalesce: coalesce_mode == 0,
            },
        );

        // Per-member flat lockstep oracle of the acked operations.
        let mut oracles: Vec<TcamTable> = (0..MEMBERS)
            .map(|_| TcamTable::new(1 << 14, PlacementStrategy::PackedLow))
            .collect();
        // Background rules currently live, per member.
        let mut live: BTreeMap<SwitchId, Vec<Rule>> = BTreeMap::new();
        // Every path transaction: (pieces, committed).
        let mut txns: Vec<(Vec<(SwitchId, Rule)>, bool)> = Vec::new();

        let mut next_id = 0u64;
        let mut now = SimTime::ZERO;
        let mut crash_index = 0u64;
        let ops = rng.gen_range(20..60);

        for _ in 0..ops {
            now += SimDuration::from_ms(rng.gen_range(0.1..5.0));
            let roll: f64 = rng.gen();
            if roll < 0.35 {
                // Background single-rule insert on a random member.
                let sw = rng.gen_range(0..MEMBERS);
                let r = gen_rule(&mut rng, next_id);
                next_id += 1;
                fleet.submit(sw, &[ControlAction::Insert(r)], now);
                // Only acked inserts (deferred ones included) enter the
                // oracle; a permanent device failure rolled the op back.
                if fleet.plane(sw).contains_rule(r.id) == Some(true) {
                    oracles[sw].insert(r).unwrap();
                    live.entry(sw).or_default().push(r);
                }
            } else if roll < 0.5 {
                // Background delete of a live rule.
                let candidates: Vec<SwitchId> = live
                    .iter()
                    .filter(|(_, v)| !v.is_empty())
                    .map(|(sw, _)| *sw)
                    .collect();
                if let Some(&sw) = candidates.first() {
                    let rules = live.get_mut(&sw).unwrap();
                    let i = rng.gen_range(0..rules.len());
                    let r = rules.swap_remove(i);
                    fleet.submit(sw, &[ControlAction::Delete(r.id)], now);
                    if fleet.plane(sw).contains_rule(r.id) == Some(false) {
                        oracles[sw].delete(r.id).unwrap();
                    } else {
                        rules.push(r);
                    }
                }
            } else if roll < 0.78 {
                // Two-phase path transaction across a random member slice.
                // Spans beyond MEMBERS wrap around, so a single member can
                // carry several pieces of one transaction — the shape the
                // per-member coalescer folds into one cut.
                let span = rng.gen_range(2..=MEMBERS + 2);
                let first = rng.gen_range(0..MEMBERS);
                let pieces: Vec<(SwitchId, Rule)> = (0..span)
                    .map(|k| {
                        let sw = (first + k) % MEMBERS;
                        let r = gen_rule(&mut rng, next_id);
                        next_id += 1;
                        (sw, r)
                    })
                    .collect();
                let out = fleet.install_path(&pieces, now);
                if out.committed {
                    for (sw, r) in &pieces {
                        oracles[*sw].insert(*r).unwrap();
                    }
                }
                txns.push((pieces, out.committed));
            } else if roll < 0.86 {
                // Rebalance migration: drain a batch of live background
                // rules onto another member through the batched pipeline.
                // Committed moves update both oracles; aborted moves leave
                // the source's load (and its oracle) untouched — the fleet
                // retracts the partial landing itself.
                let sources: Vec<SwitchId> = live
                    .iter()
                    .filter(|(_, v)| !v.is_empty())
                    .map(|(sw, _)| *sw)
                    .collect();
                if let Some(&from) = sources.first() {
                    let to = (from + 1 + rng.gen_range(0..MEMBERS - 1)) % MEMBERS;
                    let batch: Vec<Rule> = {
                        let rules = live.get_mut(&from).unwrap();
                        let take = rng.gen_range(1..=rules.len().min(3));
                        rules[..take].to_vec()
                    };
                    let out = fleet.migrate_rules(from, to, &batch, now);
                    if out.committed {
                        live.get_mut(&from).unwrap().drain(..batch.len());
                        for r in &batch {
                            oracles[from].delete(r.id).unwrap();
                            oracles[to].insert(*r).unwrap();
                        }
                        live.entry(to).or_default().extend(batch);
                    }
                }
            } else if roll < 0.9 {
                // Crash a random member: wipe → partial → disconnect.
                let sw = rng.gen_range(0..MEMBERS);
                let kind = match crash_index % 3 {
                    0 => CrashKind::Wipe,
                    1 => CrashKind::Partial { survivor_prob: 0.5 },
                    _ => CrashKind::Disconnect,
                };
                fleet.plane_mut(sw).inject_crash(
                    kind,
                    fault_seed ^ crash_index.wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    1,
                    now,
                );
                crash_index += 1;
            } else {
                fleet.tick_all(now);
            }
        }

        // Quiescence: faults clear; ticks drive reconnect + resync +
        // deferred drains + rollback re-drives until every member is
        // clean and the fleet carries no rollback debt.
        for sw in 0..MEMBERS {
            fleet.plane_mut(sw).switch_mut().install_fault_plan(None);
        }
        let mut converged = false;
        for _ in 0..128 {
            now += SimDuration::from_ms(5.0);
            fleet.tick_all(now);
            let mut all = fleet.pending_rollback_len() == 0;
            for sw in 0..MEMBERS {
                let s = fleet.plane_mut(sw).switch_mut();
                let clean = s.audit(now).clean();
                all = all
                    && clean
                    && !s.is_down()
                    && !s.is_degraded()
                    && s.deferred_len() == 0;
            }
            if all {
                converged = true;
                break;
            }
        }
        assert!(converged, "fleet failed to quiesce after faults cleared");

        // 1. Path atomicity: committed ⇒ live everywhere; aborted ⇒
        //    nowhere.
        for (pieces, committed) in &txns {
            for (sw, r) in pieces {
                assert_eq!(
                    fleet.plane(*sw).contains_rule(r.id),
                    Some(*committed),
                    "txn piece {:?} on member {sw}: committed={committed}",
                    r.id
                );
            }
        }

        // 2. Flat equivalence per member: membership and classification.
        for (sw, oracle) in oracles.iter().enumerate() {
            let hermes = fleet.plane(sw).switch();
            assert_eq!(hermes.intent_len(), hermes.logical_len());
            for i in 0..256u32 {
                let p = pkt(0x0a00_0000 | (i.wrapping_mul(2654435761) % (1 << 24)));
                assert_eq!(
                    action_of(hermes.peek(p)),
                    oracle.peek(p).map(|r| r.action),
                    "member {sw}: divergence on sprayed packet {i}"
                );
            }
        }
    }
}
