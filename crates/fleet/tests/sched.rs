//! Lane-scheduler determinism suite.
//!
//! The phase-2 schedulers (occupancy-weighted and work-stealing lane
//! assignment) trade latency for balance, but they must stay *pure
//! functions of the seed*: two runs of the same seeded workload must
//! produce byte-identical telemetry reports, and on dedicated lanes
//! (`lanes = 0`, the netsim default inherited from the phase-1 fleet)
//! every scheduler must be a bit-preserving no-op — the same bytes pinned
//! by the phase-1 determinism tests.

use hermes_baselines::{ControlPlane, HermesPlane};
use hermes_core::prelude::{HermesConfig, HermesSwitch};
use hermes_fleet::{lane_assignment, Fleet, FleetConfig, LaneSched, SwitchId};
use hermes_rules::prelude::*;
use hermes_tcam::{CrashKind, SimDuration, SimTime, SwitchModel};
use hermes_util::json::Json;
use hermes_util::rng::rngs::StdRng;
use hermes_util::rng::{Rng, SeedableRng};

const MEMBERS: usize = 8;

/// Drives a seeded workload — background inserts, path transactions with
/// duplicate-member pieces (so coalescing engages), disconnect crashes,
/// housekeeping ticks — through a fleet under the given scheduler, then
/// returns the serialized telemetry report after quiescence.
fn capture(lanes: usize, seed: u64, sched: LaneSched) -> String {
    hermes_telemetry::set_enabled(true);
    hermes_telemetry::reset();
    hermes_telemetry::set_meta("suite", Json::Str("sched-determinism".into()));
    let members: Vec<(SwitchId, HermesPlane)> = (0..MEMBERS)
        .map(|i| {
            let sw = HermesSwitch::new(SwitchModel::pica8_p3290(), HermesConfig::default())
                .expect("default guarantee feasible on pica8_p3290");
            (i, HermesPlane::new(sw))
        })
        .collect();
    let mut fleet = Fleet::new(members, FleetConfig { lanes, seed, sched, coalesce: true });
    let mut rng = StdRng::seed_from_u64(seed);
    let mut now = SimTime::ZERO;
    let mut next_id = 0u64;
    for step in 0..150u64 {
        // Tight inter-op gaps keep the home lanes busy, so the weighted
        // and work-stealing policies actually exercise off-home dispatch.
        now += SimDuration::from_us(rng.gen_range(20.0..400.0));
        let roll: f64 = rng.gen();
        if roll < 0.45 {
            let sw = rng.gen_range(0..MEMBERS);
            let addr = 0x0a00_0000u32 | rng.gen_range(0..1u32 << 24);
            let prio = rng.gen_range(1..40u32);
            let r = Rule::new(
                next_id,
                Ipv4Prefix::new(addr, 24).to_key(),
                Priority(prio),
                Action::Forward(prio % 5 + 1),
            );
            next_id += 1;
            fleet.submit(sw, &[ControlAction::Insert(r)], now);
        } else if roll < 0.8 {
            // Four pieces over two members — each member carries two, the
            // shape the coalescer folds into one cut per member.
            let first = rng.gen_range(0..MEMBERS);
            let pieces: Vec<(SwitchId, Rule)> = (0..4)
                .map(|k| {
                    let addr = 0x0a00_0000u32 | rng.gen_range(0..1u32 << 24);
                    let prio = rng.gen_range(1..40u32);
                    let r = Rule::new(
                        next_id,
                        Ipv4Prefix::new(addr, 24).to_key(),
                        Priority(prio),
                        Action::Forward(prio % 5 + 1),
                    );
                    next_id += 1;
                    ((first + k / 2) % MEMBERS, r)
                })
                .collect();
            fleet.install_path(&pieces, now);
        } else if roll < 0.9 {
            let sw = rng.gen_range(0..MEMBERS);
            fleet
                .plane_mut(sw)
                .inject_crash(CrashKind::Disconnect, seed ^ step, 1, now);
        } else {
            fleet.tick_all(now);
        }
    }
    for _ in 0..32 {
        now += SimDuration::from_ms(5.0);
        fleet.tick_all(now);
    }
    hermes_telemetry::report("sched-determinism").to_string()
}

fn assert_has_counter(report: &str, name: &str) {
    let parsed = Json::parse(report).expect("self-produced report parses");
    let Some(Json::Obj(counters)) = parsed.get("counters") else {
        panic!("report has no counters object");
    };
    assert!(
        counters.iter().any(|(k, _)| k == name),
        "report is missing the {name} counter"
    );
}

#[test]
fn weighted_runs_are_byte_identical_per_seed() {
    let a = capture(4, 11, LaneSched::Weighted);
    let b = capture(4, 11, LaneSched::Weighted);
    assert!(a.starts_with('{'));
    assert_eq!(
        a, b,
        "weighted-lane telemetry must be a pure function of the seed"
    );
    // The contended workload must actually trigger off-home dispatch —
    // otherwise this test pins round-robin, not the weighted scheduler.
    assert_has_counter(&a, "fleet.sched.steals");
}

#[test]
fn worksteal_runs_are_byte_identical_per_seed() {
    let a = capture(4, 11, LaneSched::WorkSteal);
    let b = capture(4, 11, LaneSched::WorkSteal);
    assert_eq!(
        a, b,
        "work-stealing telemetry must be a pure function of the seed"
    );
    assert_has_counter(&a, "fleet.txn_coalesced_pieces");
}

#[test]
fn dedicated_lanes_bit_preserve_the_phase1_baseline() {
    // lanes = 0 gives every member its own lane; with nothing to contend
    // over, all three schedulers must collapse to the identical phase-1
    // behavior, byte for byte.
    let pinned = capture(0, 29, LaneSched::Pinned);
    let weighted = capture(0, 29, LaneSched::Weighted);
    let worksteal = capture(0, 29, LaneSched::WorkSteal);
    assert_eq!(
        pinned, weighted,
        "weighted scheduling must be a no-op on dedicated lanes"
    );
    assert_eq!(
        pinned, worksteal,
        "work stealing must be a no-op on dedicated lanes"
    );
}

#[test]
fn seed_permutes_the_home_lane_assignment() {
    // The seeded Fisher–Yates shuffle must react to the seed (otherwise
    // per-seed determinism would hold trivially) while keeping the lane
    // loads balanced to within one member.
    let a = lane_assignment(MEMBERS, 3, 7);
    let b = lane_assignment(MEMBERS, 3, 8);
    assert_eq!(a.len(), MEMBERS);
    assert_ne!(a, b, "distinct seeds must permute the home-lane map");
    for lanes in [a, b] {
        for lane in 0..3 {
            let n = lanes.iter().filter(|&&l| l == lane).count();
            assert!((2..=3).contains(&n), "lane {lane} holds {n} members");
        }
    }
}
