//! Golden-file corpus: every directory under `tests/fixtures/` is a
//! synthetic workspace tree, and its `EXPECTED` file is the byte-exact
//! render of the lint outcome over that tree. The corpus pins the exact
//! diagnostic text, positions and suppression echoes for every rule
//! R1–R10 plus S1, so a wording or ordering change cannot slip through
//! unreviewed.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! HERMES_LINT_BLESS=1 cargo test -p hermes-lint --test golden
//! ```

use hermes_lint::engine::lint_tree;
use hermes_lint::{LintOutcome, Rule, ALL_RULES};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Loads one case directory as an in-memory tree: paths are relative to
/// the case root with forward slashes, so path-sensitive rules (crate
/// roots, `src/bin/exp_*`, the registry path) behave as in a real
/// workspace. `EXPECTED` itself is not part of the tree.
fn load_case(case: &Path) -> Vec<(String, String)> {
    let mut files = Vec::new();
    collect(case, case, &mut files);
    files.sort_by(|a, b| a.0.cmp(&b.0));
    files
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) {
    for entry in std::fs::read_dir(dir).expect("case dir readable") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            collect(root, &path, out);
            continue;
        }
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        if name == "EXPECTED" {
            continue;
        }
        let rel = path
            .strip_prefix(root)
            .expect("under case root")
            .to_string_lossy()
            .replace('\\', "/");
        out.push((rel, std::fs::read_to_string(&path).expect("fixture readable")));
    }
}

/// The canonical render the `EXPECTED` files pin: findings in engine
/// order, then honoured suppressions, then a one-line tally.
fn render(out: &LintOutcome) -> String {
    let mut s = String::new();
    for f in &out.findings {
        s.push_str(&format!("{f}\n"));
    }
    for w in &out.suppressions {
        s.push_str(&format!(
            "waived: {}:{} {} ({})\n",
            w.file,
            w.line,
            w.rule.id(),
            w.reason
        ));
    }
    s.push_str(&format!(
        "{} finding(s), {} suppression(s)\n",
        out.findings.len(),
        out.suppressions.len()
    ));
    s
}

#[test]
fn golden_corpus_is_byte_exact_and_covers_every_rule() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let bless = std::env::var_os("HERMES_LINT_BLESS").is_some();

    let mut cases: Vec<PathBuf> = std::fs::read_dir(&root)
        .expect("tests/fixtures exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.is_dir())
        .collect();
    cases.sort();
    assert!(cases.len() >= 11, "corpus has only {} cases", cases.len());

    let mut covered: BTreeSet<Rule> = BTreeSet::new();
    let mut failures = Vec::new();
    for case in &cases {
        let name = case.file_name().unwrap_or_default().to_string_lossy().into_owned();
        let files = load_case(case);
        assert!(!files.is_empty(), "case {name} has no fixture files");
        let out = lint_tree(&files);
        covered.extend(out.findings.iter().map(|f| f.rule));
        let actual = render(&out);

        let expected_path = case.join("EXPECTED");
        if bless {
            std::fs::write(&expected_path, &actual).expect("EXPECTED writable");
            continue;
        }
        let expected = std::fs::read_to_string(&expected_path)
            .unwrap_or_else(|_| panic!("case {name} has no EXPECTED file; bless the corpus"));
        if actual != expected {
            failures.push(format!(
                "case {name} diverged from EXPECTED.\n--- expected ---\n{expected}--- actual ---\n{actual}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{}\n(if the change is intentional: HERMES_LINT_BLESS=1 cargo test -p hermes-lint --test golden)",
        failures.join("\n")
    );

    // Every rule must fire somewhere in the corpus — a rule nobody can
    // demonstrate is a rule nobody can trust.
    for rule in ALL_RULES {
        assert!(covered.contains(&rule), "no corpus case exercises {}", rule.id());
    }
}
