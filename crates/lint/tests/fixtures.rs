//! Fixture-based integration tests: known-bad source trees must produce
//! exactly the expected diagnostics, suppressions must waive them, and
//! the JSON report must be byte-deterministic.

use hermes_lint::engine::{lint_tree, load_workspace, REGISTRY_PATH};
use hermes_lint::{report, Rule};

fn tree(files: &[(&str, &str)]) -> Vec<(String, String)> {
    files
        .iter()
        .map(|(p, t)| (p.to_string(), t.to_string()))
        .collect()
}

fn rules_fired(files: &[(&str, &str)]) -> Vec<Rule> {
    lint_tree(&tree(files)).findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- R1

#[test]
fn r1_flags_instant_and_hash_collections() {
    let src = "use std::time::Instant;\nfn f() { let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new(); let _ = (Instant::now(), m); }\n";
    let fired = rules_fired(&[("crates/x/src/helper.rs", src)]);
    assert!(fired.iter().filter(|r| **r == Rule::Determinism).count() >= 3);
}

#[test]
fn r1_allowlists_the_stopwatch_module() {
    let src = "use std::time::Instant;\npub fn t() -> Instant { Instant::now() }\n";
    assert!(
        lint_tree(&tree(&[("crates/util/src/bench.rs", src)])).is_clean(),
        "the bench timer is the one sanctioned wall-clock site"
    );
    // The allowlist covers Instant there, not HashMap.
    let with_map = "use std::collections::HashMap;\n";
    let fired = rules_fired(&[("crates/util/src/bench.rs", with_map)]);
    assert_eq!(fired, vec![Rule::Determinism]);
}

#[test]
fn r1_ignores_test_paths_and_test_regions() {
    let in_tests_dir = "use std::collections::HashMap;\nfn f() { let _: HashMap<u32, u32> = HashMap::new(); }\n";
    assert!(lint_tree(&tree(&[("crates/x/tests/it.rs", in_tests_dir)])).is_clean());

    let in_cfg_test = "pub fn ok() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    #[test]\n    fn t() { let _: HashMap<u32, u32> = HashMap::new(); }\n}\n";
    assert!(lint_tree(&tree(&[("crates/x/src/helper.rs", in_cfg_test)])).is_clean());
}

#[test]
fn r1_mention_in_comment_or_string_is_not_a_use() {
    let src = "// HashMap iteration order is not deterministic\nfn f() -> &'static str { \"HashMap\" }\n";
    assert!(lint_tree(&tree(&[("crates/x/src/helper.rs", src)])).is_clean());
}

// ---------------------------------------------------------------- R2

#[test]
fn r2_unwrap_needs_justification() {
    let bare = "pub fn f(v: &[u32]) -> u32 { *v.first().unwrap() }\n";
    assert_eq!(rules_fired(&[("crates/x/src/helper.rs", bare)]), vec![Rule::PanicPolicy]);

    let commented = "pub fn f(v: &[u32]) -> u32 {\n    // INVARIANT: caller guarantees non-empty\n    *v.first().unwrap()\n}\n";
    assert!(lint_tree(&tree(&[("crates/x/src/helper.rs", commented)])).is_clean());

    let in_message = "pub fn f(v: &[u32]) -> u32 { *v.first().expect(\"INVARIANT: caller guarantees non-empty\") }\n";
    assert!(lint_tree(&tree(&[("crates/x/src/helper.rs", in_message)])).is_clean());
}

#[test]
fn r2_comment_window_is_three_lines() {
    let far = "pub fn f(v: &[u32]) -> u32 {\n    // INVARIANT: non-empty\n    let _a = 1;\n    let _b = 2;\n    let _c = 3;\n    *v.first().unwrap()\n}\n";
    assert_eq!(rules_fired(&[("crates/x/src/helper.rs", far)]), vec![Rule::PanicPolicy]);
}

#[test]
fn r2_flags_panic_and_unreachable_macros() {
    let src = "pub fn f(x: u32) -> u32 {\n    if x > 9 { panic!(\"no\"); }\n    if x == 9 { unreachable!(); }\n    x\n}\n";
    let fired = rules_fired(&[("crates/x/src/helper.rs", src)]);
    assert_eq!(fired, vec![Rule::PanicPolicy, Rule::PanicPolicy]);
}

// ---------------------------------------------------------------- R3

#[test]
fn r3_crate_roots_must_forbid_unsafe() {
    let bare = "pub fn f() {}\n";
    assert_eq!(rules_fired(&[("crates/x/src/lib.rs", bare)]), vec![Rule::UnsafeForbid]);
    // Non-root modules are not required to repeat the attribute.
    assert!(lint_tree(&tree(&[("crates/x/src/helper.rs", bare)])).is_clean());
    let good = "#![forbid(unsafe_code)]\npub fn f() {}\n";
    assert!(lint_tree(&tree(&[("crates/x/src/lib.rs", good)])).is_clean());
}

// ---------------------------------------------------------------- R4

#[test]
fn r4_external_deps_and_lock_sources_flagged() {
    let toml = "[dependencies]\nserde = \"1.0\"\nhermes-util = { path = \"../util\" }\n";
    let lock = "[[package]]\nname = \"rand\"\nversion = \"0.8.5\"\nsource = \"registry+https://github.com/rust-lang/crates.io-index\"\n";
    let out = lint_tree(&tree(&[("crates/x/Cargo.toml", toml), ("Cargo.lock", lock)]));
    let fired: Vec<Rule> = out.findings.iter().map(|f| f.rule).collect();
    assert_eq!(fired, vec![Rule::Hermeticity, Rule::Hermeticity]);
    // Findings sort by file: Cargo.lock before crates/x/Cargo.toml.
    assert!(out.findings[0].message.contains("rand"));
    assert!(out.findings[1].message.contains("serde"));
}

// ---------------------------------------------------------------- R5

const TELEMETRY_USE: &str =
    "pub fn f() { hermes_telemetry::counter(\"x.hits\", 1); }\n";

#[test]
fn r5_use_without_registry_entry() {
    let out = lint_tree(&tree(&[
        ("crates/x/src/helper.rs", TELEMETRY_USE),
        (REGISTRY_PATH, "counter x.other\n"),
    ]));
    let msgs: Vec<&str> = out.findings.iter().map(|f| f.message.as_str()).collect();
    assert_eq!(out.findings.len(), 2, "{msgs:?}");
    // Missing from registry + stale registry entry.
    assert!(msgs.iter().any(|m| m.contains("x.hits")));
    assert!(msgs.iter().any(|m| m.contains("x.other")));
}

#[test]
fn r5_registry_and_use_agree() {
    let out = lint_tree(&tree(&[
        ("crates/x/src/helper.rs", TELEMETRY_USE),
        (REGISTRY_PATH, "# comment\ncounter x.hits\n"),
    ]));
    assert!(out.is_clean(), "{:?}", out.findings);
}

#[test]
fn r5_missing_registry_is_one_finding() {
    let out = lint_tree(&tree(&[("crates/x/src/helper.rs", TELEMETRY_USE)]));
    assert_eq!(out.findings.len(), 1);
    assert!(out.findings[0].message.contains("registry file is missing"));
}

#[test]
fn r10_dynamic_name_flagged_and_suppressible() {
    let dynamic = "pub fn f(n: &str) { hermes_telemetry::counter(n, 1); }\n";
    let out = lint_tree(&tree(&[
        ("crates/x/src/helper.rs", dynamic),
        (REGISTRY_PATH, ""),
    ]));
    assert_eq!(out.findings.len(), 1);
    assert_eq!(out.findings[0].rule, Rule::LiteralMetricNames);
    assert!(out.findings[0].message.contains("non-literal"));

    let waived = "pub fn f(n: &str) {\n    // hermes-lint: allow(R10, reason = \"names resolve to registry entries listed in helper()\")\n    hermes_telemetry::counter(n, 1);\n}\n";
    let out = lint_tree(&tree(&[
        ("crates/x/src/helper.rs", waived),
        (REGISTRY_PATH, ""),
    ]));
    assert!(out.is_clean(), "{:?}", out.findings);
    assert_eq!(out.suppressions.len(), 1);
}

#[test]
fn r5_registry_entry_satisfied_by_string_literal() {
    // Names dispatched through a helper (Route::metric_name style): the
    // literal lives in a match arm, not at the call site.
    let dispatch = "pub fn name(x: bool) -> &'static str { if x { \"x.a\" } else { \"x.b\" } }\n";
    let out = lint_tree(&tree(&[
        ("crates/x/src/helper.rs", dispatch),
        (REGISTRY_PATH, "counter x.a\ncounter x.b\n"),
    ]));
    assert!(out.is_clean(), "{:?}", out.findings);
}

#[test]
fn r5_malformed_and_duplicate_registry_lines() {
    let out = lint_tree(&tree(&[(
        REGISTRY_PATH,
        "bogus x.a\ncounter\ncounter x.c extra\n",
    )]));
    assert_eq!(out.findings.len(), 3);
    assert!(out.findings.iter().all(|f| f.rule == Rule::TelemetryRegistry));
}

// ---------------------------------------------------------------- R6

#[test]
fn r6_exp_binaries_must_use_run_experiment() {
    let raw = "fn main() { println!(\"hi\"); }\n";
    let fired = rules_fired(&[("crates/bench/src/bin/exp_demo.rs", raw)]);
    assert!(fired.contains(&Rule::ExpContract), "{fired:?}");

    let good = "#![forbid(unsafe_code)]\nfn main() -> std::process::ExitCode {\n    hermes_bench::run_experiment(\"exp_demo\", || {})\n}\n";
    assert!(lint_tree(&tree(&[("crates/bench/src/bin/exp_demo.rs", good)])).is_clean());
    // Non-exp binaries are exempt from R6.
    let cli = "#![forbid(unsafe_code)]\nfn main() {}\n";
    assert!(lint_tree(&tree(&[("crates/bench/src/bin/other_cli.rs", cli)])).is_clean());
}

// ------------------------------------------------------- suppressions

#[test]
fn suppression_waives_and_is_echoed() {
    let src = "// hermes-lint: allow(R1, reason = \"lookup-only; order never observed\")\nuse std::collections::HashMap;\npub fn f() { let _: HashMap<u32, u32> = HashMap::new(); }\n";
    let out = lint_tree(&tree(&[("crates/x/src/helper.rs", src)]));
    // Line 3's constructor uses are outside the directive's 2-line span.
    assert_eq!(out.findings.iter().filter(|f| f.rule == Rule::Determinism).count(), 2);
    assert_eq!(out.suppressions.len(), 1);
    assert_eq!(out.suppressions[0].reason, "lookup-only; order never observed");

    let file_wide = "// hermes-lint: allow-file(R1, reason = \"lookup-only; order never observed\")\nuse std::collections::HashMap;\npub fn f() { let _: HashMap<u32, u32> = HashMap::new(); }\n";
    let out = lint_tree(&tree(&[("crates/x/src/helper.rs", file_wide)]));
    assert!(out.is_clean(), "{:?}", out.findings);
    assert!(out.suppressions[0].file_scope);
}

#[test]
fn s1_reasonless_suppression_is_a_finding_and_waives_nothing() {
    let src = "// hermes-lint: allow(R1)\nuse std::collections::HashMap;\n";
    let out = lint_tree(&tree(&[("crates/x/src/helper.rs", src)]));
    let fired: Vec<Rule> = out.findings.iter().map(|f| f.rule).collect();
    assert_eq!(fired, vec![Rule::Suppression, Rule::Determinism]);
    assert!(out.suppressions.is_empty());
}

#[test]
fn suppression_inside_block_comment_works() {
    let src = "/* hermes-lint: allow(R2, reason = \"guarded by assert above\") */\npub fn f(v: &[u32]) -> u32 { *v.first().unwrap() }\n";
    let out = lint_tree(&tree(&[("crates/x/src/helper.rs", src)]));
    assert!(out.is_clean(), "{:?}", out.findings);
}

// ------------------------------------------------------------- report

#[test]
fn json_report_is_byte_deterministic_and_complete() {
    let files = [
        ("crates/x/src/lib.rs", "pub fn f(v: &[u32]) -> u32 { *v.first().unwrap() }\n"),
        ("crates/x/Cargo.toml", "[dependencies]\nserde = \"1\"\n"),
    ];
    let a = report::build(&lint_tree(&tree(&files))).to_string();
    let b = report::build(&lint_tree(&tree(&files))).to_string();
    assert_eq!(a, b, "report must be a pure function of the tree");

    let parsed: &str = &a;
    assert!(parsed.starts_with("{\"schema\":\"hermes-lint-report/2\""));
    assert!(parsed.contains("\"clean\":false"));
    // Every rule appears in the rules array even with zero findings.
    for rule in hermes_lint::ALL_RULES {
        assert!(parsed.contains(&format!("\"id\":\"{}\"", rule.id())), "{}", rule.id());
    }
}

#[test]
fn diagnostics_render_as_file_line_col() {
    let out = lint_tree(&tree(&[(
        "crates/x/src/lib.rs",
        "pub fn f(v: &[u32]) -> u32 { *v.first().unwrap() }\n",
    )]));
    let shown = out.findings.iter().map(|f| f.to_string()).collect::<Vec<_>>();
    assert!(
        shown.iter().any(|s| s.starts_with("crates/x/src/lib.rs:1:")
            && s.contains("R2[panic-policy]")),
        "{shown:?}"
    );
}

// ---------------------------------------------------- whole workspace

/// The real workspace must stay within the committed debt budgets — this
/// makes `cargo test` itself a lint gate, independent of scripts/ci.sh.
/// The ratchet only ever tightens: a rule may not exceed its budget in
/// `bench_baselines/lint_baseline.json`, and when counts drop the
/// baseline should be refreshed to lock the progress in.
#[test]
fn the_workspace_stays_within_the_lint_baseline() {
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = load_workspace(&root).expect("workspace readable");
    assert!(files.len() > 50, "walker found only {} files", files.len());
    let out = lint_tree(&files);

    let baseline_path = root.join("bench_baselines/lint_baseline.json");
    let text = std::fs::read_to_string(&baseline_path).expect("committed lint baseline");
    let budgets = hermes_lint::baseline::parse(&text).expect("valid baseline document");
    let cmp = hermes_lint::baseline::compare(&out, &budgets);
    let shown = out.findings.iter().map(|f| f.to_string()).collect::<Vec<_>>();
    assert!(
        cmp.ok(),
        "lint debt grew past the ratchet {:?}; findings:\n{}",
        cmp.regressions,
        shown.join("\n")
    );
    assert!(
        cmp.improvements.is_empty(),
        "baseline is stale {:?}: run scripts/refresh_baselines.sh to ratchet it down",
        cmp.improvements
    );
    // Every honoured waiver carries a reason (S1 guarantees this at parse
    // time; assert the invariant end to end).
    assert!(out.suppressions.iter().all(|s| !s.reason.is_empty()));
}
