pub fn ops() {
    hermes_telemetry::counter("tcam.ops", 1);
}

pub fn lane_metric(i: usize) -> String {
    format!("tcam.lane_{}", i)
}

pub fn bump(name: &str) {
    hermes_telemetry::counter(name, 1);
}
