impl Table {
    pub fn delete(&mut self, id: u64) -> Result<u64, TcamError> {
        Err(TcamError::Missing(id))
    }

    pub fn replay(&mut self) {
        let _ = self.delete(1);
        self.delete(2).ok();
        // INVARIANT: scratch replay mirrors the sequential path
        let _ = self.delete(3);
    }
}
