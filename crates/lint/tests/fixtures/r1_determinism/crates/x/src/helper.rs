use std::collections::HashMap;

pub fn lookup(m: &HashMap<u32, u32>, k: u32) -> Option<u32> {
    m.get(&k).copied()
}
