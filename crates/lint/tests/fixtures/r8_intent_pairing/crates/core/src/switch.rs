impl HermesSwitch {
    pub fn install(&mut self, r: Rule) {
        self.intent.record(IntentOp::Install(r));
        self.device.apply(0, &r);
    }

    pub fn migrate(&mut self) {
        self.device.apply_batch(0, &[]);
    }

    pub fn phantom(&mut self, r: Rule) {
        self.intent.record(IntentOp::Install(r));
    }

    // INVARIANT: intent-neutral chokepoint; every caller records intent
    fn chokepoint(&mut self) {
        self.device.apply(0, &[]);
    }

    pub fn guarded(&mut self, r: Rule) {
        self.intent.record(IntentOp::Install(r));
        self.chokepoint();
    }
}
