// hermes-lint: allow(R1)
use std::collections::HashMap;

// hermes-lint: allow(R1, reason = "lookup-only; iteration order never observed")
pub type Cache = HashMap<u32, u32>;
