pub fn record_hit() {
    hermes_telemetry::counter("x.hits", 1);
}

pub fn record_miss() {
    hermes_telemetry::counter("x.misses", 1);
}
