pub fn head(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn safe_head(v: &[u32]) -> u32 {
    // INVARIANT: callers check emptiness first
    *v.first().unwrap()
}
