#![forbid(unsafe_code)]

fn main() {
    println!("raw experiment without the harness");
}
