pub fn f() {}
