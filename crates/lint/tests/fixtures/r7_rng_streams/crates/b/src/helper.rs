const BETA_SALT: u64 = 16;

pub fn beta() -> StdRng {
    StdRng::seed_from_u64(BETA_SALT)
}
