const ALPHA_SALT: u64 = 0x10;

pub fn alpha() -> StdRng {
    StdRng::seed_from_u64(ALPHA_SALT)
}

pub fn raw() -> StdRng {
    StdRng::seed_from_u64(42)
}

pub fn mixed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ ALPHA_SALT)
}
