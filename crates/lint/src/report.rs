//! The machine-readable `hermes-lint-report/2` document.
//!
//! Built with the in-tree `hermes_util` JSON writer. Key order is fixed
//! and findings/suppressions are pre-sorted by the engine, so the report
//! is byte-deterministic for a given tree — the same contract the
//! telemetry `hermes-bench-report/1` documents keep.
//!
//! `/2` added the flow-sensitive rules R7–R10 to the `rules` array; the
//! document shape is otherwise unchanged from `/1`.

use crate::{LintOutcome, ALL_RULES};
use hermes_util::json::Json;

/// Schema identifier stamped into every report.
pub const SCHEMA: &str = "hermes-lint-report/2";

/// Renders the outcome as the versioned report document.
pub fn build(outcome: &LintOutcome) -> Json {
    let rules = ALL_RULES
        .iter()
        .map(|r| {
            Json::obj([
                ("id", Json::Str(r.id().to_string())),
                ("name", Json::Str(r.name().to_string())),
                ("description", Json::Str(r.description().to_string())),
                (
                    "findings",
                    Json::Int(
                        outcome.findings.iter().filter(|f| f.rule == *r).count() as i128
                    ),
                ),
            ])
        })
        .collect();
    let findings = outcome
        .findings
        .iter()
        .map(|f| {
            Json::obj([
                ("file", Json::Str(f.file.clone())),
                ("line", Json::Int(f.line as i128)),
                ("col", Json::Int(f.col as i128)),
                ("rule", Json::Str(f.rule.id().to_string())),
                ("message", Json::Str(f.message.clone())),
            ])
        })
        .collect();
    let suppressions = outcome
        .suppressions
        .iter()
        .map(|s| {
            Json::obj([
                ("file", Json::Str(s.file.clone())),
                ("line", Json::Int(s.line as i128)),
                ("rule", Json::Str(s.rule.id().to_string())),
                ("reason", Json::Str(s.reason.clone())),
                ("file_scope", Json::Bool(s.file_scope)),
            ])
        })
        .collect();
    Json::obj([
        ("schema", Json::Str(SCHEMA.to_string())),
        ("files_scanned", Json::Int(outcome.files_scanned as i128)),
        ("clean", Json::Bool(outcome.is_clean())),
        ("rules", Json::Arr(rules)),
        ("findings", Json::Arr(findings)),
        ("suppressions", Json::Arr(suppressions)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AppliedSuppression, Diagnostic, Rule};

    fn sample() -> LintOutcome {
        LintOutcome {
            findings: vec![Diagnostic {
                file: "crates/x/src/lib.rs".into(),
                line: 3,
                col: 7,
                rule: Rule::Determinism,
                message: "nondeterministic primitive `HashMap`".into(),
            }],
            suppressions: vec![AppliedSuppression {
                file: "crates/y/src/lib.rs".into(),
                line: 9,
                rule: Rule::PanicPolicy,
                reason: "index bounded".into(),
                file_scope: false,
            }],
            files_scanned: 2,
        }
    }

    #[test]
    fn report_has_schema_and_counts() {
        let doc = build(&sample());
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(doc.get("files_scanned").unwrap().as_f64(), Some(2.0));
        assert_eq!(doc.get("clean"), Some(&Json::Bool(false)));
        let rules = doc.get("rules").unwrap().as_arr().unwrap();
        assert_eq!(rules.len(), ALL_RULES.len());
        // R1 counted one finding.
        assert_eq!(rules[0].get("findings").unwrap().as_f64(), Some(1.0));
        assert_eq!(rules[1].get("findings").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn report_round_trips_and_is_deterministic() {
        let doc = build(&sample());
        let text = doc.to_string();
        assert_eq!(text, build(&sample()).to_string());
        let parsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(parsed, doc);
    }
}
