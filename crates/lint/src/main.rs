//! The `hermes-lint` driver.
//!
//! ```text
//! cargo run -p hermes-lint -- --workspace [--json <path|->] [--root <dir>]
//!     [--baseline <path>] [--write-baseline <path>] [--changed[=<ref>]]
//! cargo run -p hermes-lint -- --explain <rule>
//! ```
//!
//! Scans the workspace for violations of the determinism, panic-policy,
//! hermeticity, telemetry-registry, experiment-contract and flow
//! invariants (DESIGN.md §9). Exit status: 0 clean, 1 findings, 2 usage
//! or I/O error. `--json` additionally writes the `hermes-lint-report/2`
//! document (`-` for stdout).
//!
//! `--baseline` turns absolute cleanliness into a debt ratchet: findings
//! are compared per rule against the committed budgets and only a count
//! *increase* fails. `--write-baseline` records the current counts.
//! `--changed` restricts reported findings to files changed versus a git
//! ref (default `HEAD`) plus untracked files — the whole workspace is
//! still scanned so cross-file rules stay sound. `--explain R7` prints a
//! rule's rationale, the invariant it guards, and how to fix findings.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut json: Option<String> = None;
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<String> = None;
    let mut write_baseline: Option<String> = None;
    let mut changed: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => workspace = true,
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(p) => json = Some(p.clone()),
                    None => return usage("--json needs a path (or `-` for stdout)"),
                }
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root = Some(PathBuf::from(p)),
                    None => return usage("--root needs a directory"),
                }
            }
            "--baseline" => {
                i += 1;
                match args.get(i) {
                    Some(p) => baseline = Some(p.clone()),
                    None => return usage("--baseline needs a path"),
                }
            }
            "--write-baseline" => {
                i += 1;
                match args.get(i) {
                    Some(p) => write_baseline = Some(p.clone()),
                    None => return usage("--write-baseline needs a path"),
                }
            }
            "--changed" => changed = Some("HEAD".to_string()),
            "--explain" => {
                i += 1;
                return match args.get(i) {
                    Some(r) => explain(r),
                    None => usage("--explain needs a rule id or name (e.g. R7)"),
                };
            }
            other => {
                if let Some(p) = other.strip_prefix("--json=") {
                    json = Some(p.to_string());
                } else if let Some(p) = other.strip_prefix("--root=") {
                    root = Some(PathBuf::from(p));
                } else if let Some(p) = other.strip_prefix("--baseline=") {
                    baseline = Some(p.to_string());
                } else if let Some(p) = other.strip_prefix("--write-baseline=") {
                    write_baseline = Some(p.to_string());
                } else if let Some(r) = other.strip_prefix("--changed=") {
                    changed = Some(r.to_string());
                } else if let Some(r) = other.strip_prefix("--explain=") {
                    return explain(r);
                } else {
                    return usage(&format!("unknown argument `{other}`"));
                }
            }
        }
        i += 1;
    }
    if !workspace {
        return usage("pass --workspace to scan the workspace (or --explain <rule>)");
    }

    let root = match root {
        Some(r) => r,
        None => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("hermes-lint: error: could not locate the workspace root");
                return ExitCode::from(2);
            }
        },
    };

    let files = match hermes_lint::engine::load_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("hermes-lint: error: reading {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let mut outcome = hermes_lint::engine::lint_tree(&files);

    // --changed: the whole tree was scanned (cross-file rules need the
    // full picture); only the *reported* findings are narrowed.
    if let Some(git_ref) = &changed {
        match changed_files(&root, git_ref) {
            Ok(set) => {
                outcome.findings.retain(|f| set.contains(&f.file));
                outcome.suppressions.retain(|s| set.contains(&s.file));
            }
            Err(e) => {
                eprintln!("hermes-lint: error: --changed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    // With `--json -` the report owns stdout; humans read stderr.
    let json_on_stdout = json.as_deref() == Some("-");
    let human = |s: String| {
        if json_on_stdout {
            eprintln!("{s}");
        } else {
            println!("{s}");
        }
    };
    for f in &outcome.findings {
        human(format!("{f}"));
    }
    human(format!(
        "hermes-lint: {} files scanned, {} finding(s), {} suppression(s)",
        outcome.files_scanned,
        outcome.findings.len(),
        outcome.suppressions.len()
    ));

    if let Some(path) = json {
        let doc = hermes_lint::report::build(&outcome).to_string();
        if path == "-" {
            println!("{doc}");
        } else if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("hermes-lint: error: writing {path}: {e}");
            return ExitCode::from(2);
        }
    }

    if let Some(path) = write_baseline {
        let doc = hermes_lint::baseline::render(&outcome);
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("hermes-lint: error: writing {path}: {e}");
            return ExitCode::from(2);
        }
        human(format!("hermes-lint: baseline written to {path}"));
    }

    // The ratchet: with a baseline, only *regressions* fail.
    if let Some(path) = baseline {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("hermes-lint: error: reading baseline {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let budgets = match hermes_lint::baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("hermes-lint: error: baseline {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let cmp = hermes_lint::baseline::compare(&outcome, &budgets);
        for (id, found, budget) in &cmp.regressions {
            human(format!(
                "hermes-lint: ratchet: {id} has {found} finding(s), budget is {budget}: \
                 fix the new finding(s) or justify them with an INVARIANT:/suppression"
            ));
        }
        for (id, found, budget) in &cmp.improvements {
            human(format!(
                "hermes-lint: ratchet: {id} improved to {found} (budget {budget}): \
                 run scripts/refresh_baselines.sh to ratchet the baseline down"
            ));
        }
        return if cmp.ok() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn explain(rule: &str) -> ExitCode {
    match hermes_lint::Rule::parse(rule) {
        Some(r) => {
            println!("{} — {}", r.id(), r.name());
            println!();
            println!("{}", r.explain());
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("hermes-lint: error: unknown rule `{rule}`; known rules:");
            for r in hermes_lint::ALL_RULES {
                eprintln!("  {:4} {}", r.id(), r.name());
            }
            ExitCode::from(2)
        }
    }
}

/// Workspace-relative paths changed versus `git_ref`, plus untracked
/// files — the union `git diff --name-only <ref>` ∪ `git ls-files
/// --others --exclude-standard`.
fn changed_files(
    root: &std::path::Path,
    git_ref: &str,
) -> Result<std::collections::BTreeSet<String>, String> {
    let mut set = std::collections::BTreeSet::new();
    for cmd_args in [
        vec!["diff", "--name-only", git_ref],
        vec!["ls-files", "--others", "--exclude-standard"],
    ] {
        let out = std::process::Command::new("git")
            .arg("-C")
            .arg(root)
            .args(&cmd_args)
            .output()
            .map_err(|e| format!("running git: {e}"))?;
        if !out.status.success() {
            return Err(format!(
                "git {} failed: {}",
                cmd_args.join(" "),
                String::from_utf8_lossy(&out.stderr).trim()
            ));
        }
        for line in String::from_utf8_lossy(&out.stdout).lines() {
            let p = line.trim();
            if !p.is_empty() {
                set.insert(p.to_string());
            }
        }
    }
    Ok(set)
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("hermes-lint: error: {msg}");
    eprintln!(
        "usage: hermes-lint --workspace [--json <path|->] [--root <dir>] \
         [--baseline <path>] [--write-baseline <path>] [--changed[=<ref>]]"
    );
    eprintln!("       hermes-lint --explain <rule>");
    ExitCode::from(2)
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares a `[workspace]`; falls back to this crate's compile-time
/// location (two levels above `crates/lint`).
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok();
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(PathBuf::from);
    }
    let fallback = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    fallback.canonicalize().ok()
}
