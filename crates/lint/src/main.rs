//! The `hermes-lint` driver.
//!
//! ```text
//! cargo run -p hermes-lint -- --workspace [--json <path|->] [--root <dir>]
//! ```
//!
//! Scans the workspace for violations of the determinism, panic-policy,
//! hermeticity, telemetry-registry and experiment-contract invariants
//! (DESIGN.md §9). Exit status: 0 clean, 1 findings, 2 usage or I/O
//! error. `--json` additionally writes the `hermes-lint-report/1`
//! document (`-` for stdout).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut json: Option<String> = None;
    let mut root: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => workspace = true,
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(p) => json = Some(p.clone()),
                    None => return usage("--json needs a path (or `-` for stdout)"),
                }
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root = Some(PathBuf::from(p)),
                    None => return usage("--root needs a directory"),
                }
            }
            other => {
                if let Some(p) = other.strip_prefix("--json=") {
                    json = Some(p.to_string());
                } else if let Some(p) = other.strip_prefix("--root=") {
                    root = Some(PathBuf::from(p));
                } else {
                    return usage(&format!("unknown argument `{other}`"));
                }
            }
        }
        i += 1;
    }
    if !workspace {
        return usage("pass --workspace to scan the workspace");
    }

    let root = match root {
        Some(r) => r,
        None => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("hermes-lint: error: could not locate the workspace root");
                return ExitCode::from(2);
            }
        },
    };

    let files = match hermes_lint::engine::load_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("hermes-lint: error: reading {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let outcome = hermes_lint::engine::lint_tree(&files);

    // With `--json -` the report owns stdout; humans read stderr.
    let json_on_stdout = json.as_deref() == Some("-");
    let human = |s: String| {
        if json_on_stdout {
            eprintln!("{s}");
        } else {
            println!("{s}");
        }
    };
    for f in &outcome.findings {
        human(format!("{f}"));
    }
    human(format!(
        "hermes-lint: {} files scanned, {} finding(s), {} suppression(s)",
        outcome.files_scanned,
        outcome.findings.len(),
        outcome.suppressions.len()
    ));

    if let Some(path) = json {
        let doc = hermes_lint::report::build(&outcome).to_string();
        if path == "-" {
            println!("{doc}");
        } else if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("hermes-lint: error: writing {path}: {e}");
            return ExitCode::from(2);
        }
    }

    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("hermes-lint: error: {msg}");
    eprintln!("usage: hermes-lint --workspace [--json <path|->] [--root <dir>]");
    ExitCode::from(2)
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares a `[workspace]`; falls back to this crate's compile-time
/// location (two levels above `crates/lint`).
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok();
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(PathBuf::from);
    }
    let fallback = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    fallback.canonicalize().ok()
}
