//! A lightweight Rust *item* parser on top of the [`crate::lexer`] token
//! stream.
//!
//! This is not a grammar-complete front end — it recovers exactly the
//! syntactic shapes the flow-sensitive rules (R7–R10, DESIGN.md §9) need:
//!
//! - `impl Type { … }` blocks (so methods know their `Self` type),
//! - `fn` items with visibility, parameters skipped, flattened return-type
//!   text, and the matched body range,
//! - call expressions inside bodies, with the receiver chain (`self.device
//!   .apply(…)` → receiver `["self", "device"]`, `IntentOp::Install(…)` →
//!   `["IntentOp"]`) and the argument token list,
//! - discard forms: `let _ = <expr>;` and statement-level `<expr>.ok();`,
//! - top-level `const NAME: u64 = <literal>;` bindings (R7 resolves salt
//!   values through these).
//!
//! Like the lexer it never fails: unparseable stretches are skipped and
//! the rest of the file is still analyzed.

use crate::lexer::{lex, TokKind, Token};

/// One call expression inside a function body.
#[derive(Clone, Debug)]
pub struct Call {
    /// The called name (`apply`, `record`, `seed_from_u64`, `format`, …).
    pub name: String,
    /// Receiver chain, outermost first: `self.intent.record(…)` yields
    /// `["self", "intent"]`; `telemetry::counter(…)` yields
    /// `["telemetry"]`; a bare call yields `[]`.
    pub recv: Vec<String>,
    /// `true` for macro invocations (`format!(…)`).
    pub is_macro: bool,
    /// 1-based position of the call name.
    pub line: usize,
    /// 1-based column of the call name.
    pub col: usize,
    /// Flattened `(kind, text)` argument tokens, nested groups included.
    pub args: Vec<(TokKind, String)>,
}

/// How a value was discarded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiscardKind {
    /// `let _ = <expr>;`
    LetUnderscore,
    /// A statement of the form `<expr>.ok();`
    OkDrop,
}

/// One discarded value inside a function body.
#[derive(Clone, Debug)]
pub struct Discard {
    /// The discard form.
    pub kind: DiscardKind,
    /// Name of the call producing the discarded value (`delete` for
    /// `let _ = scratch.delete(id);`), when the expression ends in one.
    pub call: Option<String>,
    /// 1-based line of the discard.
    pub line: usize,
    /// 1-based column of the discard.
    pub col: usize,
}

/// One parsed `fn` item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// `Self` type when the fn sits inside an `impl Type` block.
    pub impl_type: Option<String>,
    /// `true` for `pub` fns (any `pub(...)` restriction counts).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based column of the `fn` keyword.
    pub col: usize,
    /// Flattened return-type text (`Result < ( ) , TcamError >` style,
    /// space-joined); empty when the fn returns `()` implicitly.
    pub ret: String,
    /// Calls inside the body, in source order.
    pub calls: Vec<Call>,
    /// Discard forms inside the body, in source order.
    pub discards: Vec<Discard>,
}

/// One `const NAME: <ty> = <integer literal>;` item.
#[derive(Clone, Debug)]
pub struct ConstItem {
    /// Constant name.
    pub name: String,
    /// The literal text on the right-hand side (only recorded when the
    /// initializer is a single numeric literal).
    pub value: String,
}

/// Everything the flow rules need from one file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// All `fn` items, in source order (nested fns appear separately).
    pub fns: Vec<FnItem>,
    /// Single-literal integer consts, for salt-value resolution.
    pub consts: Vec<ConstItem>,
    /// Lines carrying a comment that contains `INVARIANT:`.
    pub invariant_lines: Vec<usize>,
}

/// Keywords that look like calls when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "fn",
];

/// Parses one file's source text.
pub fn parse_file(src: &str) -> ParsedFile {
    let tokens = lex(src);
    parse_tokens(&tokens)
}

/// Parses an already-lexed token stream.
pub fn parse_tokens(tokens: &[Token]) -> ParsedFile {
    let invariant_lines = tokens
        .iter()
        .filter(|t| t.is_comment() && t.text.contains("INVARIANT:"))
        .map(|t| t.line)
        .collect();
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();

    let impls = find_impl_blocks(&code);
    let mut fns = Vec::new();
    let mut consts = Vec::new();

    let mut i = 0;
    while i < code.len() {
        let t = code[i];
        if t.is_ident("fn") && code.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) {
            if let Some((item, next)) = parse_fn(&code, i, &impls) {
                fns.push(item);
                // Do not skip the body: nested fns are parsed too. Just
                // step past `fn name` so this item is not re-entered.
                let _ = next;
            }
            i += 2;
            continue;
        }
        if t.is_ident("const")
            && code.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident)
        {
            if let Some(c) = parse_const(&code, i) {
                consts.push(c);
            }
        }
        i += 1;
    }

    ParsedFile {
        fns,
        consts,
        invariant_lines,
    }
}

/// `(type_name, body_start_idx, body_end_idx)` for each `impl` block.
fn find_impl_blocks(code: &[&Token]) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !code[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // Skip the generic parameter list `impl<T: Ord> …`.
        if code.get(j).is_some_and(|t| t.is_punct('<')) {
            j = skip_angles(code, j);
        }
        // Read the type path; `impl Trait for Type` keeps the part after
        // `for`. Stop at the body brace or a `where` clause.
        let mut ty: Option<String> = None;
        while j < code.len() {
            let t = code[j];
            if t.is_punct('{') || t.is_ident("where") {
                break;
            }
            if t.is_ident("for") {
                ty = None;
            } else if t.kind == TokKind::Ident {
                ty = Some(t.text.clone());
                // Skip this segment's generic args so `Type<K, V>` does
                // not leak `K`/`V` as the type name.
                if code.get(j + 1).is_some_and(|n| n.is_punct('<')) {
                    j = skip_angles(code, j + 1);
                    continue;
                }
            }
            j += 1;
        }
        while j < code.len() && !code[j].is_punct('{') {
            j += 1;
        }
        if j < code.len() {
            let end = match_brace(code, j);
            if let Some(name) = ty {
                out.push((name, j, end));
            }
            // Descend into the block normally (methods are parsed by the
            // main fn scan); just move past the `impl` keyword.
        }
        i += 1;
    }
    out
}

/// Skips a balanced `<…>` group starting at `open` (which must be `<`);
/// returns the index just past the matching `>`.
fn skip_angles(code: &[&Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < code.len() {
        if code[j].is_punct('<') {
            depth += 1;
        } else if code[j].is_punct('>') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        } else if code[j].is_punct('{') || code[j].is_punct(';') {
            // Malformed or not actually generics — bail out.
            return j;
        }
        j += 1;
    }
    j
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn match_brace(code: &[&Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < code.len() {
        if code[j].is_punct('{') {
            depth += 1;
        } else if code[j].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    code.len().saturating_sub(1)
}

fn parse_const(code: &[&Token], i: usize) -> Option<ConstItem> {
    // const NAME : … = <num> ;
    let name = code.get(i + 1)?.text.clone();
    let mut j = i + 2;
    while j < code.len() && !code[j].is_punct('=') && !code[j].is_punct(';') {
        j += 1;
    }
    if !code.get(j)?.is_punct('=') {
        return None;
    }
    let val = code.get(j + 1)?;
    if val.kind == TokKind::Num && code.get(j + 2).is_some_and(|t| t.is_punct(';')) {
        return Some(ConstItem {
            name,
            value: val.text.clone(),
        });
    }
    None
}

fn parse_fn(
    code: &[&Token],
    i: usize,
    impls: &[(String, usize, usize)],
) -> Option<(FnItem, usize)> {
    let name_tok = code.get(i + 1)?;
    let name = name_tok.text.clone();
    let impl_type = impls
        .iter()
        .filter(|(_, s, e)| i > *s && i < *e)
        .max_by_key(|(_, s, _)| *s)
        .map(|(t, _, _)| t.clone());

    // Visibility: look back a few tokens for `pub`, stopping at item
    // boundaries. Covers `pub`, `pub(crate)`, `pub const unsafe fn …`.
    let mut is_pub = false;
    let mut back = i;
    for _ in 0..6 {
        if back == 0 {
            break;
        }
        back -= 1;
        let t = code[back];
        if t.is_ident("pub") {
            is_pub = true;
            break;
        }
        let qualifier = t.is_ident("const")
            || t.is_ident("unsafe")
            || t.is_ident("extern")
            || t.is_ident("async")
            || t.kind == TokKind::Str
            || t.is_punct('(')
            || t.is_punct(')')
            || t.is_ident("crate")
            || t.is_ident("super")
            || t.is_ident("in");
        if !qualifier {
            break;
        }
    }

    // Generics, then the parameter list.
    let mut j = i + 2;
    if code.get(j).is_some_and(|t| t.is_punct('<')) {
        j = skip_angles(code, j);
    }
    if !code.get(j).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    let params_end = match_paren(code, j);
    j = params_end + 1;

    // Return type: `-> …` up to the body `{`, a `;`, or `where`.
    let mut ret = String::new();
    if code.get(j).is_some_and(|t| t.is_punct('-'))
        && code.get(j + 1).is_some_and(|t| t.is_punct('>'))
    {
        j += 2;
        let mut depth = 0usize;
        while let Some(t) = code.get(j) {
            if depth == 0 && (t.is_punct('{') || t.is_punct(';') || t.is_ident("where")) {
                break;
            }
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            }
            if !ret.is_empty() {
                ret.push(' ');
            }
            ret.push_str(&t.text);
            j += 1;
        }
    }
    while j < code.len() && !code[j].is_punct('{') && !code[j].is_punct(';') {
        j += 1;
    }

    let (calls, discards) = if code.get(j).is_some_and(|t| t.is_punct('{')) {
        let end = match_brace(code, j);
        (scan_calls(code, j + 1, end), scan_discards(code, j + 1, end))
    } else {
        (Vec::new(), Vec::new())
    };

    Some((
        FnItem {
            name,
            impl_type,
            is_pub,
            line: name_tok.line,
            col: name_tok.col,
            ret,
            calls,
            discards,
        },
        j,
    ))
}

/// Index of the `)` matching the `(` at `open`.
fn match_paren(code: &[&Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < code.len() {
        if code[j].is_punct('(') {
            depth += 1;
        } else if code[j].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    code.len().saturating_sub(1)
}

/// Collects call expressions in `code[start..end]`.
fn scan_calls(code: &[&Token], start: usize, end: usize) -> Vec<Call> {
    let mut out = Vec::new();
    for i in start..end.min(code.len()) {
        let t = code[i];
        if t.kind != TokKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let (is_macro, open) = match code.get(i + 1) {
            Some(n) if n.is_punct('(') => (false, i + 1),
            Some(n) if n.is_punct('!') => match code.get(i + 2) {
                Some(o) if o.is_punct('(') || o.is_punct('[') || o.is_punct('{') => {
                    (true, i + 2)
                }
                _ => continue,
            },
            _ => continue,
        };
        let close = match_group(code, open);
        let args = code[(open + 1)..close.min(code.len())]
            .iter()
            .map(|a| (a.kind, a.text.clone()))
            .collect();
        out.push(Call {
            name: t.text.clone(),
            recv: receiver_chain(code, i),
            is_macro,
            line: t.line,
            col: t.col,
            args,
        });
    }
    out
}

/// Matches `(`/`[`/`{` groups generically.
fn match_group(code: &[&Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < code.len() {
        let t = code[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    code.len().saturating_sub(1)
}

/// Walks backwards from the call name collecting `a.b.` / `a::b::`
/// receiver segments, outermost first.
fn receiver_chain(code: &[&Token], name_idx: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut k = name_idx;
    loop {
        if k >= 1 && code[k - 1].is_punct('.') {
            if k >= 2 && code[k - 2].kind == TokKind::Ident {
                chain.push(code[k - 2].text.clone());
                k -= 2;
                continue;
            }
            // `foo(..).bar(…)` — chained off an expression; mark and stop.
            chain.push("()".to_string());
            break;
        }
        if k >= 2
            && code[k - 1].is_punct(':')
            && code[k - 2].is_punct(':')
            && k >= 3
            && code[k - 3].kind == TokKind::Ident
        {
            chain.push(code[k - 3].text.clone());
            k -= 3;
            continue;
        }
        break;
    }
    chain.reverse();
    chain
}

/// Collects discard forms in `code[start..end]`.
fn scan_discards(code: &[&Token], start: usize, end: usize) -> Vec<Discard> {
    let end = end.min(code.len());
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        // `let _ = <expr> ;`
        if code[i].is_ident("let")
            && code.get(i + 1).is_some_and(|t| t.is_ident("_"))
            && code.get(i + 2).is_some_and(|t| t.is_punct('='))
        {
            let expr_start = i + 3;
            let mut depth = 0usize;
            let mut j = expr_start;
            let mut last_call: Option<String> = None;
            while j < end {
                let t = code[j];
                if depth == 0 && t.is_punct(';') {
                    break;
                }
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth = depth.saturating_sub(1);
                } else if depth == 0
                    && t.kind == TokKind::Ident
                    && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
                    && code.get(j + 1).is_some_and(|n| n.is_punct('('))
                {
                    // Depth-0 calls only: the last one produces the value
                    // (`a.b(x).c(y)` → `c`; `foo(bar())` → `foo`).
                    last_call = Some(t.text.clone());
                }
                j += 1;
            }
            out.push(Discard {
                kind: DiscardKind::LetUnderscore,
                call: last_call,
                line: code[i].line,
                col: code[i].col,
            });
            i = j + 1;
            continue;
        }
        // statement-level `<expr>.ok();`
        if code[i].is_punct('.')
            && code.get(i + 1).is_some_and(|t| t.is_ident("ok"))
            && code.get(i + 2).is_some_and(|t| t.is_punct('('))
            && code.get(i + 3).is_some_and(|t| t.is_punct(')'))
            && code.get(i + 4).is_some_and(|t| t.is_punct(';'))
        {
            if let Some(inner) = ok_drop_statement(code, start, i) {
                out.push(Discard {
                    kind: DiscardKind::OkDrop,
                    call: inner,
                    line: code[i + 1].line,
                    col: code[i + 1].col,
                });
            }
            i += 5;
            continue;
        }
        i += 1;
    }
    out
}

/// For a `.ok();` at `dot`, decides whether the statement discards the
/// value (returns `Some(inner_call)`) or uses it (`None` — e.g. bound by
/// `let x = …`, returned, or compared). `inner_call` is the call the
/// `Result` came from, when the receiver is a direct call.
fn ok_drop_statement(code: &[&Token], lo: usize, dot: usize) -> Option<Option<String>> {
    // Scan back to the statement start.
    let mut depth = 0i64;
    let mut k = dot;
    let mut stmt_start = lo;
    while k > lo {
        k -= 1;
        let t = code[k];
        if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth += 1;
        } else if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth -= 1;
            if depth < 0 {
                stmt_start = k + 1;
                break;
            }
        } else if depth == 0 && t.is_punct(';') {
            stmt_start = k + 1;
            break;
        }
    }
    // A binding, return or comparison means the value is used.
    for t in &code[stmt_start..dot] {
        if t.is_ident("let") || t.is_ident("return") || t.is_punct('=') {
            return None;
        }
    }
    // Inner call: `….foo(args).ok();` — the token before `.ok` is `)`;
    // the ident before its matching `(` names the producing call.
    let inner = if dot >= 1 && code[dot - 1].is_punct(')') {
        let mut d = 0i64;
        let mut j = dot - 1;
        loop {
            let t = code[j];
            if t.is_punct(')') {
                d += 1;
            } else if t.is_punct('(') {
                d -= 1;
                if d == 0 {
                    break;
                }
            }
            if j == stmt_start {
                break;
            }
            j -= 1;
        }
        if j > stmt_start && code[j - 1].kind == TokKind::Ident {
            Some(code[j - 1].text.clone())
        } else {
            None
        }
    } else {
        None
    };
    Some(inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file(src)
    }

    #[test]
    fn fn_items_with_impl_type_and_visibility() {
        let src = "impl HermesSwitch {\n    pub fn insert(&mut self) {}\n    fn dev_apply(&mut self) {}\n}\npub(crate) fn free() {}\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 3);
        assert_eq!(p.fns[0].name, "insert");
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("HermesSwitch"));
        assert!(p.fns[0].is_pub);
        assert!(!p.fns[1].is_pub);
        assert_eq!(p.fns[2].impl_type, None);
        assert!(p.fns[2].is_pub, "pub(crate) counts as pub");
    }

    #[test]
    fn impl_trait_for_type_records_the_self_type() {
        let src = "impl fmt::Display for Route {\n    fn fmt(&self) {}\n}\n";
        let p = parse(src);
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("Route"));
    }

    #[test]
    fn generic_impls_and_fns() {
        let src = "impl<K: Ord, V> Store<K, V> {\n    pub fn get<Q: Ord>(&self, q: Q) -> Option<V> { self.find(q) }\n}\n";
        let p = parse(src);
        assert_eq!(p.fns[0].name, "get");
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("Store"));
        assert!(p.fns[0].ret.contains("Option"));
        assert_eq!(p.fns[0].calls[0].name, "find");
        assert_eq!(p.fns[0].calls[0].recv, vec!["self"]);
    }

    #[test]
    fn return_type_text_is_flattened() {
        let src = "fn f() -> Result<(), TcamError> { Ok(()) }\n";
        let p = parse(src);
        assert!(p.fns[0].ret.contains("TcamError"), "{}", p.fns[0].ret);
    }

    #[test]
    fn calls_capture_receiver_chains() {
        let src = "fn f(&mut self) {\n    self.device.apply(op);\n    self.intent.record(IntentOp::Install(r));\n    telemetry::counter(\"a.b\", 1);\n    helper();\n}\n";
        let p = parse(src);
        let calls = &p.fns[0].calls;
        let by_name = |n: &str| calls.iter().find(|c| c.name == n).unwrap();
        assert_eq!(by_name("apply").recv, vec!["self", "device"]);
        assert_eq!(by_name("record").recv, vec!["self", "intent"]);
        assert_eq!(by_name("Install").recv, vec!["IntentOp"]);
        assert_eq!(by_name("counter").recv, vec!["telemetry"]);
        assert!(by_name("helper").recv.is_empty());
    }

    #[test]
    fn macro_calls_are_marked() {
        let src = "fn f() { let s = format!(\"x.{}\", 1); }\n";
        let p = parse(src);
        // `format!` appears as a call inside the let-underscore-free body.
        let c = p.fns[0].calls.iter().find(|c| c.name == "format").unwrap();
        assert!(c.is_macro);
        assert_eq!(c.args[0].0, TokKind::Str);
    }

    #[test]
    fn let_underscore_discard_finds_the_producing_call() {
        let src = "fn f(&mut self) {\n    let _ = scratch.delete(id);\n    let _ = sw.admit_batch(&batch, now).len();\n    let _ = plain;\n}\n";
        let p = parse(src);
        let d = &p.fns[0].discards;
        assert_eq!(d.len(), 3);
        assert_eq!(d[0].call.as_deref(), Some("delete"));
        assert_eq!(d[1].call.as_deref(), Some("len"), "chain tail wins");
        assert_eq!(d[2].call, None);
    }

    #[test]
    fn ok_drop_statement_detected_but_uses_are_not() {
        let src = "fn f(&mut self) {\n    self.push(x).ok();\n    let y = self.pull().ok();\n    if self.push(x).ok().is_some() {}\n    y.ok();\n}\n";
        let p = parse(src);
        let d = &p.fns[0].discards;
        // push().ok(); is a drop; `let y = …` is a use; the `if` guard is
        // a use (no trailing `;` right after `.ok()`); `y.ok();` drops a
        // variable (no producing call recovered).
        assert_eq!(d.len(), 2, "{d:?}");
        assert_eq!(d[0].kind, DiscardKind::OkDrop);
        assert_eq!(d[0].call.as_deref(), Some("push"));
        assert_eq!(d[1].call, None);
    }

    #[test]
    fn consts_with_literal_initializers() {
        let src = "const CRASH_STREAM_SALT: u64 = 0x4845;\nconst NAME: &str = \"x\";\npub const N: usize = 7;\n";
        let p = parse(src);
        assert_eq!(p.consts.len(), 2);
        assert_eq!(p.consts[0].name, "CRASH_STREAM_SALT");
        assert_eq!(p.consts[0].value, "0x4845");
        assert_eq!(p.consts[1].name, "N");
    }

    #[test]
    fn invariant_comment_lines_recorded() {
        let src = "fn f() {\n    // INVARIANT: replay mirrors the sequential path\n    let _ = x.delete(1);\n}\n";
        let p = parse(src);
        assert_eq!(p.invariant_lines, vec![2]);
    }

    #[test]
    fn seed_call_args_are_captured() {
        let src = "fn f(seed: u64) { let rng = StdRng::seed_from_u64(seed ^ CRASH_STREAM_SALT); }\n";
        let p = parse(src);
        let c = p.fns[0]
            .calls
            .iter()
            .find(|c| c.name == "seed_from_u64")
            .unwrap();
        assert_eq!(c.recv, vec!["StdRng"]);
        let idents: Vec<&str> = c
            .args
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, vec!["seed", "CRASH_STREAM_SALT"]);
    }

    #[test]
    fn nested_fns_are_parsed_separately() {
        let src = "fn outer() {\n    fn inner() { helper(); }\n    other();\n}\n";
        let p = parse(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }

    #[test]
    fn bodyless_trait_methods_do_not_derail() {
        let src = "trait T {\n    fn sig(&self) -> u32;\n}\nfn after() { work(); }\n";
        let p = parse(src);
        let after = p.fns.iter().find(|f| f.name == "after").unwrap();
        assert_eq!(after.calls[0].name, "work");
    }
}
