//! R4 — hermeticity checks over `Cargo.toml` and `Cargo.lock`.
//!
//! The workspace policy (README "Hermetic build") is zero external
//! crates: every dependency in every manifest must be a workspace path
//! dep (`path = "…"` or `workspace = true`), and the lockfile must not
//! record any package with a registry/git `source`. This replaces the
//! python `cargo metadata` guard that used to live in `scripts/ci.sh`.

use crate::{Diagnostic, Rule};

/// Is this `[section]` header a dependency table?
fn is_dep_section(header: &str) -> bool {
    header == "dependencies"
        || header == "dev-dependencies"
        || header == "build-dependencies"
        || header == "workspace.dependencies"
        || (header.starts_with("target.") && header.ends_with("dependencies"))
}

/// Checks one `Cargo.toml`. Line-based: precise enough for this
/// workspace's plain manifests, and failure-closed — anything in a
/// dependency table that is not visibly a path/workspace dep is flagged.
pub fn check_cargo_toml(path: &str, text: &str) -> Vec<Diagnostic> {
    let mut findings = Vec::new();
    let mut section = String::new();
    // `[dependencies.foo]` sub-table accumulation: (name, header line,
    // saw a path/workspace key).
    let mut subtable: Option<(String, usize, bool)> = None;

    let flush_subtable =
        |sub: &mut Option<(String, usize, bool)>, findings: &mut Vec<Diagnostic>| {
            if let Some((name, line, ok)) = sub.take() {
                if !ok {
                    findings.push(external_dep(path, line, &name));
                }
            }
        };

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush_subtable(&mut subtable, &mut findings);
            section = line.trim_matches(['[', ']']).trim().to_string();
            // `[dependencies.foo]` / `[workspace.dependencies.foo]`.
            for dep_table in ["dependencies.", "dev-dependencies.", "build-dependencies."] {
                if let Some(name) = section
                    .strip_prefix("workspace.")
                    .unwrap_or(&section)
                    .strip_prefix(dep_table)
                {
                    subtable = Some((name.to_string(), line_no, false));
                }
            }
            continue;
        }
        if let Some((_, _, ok)) = &mut subtable {
            if line.starts_with("path") || line.contains("workspace = true") {
                *ok = true;
            }
            continue;
        }
        if !is_dep_section(&section) {
            continue;
        }
        // A dep entry: `name = <spec>`.
        let Some((name, spec)) = line.split_once('=') else {
            continue;
        };
        let (name, spec) = (name.trim(), spec.trim());
        let hermetic = spec.contains("path =")
            || spec.contains("path=")
            || spec.contains("workspace = true")
            || spec.contains("workspace=true")
            // `name.workspace = true` arrives as name `foo.workspace`.
            || name.ends_with(".workspace") && spec == "true";
        if !hermetic {
            findings.push(external_dep(path, line_no, name));
        }
    }
    flush_subtable(&mut subtable, &mut findings);
    findings
}

fn external_dep(path: &str, line: usize, name: &str) -> Diagnostic {
    Diagnostic {
        file: path.to_string(),
        line,
        col: 1,
        rule: Rule::Hermeticity,
        message: format!(
            "dependency `{name}` is not a workspace path dep: the build is hermetic — \
             vendor the code into crates/util or a new in-tree crate instead"
        ),
    }
}

/// Checks `Cargo.lock`: every `[[package]]` must be source-less (a
/// workspace member). A `source` key means a registry or git package.
pub fn check_cargo_lock(path: &str, text: &str) -> Vec<Diagnostic> {
    let mut findings = Vec::new();
    let mut current: Option<(String, usize)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line == "[[package]]" {
            current = None;
        } else if let Some(name) = line.strip_prefix("name = ") {
            current = Some((name.trim_matches('"').to_string(), line_no));
        } else if line.starts_with("source = ") {
            let (name, at) = current
                .clone()
                .unwrap_or_else(|| ("<unknown>".to_string(), line_no));
            findings.push(Diagnostic {
                file: path.to_string(),
                line: at,
                col: 1,
                rule: Rule::Hermeticity,
                message: format!(
                    "Cargo.lock records external package `{name}`: the hermetic build \
                     allows only workspace members"
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_and_path_deps_pass() {
        let toml = r#"
[package]
name = "hermes-core"

[dependencies]
hermes-util.workspace = true
hermes-rules = { workspace = true }
hermes-tcam = { path = "../tcam" }

[dev-dependencies]
hermes-workloads.workspace = true
"#;
        assert!(check_cargo_toml("crates/core/Cargo.toml", toml).is_empty());
    }

    #[test]
    fn registry_and_git_deps_flagged() {
        let toml = r#"
[dependencies]
serde = "1.0"
rand = { version = "0.8", features = ["small_rng"] }
foo = { git = "https://example.com/foo" }
"#;
        let f = check_cargo_toml("crates/x/Cargo.toml", toml);
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|d| d.rule == Rule::Hermeticity));
    }

    #[test]
    fn dep_subtables_checked() {
        let bad = "[dependencies.serde]\nversion = \"1.0\"\n";
        let good = "[dependencies.hermes-util]\npath = \"../util\"\n";
        assert_eq!(check_cargo_toml("c/Cargo.toml", bad).len(), 1);
        assert!(check_cargo_toml("c/Cargo.toml", good).is_empty());
    }

    #[test]
    fn workspace_dependency_table_must_be_paths() {
        let toml = "[workspace.dependencies]\nhermes-util = { path = \"crates/util\" }\nserde = \"1\"\n";
        let f = check_cargo_toml("Cargo.toml", toml);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("serde"));
    }

    #[test]
    fn non_dep_sections_ignored() {
        let toml = "[package]\nversion = \"0.1\"\n\n[features]\ndefault = []\n\n[profile.release]\nlto = true\n";
        assert!(check_cargo_toml("Cargo.toml", toml).is_empty());
    }

    #[test]
    fn lockfile_external_source_flagged() {
        let lock = r#"
version = 3

[[package]]
name = "hermes-util"
version = "0.1.0"

[[package]]
name = "rand"
version = "0.8.5"
source = "registry+https://github.com/rust-lang/crates.io-index"
"#;
        let f = check_cargo_lock("Cargo.lock", lock);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("rand"));
    }
}
