//! # hermes-lint — machine-checked workspace invariants
//!
//! Hermes's guarantees rest on conventions the compiler cannot see:
//! seeded runs must reproduce telemetry byte-for-byte, control-plane code
//! must never panic on a device fault, and the build must stay hermetic
//! with zero external crates. This crate turns each convention into a
//! lint rule over a token-level scan of the whole workspace
//! (DESIGN.md §9 "Static analysis"):
//!
//! | rule | name        | invariant |
//! |------|-------------|-----------|
//! | R1   | determinism | `Instant`/`SystemTime`/`HashMap`/`HashSet` forbidden outside the allowlist |
//! | R2   | panic-policy | `.unwrap()`/`.expect(`/`panic!`/`unreachable!` in non-test code needs an `INVARIANT:` comment |
//! | R3   | unsafe-forbid | every crate root carries `#![forbid(unsafe_code)]` |
//! | R4   | hermeticity | every Cargo.toml dependency is a workspace path dep; Cargo.lock has no external packages |
//! | R5   | telemetry-registry | metric/span names in code ↔ `crates/telemetry/registry.txt` |
//! | R6   | exp-contract | every `exp_*` binary goes through `hermes_bench::run_experiment` |
//! | S1   | suppression | a suppression must parse and carry a reason |
//!
//! Findings can be waived inline:
//!
//! ```text
//! // hermes-lint: allow(R1, reason = "lookup-only map; iteration order never observed")
//! // hermes-lint: allow-file(R1, reason = "whole file uses sorted iteration")
//! ```
//!
//! An `allow` on line *N* covers findings on lines *N* and *N+1* (so it
//! works both as a trailing comment and on the line above); `allow-file`
//! covers the whole file. A suppression without a reason is itself a
//! finding (S1) — the waiver must say *why* the invariant holds anyway.
//!
//! Run it with `cargo run -p hermes-lint -- --workspace`; add
//! `--json <path>` for the machine-readable `hermes-lint-report/1`
//! document.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod lexer;
pub mod manifest;
pub mod report;
pub mod suppress;

use std::fmt;

/// The lint rules, in the order they are documented and reported.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// R1 — wall clock and unseeded hash collections are forbidden.
    Determinism,
    /// R2 — panicking calls need an adjacent `INVARIANT:` justification.
    PanicPolicy,
    /// R3 — every crate root forbids `unsafe_code`.
    UnsafeForbid,
    /// R4 — all dependencies are in-tree workspace path deps.
    Hermeticity,
    /// R5 — telemetry names match the checked-in registry, both ways.
    TelemetryRegistry,
    /// R6 — experiment binaries go through `hermes_bench::run_experiment`.
    ExpContract,
    /// S1 — malformed or reason-less suppression directives.
    Suppression,
}

/// All rules, in reporting order.
pub const ALL_RULES: [Rule; 7] = [
    Rule::Determinism,
    Rule::PanicPolicy,
    Rule::UnsafeForbid,
    Rule::Hermeticity,
    Rule::TelemetryRegistry,
    Rule::ExpContract,
    Rule::Suppression,
];

impl Rule {
    /// Short id (`R1`…`R6`, `S1`).
    pub fn id(&self) -> &'static str {
        match self {
            Rule::Determinism => "R1",
            Rule::PanicPolicy => "R2",
            Rule::UnsafeForbid => "R3",
            Rule::Hermeticity => "R4",
            Rule::TelemetryRegistry => "R5",
            Rule::ExpContract => "R6",
            Rule::Suppression => "S1",
        }
    }

    /// Human-readable rule name.
    pub fn name(&self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::PanicPolicy => "panic-policy",
            Rule::UnsafeForbid => "unsafe-forbid",
            Rule::Hermeticity => "hermeticity",
            Rule::TelemetryRegistry => "telemetry-registry",
            Rule::ExpContract => "exp-contract",
            Rule::Suppression => "suppression",
        }
    }

    /// One-line description for the report.
    pub fn description(&self) -> &'static str {
        match self {
            Rule::Determinism => {
                "Instant/SystemTime/HashMap/HashSet forbidden outside the allowlist: \
                 seeded runs must stay byte-reproducible"
            }
            Rule::PanicPolicy => {
                "unwrap/expect/panic!/unreachable! in non-test code requires an \
                 adjacent INVARIANT: comment"
            }
            Rule::UnsafeForbid => "every crate root must carry #![forbid(unsafe_code)]",
            Rule::Hermeticity => {
                "every Cargo.toml dependency must be a workspace path dep; \
                 Cargo.lock must contain no external packages"
            }
            Rule::TelemetryRegistry => {
                "every metric/span name used in code must appear in \
                 crates/telemetry/registry.txt, and vice versa"
            }
            Rule::ExpContract => {
                "every exp_* binary must run through hermes_bench::run_experiment \
                 (which provides --out and panic containment)"
            }
            Rule::Suppression => "a hermes-lint suppression must parse and carry a reason",
        }
    }

    /// Looks a rule up by id (`R1`) or name (`determinism`).
    pub fn parse(s: &str) -> Option<Rule> {
        ALL_RULES
            .into_iter()
            .find(|r| r.id().eq_ignore_ascii_case(s) || r.name().eq_ignore_ascii_case(s))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.id(), self.name())
    }
}

/// One lint finding, pointing at a workspace-relative file position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// A suppression that was honoured, echoed into the report so waived
/// invariants stay visible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppliedSuppression {
    /// Workspace-relative path.
    pub file: String,
    /// Line of the directive.
    pub line: usize,
    /// Rule waived.
    pub rule: Rule,
    /// The stated reason.
    pub reason: String,
    /// `true` for `allow-file` directives.
    pub file_scope: bool,
}

/// Result of linting a file tree.
#[derive(Clone, Debug, Default)]
pub struct LintOutcome {
    /// Findings, sorted by (file, line, col, rule).
    pub findings: Vec<Diagnostic>,
    /// Suppression directives found (whether or not anything matched).
    pub suppressions: Vec<AppliedSuppression>,
    /// Number of files scanned (`.rs` + manifests + registry).
    pub files_scanned: usize,
}

impl LintOutcome {
    /// `true` when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}
