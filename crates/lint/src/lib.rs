//! # hermes-lint — machine-checked workspace invariants
//!
//! Hermes's guarantees rest on conventions the compiler cannot see:
//! seeded runs must reproduce telemetry byte-for-byte, control-plane code
//! must never panic on a device fault, and the build must stay hermetic
//! with zero external crates. This crate turns each convention into a
//! lint rule over a token-level scan of the whole workspace
//! (DESIGN.md §9 "Static analysis"):
//!
//! | rule | name        | invariant |
//! |------|-------------|-----------|
//! | R1   | determinism | `Instant`/`SystemTime`/`HashMap`/`HashSet` forbidden outside the allowlist |
//! | R2   | panic-policy | `.unwrap()`/`.expect(`/`panic!`/`unreachable!` in non-test code needs an `INVARIANT:` comment |
//! | R3   | unsafe-forbid | every crate root carries `#![forbid(unsafe_code)]` |
//! | R4   | hermeticity | every Cargo.toml dependency is a workspace path dep; Cargo.lock has no external packages |
//! | R5   | telemetry-registry | metric/span names in code ↔ `crates/telemetry/registry.txt` |
//! | R6   | exp-contract | every `exp_*` binary goes through `hermes_bench::run_experiment` |
//! | R7   | rng-stream-isolation | `seed_from_u64` mixes a `*_SALT` constant or seed variable; no raw literals, no cross-crate sharing |
//! | R8   | intent-pairing | device-mutating `HermesSwitch` methods record intent on every public path |
//! | R9   | swallowed-device-errors | `TcamError`/`HermesError` Results are not discarded without an `INVARIANT:` comment |
//! | R10  | literal-metric-names | telemetry names are string literals, never `format!` |
//! | S1   | suppression | a suppression must parse and carry a reason |
//!
//! R1–R6 and S1 run over the token stream; R7–R10 are flow-sensitive and
//! run over parsed `fn` items and a per-crate call graph
//! ([`parser`], [`flow`]).
//!
//! Findings can be waived inline:
//!
//! ```text
//! // hermes-lint: allow(R1, reason = "lookup-only map; iteration order never observed")
//! // hermes-lint: allow-file(R1, reason = "whole file uses sorted iteration")
//! ```
//!
//! An `allow` on line *N* covers findings on lines *N* and *N+1* (so it
//! works both as a trailing comment and on the line above); `allow-file`
//! covers the whole file. A suppression without a reason is itself a
//! finding (S1) — the waiver must say *why* the invariant holds anyway.
//!
//! Run it with `cargo run -p hermes-lint -- --workspace`; add
//! `--json <path>` for the machine-readable `hermes-lint-report/2`
//! document, `--baseline bench_baselines/lint_baseline.json` for the
//! debt ratchet, `--changed` to narrow reporting to files changed versus
//! a git ref, and `--explain <rule>` for a rule's rationale and fix.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod engine;
pub mod flow;
pub mod lexer;
pub mod manifest;
pub mod parser;
pub mod report;
pub mod suppress;

use std::fmt;

/// The lint rules, in the order they are documented and reported.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// R1 — wall clock and unseeded hash collections are forbidden.
    Determinism,
    /// R2 — panicking calls need an adjacent `INVARIANT:` justification.
    PanicPolicy,
    /// R3 — every crate root forbids `unsafe_code`.
    UnsafeForbid,
    /// R4 — all dependencies are in-tree workspace path deps.
    Hermeticity,
    /// R5 — telemetry names match the checked-in registry, both ways.
    TelemetryRegistry,
    /// R6 — experiment binaries go through `hermes_bench::run_experiment`.
    ExpContract,
    /// R7 — every seeded RNG stream mixes a named `*_SALT` constant or a
    /// seed parameter; no raw literal seeds, no cross-crate stream sharing.
    RngStreamIsolation,
    /// R8 — device-mutating `HermesSwitch` methods pair with an intent
    /// hook on every path from the public API.
    IntentPairing,
    /// R9 — `Result`s carrying `TcamError`/`HermesError` may not be
    /// discarded via `let _ =` or `.ok()` without an `INVARIANT:` comment.
    SwallowedDeviceError,
    /// R10 — telemetry names must be string literals (no `format!`).
    LiteralMetricNames,
    /// S1 — malformed or reason-less suppression directives.
    Suppression,
}

/// All rules, in reporting order.
pub const ALL_RULES: [Rule; 11] = [
    Rule::Determinism,
    Rule::PanicPolicy,
    Rule::UnsafeForbid,
    Rule::Hermeticity,
    Rule::TelemetryRegistry,
    Rule::ExpContract,
    Rule::RngStreamIsolation,
    Rule::IntentPairing,
    Rule::SwallowedDeviceError,
    Rule::LiteralMetricNames,
    Rule::Suppression,
];

impl Rule {
    /// Short id (`R1`…`R6`, `S1`).
    pub fn id(&self) -> &'static str {
        match self {
            Rule::Determinism => "R1",
            Rule::PanicPolicy => "R2",
            Rule::UnsafeForbid => "R3",
            Rule::Hermeticity => "R4",
            Rule::TelemetryRegistry => "R5",
            Rule::ExpContract => "R6",
            Rule::RngStreamIsolation => "R7",
            Rule::IntentPairing => "R8",
            Rule::SwallowedDeviceError => "R9",
            Rule::LiteralMetricNames => "R10",
            Rule::Suppression => "S1",
        }
    }

    /// Human-readable rule name.
    pub fn name(&self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::PanicPolicy => "panic-policy",
            Rule::UnsafeForbid => "unsafe-forbid",
            Rule::Hermeticity => "hermeticity",
            Rule::TelemetryRegistry => "telemetry-registry",
            Rule::ExpContract => "exp-contract",
            Rule::RngStreamIsolation => "rng-stream-isolation",
            Rule::IntentPairing => "intent-pairing",
            Rule::SwallowedDeviceError => "swallowed-device-errors",
            Rule::LiteralMetricNames => "literal-metric-names",
            Rule::Suppression => "suppression",
        }
    }

    /// One-line description for the report.
    pub fn description(&self) -> &'static str {
        match self {
            Rule::Determinism => {
                "Instant/SystemTime/HashMap/HashSet forbidden outside the allowlist: \
                 seeded runs must stay byte-reproducible"
            }
            Rule::PanicPolicy => {
                "unwrap/expect/panic!/unreachable! in non-test code requires an \
                 adjacent INVARIANT: comment"
            }
            Rule::UnsafeForbid => "every crate root must carry #![forbid(unsafe_code)]",
            Rule::Hermeticity => {
                "every Cargo.toml dependency must be a workspace path dep; \
                 Cargo.lock must contain no external packages"
            }
            Rule::TelemetryRegistry => {
                "every metric/span name used in code must appear in \
                 crates/telemetry/registry.txt, and vice versa"
            }
            Rule::ExpContract => {
                "every exp_* binary must run through hermes_bench::run_experiment \
                 (which provides --out and panic containment)"
            }
            Rule::RngStreamIsolation => {
                "seed_from_u64 must mix a named *_SALT constant or a seed \
                 variable; raw literal seeds and cross-crate stream sharing \
                 couple subsystems' random streams"
            }
            Rule::IntentPairing => {
                "HermesSwitch methods that mutate the physical table must \
                 record the matching intent op on every path from the public \
                 API, or carry an INVARIANT: justification"
            }
            Rule::SwallowedDeviceError => {
                "Results carrying TcamError/HermesError may not be discarded \
                 via `let _ =` or `.ok()` without an INVARIANT: comment — \
                 device faults must reach recovery"
            }
            Rule::LiteralMetricNames => {
                "telemetry names must be string literals (no format! or \
                 runtime concatenation) so the R5 registry check stays sound"
            }
            Rule::Suppression => "a hermes-lint suppression must parse and carry a reason",
        }
    }

    /// Looks a rule up by id (`R1`) or name (`determinism`).
    pub fn parse(s: &str) -> Option<Rule> {
        ALL_RULES
            .into_iter()
            .find(|r| r.id().eq_ignore_ascii_case(s) || r.name().eq_ignore_ascii_case(s))
    }

    /// Long-form rationale for `--explain`: why the rule exists, the
    /// invariant it guards, and a minimal fix example.
    pub fn explain(&self) -> &'static str {
        match self {
            Rule::Determinism => {
                "Why: seeded experiment runs must replay byte-for-byte; wall clocks and\n\
                 unseeded hash iteration order differ across runs and machines.\n\
                 Guards: telemetry/report byte-determinism (DESIGN.md \"Observability\").\n\
                 Fix:\n\
                 -    let mut m = HashMap::new();\n\
                 +    let mut m = BTreeMap::new();\n\
                 Wall-clock timing goes through hermes_util::bench::Stopwatch."
            }
            Rule::PanicPolicy => {
                "Why: a panic reachable from a device fault takes down the control plane\n\
                 the paper's recovery machinery is supposed to keep alive.\n\
                 Guards: no-panic-on-fault (DESIGN.md §7).\n\
                 Fix:\n\
                 +    // INVARIANT: index bounded by the check above\n\
                      let rule = rules[idx].unwrap();\n\
                 or return a Result instead of unwrapping."
            }
            Rule::UnsafeForbid => {
                "Why: the workspace is pure safe Rust; one unsafe block would undermine\n\
                 the memory-safety argument every other invariant rests on.\n\
                 Guards: #![forbid(unsafe_code)] in every crate root.\n\
                 Fix: add `#![forbid(unsafe_code)]` at the top of src/lib.rs / src/main.rs."
            }
            Rule::Hermeticity => {
                "Why: the build must work offline with zero external crates — every\n\
                 dependency is an in-tree workspace path dep (README \"Hermetic build\").\n\
                 Guards: reproducible offline CI.\n\
                 Fix:\n\
                 -    rand = \"0.8\"\n\
                 +    hermes-util = { path = \"../util\" }   # in-tree PRNG"
            }
            Rule::TelemetryRegistry => {
                "Why: metric names are stringly typed; a typo would silently fork the\n\
                 hermes-bench-report/1 schema and break baseline comparisons.\n\
                 Guards: code <-> crates/telemetry/registry.txt, both directions.\n\
                 Fix: add `counter tcam.ops` to the registry, or delete the stale entry."
            }
            Rule::ExpContract => {
                "Why: every exp_* binary must emit a traceable BENCH_<stem>.json and\n\
                 contain panics; run_experiment provides --out, telemetry arming and\n\
                 panic containment.\n\
                 Guards: the perf-gate baseline pipeline (scripts/ci.sh perfgate).\n\
                 Fix: fn main() -> ExitCode { hermes_bench::run_experiment(\"exp_foo\", run) }"
            }
            Rule::RngStreamIsolation => {
                "Why: two subsystems seeding from the same raw literal draw the same\n\
                 stream — faults, workloads and lane shuffles silently correlate, and\n\
                 chaos coverage collapses.\n\
                 Guards: per-subsystem stream isolation (CRASH_STREAM_SALT pattern,\n\
                 DESIGN.md §12).\n\
                 Fix:\n\
                 -    let rng = StdRng::seed_from_u64(7);\n\
                 +    const WORKLOAD_STREAM_SALT: u64 = 7;\n\
                 +    let rng = StdRng::seed_from_u64(WORKLOAD_STREAM_SALT);\n\
                 or mix a run seed: seed_from_u64(seed ^ CRASH_STREAM_SALT)."
            }
            Rule::IntentPairing => {
                "Why: resync rebuilds switch state from the intent checkpoint; a device\n\
                 mutation that skips the intent hook makes `intent == logical` drift and\n\
                 crash recovery restores the wrong table.\n\
                 Guards: the intent-checkpoint discipline (DESIGN.md §12).\n\
                 Fix: call self.intent.record(IntentOp::...) on the mutating path, or\n\
                 document the chokepoint:\n\
                 +    // INVARIANT: intent-neutral chokepoint; every caller records intent\n\
                      fn dev_apply(&mut self, op: TableOp) -> ... { self.device.apply(op) }"
            }
            Rule::SwallowedDeviceError => {
                "Why: a discarded TcamError/HermesError is a device fault that recovery\n\
                 never sees — the journal, retry and resync machinery only work when\n\
                 errors propagate.\n\
                 Guards: faults-reach-recovery (DESIGN.md §7).\n\
                 Fix:\n\
                 -    let _ = scratch.delete(id);\n\
                 +    // INVARIANT: replay mirrors the sequential path; a failed op\n\
                 +    // contributes zero shifts by design\n\
                 +    let _ = scratch.delete(id);\n\
                 or route it: self.journal.push(scratch.delete(id)?)."
            }
            Rule::LiteralMetricNames => {
                "Why: R5 matches telemetry names against the registry textually; a name\n\
                 built with format! is invisible to the check and can drift or explode\n\
                 cardinality at runtime.\n\
                 Guards: soundness of the R5 registry check.\n\
                 Fix:\n\
                 -    telemetry::counter(&format!(\"lane.{}\", i), 1);\n\
                 +    telemetry::counter(\"fleet.lane_ops\", 1);   // one registered name\n\
                 Dispatch through match arms of literals (Route::metric_name pattern)\n\
                 and suppress with the resolved names listed in the reason."
            }
            Rule::Suppression => {
                "Why: a waiver that does not say why the invariant still holds is a\n\
                 silent hole in the lint; the reason keeps the report auditable.\n\
                 Fix: // hermes-lint: allow(R1, reason = \"lookup-only; order never observed\")"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.id(), self.name())
    }
}

/// One lint finding, pointing at a workspace-relative file position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// A suppression that was honoured, echoed into the report so waived
/// invariants stay visible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppliedSuppression {
    /// Workspace-relative path.
    pub file: String,
    /// Line of the directive.
    pub line: usize,
    /// Rule waived.
    pub rule: Rule,
    /// The stated reason.
    pub reason: String,
    /// `true` for `allow-file` directives.
    pub file_scope: bool,
}

/// Result of linting a file tree.
#[derive(Clone, Debug, Default)]
pub struct LintOutcome {
    /// Findings, sorted by (file, line, col, rule).
    pub findings: Vec<Diagnostic>,
    /// Suppression directives found (whether or not anything matched).
    pub suppressions: Vec<AppliedSuppression>,
    /// Number of files scanned (`.rs` + manifests + registry).
    pub files_scanned: usize,
}

impl LintOutcome {
    /// `true` when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}
