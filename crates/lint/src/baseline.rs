//! The debt ratchet: committed per-rule finding counts that may only go
//! down.
//!
//! `bench_baselines/lint_baseline.json` records how many findings each
//! rule is *allowed* to have. `hermes-lint --workspace --baseline <path>`
//! exits 0 as long as no rule exceeds its budget — so a new rule can land
//! with honest debt instead of demanding a same-PR workspace-wide sweep —
//! and CI fails the moment a PR adds a finding. When counts drop below
//! the baseline the tool says so: refresh with
//! `scripts/refresh_baselines.sh` (or `--write-baseline`) to lock in the
//! progress, the same workflow the perf-gate baselines use.

use crate::{LintOutcome, ALL_RULES};
use hermes_util::json::Json;
use std::collections::BTreeMap;

/// Schema identifier stamped into the baseline document.
pub const SCHEMA: &str = "hermes-lint-baseline/1";

/// Per-rule finding counts of an outcome, keyed by rule id, every rule
/// present (zero included) so diffs of the committed file stay total.
pub fn counts(outcome: &LintOutcome) -> Vec<(&'static str, usize)> {
    ALL_RULES
        .iter()
        .map(|r| {
            (
                r.id(),
                outcome.findings.iter().filter(|f| f.rule == *r).count(),
            )
        })
        .collect()
}

/// Renders the outcome's counts as the committed baseline document.
pub fn render(outcome: &LintOutcome) -> String {
    let rules = counts(outcome)
        .into_iter()
        .map(|(id, n)| (id, Json::Int(n as i128)));
    let doc = Json::obj([
        ("schema", Json::Str(SCHEMA.to_string())),
        ("rules", Json::obj(rules)),
    ]);
    format!("{}\n", doc.to_string())
}

/// Parses a baseline document into rule-id → budget.
pub fn parse(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let doc = Json::parse(text).map_err(|e| format!("invalid baseline JSON: {e:?}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(SCHEMA) => {}
        other => return Err(format!("unexpected baseline schema {other:?}")),
    }
    let Some(Json::Obj(rules)) = doc.get("rules") else {
        return Err("baseline has no `rules` object".to_string());
    };
    let mut out = BTreeMap::new();
    for (id, v) in rules {
        let n = v
            .as_f64()
            .filter(|n| *n >= 0.0)
            .ok_or_else(|| format!("baseline budget for {id} is not a count"))?;
        out.insert(id.clone(), n as usize);
    }
    Ok(out)
}

/// The result of comparing an outcome against a baseline.
#[derive(Clone, Debug, Default)]
pub struct Compare {
    /// Rules over budget: `(rule id, found, budget)`. Non-empty ⇒ fail.
    pub regressions: Vec<(String, usize, usize)>,
    /// Rules under budget: `(rule id, found, budget)` — the baseline is
    /// stale and should be ratcheted down.
    pub improvements: Vec<(String, usize, usize)>,
}

impl Compare {
    /// `true` when no rule exceeds its budget.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares per-rule counts against budgets. A rule missing from the
/// baseline has budget zero.
pub fn compare(outcome: &LintOutcome, budgets: &BTreeMap<String, usize>) -> Compare {
    let mut cmp = Compare::default();
    for (id, found) in counts(outcome) {
        let budget = budgets.get(id).copied().unwrap_or(0);
        if found > budget {
            cmp.regressions.push((id.to_string(), found, budget));
        } else if found < budget {
            cmp.improvements.push((id.to_string(), found, budget));
        }
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Diagnostic, Rule};

    fn outcome_with(rules: &[Rule]) -> LintOutcome {
        LintOutcome {
            findings: rules
                .iter()
                .map(|r| Diagnostic {
                    file: "crates/x/src/lib.rs".into(),
                    line: 1,
                    col: 1,
                    rule: *r,
                    message: "m".into(),
                })
                .collect(),
            suppressions: Vec::new(),
            files_scanned: 1,
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let out = outcome_with(&[Rule::SwallowedDeviceError, Rule::SwallowedDeviceError]);
        let text = render(&out);
        assert!(text.starts_with("{\"schema\":\"hermes-lint-baseline/1\""));
        let budgets = parse(&text).unwrap();
        assert_eq!(budgets.get("R9"), Some(&2));
        assert_eq!(budgets.get("R1"), Some(&0));
        assert_eq!(budgets.len(), ALL_RULES.len());
    }

    #[test]
    fn ratchet_allows_equal_and_fewer_flags_more() {
        let baseline = parse(&render(&outcome_with(&[Rule::SwallowedDeviceError]))).unwrap();

        let same = compare(&outcome_with(&[Rule::SwallowedDeviceError]), &baseline);
        assert!(same.ok() && same.improvements.is_empty());

        let fewer = compare(&outcome_with(&[]), &baseline);
        assert!(fewer.ok());
        assert_eq!(fewer.improvements, vec![("R9".to_string(), 0, 1)]);

        let more = compare(
            &outcome_with(&[Rule::SwallowedDeviceError, Rule::SwallowedDeviceError]),
            &baseline,
        );
        assert!(!more.ok());
        assert_eq!(more.regressions, vec![("R9".to_string(), 2, 1)]);
    }

    #[test]
    fn unknown_rule_has_zero_budget_and_bad_docs_error() {
        let budgets = BTreeMap::new();
        let cmp = compare(&outcome_with(&[Rule::Determinism]), &budgets);
        assert!(!cmp.ok());

        assert!(parse("{}").is_err());
        assert!(parse("{\"schema\":\"hermes-lint-baseline/1\"}").is_err());
        assert!(parse("not json").is_err());
    }
}
