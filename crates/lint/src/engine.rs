//! The rule engine: walks lexed token streams and manifests over a file
//! tree and produces [`Diagnostic`]s.
//!
//! The engine operates on an in-memory tree of `(relative path, content)`
//! pairs so fixtures can lint synthetic workspaces; [`load_workspace`]
//! reads the real one from disk.

use crate::flow::{self, FlowFile};
use crate::lexer::{lex, TokKind, Token};
use crate::manifest;
use crate::parser::{self, ParsedFile};
use crate::suppress::{self, Directive};
use crate::{AppliedSuppression, Diagnostic, LintOutcome, Rule};
use std::collections::BTreeSet;
use std::path::Path;

/// Workspace-relative path of the telemetry name registry (R5's source of
/// truth).
pub const REGISTRY_PATH: &str = "crates/telemetry/registry.txt";

/// R1's explicit allowlist: `(path, identifier, why)`. The lint reports
/// any other use of a banned primitive.
pub const R1_ALLOWLIST: &[(&str, &str, &str)] = &[
    (
        "crates/util/src/bench.rs",
        "Instant",
        "the bench timer harness is the workspace's single sanctioned wall-clock site; \
         experiment code reaches it through hermes_util::bench::Stopwatch",
    ),
    (
        "crates/util/src/bench.rs",
        "SystemTime",
        "reserved alongside Instant for the wall-clock harness",
    ),
];

/// Identifiers banned by R1 outside the allowlist.
const R1_BANNED: &[(&str, &str)] = &[
    ("Instant", "wall-clock time breaks seeded reproducibility; use SimTime or route through hermes_util::bench::Stopwatch"),
    ("SystemTime", "wall-clock time breaks seeded reproducibility; use SimTime"),
    ("HashMap", "unseeded hash iteration order varies across runs; use BTreeMap or suppress with the reason iteration order is never observed"),
    ("HashSet", "unseeded hash iteration order varies across runs; use BTreeSet or suppress with the reason iteration order is never observed"),
];

/// Lints an in-memory file tree. Paths must be workspace-relative with
/// forward slashes. Findings come back sorted and deduplicated;
/// suppressed findings are dropped and the honoured directives echoed.
pub fn lint_tree(files: &[(String, String)]) -> LintOutcome {
    let mut findings: Vec<Diagnostic> = Vec::new();
    let mut suppressions: Vec<AppliedSuppression> = Vec::new();
    let mut uses: Vec<TelemetryUse> = Vec::new();
    let mut literals: Vec<String> = Vec::new();
    let mut registry_text: Option<&str> = None;
    // Per-file directive inventory and parsed items, for the cross-file
    // passes (R5 registry, R7–R10 flow) that run after the loop.
    let mut directives: Vec<(String, Vec<Directive>)> = Vec::new();
    let mut parsed: Vec<ParsedEntry> = Vec::new();

    for (path, text) in files {
        if path == REGISTRY_PATH {
            registry_text = Some(text);
            continue;
        }
        if path.ends_with("Cargo.toml") {
            findings.extend(manifest::check_cargo_toml(path, text));
            continue;
        }
        if path.ends_with("Cargo.lock") {
            findings.extend(manifest::check_cargo_lock(path, text));
            continue;
        }
        if !path.ends_with(".rs") {
            continue;
        }
        let file = lint_rust_file(path, text);
        findings.extend(file.findings);
        uses.extend(file.uses);
        literals.extend(file.literals);
        parsed.push((path.clone(), file.parsed, file.test_regions));
        // Apply this file's suppressions to this file's findings only.
        let (kept, applied) = apply_suppressions(findings, path, &file.directives);
        findings = kept;
        suppressions.extend(applied);
        directives.push((path.clone(), file.directives));
    }

    // R5 is cross-file: compare collected uses against the registry. The
    // check only engages for trees that carry telemetry call sites or a
    // registry file, so synthetic fixture trees stay self-contained.
    if registry_text.is_some() || !uses.is_empty() {
        let (mut r5, applied) = check_registry(registry_text, &uses, &literals, files);
        // Registry findings at use sites may carry their own suppressions.
        suppressions.extend(applied);
        findings.append(&mut r5);
    }

    // R7–R10: the flow-sensitive pass over parsed items (DESIGN.md §9).
    let flow_files: Vec<FlowFile<'_>> = parsed
        .iter()
        .map(|(path, parsed, test_regions)| FlowFile {
            path,
            parsed,
            is_test: is_test_like(path),
            test_regions,
        })
        .collect();
    let mut flow_findings = flow::check(&flow_files, &registry_subsystems(registry_text));
    for (path, ds) in &directives {
        let (kept, applied) = apply_suppressions(flow_findings, path, ds);
        flow_findings = kept;
        suppressions.extend(applied);
    }
    findings.append(&mut flow_findings);

    findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
    });
    findings.dedup();
    suppressions.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    // The cross-file R5 pass re-parses directives from files it touches;
    // a directive echoed by both passes is one waiver, not two.
    suppressions.dedup();
    LintOutcome {
        findings,
        suppressions,
        files_scanned: files.len(),
    }
}

/// Loads the workspace tree from disk: every `.rs`, `Cargo.toml`,
/// `Cargo.lock` and the telemetry registry under `root`, skipping
/// `target/` and dot-directories. Paths are returned workspace-relative,
/// sorted, with forward slashes.
pub fn load_workspace(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `fixtures` holds the lint's own golden corpus — synthetic
            // trees full of intentional violations, linted by the golden
            // tests in isolation, never as part of the workspace.
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs")
            || name == "Cargo.toml"
            || name == "Cargo.lock"
            || name == "registry.txt"
        {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, std::fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

/// Path, parsed items, and test regions of one scanned `.rs` file.
type ParsedEntry = (String, ParsedFile, Vec<(usize, usize)>);

/// One telemetry name used in code, with the site for diagnostics.
#[derive(Clone, Debug)]
struct TelemetryUse {
    kind: &'static str,
    name: String,
    file: String,
    line: usize,
    col: usize,
}

struct FileScan {
    findings: Vec<Diagnostic>,
    directives: Vec<Directive>,
    uses: Vec<TelemetryUse>,
    literals: Vec<String>,
    parsed: ParsedFile,
    test_regions: Vec<(usize, usize)>,
}

/// `true` for files whose whole content is test/bench/example code —
/// exempt from R1/R2 (they may use wall clocks and unwrap freely).
pub fn is_test_like(path: &str) -> bool {
    path.split('/').any(|seg| {
        seg == "tests" || seg == "benches" || seg == "examples" || seg == "fixtures"
    })
}

/// `true` for crate-root files that must carry `#![forbid(unsafe_code)]`.
pub fn is_crate_root(path: &str) -> bool {
    path.ends_with("src/lib.rs")
        || path.ends_with("src/main.rs")
        || (path.contains("src/bin/") && path.ends_with(".rs"))
}

/// `true` for experiment binaries subject to R6.
pub fn is_exp_binary(path: &str) -> bool {
    path.contains("src/bin/")
        && path
            .rsplit('/')
            .next()
            .is_some_and(|f| f.starts_with("exp_") && f.ends_with(".rs"))
}

fn lint_rust_file(path: &str, text: &str) -> FileScan {
    let tokens = lex(text);
    let mut findings = Vec::new();
    let mut directives = Vec::new();
    let mut uses = Vec::new();
    let mut literals = Vec::new();

    // Suppression directives live in comments.
    for t in tokens.iter().filter(|t| t.is_comment()) {
        let (ds, errs) = suppress::parse_comment(&t.text, path, t.line);
        directives.extend(ds);
        findings.extend(errs);
    }

    let test_lines = test_region_lines(&tokens);
    let in_test = |line: usize| test_lines.iter().any(|&(a, b)| line >= a && line <= b);
    let test_file = is_test_like(path);

    // Code tokens (comments stripped) drive the pattern rules; index
    // arithmetic below is over this filtered stream.
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();

    for (i, t) in code.iter().enumerate() {
        if t.kind == TokKind::Str && !test_file && !in_test(t.line) {
            literals.push(t.text.clone());
        }
        if t.kind != TokKind::Ident {
            continue;
        }
        let exempt = test_file || in_test(t.line);

        // R1 — determinism.
        if !exempt {
            if let Some((_, why)) = R1_BANNED.iter().find(|(b, _)| t.text == *b) {
                let allowed = R1_ALLOWLIST
                    .iter()
                    .any(|(p, ident, _)| *p == path && t.text == *ident);
                if !allowed {
                    findings.push(Diagnostic {
                        file: path.to_string(),
                        line: t.line,
                        col: t.col,
                        rule: Rule::Determinism,
                        message: format!("nondeterministic primitive `{}`: {}", t.text, why),
                    });
                }
            }
        }

        // R2 — panic policy.
        if !exempt {
            let is_method = |name: &str| {
                t.text == name
                    && i > 0
                    && code[i - 1].is_punct('.')
                    && code.get(i + 1).is_some_and(|n| n.is_punct('('))
            };
            let is_macro = |name: &str| {
                t.text == name && code.get(i + 1).is_some_and(|n| n.is_punct('!'))
            };
            let call = if is_method("unwrap") {
                Some(".unwrap()")
            } else if is_method("expect") {
                Some(".expect(")
            } else if is_macro("panic") {
                Some("panic!")
            } else if is_macro("unreachable") {
                Some("unreachable!")
            } else {
                None
            };
            if let Some(call) = call {
                if !has_invariant_justification(&tokens, &code, i, t.line) {
                    findings.push(Diagnostic {
                        file: path.to_string(),
                        line: t.line,
                        col: t.col,
                        rule: Rule::PanicPolicy,
                        message: format!(
                            "`{call}` without an adjacent `INVARIANT:` comment: either \
                             document why the panic is unreachable or return a Result"
                        ),
                    });
                }
            }
        }

        // R5 — collect telemetry call sites (everywhere, including bins;
        // cfg(test) regions are exempt like R1/R2).
        if !exempt {
            if let Some(u) = telemetry_use_at(&code, i, path) {
                uses.push(u);
            }
        }
    }

    // R3 — crate roots must forbid unsafe code.
    if is_crate_root(path) && !has_forbid_unsafe(&code) {
        findings.push(Diagnostic {
            file: path.to_string(),
            line: 1,
            col: 1,
            rule: Rule::UnsafeForbid,
            message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
        });
    }

    // R6 — experiment binaries go through run_experiment.
    if is_exp_binary(path) {
        findings.extend(check_exp_contract(path, &code));
    }

    FileScan {
        findings,
        directives,
        uses,
        literals,
        parsed: parser::parse_tokens(&tokens),
        test_regions: test_lines,
    }
}

/// Leading name segments of every registry entry (`tcam.ops` → `tcam`),
/// for R10's metric-shaped-string heuristic.
fn registry_subsystems(registry_text: Option<&str>) -> BTreeSet<String> {
    let mut subs = BTreeSet::new();
    let Some(text) = registry_text else {
        return subs;
    };
    for raw in text.lines() {
        let stripped = raw.split('#').next().unwrap_or("").trim();
        let mut parts = stripped.split_whitespace();
        let _kind = parts.next();
        if let Some(name) = parts.next() {
            if let Some(sub) = name.split('.').next() {
                if !sub.is_empty() {
                    subs.insert(sub.to_string());
                }
            }
        }
    }
    subs
}

/// R2 justification: a comment containing `INVARIANT:` on the same line
/// or within the three lines above the call, or an `expect("INVARIANT: …")`
/// message.
fn has_invariant_justification(
    all: &[Token],
    code: &[&Token],
    i: usize,
    line: usize,
) -> bool {
    let lo = line.saturating_sub(3);
    let comment_ok = all
        .iter()
        .any(|t| t.is_comment() && t.line >= lo && t.line <= line && t.text.contains("INVARIANT:"));
    if comment_ok {
        return true;
    }
    // expect("INVARIANT: ...") — the message itself states the invariant.
    code[i].text == "expect"
        && code
            .get(i + 2)
            .is_some_and(|a| a.kind == TokKind::Str && a.text.starts_with("INVARIANT:"))
}

fn has_forbid_unsafe(code: &[&Token]) -> bool {
    code.windows(3).any(|w| {
        w[0].is_ident("forbid") && w[1].is_punct('(') && w[2].is_ident("unsafe_code")
    })
}

fn check_exp_contract(path: &str, code: &[&Token]) -> Vec<Diagnostic> {
    let stem = path
        .rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or_default();
    let mut call = None;
    for (i, t) in code.iter().enumerate() {
        if t.is_ident("run_experiment") && code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            call = Some((t.line, t.col, code.get(i + 2).map(|a| (a.kind, a.text.clone()))));
            break;
        }
    }
    match call {
        None => vec![Diagnostic {
            file: path.to_string(),
            line: 1,
            col: 1,
            rule: Rule::ExpContract,
            message: format!(
                "experiment binary does not call hermes_bench::run_experiment(\"{stem}\", …): \
                 the harness provides --out, telemetry arming and panic containment"
            ),
        }],
        Some((line, col, arg)) => {
            let named_ok =
                matches!(&arg, Some((TokKind::Str, name)) if name == stem);
            if named_ok {
                Vec::new()
            } else {
                vec![Diagnostic {
                    file: path.to_string(),
                    line,
                    col,
                    rule: Rule::ExpContract,
                    message: format!(
                        "run_experiment's name must be the string literal \"{stem}\" \
                         (the file stem), so BENCH_*.json reports are traceable"
                    ),
                }]
            }
        }
    }
}

/// Recognizes `telemetry::counter("name", …)` (and gauge/observe/series/
/// span/span_enter) at code index `i`. Non-literal names yield an R5
/// finding through a sentinel use with an empty name.
fn telemetry_use_at(code: &[&Token], i: usize, path: &str) -> Option<TelemetryUse> {
    let t = code[i];
    let kind = match t.text.as_str() {
        "counter" => "counter",
        "gauge" => "gauge",
        "observe" => "histogram",
        "series" => "series",
        "span" | "span_enter" => "span",
        _ => return None,
    };
    // Must be a path call `telemetry::<f>(` or `hermes_telemetry::<f>(`.
    if i < 3
        || !code[i - 1].is_punct(':')
        || !code[i - 2].is_punct(':')
        || !(code[i - 3].is_ident("telemetry") || code[i - 3].is_ident("hermes_telemetry"))
        || !code.get(i + 1).is_some_and(|n| n.is_punct('('))
    {
        return None;
    }
    let first = code.get(i + 2)?;
    if kind == "span" {
        // span("subsystem", "name", …)
        let comma = code.get(i + 3);
        let second = code.get(i + 4);
        if first.kind == TokKind::Str
            && comma.is_some_and(|c| c.is_punct(','))
            && second.is_some_and(|s| s.kind == TokKind::Str)
        {
            return Some(TelemetryUse {
                kind,
                name: format!("{}.{}", first.text, second?.text),
                file: path.to_string(),
                line: t.line,
                col: t.col,
            });
        }
    } else if first.kind == TokKind::Str {
        return Some(TelemetryUse {
            kind,
            name: first.text.clone(),
            file: path.to_string(),
            line: t.line,
            col: t.col,
        });
    }
    // Dynamic name: flagged so the registry cannot silently drift.
    Some(TelemetryUse {
        kind,
        name: String::new(),
        file: path.to_string(),
        line: t.line,
        col: t.col,
    })
}

/// Lines covered by `#[cfg(test)]`/`#[test]` items, as inclusive ranges.
fn test_region_lines(tokens: &[Token]) -> Vec<(usize, usize)> {
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if code[i].is_punct('#') && code.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Collect the attribute's identifiers up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut idents: Vec<&str> = Vec::new();
            while j < code.len() && depth > 0 {
                let t = code[j];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                } else if t.kind == TokKind::Ident {
                    idents.push(&t.text);
                }
                j += 1;
            }
            let is_test_attr = idents.first() == Some(&"test")
                || (idents.first() == Some(&"cfg") && idents.contains(&"test"));
            if is_test_attr {
                let start_line = code[i].line;
                // Skip any further attributes before the item.
                while j < code.len()
                    && code[j].is_punct('#')
                    && code.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    let mut d = 1usize;
                    let mut k = j + 2;
                    while k < code.len() && d > 0 {
                        if code[k].is_punct('[') {
                            d += 1;
                        } else if code[k].is_punct(']') {
                            d -= 1;
                        }
                        k += 1;
                    }
                    j = k;
                }
                // The item runs to its closing brace (or `;` for
                // brace-less items like `mod tests;` / `use …;`).
                let mut brace = 0usize;
                let mut end_line = code.get(j).map_or(start_line, |t| t.line);
                while j < code.len() {
                    let t = code[j];
                    end_line = t.line;
                    if t.is_punct('{') {
                        brace += 1;
                    } else if t.is_punct('}') {
                        brace -= 1;
                        if brace == 0 {
                            break;
                        }
                    } else if t.is_punct(';') && brace == 0 {
                        break;
                    }
                    j += 1;
                }
                regions.push((start_line, end_line));
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    regions
}

/// Drops findings in `path` covered by a directive; echoes honoured
/// directives (all parsed directives are echoed — an unused waiver is
/// harmless and keeps the report a full inventory of waived invariants).
fn apply_suppressions(
    findings: Vec<Diagnostic>,
    path: &str,
    directives: &[Directive],
) -> (Vec<Diagnostic>, Vec<AppliedSuppression>) {
    let kept = findings
        .into_iter()
        .filter(|f| {
            !(f.file == path
                && f.rule != Rule::Suppression
                && directives.iter().any(|d| d.covers(f.rule, f.line)))
        })
        .collect();
    let applied = directives
        .iter()
        .flat_map(|d| {
            d.rules.iter().map(|&rule| AppliedSuppression {
                file: path.to_string(),
                line: d.line,
                rule,
                reason: d.reason.clone(),
                file_scope: d.file_scope,
            })
        })
        .collect();
    (kept, applied)
}

/// R5: both directions of the registry check.
fn check_registry(
    registry_text: Option<&str>,
    uses: &[TelemetryUse],
    literals: &[String],
    files: &[(String, String)],
) -> (Vec<Diagnostic>, Vec<AppliedSuppression>) {
    let mut findings = Vec::new();
    let Some(text) = registry_text else {
        findings.push(Diagnostic {
            file: REGISTRY_PATH.to_string(),
            line: 1,
            col: 1,
            rule: Rule::TelemetryRegistry,
            message: "telemetry names are used in code but the registry file is missing"
                .to_string(),
        });
        return (findings, Vec::new());
    };

    // Parse the registry: `<kind> <name>` per line, `#` comments.
    let mut entries: Vec<(String, String, usize)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let stripped = raw.split('#').next().unwrap_or("").trim();
        if stripped.is_empty() {
            continue;
        }
        let mut parts = stripped.split_whitespace();
        let kind = parts.next().unwrap_or("");
        let name = parts.next().unwrap_or("");
        let ok_kind = matches!(kind, "counter" | "gauge" | "histogram" | "series" | "span");
        if !ok_kind || name.is_empty() || parts.next().is_some() {
            findings.push(Diagnostic {
                file: REGISTRY_PATH.to_string(),
                line,
                col: 1,
                rule: Rule::TelemetryRegistry,
                message: format!(
                    "malformed registry line `{stripped}`: expected `<counter|gauge|histogram|series|span> <name>`"
                ),
            });
            continue;
        }
        if entries.iter().any(|(k, n, _)| k == kind && n == name) {
            findings.push(Diagnostic {
                file: REGISTRY_PATH.to_string(),
                line,
                col: 1,
                rule: Rule::TelemetryRegistry,
                message: format!("duplicate registry entry `{kind} {name}`"),
            });
            continue;
        }
        entries.push((kind.to_string(), name.to_string(), line));
    }

    // Code → registry.
    for u in uses {
        if u.name.is_empty() {
            findings.push(Diagnostic {
                file: u.file.clone(),
                line: u.line,
                col: u.col,
                rule: Rule::LiteralMetricNames,
                message: format!(
                    "telemetry {} with a non-literal name: the registry cannot check it; \
                     suppress with a reason naming the registry entries it resolves to",
                    u.kind
                ),
            });
        } else if !entries.iter().any(|(k, n, _)| *k == u.kind && *n == u.name) {
            findings.push(Diagnostic {
                file: u.file.clone(),
                line: u.line,
                col: u.col,
                rule: Rule::TelemetryRegistry,
                message: format!(
                    "{} `{}` is not in {REGISTRY_PATH}: add `{} {}` so the \
                     hermes-bench-report/1 schema cannot drift by typo",
                    u.kind, u.name, u.kind, u.name
                ),
            });
        }
    }

    // Registry → code: an entry is live if some direct use matches, or its
    // name appears as a string literal in non-test code (covers names
    // dispatched through helpers like Route::metric_name).
    for (kind, name, line) in &entries {
        let direct = uses.iter().any(|u| u.kind == kind && u.name == *name);
        let literal = literals.iter().any(|l| l == name)
            || (kind == "span"
                && name.split_once('.').is_some_and(|(sub, n)| {
                    literals.iter().any(|l| l == sub) && literals.iter().any(|l| l == n)
                }));
        if !direct && !literal {
            findings.push(Diagnostic {
                file: REGISTRY_PATH.to_string(),
                line: *line,
                col: 1,
                rule: Rule::TelemetryRegistry,
                message: format!(
                    "registry entry `{kind} {name}` is not emitted anywhere: remove it or \
                     restore the instrumentation"
                ),
            });
        }
    }

    // Suppressions for R5 findings at use sites live in the source files;
    // re-run the directive pass for files that own findings.
    let mut applied = Vec::new();
    let owners: Vec<String> = findings.iter().map(|f| f.file.clone()).collect();
    for (path, text) in files {
        if !owners.contains(path) || !path.ends_with(".rs") {
            continue;
        }
        let mut directives = Vec::new();
        for t in lex(text).iter().filter(|t| t.is_comment()) {
            let (ds, _) = suppress::parse_comment(&t.text, path, t.line);
            directives.extend(ds);
        }
        let (kept, ap) = apply_suppressions(findings, path, &directives);
        findings = kept;
        applied.extend(ap);
    }
    (findings, applied)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(files: &[(&str, &str)]) -> Vec<(String, String)> {
        files
            .iter()
            .map(|(p, t)| (p.to_string(), t.to_string()))
            .collect()
    }

    fn rules_fired(outcome: &LintOutcome) -> Vec<Rule> {
        outcome.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn clean_file_is_clean() {
        let out = lint_tree(&tree(&[(
            "crates/x/src/helper.rs",
            "pub fn add(a: u32, b: u32) -> u32 { a + b }\n",
        )]));
        assert!(out.is_clean(), "{:?}", out.findings);
    }

    #[test]
    fn r1_flags_banned_primitives() {
        let out = lint_tree(&tree(&[(
            "crates/x/src/helper.rs",
            "use std::collections::HashMap;\nuse std::time::Instant;\n",
        )]));
        assert_eq!(rules_fired(&out), vec![Rule::Determinism, Rule::Determinism]);
        assert_eq!(out.findings[0].line, 1);
        assert_eq!(out.findings[1].line, 2);
    }

    #[test]
    fn r1_allowlist_and_test_exemptions() {
        // The bench harness may use Instant; test files may use anything.
        let out = lint_tree(&tree(&[
            ("crates/util/src/bench.rs", "use std::time::Instant;\n"),
            ("crates/x/tests/t.rs", "use std::collections::HashMap;\n"),
            (
                "crates/x/src/helper.rs",
                "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n",
            ),
        ]));
        assert!(out.is_clean(), "{:?}", out.findings);
    }

    #[test]
    fn r1_suppression_with_reason() {
        let out = lint_tree(&tree(&[(
            "crates/x/src/helper.rs",
            "// hermes-lint: allow(R1, reason = \"lookup-only\")\nuse std::collections::HashMap;\n",
        )]));
        assert!(out.is_clean(), "{:?}", out.findings);
        assert_eq!(out.suppressions.len(), 1);
        assert_eq!(out.suppressions[0].reason, "lookup-only");
    }

    #[test]
    fn s1_suppression_without_reason_is_a_finding() {
        let out = lint_tree(&tree(&[(
            "crates/x/src/helper.rs",
            "// hermes-lint: allow(R1)\nuse std::collections::HashMap;\n",
        )]));
        // Both the malformed suppression AND the original violation fire
        // (sorted by position: the directive comment precedes the use).
        assert_eq!(rules_fired(&out), vec![Rule::Suppression, Rule::Determinism]);
    }

    #[test]
    fn r2_unwrap_needs_invariant() {
        let src = "pub fn f(v: Vec<u32>) -> u32 {\n    *v.first().unwrap()\n}\n";
        let out = lint_tree(&tree(&[("crates/x/src/helper.rs", src)]));
        assert_eq!(rules_fired(&out), vec![Rule::PanicPolicy]);

        let justified = "pub fn f(v: Vec<u32>) -> u32 {\n    // INVARIANT: caller checked non-empty\n    *v.first().unwrap()\n}\n";
        let out = lint_tree(&tree(&[("crates/x/src/helper.rs", justified)]));
        assert!(out.is_clean(), "{:?}", out.findings);
    }

    #[test]
    fn r2_expect_message_can_state_invariant() {
        let src = "pub fn f(v: Vec<u32>) -> u32 {\n    *v.first().expect(\"INVARIANT: non-empty by construction\")\n}\n";
        let out = lint_tree(&tree(&[("crates/x/src/helper.rs", src)]));
        assert!(out.is_clean(), "{:?}", out.findings);
    }

    #[test]
    fn r2_macros_and_unrelated_idents() {
        let src = "pub fn f(x: u32) {\n    if x > 3 { panic!(\"boom\"); }\n}\npub fn unwrap_like(unwrap: u32) -> u32 { unwrap }\n";
        let out = lint_tree(&tree(&[("crates/x/src/helper.rs", src)]));
        // Only the panic! fires; the ident named `unwrap` without `.`+`(` does not.
        assert_eq!(rules_fired(&out), vec![Rule::PanicPolicy]);
        assert_eq!(out.findings[0].line, 2);
    }

    #[test]
    fn r2_exempts_test_mods_and_test_files() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        let out = lint_tree(&tree(&[
            ("crates/x/src/helper.rs", src),
            ("crates/x/benches/b.rs", "fn main() { Some(1).unwrap(); }\n"),
        ]));
        assert!(out.is_clean(), "{:?}", out.findings);
    }

    #[test]
    fn r3_crate_roots_must_forbid_unsafe() {
        let out = lint_tree(&tree(&[
            ("crates/x/src/lib.rs", "pub fn f() {}\n"),
            ("crates/y/src/lib.rs", "#![forbid(unsafe_code)]\npub fn g() {}\n"),
            ("crates/x/src/helper.rs", "pub fn h() {}\n"),
        ]));
        assert_eq!(rules_fired(&out), vec![Rule::UnsafeForbid]);
        assert_eq!(out.findings[0].file, "crates/x/src/lib.rs");
    }

    #[test]
    fn r4_external_dep_flagged() {
        let toml = "[package]\nname = \"x\"\n\n[dependencies]\nserde = \"1.0\"\nhermes-util = { workspace = true }\n";
        let out = lint_tree(&tree(&[("crates/x/Cargo.toml", toml)]));
        assert_eq!(rules_fired(&out), vec![Rule::Hermeticity]);
        assert!(out.findings[0].message.contains("serde"));
    }

    #[test]
    fn r5_name_must_be_registered_both_ways() {
        let src = "pub fn f() { hermes_telemetry::counter(\"tcam.ops\", 1); }\n";
        let registry = "counter tcam.ops\ncounter tcam.ghost\n";
        let out = lint_tree(&tree(&[
            ("crates/x/src/helper.rs", src),
            (REGISTRY_PATH, registry),
        ]));
        assert_eq!(rules_fired(&out), vec![Rule::TelemetryRegistry]);
        assert!(out.findings[0].message.contains("tcam.ghost"));

        // Unregistered use direction.
        let out = lint_tree(&tree(&[
            ("crates/x/src/helper.rs", src),
            (REGISTRY_PATH, "counter other.c\n# but other.c is covered by literal? no\n"),
        ]));
        let fired = rules_fired(&out);
        assert!(fired.iter().all(|r| *r == Rule::TelemetryRegistry));
        assert_eq!(fired.len(), 2, "{:?}", out.findings);
    }

    #[test]
    fn r5_span_names_and_dynamic_names() {
        let src = "pub fn f(n: &'static str) {\n    let s = hermes_telemetry::span_enter(\"netsim\", \"te_tick\", 0);\n    s.end(1);\n    hermes_telemetry::counter(n, 1);\n}\n";
        let registry = "span netsim.te_tick\n";
        let out = lint_tree(&tree(&[
            ("crates/x/src/helper.rs", src),
            (REGISTRY_PATH, registry),
        ]));
        // Dynamic names are R10's finding; the span itself is registered.
        assert_eq!(rules_fired(&out), vec![Rule::LiteralMetricNames]);
        assert!(out.findings[0].message.contains("non-literal"));
    }

    #[test]
    fn r5_registry_entry_live_via_string_literal() {
        // Names dispatched through a helper still count as live if the
        // literal appears in code (Route::metric_name pattern).
        let src = "pub fn name(x: bool) -> &'static str {\n    if x { \"gk.route_a\" } else { \"gk.route_b\" }\n}\n";
        let registry = "counter gk.route_a\ncounter gk.route_b\n";
        let out = lint_tree(&tree(&[
            ("crates/x/src/helper.rs", src),
            (REGISTRY_PATH, registry),
        ]));
        assert!(out.is_clean(), "{:?}", out.findings);
    }

    #[test]
    fn r6_exp_binary_contract() {
        let bad = "fn main() { println!(\"hi\"); }\n";
        let good = "#![forbid(unsafe_code)]\nfn main() -> std::process::ExitCode {\n    hermes_bench::run_experiment(\"exp_fig99\", run)\n}\nfn run() {}\n";
        let out = lint_tree(&tree(&[("crates/bench/src/bin/exp_fig98.rs", bad)]));
        let fired = rules_fired(&out);
        assert!(fired.contains(&Rule::ExpContract), "{:?}", out.findings);

        let out = lint_tree(&tree(&[("crates/bench/src/bin/exp_fig99.rs", good)]));
        assert!(out.is_clean(), "{:?}", out.findings);

        // Wrong name literal.
        let renamed = good.replace("exp_fig99\"", "exp_other\"");
        let out = lint_tree(&tree(&[(
            "crates/bench/src/bin/exp_fig99.rs",
            renamed.as_str(),
        )]));
        assert_eq!(rules_fired(&out), vec![Rule::ExpContract]);
    }

    #[test]
    fn findings_are_sorted_and_deterministic() {
        let files = tree(&[
            (
                "crates/b/src/lib.rs",
                "use std::time::Instant;\nfn f() { Some(1).unwrap(); }\n",
            ),
            ("crates/a/src/lib.rs", "use std::collections::HashMap;\n"),
        ]);
        let a = lint_tree(&files);
        let b = lint_tree(&files);
        assert_eq!(a.findings, b.findings);
        let keys: Vec<(&String, usize)> =
            a.findings.iter().map(|f| (&f.file, f.line)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
