//! The flow-sensitive rules R7–R10 (DESIGN.md §9).
//!
//! These run over [`crate::parser`] output rather than raw tokens: R7
//! inspects `seed_from_u64` argument shapes and resolves salt constants,
//! R8 walks a per-crate call graph rooted at the public `HermesSwitch`
//! surface, R9 resolves discard sites against the workspace-wide set of
//! error-carrying function signatures, and R10 hunts metric names built
//! at runtime.
//!
//! All four respect the same exemptions as the token rules: test-like
//! files and `#[cfg(test)]` regions are skipped, and an `INVARIANT:`
//! comment within three lines above a site is an accepted justification
//! (mirroring R2).

use crate::lexer::TokKind;
use crate::parser::{Call, DiscardKind, FnItem, ParsedFile};
use crate::{Diagnostic, Rule};
use std::collections::{BTreeMap, BTreeSet};

/// Everything the flow pass needs to know about one `.rs` file.
pub struct FlowFile<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// Parsed items.
    pub parsed: &'a ParsedFile,
    /// Whole file is test-like (`tests/`, `benches/`, …).
    pub is_test: bool,
    /// `#[cfg(test)]`/`#[test]` line ranges inside a non-test file.
    pub test_regions: &'a [(usize, usize)],
}

impl FlowFile<'_> {
    fn exempt(&self, line: usize) -> bool {
        self.is_test
            || self
                .test_regions
                .iter()
                .any(|&(a, b)| line >= a && line <= b)
    }

    /// R2-style justification: an `INVARIANT:` comment on the site's line
    /// or within the three lines above it.
    fn justified(&self, line: usize) -> bool {
        let lo = line.saturating_sub(3);
        self.parsed
            .invariant_lines
            .iter()
            .any(|&l| l >= lo && l <= line)
    }
}

/// The `Self` type whose public surface R8 treats as the mutation roots.
const SWITCH_TYPE: &str = "HermesSwitch";

/// Method names that count as physical-table mutations when called on a
/// `device` receiver.
const DEVICE_MUTATORS: &[&str] = &[
    "insert",
    "delete",
    "modify",
    "modify_action",
    "modify_key",
    "apply",
    "apply_batch",
];

/// Error types whose `Result`s R9 refuses to see discarded.
const DEVICE_ERROR_TYPES: &[&str] = &["TcamError", "HermesError"];

/// Runs R7–R10 over the parsed tree. `registry_subsystems` holds the
/// leading name segments from the telemetry registry (R10's heuristic for
/// metric-shaped `format!` strings only engages for known subsystems).
pub fn check(files: &[FlowFile<'_>], registry_subsystems: &BTreeSet<String>) -> Vec<Diagnostic> {
    let mut findings = Vec::new();
    check_rng_streams(files, &mut findings);
    check_intent_pairing(files, &mut findings);
    check_swallowed_errors(files, &mut findings);
    check_metric_names(files, registry_subsystems, &mut findings);
    findings
}

/// Crate key of a workspace-relative path (`crates/tcam/src/table.rs` →
/// `crates/tcam`).
fn crate_of(path: &str) -> String {
    let segs: Vec<&str> = path.split('/').collect();
    if segs.len() >= 2 && segs[0] == "crates" {
        format!("{}/{}", segs[0], segs[1])
    } else {
        segs[0].to_string()
    }
}

// ---------------------------------------------------------------- R7

fn check_rng_streams(files: &[FlowFile<'_>], findings: &mut Vec<Diagnostic>) {
    // Salt-value resolution: crate -> const name -> numeric value.
    let mut consts: BTreeMap<String, BTreeMap<String, u128>> = BTreeMap::new();
    for f in files {
        let entry = consts.entry(crate_of(f.path)).or_default();
        for c in &f.parsed.consts {
            if let Some(v) = parse_int(&c.value) {
                entry.insert(c.name.clone(), v);
            }
        }
    }

    // Pinned streams (no run-seed variable in the argument): signature ->
    // sites, for the cross-crate sharing check.
    let mut pinned: BTreeMap<String, Vec<(String, usize, usize)>> = BTreeMap::new();

    for f in files {
        let crate_consts = consts.get(&crate_of(f.path));
        for func in &f.parsed.fns {
            for call in &func.calls {
                if call.name != "seed_from_u64" || f.exempt(call.line) {
                    continue;
                }
                let idents: Vec<&str> = call
                    .args
                    .iter()
                    .filter(|(k, _)| matches!(k, TokKind::Ident | TokKind::RawIdent))
                    .map(|(_, t)| t.as_str())
                    .collect();
                let has_salt = idents
                    .iter()
                    .any(|s| s.ends_with("_SALT") || s.ends_with("_salt"));
                let has_var = idents.iter().any(|s| {
                    s.chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
                });
                if !has_salt && !has_var {
                    let msg = if idents.is_empty() {
                        "raw literal seed: name it (`const <SUBSYSTEM>_STREAM_SALT: u64 = …`) \
                         or mix a run-seed variable, so RNG streams stay isolated per subsystem"
                            .to_string()
                    } else {
                        format!(
                            "seed constant `{}` is not named `*_SALT`: rename it so stream \
                             ownership is auditable (CRASH_STREAM_SALT pattern)",
                            idents[0]
                        )
                    };
                    findings.push(Diagnostic {
                        file: f.path.to_string(),
                        line: call.line,
                        col: call.col,
                        rule: Rule::RngStreamIsolation,
                        message: msg,
                    });
                }
                if !has_var {
                    if let Some(sig) = pinned_signature(call, crate_consts) {
                        pinned.entry(sig).or_default().push((
                            f.path.to_string(),
                            call.line,
                            call.col,
                        ));
                    }
                }
            }
        }
    }

    // Cross-crate sharing: the same pinned seed value in two crates means
    // two subsystems draw the same stream.
    for (sig, sites) in &pinned {
        let crates: BTreeSet<String> = sites.iter().map(|(p, _, _)| crate_of(p)).collect();
        if crates.len() < 2 {
            continue;
        }
        for (path, line, col) in sites {
            let other = sites
                .iter()
                .find(|(p, _, _)| crate_of(p) != crate_of(path))
                .map(|(p, l, _)| format!("{p}:{l}"))
                .unwrap_or_default();
            findings.push(Diagnostic {
                file: path.clone(),
                line: *line,
                col: *col,
                rule: Rule::RngStreamIsolation,
                message: format!(
                    "RNG stream seed {sig} is shared across crates (also seeded at {other}): \
                     give each subsystem its own *_SALT value"
                ),
            });
        }
    }
}

/// Canonical signature of a pinned seed argument: numeric literals and
/// resolvable constants are folded to decimal, operators kept. Returns
/// `None` when an identifier cannot be resolved.
fn pinned_signature(call: &Call, consts: Option<&BTreeMap<String, u128>>) -> Option<String> {
    let mut parts = Vec::new();
    for (kind, text) in &call.args {
        match kind {
            TokKind::Num => parts.push(parse_int(text)?.to_string()),
            TokKind::Ident | TokKind::RawIdent => {
                parts.push(consts?.get(text)?.to_string());
            }
            TokKind::Punct => parts.push(text.clone()),
            _ => return None,
        }
    }
    if parts.is_empty() {
        None
    } else {
        Some(parts.join(" "))
    }
}

/// Parses Rust integer literal text (`0x4845_524d`, `7u64`, `0b1010`).
fn parse_int(text: &str) -> Option<u128> {
    let t: String = text.chars().filter(|c| *c != '_').collect();
    let t = t
        .trim_end_matches(|c: char| c.is_ascii_alphabetic())
        .to_string();
    // Put back the radix letter the suffix-trim may have eaten (0x → 0).
    let (radix, digits) = if let Some(d) = text.strip_prefix("0x").or(text.strip_prefix("0X")) {
        (16, d.chars().filter(|c| *c != '_').collect::<String>())
    } else if let Some(d) = text.strip_prefix("0b").or(text.strip_prefix("0B")) {
        (2, d.chars().filter(|c| *c != '_').collect::<String>())
    } else if let Some(d) = text.strip_prefix("0o").or(text.strip_prefix("0O")) {
        (8, d.chars().filter(|c| *c != '_').collect::<String>())
    } else {
        (10, t)
    };
    let digits: String = if radix == 16 {
        digits
            .chars()
            .take_while(|c| c.is_ascii_hexdigit())
            .collect()
    } else {
        digits.chars().take_while(|c| c.is_ascii_digit()).collect()
    };
    if digits.is_empty() {
        return None;
    }
    u128::from_str_radix(&digits, radix).ok()
}

// ---------------------------------------------------------------- R8

fn is_device_mutation(call: &Call) -> bool {
    DEVICE_MUTATORS.contains(&call.name.as_str())
        && call.recv.iter().any(|r| r == "device")
}

fn is_intent_touch(call: &Call) -> bool {
    call.recv.iter().any(|r| r == "intent" || r == "IntentOp")
        || call.name.starts_with("intent")
}

fn check_intent_pairing(files: &[FlowFile<'_>], findings: &mut Vec<Diagnostic>) {
    // Group non-test fns by crate; only crates that implement the switch
    // type participate.
    let mut by_crate: BTreeMap<String, Vec<(&FlowFile<'_>, &FnItem)>> = BTreeMap::new();
    for f in files {
        for func in &f.parsed.fns {
            if f.exempt(func.line) {
                continue;
            }
            by_crate.entry(crate_of(f.path)).or_default().push((f, func));
        }
    }

    for fns in by_crate.values() {
        if !fns
            .iter()
            .any(|(_, func)| func.impl_type.as_deref() == Some(SWITCH_TYPE))
        {
            continue;
        }

        // Node facts.
        let touches_intent: Vec<bool> = fns
            .iter()
            .map(|(_, func)| func.calls.iter().any(is_intent_touch))
            .collect();
        let mutates_device: Vec<bool> = fns
            .iter()
            .map(|(_, func)| func.calls.iter().any(is_device_mutation))
            .collect();

        // Name-resolution tables.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_impl_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (idx, (_, func)) in fns.iter().enumerate() {
            by_name.entry(&func.name).or_default().push(idx);
            if let Some(ty) = &func.impl_type {
                by_impl_name
                    .entry((ty.as_str(), &func.name))
                    .or_default()
                    .push(idx);
            }
        }

        // Edges: self-calls resolve within the impl first, `Type::f` calls
        // by impl type, bare calls by name. Field/variable method calls
        // create no edge — their effects are detected directly above.
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        for (idx, (_, func)) in fns.iter().enumerate() {
            for call in &func.calls {
                let targets: Option<&Vec<usize>> = if call.recv.as_slice() == ["self"] {
                    func.impl_type
                        .as_deref()
                        .and_then(|ty| by_impl_name.get(&(ty, call.name.as_str())))
                        .or_else(|| by_name.get(call.name.as_str()))
                } else if call.recv.is_empty() {
                    by_name.get(call.name.as_str())
                } else if call.recv.len() == 1
                    && call.recv[0].chars().next().is_some_and(|c| c.is_ascii_uppercase())
                {
                    by_impl_name.get(&(call.recv[0].as_str(), call.name.as_str()))
                } else {
                    None
                };
                if let Some(ts) = targets {
                    for &t in ts {
                        if t != idx {
                            edges[idx].push(t);
                        }
                    }
                }
            }
        }

        // Direction 1: a device-mutating switch method with no intent hook
        // must not be reachable from the public surface through
        // intent-free callers.
        let roots: Vec<usize> = fns
            .iter()
            .enumerate()
            .filter(|(_, (_, func))| {
                func.is_pub && func.impl_type.as_deref() == Some(SWITCH_TYPE)
            })
            .map(|(i, _)| i)
            .collect();
        // BFS over intent-free nodes from each intent-free root.
        let mut reached_unguarded = vec![false; fns.len()];
        let mut queue: Vec<usize> = roots
            .iter()
            .copied()
            .filter(|&r| !touches_intent[r])
            .collect();
        for &r in &queue {
            reached_unguarded[r] = true;
        }
        while let Some(n) = queue.pop() {
            for &m in &edges[n] {
                if !touches_intent[m] && !reached_unguarded[m] {
                    reached_unguarded[m] = true;
                    queue.push(m);
                }
            }
        }
        for (idx, (f, func)) in fns.iter().enumerate() {
            if func.impl_type.as_deref() != Some(SWITCH_TYPE) {
                continue;
            }
            if mutates_device[idx]
                && !touches_intent[idx]
                && reached_unguarded[idx]
                && !f.justified(func.line)
            {
                findings.push(Diagnostic {
                    file: f.path.to_string(),
                    line: func.line,
                    col: func.col,
                    rule: Rule::IntentPairing,
                    message: format!(
                        "`{}` mutates the device table and is reachable from the public \
                         HermesSwitch API without an intent hook on the path: record the \
                         matching IntentOp or mark the fn as an intent-neutral chokepoint \
                         with an INVARIANT: comment",
                        func.name
                    ),
                });
            }
        }

        // Direction 2: a switch method that records intent must reach a
        // device mutation — an intent entry with no physical effect makes
        // resync replay ops the device never saw.
        let mut reaches_mutation = mutates_device.clone();
        // Fixed-point over the (small) crate graph.
        loop {
            let mut changed = false;
            for idx in 0..fns.len() {
                if reaches_mutation[idx] {
                    continue;
                }
                if edges[idx].iter().any(|&m| reaches_mutation[m]) {
                    reaches_mutation[idx] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for (idx, (f, func)) in fns.iter().enumerate() {
            if func.impl_type.as_deref() != Some(SWITCH_TYPE) {
                continue;
            }
            let records = func.calls.iter().any(|c| {
                c.name == "record" && c.recv.iter().any(|r| r == "intent")
            });
            if records && !reaches_mutation[idx] && !f.justified(func.line) {
                findings.push(Diagnostic {
                    file: f.path.to_string(),
                    line: func.line,
                    col: func.col,
                    rule: Rule::IntentPairing,
                    message: format!(
                        "`{}` records an intent op but no device mutation is reachable from \
                         it: pair the hook with the physical write or add an INVARIANT: \
                         comment explaining where the write happens",
                        func.name
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------- R9

fn check_swallowed_errors(files: &[FlowFile<'_>], findings: &mut Vec<Diagnostic>) {
    // Workspace-wide set of fn names whose signatures return device
    // errors. Name-granular: precise enough in a workspace that reserves
    // these verbs for table operations.
    let mut err_fns: BTreeSet<&str> = BTreeSet::new();
    for f in files {
        for func in &f.parsed.fns {
            if DEVICE_ERROR_TYPES.iter().any(|t| func.ret.contains(t)) {
                err_fns.insert(&func.name);
            }
        }
    }
    if err_fns.is_empty() {
        return;
    }

    for f in files {
        for func in &f.parsed.fns {
            for d in &func.discards {
                if f.exempt(d.line) || f.justified(d.line) {
                    continue;
                }
                let Some(call) = &d.call else { continue };
                if !err_fns.contains(call.as_str()) {
                    continue;
                }
                let form = match d.kind {
                    DiscardKind::LetUnderscore => "`let _ =`",
                    DiscardKind::OkDrop => "`.ok()`",
                };
                findings.push(Diagnostic {
                    file: f.path.to_string(),
                    line: d.line,
                    col: d.col,
                    rule: Rule::SwallowedDeviceError,
                    message: format!(
                        "{form} discards the device-error Result of `{call}`: route the \
                         error to recovery or add an INVARIANT: comment saying why \
                         dropping it is sound"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------- R10

fn check_metric_names(
    files: &[FlowFile<'_>],
    registry_subsystems: &BTreeSet<String>,
    findings: &mut Vec<Diagnostic>,
) {
    if registry_subsystems.is_empty() {
        return;
    }
    for f in files {
        for func in &f.parsed.fns {
            for call in &func.calls {
                if !call.is_macro || call.name != "format" || f.exempt(call.line) {
                    continue;
                }
                let Some((TokKind::Str, text)) = call.args.first() else {
                    continue;
                };
                if !metric_shaped(text) {
                    continue;
                }
                let subsystem = text.split('.').next().unwrap_or("");
                if registry_subsystems.contains(subsystem) {
                    findings.push(Diagnostic {
                        file: f.path.to_string(),
                        line: call.line,
                        col: call.col,
                        rule: Rule::LiteralMetricNames,
                        message: format!(
                            "`format!(\"{text}\", …)` builds a metric-shaped name in \
                             registered subsystem `{subsystem}`: telemetry names must be \
                             string literals so the registry check stays sound"
                        ),
                    });
                }
            }
        }
    }
}

/// `true` for dotted lowercase names with a `{}` placeholder —
/// `"tcam.lane_{}"` yes, `"scenario {name} done"` no.
fn metric_shaped(s: &str) -> bool {
    if !s.contains('.') || !s.contains('{') {
        return false;
    }
    let ok_char =
        |c: char| c.is_ascii_lowercase() || c.is_ascii_digit() || "._{}".contains(c);
    s.chars().all(ok_char)
        && s.split('.')
            .next()
            .is_some_and(|seg| !seg.is_empty() && seg.chars().all(|c| c.is_ascii_lowercase() || c == '_'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let parsed: Vec<ParsedFile> = files.iter().map(|(_, s)| parse_file(s)).collect();
        let flow: Vec<FlowFile<'_>> = files
            .iter()
            .zip(&parsed)
            .map(|((p, _), parsed)| FlowFile {
                path: p,
                parsed,
                is_test: false,
                test_regions: &[],
            })
            .collect();
        let subs: BTreeSet<String> = ["tcam", "fleet"].iter().map(|s| s.to_string()).collect();
        check(&flow, &subs)
    }

    #[test]
    fn r7_raw_literal_seed_flagged() {
        let out = run(&[(
            "crates/a/src/lib.rs",
            "fn f() { let r = StdRng::seed_from_u64(7); }\n",
        )]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, Rule::RngStreamIsolation);
        assert!(out[0].message.contains("raw literal seed"));
    }

    #[test]
    fn r7_salt_const_and_seed_variable_are_clean() {
        let out = run(&[(
            "crates/a/src/lib.rs",
            "const A_STREAM_SALT: u64 = 7;\n\
             fn f(seed: u64) {\n\
                 let a = StdRng::seed_from_u64(A_STREAM_SALT);\n\
                 let b = StdRng::seed_from_u64(seed ^ 0xbeef);\n\
                 let c = StdRng::seed_from_u64(self.seed);\n\
             }\n",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn r7_uppercase_const_without_salt_suffix_flagged() {
        let out = run(&[(
            "crates/a/src/lib.rs",
            "const JITTER_SEED: u64 = 3;\nfn f() { let r = StdRng::seed_from_u64(JITTER_SEED); }\n",
        )]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("JITTER_SEED"), "{}", out[0].message);
    }

    #[test]
    fn r7_cross_crate_shared_pinned_seed_flagged() {
        let out = run(&[
            (
                "crates/a/src/lib.rs",
                "const A_SALT: u64 = 0x10;\nfn f() { let r = StdRng::seed_from_u64(A_SALT); }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "const B_SALT: u64 = 16;\nfn g() { let r = StdRng::seed_from_u64(B_SALT); }\n",
            ),
        ]);
        // Both sites fire: same resolved value 16 in two crates.
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|d| d.message.contains("shared across crates")));
    }

    #[test]
    fn r8_unpaired_mutation_reachable_from_pub_flagged() {
        let src = "impl HermesSwitch {\n\
             pub fn migrate(&mut self) { self.apply_raw(); }\n\
             fn apply_raw(&mut self) { self.device.apply_batch(ops); }\n\
         }\n";
        let out = run(&[("crates/core/src/switch.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, Rule::IntentPairing);
        assert!(out[0].message.contains("apply_raw"));
    }

    #[test]
    fn r8_intent_on_path_or_invariant_is_clean() {
        let guarded = "impl HermesSwitch {\n\
             pub fn insert(&mut self, r: Rule) {\n\
                 self.intent.record(IntentOp::Install(r));\n\
                 self.dev_apply();\n\
             }\n\
             // INVARIANT: intent-neutral chokepoint; every caller records intent\n\
             fn dev_apply(&mut self) { self.device.apply(op); }\n\
         }\n";
        let out = run(&[("crates/core/src/switch.rs", guarded)]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn r8_intent_record_without_mutation_flagged() {
        let src = "impl HermesSwitch {\n\
             pub fn phantom(&mut self, r: Rule) { self.intent.record(IntentOp::Install(r)); }\n\
             pub fn real(&mut self, r: Rule) {\n\
                 self.intent.record(IntentOp::Install(r));\n\
                 self.device.apply(op);\n\
             }\n\
         }\n";
        let out = run(&[("crates/core/src/switch.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("phantom"));
    }

    #[test]
    fn r9_discarded_device_error_flagged_and_invariant_waives() {
        let src = "impl T {\n\
             fn delete(&mut self, id: u32) -> Result<Rule, TcamError> { Err(TcamError::Missing) }\n\
             fn replay(&mut self) {\n\
                 let _ = self.delete(1);\n\
                 self.delete(2).ok();\n\
                 // INVARIANT: replay mirrors the sequential path\n\
                 let _ = self.delete(3);\n\
             }\n\
         }\n";
        let out = run(&[("crates/tcam/src/table.rs", src)]);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|d| d.rule == Rule::SwallowedDeviceError));
    }

    #[test]
    fn r9_non_error_results_not_flagged() {
        let src = "impl T {\n\
             fn reconcile(&mut self) -> Vec<u32> { Vec::new() }\n\
             fn tick(&mut self) { let _ = self.reconcile(); }\n\
         }\n";
        let out = run(&[("crates/core/src/lib.rs", src)]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn r10_metric_shaped_format_flagged_only_for_registered_subsystems() {
        let src = "fn f(i: usize) {\n\
             let a = format!(\"tcam.lane_{}\", i);\n\
             let b = format!(\"unknown.thing_{}\", i);\n\
             let c = format!(\"{} rules in {}ms\", i, i);\n\
         }\n";
        let out = run(&[("crates/a/src/lib.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, Rule::LiteralMetricNames);
        assert!(out[0].message.contains("tcam.lane_"));
    }

    #[test]
    fn parse_int_handles_radices_and_suffixes() {
        assert_eq!(parse_int("7"), Some(7));
        assert_eq!(parse_int("7u64"), Some(7));
        assert_eq!(parse_int("0x10"), Some(16));
        assert_eq!(parse_int("0x4845_524d"), Some(0x4845_524d));
        assert_eq!(parse_int("0b101"), Some(5));
        assert_eq!(parse_int("0o17"), Some(15));
    }
}
