//! A small Rust lexer producing a token stream with line/column spans.
//!
//! This is not a full Rust front end — it only needs to be precise about
//! the things the lint rules look at: identifiers (including raw
//! `r#ident`), comments (line, nested block, doc), string-ish literals
//! (plain, raw with any `#` depth, byte, char — so banned identifiers
//! inside literals are never misreported), lifetimes vs. char literals,
//! and punctuation. Everything else (numbers, operators) is tokenized
//! coarsely but without ever losing position.

/// What a token is, as far as the lint rules care.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident,
    /// A raw identifier (`r#match`); `text` holds the part after `r#`.
    RawIdent,
    /// A lifetime (`'a`); `text` holds the part after `'`.
    Lifetime,
    /// A string literal (plain, raw or byte); `text` holds the cooked
    /// contents (escapes resolved for plain strings, verbatim for raw).
    Str,
    /// A char or byte literal; `text` holds the raw inside.
    Char,
    /// A numeric literal.
    Num,
    /// A `//` comment (doc or not); `text` holds the full comment.
    LineComment,
    /// A `/* */` comment (doc or not, nesting resolved); full text.
    BlockComment,
    /// A single punctuation byte (`.`, `!`, `(`, `::` comes as two `:`).
    Punct,
}

/// One token with its source position (1-based line and column).
#[derive(Clone, Debug)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what exactly is stored).
    pub text: String,
    /// 1-based line of the token's first byte.
    pub line: usize,
    /// 1-based column (in bytes) of the token's first byte.
    pub col: usize,
}

impl Token {
    /// `true` for comment tokens.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// `true` when this is punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// `true` when this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Byte length of the UTF-8 sequence starting with lead byte `b`.
fn utf8_len(b: u8) -> usize {
    match b {
        0xF0..=0xF7 => 4,
        0xE0..=0xEF => 3,
        0xC0..=0xDF => 2,
        _ => 1,
    }
}

/// Lexes `src` into tokens. Never fails: malformed input degenerates into
/// punctuation tokens rather than an error, so the lint still walks as
/// much of the file as possible.
pub fn lex(src: &str) -> Vec<Token> {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = c.peek() {
        let (line, col) = (c.line, c.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek_at(1) == Some(b'/') => {
                let start = c.pos;
                while c.peek().is_some_and(|b| b != b'\n') {
                    c.bump();
                }
                out.push(Token {
                    kind: TokKind::LineComment,
                    text: src[start..c.pos].to_string(),
                    line,
                    col,
                });
            }
            b'/' if c.peek_at(1) == Some(b'*') => {
                let start = c.pos;
                c.bump();
                c.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (c.peek(), c.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.push(Token {
                    kind: TokKind::BlockComment,
                    text: src[start..c.pos].to_string(),
                    line,
                    col,
                });
            }
            b'r' if c.peek_at(1) == Some(b'"') || c.peek_at(1) == Some(b'#') => {
                // Raw string r"..." / r#"..."# — or a raw identifier r#ident.
                let mut hashes = 0usize;
                while c.peek_at(1 + hashes) == Some(b'#') {
                    hashes += 1;
                }
                if c.peek_at(1 + hashes) == Some(b'"') {
                    c.bump(); // r
                    for _ in 0..hashes {
                        c.bump();
                    }
                    c.bump(); // opening quote
                    let text = lex_raw_body(&mut c, src, hashes);
                    out.push(Token {
                        kind: TokKind::Str,
                        text,
                        line,
                        col,
                    });
                } else if hashes >= 1 && c.peek_at(2).is_some_and(is_ident_start) {
                    c.bump(); // r
                    c.bump(); // #
                    let start = c.pos;
                    while c.peek().is_some_and(is_ident_continue) {
                        c.bump();
                    }
                    out.push(Token {
                        kind: TokKind::RawIdent,
                        text: src[start..c.pos].to_string(),
                        line,
                        col,
                    });
                } else {
                    lex_ident(&mut c, src, &mut out, line, col);
                }
            }
            b'b' if c.peek_at(1) == Some(b'"')
                || (c.peek_at(1) == Some(b'r')
                    && matches!(c.peek_at(2), Some(b'"') | Some(b'#'))) =>
            {
                // b"..." or br#"..."#.
                c.bump(); // b
                if c.peek() == Some(b'r') {
                    let mut hashes = 0usize;
                    while c.peek_at(1 + hashes) == Some(b'#') {
                        hashes += 1;
                    }
                    if c.peek_at(1 + hashes) == Some(b'"') {
                        c.bump(); // r
                        for _ in 0..hashes {
                            c.bump();
                        }
                        c.bump(); // quote
                        let text = lex_raw_body(&mut c, src, hashes);
                        out.push(Token {
                            kind: TokKind::Str,
                            text,
                            line,
                            col,
                        });
                    } else {
                        // `br` not followed by a raw string: treat as ident.
                        lex_ident(&mut c, src, &mut out, line, col);
                    }
                } else {
                    c.bump(); // quote
                    let text = lex_str_body(&mut c);
                    out.push(Token {
                        kind: TokKind::Str,
                        text,
                        line,
                        col,
                    });
                }
            }
            b'b' if c.peek_at(1) == Some(b'\'') => {
                c.bump(); // b
                c.bump(); // quote
                let text = lex_char_body(&mut c);
                out.push(Token {
                    kind: TokKind::Char,
                    text,
                    line,
                    col,
                });
            }
            b'"' => {
                c.bump();
                let text = lex_str_body(&mut c);
                out.push(Token {
                    kind: TokKind::Str,
                    text,
                    line,
                    col,
                });
            }
            b'\'' => {
                // Lifetime ('a not followed by ') vs char literal ('a').
                // The closing-quote probe steps over the full UTF-8 char so
                // multi-byte literals like '→' are not mistaken for lifetimes.
                let one = c.peek_at(1);
                let is_lifetime = one.is_some_and(is_ident_start)
                    && one != Some(b'\\')
                    && c.peek_at(1 + one.map_or(1, utf8_len)) != Some(b'\'');
                if is_lifetime {
                    c.bump(); // '
                    let start = c.pos;
                    while c.peek().is_some_and(is_ident_continue) {
                        c.bump();
                    }
                    out.push(Token {
                        kind: TokKind::Lifetime,
                        text: src[start..c.pos].to_string(),
                        line,
                        col,
                    });
                } else {
                    c.bump();
                    let text = lex_char_body(&mut c);
                    out.push(Token {
                        kind: TokKind::Char,
                        text,
                        line,
                        col,
                    });
                }
            }
            b if b.is_ascii_digit() => {
                let start = c.pos;
                c.bump();
                while let Some(n) = c.peek() {
                    if n.is_ascii_alphanumeric() || n == b'_' {
                        c.bump();
                    } else if n == b'.'
                        && c.peek_at(1).is_some_and(|d| d.is_ascii_digit())
                        && !src[start..c.pos].contains('.')
                    {
                        // One decimal point, but never eat `..` ranges.
                        c.bump();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokKind::Num,
                    text: src[start..c.pos].to_string(),
                    line,
                    col,
                });
            }
            b if is_ident_start(b) => {
                lex_ident(&mut c, src, &mut out, line, col);
            }
            _ => {
                let start = c.pos;
                c.bump();
                out.push(Token {
                    kind: TokKind::Punct,
                    text: src[start..c.pos].to_string(),
                    line,
                    col,
                });
            }
        }
    }
    out
}

fn lex_ident(c: &mut Cursor, src: &str, out: &mut Vec<Token>, line: usize, col: usize) {
    let start = c.pos;
    c.bump();
    while c.peek().is_some_and(is_ident_continue) {
        c.bump();
    }
    out.push(Token {
        kind: TokKind::Ident,
        text: src[start..c.pos].to_string(),
        line,
        col,
    });
}

/// Consumes a raw-string body after the opening quote; returns the
/// verbatim contents (the closing `"###` is consumed, not included).
/// The body is sliced out of `src` so multi-byte UTF-8 stays intact; an
/// unterminated raw string runs to EOF and keeps everything read so far.
fn lex_raw_body(c: &mut Cursor, src: &str, hashes: usize) -> String {
    let start = c.pos;
    loop {
        match c.peek() {
            None => return src[start..c.pos].to_string(),
            Some(b'"') => {
                let mut ok = true;
                for i in 0..hashes {
                    if c.peek_at(1 + i) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    let end = c.pos;
                    c.bump();
                    for _ in 0..hashes {
                        c.bump();
                    }
                    return src[start..end].to_string();
                }
                c.bump();
            }
            Some(_) => {
                c.bump();
            }
        }
    }
}

/// Consumes a plain string body after the opening quote, resolving the
/// escapes the workspace uses (`\"`, `\\`, `\n`, `\t`, `\r`, `\0`,
/// `\x..`/`\u{..}` kept verbatim). Bytes are accumulated and decoded at
/// the end so multi-byte UTF-8 contents survive; an unterminated string
/// runs to EOF.
fn lex_str_body(c: &mut Cursor) -> String {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match c.peek() {
            None => break,
            Some(b'"') => {
                c.bump();
                break;
            }
            Some(b'\\') => {
                c.bump();
                match c.bump() {
                    Some(b'n') => buf.push(b'\n'),
                    Some(b't') => buf.push(b'\t'),
                    Some(b'r') => buf.push(b'\r'),
                    Some(b'0') => buf.push(b'\0'),
                    Some(b'"') => buf.push(b'"'),
                    Some(b'\\') => buf.push(b'\\'),
                    Some(b'\n') => {
                        // Line-continuation escape: skip leading whitespace.
                        while matches!(c.peek(), Some(b' ' | b'\t')) {
                            c.bump();
                        }
                    }
                    Some(other) => {
                        buf.push(b'\\');
                        buf.push(other);
                    }
                    None => break,
                }
            }
            Some(b) => {
                buf.push(b);
                c.bump();
            }
        }
    }
    String::from_utf8_lossy(&buf).into_owned()
}

/// Consumes a char/byte-literal body after the opening quote. Multi-byte
/// chars (`'→'`) are decoded whole; an unterminated literal runs to EOF.
fn lex_char_body(c: &mut Cursor) -> String {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match c.peek() {
            None => break,
            Some(b'\'') => {
                c.bump();
                break;
            }
            Some(b'\\') => {
                buf.push(b'\\');
                c.bump();
                if let Some(e) = c.bump() {
                    buf.push(e);
                }
            }
            Some(b) => {
                buf.push(b);
                c.bump();
            }
        }
    }
    String::from_utf8_lossy(&buf).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = a.unwrap();");
        assert_eq!(toks[0], (TokKind::Ident, "let".into()));
        assert_eq!(toks[3], (TokKind::Ident, "a".into()));
        assert_eq!(toks[4], (TokKind::Punct, ".".into()));
        assert_eq!(toks[5], (TokKind::Ident, "unwrap".into()));
    }

    #[test]
    fn strings_hide_banned_identifiers() {
        let toks = kinds(r#"let s = "HashMap::new() and .unwrap()";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokKind::Ident || (t != "HashMap" && t != "unwrap")));
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Str));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let toks = kinds(r###"let s = r#"quote " inside"#; let t = r"plain";"###);
        let strs: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(strs, [&"quote \" inside".to_string(), &"plain".to_string()]);
    }

    #[test]
    fn raw_string_with_hash_needing_two() {
        let toks = kinds("r##\"body \"# still \"##");
        assert_eq!(toks[0].0, TokKind::Str);
        assert_eq!(toks[0].1, "body \"# still ");
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ tail */ ident");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert!(toks[0].1.contains("inner"));
        assert_eq!(toks[1], (TokKind::Ident, "ident".into()));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#match = r#type;");
        assert_eq!(toks[1], (TokKind::RawIdent, "match".into()));
        assert_eq!(toks[3], (TokKind::RawIdent, "type".into()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(lifetimes, [&"a".to_string(), &"a".to_string()]);
        let chars: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Char)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(chars, [&"x".to_string(), &"\\n".to_string()]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r##"let a = b"bytes"; let b = b'x'; let c = br#"raw"#;"##);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Str && t == "bytes"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "x"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Str && t == "raw"));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = kinds("for i in 0..10 { let f = 1.5; }");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "0"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "10"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "1.5"));
        assert_eq!(
            toks.iter().filter(|(_, t)| t == ".").count(),
            2,
            "the two dots of the range survive as punctuation"
        );
    }

    #[test]
    fn positions_are_one_based_and_track_lines() {
        let toks = lex("a\n  bb\n");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn string_escapes_cooked() {
        let toks = lex(r#""a\nb\"c\\d""#);
        assert_eq!(toks[0].text, "a\nb\"c\\d");
    }

    #[test]
    fn line_continuation_escape() {
        let toks = lex("\"a\\\n   b\"");
        assert_eq!(toks[0].text, "ab");
    }

    #[test]
    fn unicode_string_contents_survive() {
        let toks = lex("let s = \"héllo → wörld\";");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "héllo → wörld"));
    }

    #[test]
    fn unicode_raw_string_contents_survive() {
        let toks = lex("let s = r#\"naïve → done\"#;");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "naïve → done"));
    }

    #[test]
    fn unicode_char_literal_survives() {
        let toks = lex("let c = '→';");
        assert!(toks.iter().any(|t| t.kind == TokKind::Char && t.text == "→"));
    }

    #[test]
    fn hex_and_unicode_escapes_kept_verbatim() {
        let toks = lex(r#""a\x41b\u{1F600}c""#);
        assert_eq!(toks[0].text, "a\\x41b\\u{1F600}c");
    }

    #[test]
    fn unterminated_string_runs_to_eof_without_panic() {
        let toks = lex("let s = \"never closed");
        let s = toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(s.text, "never closed");
    }

    #[test]
    fn unterminated_raw_string_runs_to_eof_without_panic() {
        let toks = lex("let s = r##\"open \"# but not closed");
        let s = toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(s.text, "open \"# but not closed");
    }

    #[test]
    fn unterminated_block_comment_runs_to_eof_without_panic() {
        let toks = lex("code /* open /* nested */ still open");
        assert_eq!(toks.last().unwrap().kind, TokKind::BlockComment);
        assert!(toks.last().unwrap().text.contains("still open"));
    }

    #[test]
    fn unterminated_char_literal_runs_to_eof_without_panic() {
        // A stray apostrophe before EOF must not lose position tracking.
        let toks = lex("let c = '\\");
        assert!(toks.iter().any(|t| t.kind == TokKind::Char));
    }

    #[test]
    fn crlf_line_endings_track_lines() {
        let toks = lex("a\r\nb\r\n");
        assert_eq!((toks[0].line, toks[1].line), (1, 2));
    }

    #[test]
    fn tokens_after_multiline_string_have_correct_positions() {
        let toks = lex("let s = \"one\ntwo\";\nnext");
        let next = toks.iter().find(|t| t.is_ident("next")).unwrap();
        assert_eq!((next.line, next.col), (3, 1));
    }
}
