//! Inline suppression directives.
//!
//! Syntax, inside any comment:
//!
//! ```text
//! // hermes-lint: allow(R1, reason = "lookup-only; iteration order never observed")
//! // hermes-lint: allow(R1, R5, reason = "...")       (several rules, one reason)
//! // hermes-lint: allow-file(R2, reason = "...")      (whole file)
//! ```
//!
//! `allow` on line *N* waives matching findings on lines *N* and *N+1*;
//! `allow-file` waives them for the whole file. A directive that does not
//! parse, names an unknown rule, or lacks a non-empty reason produces an
//! S1 finding instead of a waiver.

use crate::{Diagnostic, Rule};

/// A parsed suppression directive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Directive {
    /// Rules waived by this directive.
    pub rules: Vec<Rule>,
    /// The mandatory reason.
    pub reason: String,
    /// `true` for `allow-file`.
    pub file_scope: bool,
    /// Line the directive appears on.
    pub line: usize,
}

impl Directive {
    /// Does this directive waive `rule` for a finding on `finding_line`?
    pub fn covers(&self, rule: Rule, finding_line: usize) -> bool {
        self.rules.contains(&rule)
            && (self.file_scope || finding_line == self.line || finding_line == self.line + 1)
    }
}

const MARKER: &str = "hermes-lint:";

/// Scans one comment's text for directives. Returns the parsed directives
/// and any S1 diagnostics for malformed ones. `file`/`line` locate the
/// comment. Doc comments (`///`, `//!`, `/**`, `/*!`) are skipped — they
/// describe the syntax, they don't invoke it.
pub fn parse_comment(text: &str, file: &str, line: usize) -> (Vec<Directive>, Vec<Diagnostic>) {
    let mut directives = Vec::new();
    let mut diags = Vec::new();
    if text.starts_with("///")
        || text.starts_with("//!")
        || text.starts_with("/**")
        || text.starts_with("/*!")
    {
        return (directives, diags);
    }
    let mut rest = text;
    while let Some(at) = rest.find(MARKER) {
        rest = &rest[at + MARKER.len()..];
        match parse_one(rest, line) {
            Ok((d, tail)) => {
                directives.push(d);
                rest = tail;
            }
            Err(msg) => {
                diags.push(Diagnostic {
                    file: file.to_string(),
                    line,
                    col: 1,
                    rule: Rule::Suppression,
                    message: msg,
                });
                break;
            }
        }
    }
    (directives, diags)
}

/// Parses one directive after the `hermes-lint:` marker. On success
/// returns the directive and the unconsumed tail.
fn parse_one(s: &str, line: usize) -> Result<(Directive, &str), String> {
    let s = s.trim_start();
    let (file_scope, s) = if let Some(t) = s.strip_prefix("allow-file") {
        (true, t)
    } else if let Some(t) = s.strip_prefix("allow") {
        (false, t)
    } else {
        return Err(format!(
            "malformed suppression: expected `allow(...)` or `allow-file(...)` \
             after `{MARKER}`"
        ));
    };
    let s = s.trim_start();
    let Some(s) = s.strip_prefix('(') else {
        return Err("malformed suppression: expected `(` after `allow`".to_string());
    };
    let Some(close) = find_closing_paren(s) else {
        return Err("malformed suppression: missing closing `)`".to_string());
    };
    let (body, tail) = (&s[..close], &s[close + 1..]);

    // Split off `reason = "..."` — everything before it is the rule list.
    let Some(rpos) = body.find("reason") else {
        return Err(
            "suppression without a reason: add `reason = \"why the invariant holds\"`"
                .to_string(),
        );
    };
    let rules_part = body[..rpos].trim_end().trim_end_matches(',');
    let after = body[rpos + "reason".len()..].trim_start();
    let Some(after) = after.strip_prefix('=') else {
        return Err("malformed suppression: expected `=` after `reason`".to_string());
    };
    let after = after.trim_start();
    let Some(after) = after.strip_prefix('"') else {
        return Err("malformed suppression: reason must be a quoted string".to_string());
    };
    let Some(endq) = after.find('"') else {
        return Err("malformed suppression: unterminated reason string".to_string());
    };
    let reason = after[..endq].trim().to_string();
    if reason.is_empty() {
        return Err(
            "suppression with an empty reason: say why the invariant holds anyway".to_string(),
        );
    }

    let mut rules = Vec::new();
    for part in rules_part.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        match Rule::parse(part) {
            Some(r) => rules.push(r),
            None => return Err(format!("suppression names unknown rule `{part}`")),
        }
    }
    if rules.is_empty() {
        return Err("suppression names no rule: `allow(<rule>, reason = ...)`".to_string());
    }
    Ok((
        Directive {
            rules,
            reason,
            file_scope,
            line,
        },
        tail,
    ))
}

/// Finds the `)` closing the directive, skipping over the quoted reason
/// (which may itself contain parentheses).
fn find_closing_paren(s: &str) -> Option<usize> {
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ')' if !in_str => return Some(i),
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> (Vec<Directive>, Vec<Diagnostic>) {
        parse_comment(text, "f.rs", 10)
    }

    #[test]
    fn parses_single_rule() {
        let (ds, es) = parse("// hermes-lint: allow(R1, reason = \"lookup-only map\")");
        assert!(es.is_empty());
        assert_eq!(
            ds,
            vec![Directive {
                rules: vec![Rule::Determinism],
                reason: "lookup-only map".into(),
                file_scope: false,
                line: 10,
            }]
        );
    }

    #[test]
    fn parses_rule_by_name_and_multiple() {
        let (ds, es) = parse("// hermes-lint: allow(determinism, R5, reason = \"x\")");
        assert!(es.is_empty());
        assert_eq!(ds[0].rules, vec![Rule::Determinism, Rule::TelemetryRegistry]);
    }

    #[test]
    fn parses_file_scope() {
        let (ds, es) = parse("// hermes-lint: allow-file(R2, reason = \"test helper\")");
        assert!(es.is_empty());
        assert!(ds[0].file_scope);
        assert!(ds[0].covers(Rule::PanicPolicy, 9999));
    }

    #[test]
    fn reason_is_mandatory() {
        let (ds, es) = parse("// hermes-lint: allow(R1)");
        assert!(ds.is_empty());
        assert_eq!(es.len(), 1);
        assert_eq!(es[0].rule, Rule::Suppression);
        assert!(es[0].message.contains("without a reason"), "{}", es[0].message);
    }

    #[test]
    fn empty_reason_rejected() {
        let (ds, es) = parse("// hermes-lint: allow(R1, reason = \"  \")");
        assert!(ds.is_empty());
        assert_eq!(es.len(), 1);
    }

    #[test]
    fn unknown_rule_rejected() {
        let (ds, es) = parse("// hermes-lint: allow(R99, reason = \"x\")");
        assert!(ds.is_empty());
        assert!(es[0].message.contains("unknown rule"));
    }

    #[test]
    fn reason_may_contain_parens() {
        let (ds, es) = parse("// hermes-lint: allow(R1, reason = \"sorted (see above)\")");
        assert!(es.is_empty());
        assert_eq!(ds[0].reason, "sorted (see above)");
    }

    #[test]
    fn line_scope_covers_same_and_next_line() {
        let d = Directive {
            rules: vec![Rule::Determinism],
            reason: "r".into(),
            file_scope: false,
            line: 10,
        };
        assert!(d.covers(Rule::Determinism, 10));
        assert!(d.covers(Rule::Determinism, 11));
        assert!(!d.covers(Rule::Determinism, 12));
        assert!(!d.covers(Rule::Determinism, 9));
        assert!(!d.covers(Rule::PanicPolicy, 10));
    }

    #[test]
    fn round_trips_through_render() {
        // A directive rendered in canonical syntax re-parses to itself.
        let d = Directive {
            rules: vec![Rule::PanicPolicy],
            reason: "index bounded by construction".into(),
            file_scope: false,
            line: 3,
        };
        let rendered = format!(
            "// hermes-lint: allow({}, reason = \"{}\")",
            d.rules[0].id(),
            d.reason
        );
        let (ds, es) = parse_comment(&rendered, "f.rs", 3);
        assert!(es.is_empty());
        assert_eq!(ds, vec![d]);
    }
}
