//! The Forwarding Information Base compiler.
//!
//! Converts `FibDelta`s ([`crate::rib::FibDelta`]) into TCAM
//! [`ControlAction`]s. Longest-prefix-match semantics are encoded as rule
//! priority = prefix length (1..=33, leaving [`Priority::NONE`] for rules
//! without ordering), which is exactly how FIBs are laid out in real
//! TCAMs. Each installed prefix keeps a stable rule id so replaces become
//! in-place action modifications — the cheap operation §2.1 highlights.

use crate::rib::FibDelta;
use hermes_rules::prefix::Ipv4Prefix;
use hermes_rules::prelude::*;
use std::collections::BTreeMap;

/// Compiles FIB deltas into TCAM control actions.
#[derive(Clone, Debug, Default)]
pub struct Fib {
    installed: BTreeMap<Ipv4Prefix, RuleId>,
    next_id: u64,
}

impl Fib {
    /// An empty FIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of installed prefixes.
    pub fn len(&self) -> usize {
        self.installed.len()
    }

    /// `true` when nothing is installed.
    pub fn is_empty(&self) -> bool {
        self.installed.is_empty()
    }

    /// The TCAM priority encoding LPM for a prefix.
    pub fn priority_of(prefix: Ipv4Prefix) -> Priority {
        Priority(prefix.len() as u32 + 1)
    }

    /// Translates one delta into the control action that realizes it.
    pub fn compile(&mut self, delta: FibDelta) -> ControlAction {
        match delta {
            FibDelta::Add { prefix, port } => {
                let id = RuleId(self.next_id);
                self.next_id += 1;
                self.installed.insert(prefix, id);
                ControlAction::Insert(Rule {
                    id,
                    key: prefix.to_key(),
                    priority: Self::priority_of(prefix),
                    action: Action::Forward(port),
                })
            }
            FibDelta::Replace {
                prefix, new_port, ..
            } => {
                // INVARIANT: Rib emits Replace only for a prefix whose
                // Add it already emitted, and compile installed it then.
                let id = *self
                    .installed
                    .get(&prefix)
                    .expect("INVARIANT: replace of prefix that was never added");
                ControlAction::Modify {
                    id,
                    action: Some(Action::Forward(new_port)),
                    priority: None,
                }
            }
            FibDelta::Remove { prefix } => {
                // INVARIANT: Rib emits Remove only for a prefix whose
                // Add it already emitted, and compile installed it then.
                let id = self
                    .installed
                    .remove(&prefix)
                    .expect("INVARIANT: remove of prefix that was never added");
                ControlAction::Delete(id)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rib::{BgpRoute, BgpUpdate, PeerId, Rib};

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn add_compiles_to_insert_with_lpm_priority() {
        let mut fib = Fib::new();
        let a = fib.compile(FibDelta::Add {
            prefix: p("10.0.0.0/8"),
            port: 3,
        });
        match a {
            ControlAction::Insert(r) => {
                assert_eq!(r.priority, Priority(9));
                assert_eq!(r.action, Action::Forward(3));
            }
            other => panic!("expected insert, got {other:?}"),
        }
        assert_eq!(fib.len(), 1);
    }

    #[test]
    fn longer_prefixes_get_higher_priority() {
        assert!(Fib::priority_of(p("10.0.0.0/24")) > Fib::priority_of(p("10.0.0.0/8")));
        assert!(Fib::priority_of(p("0.0.0.0/0")) > Priority::NONE);
    }

    #[test]
    fn replace_modifies_in_place() {
        let mut fib = Fib::new();
        let ControlAction::Insert(r) = fib.compile(FibDelta::Add {
            prefix: p("10.0.0.0/8"),
            port: 3,
        }) else {
            panic!()
        };
        let m = fib.compile(FibDelta::Replace {
            prefix: p("10.0.0.0/8"),
            old_port: 3,
            new_port: 5,
        });
        assert_eq!(
            m,
            ControlAction::Modify {
                id: r.id,
                action: Some(Action::Forward(5)),
                priority: None
            }
        );
        assert_eq!(fib.len(), 1, "replace keeps the entry installed");
    }

    #[test]
    fn remove_deletes_by_stable_id() {
        let mut fib = Fib::new();
        let ControlAction::Insert(r) = fib.compile(FibDelta::Add {
            prefix: p("10.0.0.0/8"),
            port: 3,
        }) else {
            panic!()
        };
        let d = fib.compile(FibDelta::Remove {
            prefix: p("10.0.0.0/8"),
        });
        assert_eq!(d, ControlAction::Delete(r.id));
        assert!(fib.is_empty());
    }

    #[test]
    fn end_to_end_rib_to_fib_pipeline() {
        let mut rib = Rib::new();
        let mut fib = Fib::new();
        let updates = [
            BgpUpdate::Announce {
                prefix: p("10.0.0.0/8"),
                route: BgpRoute {
                    local_pref: 100,
                    as_path_len: 2,
                    med: 0,
                    peer: PeerId(1),
                    next_hop_port: 1,
                },
            },
            // Ignored by the FIB (worse path).
            BgpUpdate::Announce {
                prefix: p("10.0.0.0/8"),
                route: BgpRoute {
                    local_pref: 100,
                    as_path_len: 5,
                    med: 0,
                    peer: PeerId(2),
                    next_hop_port: 2,
                },
            },
            // More specific prefix.
            BgpUpdate::Announce {
                prefix: p("10.1.0.0/16"),
                route: BgpRoute {
                    local_pref: 100,
                    as_path_len: 1,
                    med: 0,
                    peer: PeerId(2),
                    next_hop_port: 2,
                },
            },
            BgpUpdate::Withdraw {
                prefix: p("10.0.0.0/8"),
                peer: PeerId(1),
            },
        ];
        let actions: Vec<ControlAction> = updates
            .into_iter()
            .filter_map(|u| rib.process(u))
            .map(|d| fib.compile(d))
            .collect();
        // announce(add), announce(silent), announce(add), withdraw(failover→modify)
        assert_eq!(actions.len(), 3);
        assert!(matches!(actions[0], ControlAction::Insert(_)));
        assert!(matches!(actions[1], ControlAction::Insert(_)));
        assert!(matches!(actions[2], ControlAction::Modify { .. }));
        assert_eq!(rib.updates_processed, 4);
        assert_eq!(rib.fib_changes, 3);
    }
}
