//! # hermes-bgp — BGP RIB→FIB engine
//!
//! The traditional-network substrate for the Hermes evaluation (§2.3 and
//! §8.4): BGP updates are run through a Routing Information Base with a
//! standard best-path decision process, and only the updates that change
//! the best path emit FIB deltas — which the [`fib::Fib`] compiler turns
//! into TCAM control actions (prefix-length priorities encode LPM).
//!
//! ```
//! use hermes_bgp::prelude::*;
//! use hermes_rules::prelude::*;
//!
//! let mut rib = Rib::new();
//! let mut fib = Fib::new();
//! let prefix: Ipv4Prefix = "203.0.113.0/24".parse().unwrap();
//! let update = BgpUpdate::Announce {
//!     prefix,
//!     route: BgpRoute { local_pref: 100, as_path_len: 3, med: 0, peer: PeerId(1), next_hop_port: 2 },
//! };
//! let action = rib.process(update).map(|d| fib.compile(d));
//! assert!(matches!(action, Some(ControlAction::Insert(_))));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fib;
pub mod rib;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::fib::Fib;
    pub use crate::rib::{BgpRoute, BgpUpdate, FibDelta, PeerId, Rib};
}
