//! The BGP Routing Information Base and decision process.
//!
//! §2.3/§8.4 of the paper evaluate Hermes under *traditional* control
//! planes by replaying BGP updates converted into FIB actions. The key
//! property the preprocessing must capture: "many RIB updates do not
//! percolate down to the FIB" — an announcement that doesn't change the
//! best path produces **no** TCAM action. This module implements the RIB,
//! a standard best-path decision process, and emits exactly the FIB deltas
//! that survive it.

use hermes_rules::prefix::Ipv4Prefix;
use std::collections::BTreeMap;

/// A BGP peer (session) identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId(pub u32);

/// The attributes of a path learned from a peer, in decision order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BgpRoute {
    /// LOCAL_PREF: higher wins.
    pub local_pref: u32,
    /// AS_PATH length: shorter wins.
    pub as_path_len: u32,
    /// MED: lower wins (compared unconditionally here; real BGP only
    /// compares MED between routes from the same neighbouring AS).
    pub med: u32,
    /// The peer the route was learned from (lowest id as final tiebreak,
    /// standing in for lowest router-id).
    pub peer: PeerId,
    /// Egress port the route resolves to (what the FIB programs).
    pub next_hop_port: u32,
}

impl BgpRoute {
    /// Total-order comparison per the decision process: `true` when `self`
    /// is preferred over `other`.
    pub fn better_than(&self, other: &BgpRoute) -> bool {
        (
            std::cmp::Reverse(self.local_pref),
            self.as_path_len,
            self.med,
            self.peer,
        ) < (
            std::cmp::Reverse(other.local_pref),
            other.as_path_len,
            other.med,
            other.peer,
        )
    }
}

/// One BGP update message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BgpUpdate {
    /// A route announcement (implicit withdraw of the peer's previous
    /// route for the prefix).
    Announce {
        /// The announced prefix.
        prefix: Ipv4Prefix,
        /// The path attributes.
        route: BgpRoute,
    },
    /// A withdrawal.
    Withdraw {
        /// The withdrawn prefix.
        prefix: Ipv4Prefix,
        /// The withdrawing peer.
        peer: PeerId,
    },
}

impl BgpUpdate {
    /// The prefix the update concerns.
    pub fn prefix(&self) -> Ipv4Prefix {
        match self {
            BgpUpdate::Announce { prefix, .. } | BgpUpdate::Withdraw { prefix, .. } => *prefix,
        }
    }
}

/// A change to the forwarding table (only emitted when the best path
/// actually changed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FibDelta {
    /// The prefix became reachable: install a route to the port.
    Add {
        /// Prefix to install.
        prefix: Ipv4Prefix,
        /// Egress port.
        port: u32,
    },
    /// The best path moved to a different port: rewrite the action.
    Replace {
        /// Affected prefix.
        prefix: Ipv4Prefix,
        /// Previous egress port.
        old_port: u32,
        /// New egress port.
        new_port: u32,
    },
    /// The prefix became unreachable: remove the route.
    Remove {
        /// Prefix to remove.
        prefix: Ipv4Prefix,
    },
}

/// The RIB: all learned paths plus the current best per prefix.
#[derive(Clone, Debug, Default)]
pub struct Rib {
    paths: BTreeMap<Ipv4Prefix, Vec<BgpRoute>>,
    best: BTreeMap<Ipv4Prefix, BgpRoute>,
    /// Updates processed.
    pub updates_processed: u64,
    /// Updates that changed the FIB.
    pub fib_changes: u64,
}

impl Rib {
    /// An empty RIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of prefixes with at least one path.
    pub fn prefix_count(&self) -> usize {
        self.paths.len()
    }

    /// The current best route for a prefix.
    pub fn best(&self, prefix: Ipv4Prefix) -> Option<&BgpRoute> {
        self.best.get(&prefix)
    }

    /// Processes one update, returning the FIB delta if the best path
    /// changed. `None` means the update stayed in the RIB ("did not
    /// percolate down to the FIB").
    pub fn process(&mut self, update: BgpUpdate) -> Option<FibDelta> {
        self.updates_processed += 1;
        let prefix = update.prefix();
        let entry = self.paths.entry(prefix).or_default();
        match update {
            BgpUpdate::Announce { route, .. } => {
                // Implicit withdraw of this peer's previous path.
                entry.retain(|r| r.peer != route.peer);
                entry.push(route);
            }
            BgpUpdate::Withdraw { peer, .. } => {
                entry.retain(|r| r.peer != peer);
            }
        }
        let new_best = entry
            .iter()
            .copied()
            .reduce(|a, b| if b.better_than(&a) { b } else { a });
        if entry.is_empty() {
            self.paths.remove(&prefix);
        }
        let old_best = self.best.get(&prefix).copied();
        let delta = match (old_best, new_best) {
            (None, Some(nb)) => {
                self.best.insert(prefix, nb);
                Some(FibDelta::Add {
                    prefix,
                    port: nb.next_hop_port,
                })
            }
            (Some(ob), Some(nb)) => {
                self.best.insert(prefix, nb);
                if ob.next_hop_port != nb.next_hop_port {
                    Some(FibDelta::Replace {
                        prefix,
                        old_port: ob.next_hop_port,
                        new_port: nb.next_hop_port,
                    })
                } else {
                    None // best path changed attributes but not forwarding
                }
            }
            (Some(_), None) => {
                self.best.remove(&prefix);
                Some(FibDelta::Remove { prefix })
            }
            (None, None) => None,
        };
        if delta.is_some() {
            self.fib_changes += 1;
        }
        delta
    }

    /// Bulk-loads a full table — one `(prefix, route)` announcement per
    /// entry — and returns the surviving FIB deltas in order.
    ///
    /// Semantically identical to calling [`Rib::process`] with
    /// `BgpUpdate::Announce` per entry (counters included); it exists so
    /// the ~900k-prefix `bgp-replay` preload reads as one intent and
    /// stays equivalent by construction (see `preload_matches_process`).
    pub fn preload(
        &mut self,
        routes: impl IntoIterator<Item = (Ipv4Prefix, BgpRoute)>,
    ) -> Vec<FibDelta> {
        routes
            .into_iter()
            .filter_map(|(prefix, route)| self.process(BgpUpdate::Announce { prefix, route }))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn route(peer: u32, local_pref: u32, as_len: u32, port: u32) -> BgpRoute {
        BgpRoute {
            local_pref,
            as_path_len: as_len,
            med: 0,
            peer: PeerId(peer),
            next_hop_port: port,
        }
    }

    #[test]
    fn decision_order() {
        // local_pref dominates.
        assert!(route(2, 200, 9, 1).better_than(&route(1, 100, 1, 2)));
        // then AS-path length.
        assert!(route(2, 100, 1, 1).better_than(&route(1, 100, 2, 2)));
        // then MED.
        let mut a = route(2, 100, 1, 1);
        a.med = 5;
        let mut b = route(1, 100, 1, 2);
        b.med = 9;
        assert!(a.better_than(&b));
        // then lowest peer id.
        assert!(route(1, 100, 1, 1).better_than(&route(2, 100, 1, 2)));
    }

    #[test]
    fn first_announce_adds() {
        let mut rib = Rib::new();
        let d = rib.process(BgpUpdate::Announce {
            prefix: p("10.0.0.0/8"),
            route: route(1, 100, 3, 7),
        });
        assert_eq!(
            d,
            Some(FibDelta::Add {
                prefix: p("10.0.0.0/8"),
                port: 7
            })
        );
    }

    #[test]
    fn worse_announce_does_not_reach_fib() {
        let mut rib = Rib::new();
        rib.process(BgpUpdate::Announce {
            prefix: p("10.0.0.0/8"),
            route: route(1, 100, 3, 7),
        });
        // Longer AS path from another peer: stays in RIB only.
        let d = rib.process(BgpUpdate::Announce {
            prefix: p("10.0.0.0/8"),
            route: route(2, 100, 5, 9),
        });
        assert_eq!(d, None);
        assert_eq!(rib.fib_changes, 1);
        assert_eq!(rib.updates_processed, 2);
    }

    #[test]
    fn better_announce_replaces() {
        let mut rib = Rib::new();
        rib.process(BgpUpdate::Announce {
            prefix: p("10.0.0.0/8"),
            route: route(1, 100, 3, 7),
        });
        let d = rib.process(BgpUpdate::Announce {
            prefix: p("10.0.0.0/8"),
            route: route(2, 200, 3, 9),
        });
        assert_eq!(
            d,
            Some(FibDelta::Replace {
                prefix: p("10.0.0.0/8"),
                old_port: 7,
                new_port: 9
            })
        );
    }

    #[test]
    fn attribute_change_same_port_is_silent() {
        let mut rib = Rib::new();
        rib.process(BgpUpdate::Announce {
            prefix: p("10.0.0.0/8"),
            route: route(1, 100, 3, 7),
        });
        // Better path, same egress port: no FIB change.
        let d = rib.process(BgpUpdate::Announce {
            prefix: p("10.0.0.0/8"),
            route: route(2, 200, 3, 7),
        });
        assert_eq!(d, None);
    }

    #[test]
    fn withdraw_fails_over_then_removes() {
        let mut rib = Rib::new();
        rib.process(BgpUpdate::Announce {
            prefix: p("10.0.0.0/8"),
            route: route(1, 200, 3, 7),
        });
        rib.process(BgpUpdate::Announce {
            prefix: p("10.0.0.0/8"),
            route: route(2, 100, 3, 9),
        });
        // Withdraw the best: fail over to the backup.
        let d = rib.process(BgpUpdate::Withdraw {
            prefix: p("10.0.0.0/8"),
            peer: PeerId(1),
        });
        assert_eq!(
            d,
            Some(FibDelta::Replace {
                prefix: p("10.0.0.0/8"),
                old_port: 7,
                new_port: 9
            })
        );
        // Withdraw the backup: prefix unreachable.
        let d = rib.process(BgpUpdate::Withdraw {
            prefix: p("10.0.0.0/8"),
            peer: PeerId(2),
        });
        assert_eq!(
            d,
            Some(FibDelta::Remove {
                prefix: p("10.0.0.0/8")
            })
        );
        assert_eq!(rib.prefix_count(), 0);
    }

    #[test]
    fn implicit_withdraw_on_reannounce() {
        let mut rib = Rib::new();
        rib.process(BgpUpdate::Announce {
            prefix: p("10.0.0.0/8"),
            route: route(1, 200, 3, 7),
        });
        // Same peer re-announces with worse attributes and another peer's
        // path becomes best.
        rib.process(BgpUpdate::Announce {
            prefix: p("10.0.0.0/8"),
            route: route(2, 150, 3, 9),
        });
        let d = rib.process(BgpUpdate::Announce {
            prefix: p("10.0.0.0/8"),
            route: route(1, 100, 3, 7),
        });
        assert_eq!(
            d,
            Some(FibDelta::Replace {
                prefix: p("10.0.0.0/8"),
                old_port: 7,
                new_port: 9
            })
        );
    }

    #[test]
    fn preload_matches_process() {
        let routes: Vec<(Ipv4Prefix, BgpRoute)> = (0u32..64)
            .map(|i| {
                (
                    Ipv4Prefix::new(0x0a00_0000 | (i << 8), 24),
                    route(i % 4, 100, 2, (i % 4) + 1),
                )
            })
            .collect();
        let mut bulk = Rib::new();
        let deltas = bulk.preload(routes.iter().copied());
        let mut serial = Rib::new();
        let expected: Vec<FibDelta> = routes
            .iter()
            .filter_map(|&(prefix, route)| serial.process(BgpUpdate::Announce { prefix, route }))
            .collect();
        assert_eq!(deltas, expected);
        assert_eq!(deltas.len(), 64, "fresh prefixes all reach the FIB");
        assert_eq!(bulk.prefix_count(), serial.prefix_count());
        assert_eq!(bulk.updates_processed, serial.updates_processed);
        assert_eq!(bulk.fib_changes, serial.fib_changes);
        for &(prefix, _) in &routes {
            assert_eq!(bulk.best(prefix), serial.best(prefix));
        }
    }

    #[test]
    fn withdraw_of_unknown_is_silent() {
        let mut rib = Rib::new();
        let d = rib.process(BgpUpdate::Withdraw {
            prefix: p("10.0.0.0/8"),
            peer: PeerId(1),
        });
        assert_eq!(d, None);
    }
}
