//! Property-based tests for the RIB: the incremental decision process must
//! agree with a from-scratch recomputation after any update sequence, and
//! the emitted FIB deltas must replay into exactly the best-route table.
//! Runs under the in-tree `hermes_util::check!` harness with pinned seeds.

use hermes_bgp::prelude::*;
use hermes_rules::prefix::Ipv4Prefix;
use hermes_util::check::{range, vec_of, weighted, zip2, zip3, zip4, Gen};
use std::collections::HashMap;

fn prefix() -> Gen<Ipv4Prefix> {
    // A small pool so updates collide on prefixes.
    zip2(range(0u32..16), range(16u8..=24))
        .map(|(i, len)| Ipv4Prefix::new(0x0a00_0000 | (i << 20), len))
}

fn route() -> Gen<BgpRoute> {
    zip4(range(0u32..4), range(50u32..150), range(1u32..6), range(0u32..5)).map(
        |(peer, lp, aspath, med)| BgpRoute {
            local_pref: lp,
            as_path_len: aspath,
            med,
            peer: PeerId(peer),
            next_hop_port: peer + 1,
        },
    )
}

fn update() -> Gen<BgpUpdate> {
    weighted(vec![
        (
            3,
            zip2(prefix(), route()).map(|(prefix, route)| BgpUpdate::Announce { prefix, route }),
        ),
        (
            1,
            zip2(prefix(), range(0u32..4)).map(|(prefix, peer)| BgpUpdate::Withdraw {
                prefix,
                peer: PeerId(peer),
            }),
        ),
    ])
}

/// From-scratch oracle: track every peer's latest route per prefix and
/// pick the best by the decision process.
fn oracle_best(history: &[BgpUpdate]) -> HashMap<Ipv4Prefix, BgpRoute> {
    let mut per_peer: HashMap<(Ipv4Prefix, PeerId), BgpRoute> = HashMap::new();
    for u in history {
        match u {
            BgpUpdate::Announce { prefix, route } => {
                per_peer.insert((*prefix, route.peer), *route);
            }
            BgpUpdate::Withdraw { prefix, peer } => {
                per_peer.remove(&(*prefix, *peer));
            }
        }
    }
    let mut best: HashMap<Ipv4Prefix, BgpRoute> = HashMap::new();
    for ((prefix, _), route) in per_peer {
        best.entry(prefix)
            .and_modify(|b| {
                if route.better_than(b) {
                    *b = route;
                }
            })
            .or_insert(route);
    }
    best
}

hermes_util::check! {
    #![cases = 256]

    /// Incremental best-path selection ≡ from-scratch recomputation.
    fn incremental_matches_recompute(updates in vec_of(update(), 1..120)) {
        let mut rib = Rib::new();
        for u in &updates {
            rib.process(*u);
        }
        let want = oracle_best(&updates);
        for (prefix, route) in &want {
            let got = rib.best(*prefix);
            assert_eq!(got.map(|r| r.next_hop_port), Some(route.next_hop_port),
                "prefix {}", prefix);
        }
        // And no extra best routes.
        for u in &updates {
            let p = u.prefix();
            assert_eq!(rib.best(p).is_some(), want.contains_key(&p), "prefix {}", p);
        }
    }

    /// Replaying the FIB deltas yields exactly the best-route table — no
    /// action is lost or duplicated.
    fn fib_deltas_replay_to_best_routes(updates in vec_of(update(), 1..120)) {
        let mut rib = Rib::new();
        let mut replayed: HashMap<Ipv4Prefix, u32> = HashMap::new();
        for u in &updates {
            if let Some(delta) = rib.process(*u) {
                match delta {
                    FibDelta::Add { prefix, port } => {
                        assert!(replayed.insert(prefix, port).is_none(), "double add");
                    }
                    FibDelta::Replace { prefix, old_port, new_port } => {
                        let prev = replayed.insert(prefix, new_port);
                        assert_eq!(prev, Some(old_port), "replace mismatch");
                    }
                    FibDelta::Remove { prefix } => {
                        assert!(replayed.remove(&prefix).is_some(), "remove of absent");
                    }
                }
            }
        }
        let want = oracle_best(&updates);
        assert_eq!(replayed.len(), want.len());
        for (prefix, route) in want {
            assert_eq!(replayed.get(&prefix), Some(&route.next_hop_port));
        }
    }

    /// The decision order is a strict total order on distinct routes.
    fn decision_is_total_order(routes in zip3(route(), route(), route())) {
        let (a, b, c) = routes;
        // Antisymmetry.
        if a.better_than(&b) {
            assert!(!b.better_than(&a));
        }
        // Transitivity.
        if a.better_than(&b) && b.better_than(&c) {
            assert!(a.better_than(&c));
        }
        // Totality on routes from different peers.
        if a.peer != b.peer {
            assert!(a.better_than(&b) || b.better_than(&a));
        }
    }
}
