//! Edge cases of the Varys event loop: degenerate flows, horizon cutoff,
//! gating toggles, and metric bookkeeping.

use hermes_core::config::HermesConfig;
use hermes_netsim::prelude::*;
use hermes_tcam::SwitchModel;
use hermes_workloads::facebook::{FlowSpec, JobSpec};

fn job(id: usize, arrival_s: f64, flows: Vec<FlowSpec>) -> JobSpec {
    JobSpec {
        id,
        arrival_s,
        flows,
    }
}

#[test]
fn same_host_flow_completes_locally() {
    let topo = Topology::single_switch(2, 10e9);
    let mut sim = Varys::new(topo, VarysConfig::default());
    sim.register_jobs(&[job(
        0,
        0.0,
        vec![FlowSpec {
            src: 0,
            dst: 0,
            bytes: 1_000_000,
        }],
    )]);
    sim.run(10.0);
    assert_eq!(sim.metrics.fct_s.len(), 1);
}

#[test]
fn one_byte_flow() {
    let topo = Topology::single_switch(2, 10e9);
    let mut sim = Varys::new(topo, VarysConfig::default());
    sim.register_jobs(&[job(
        0,
        0.0,
        vec![FlowSpec {
            src: 0,
            dst: 1,
            bytes: 1,
        }],
    )]);
    sim.run(10.0);
    assert_eq!(sim.metrics.fct_s.len(), 1);
    let mut fct = sim.metrics.fct_s.clone();
    assert!(fct.median() >= 0.0);
}

#[test]
fn horizon_cuts_off_unfinished_flows() {
    let topo = Topology::single_switch(2, 1e6); // 1 Mb/s: 1 GB takes ages
    let mut sim = Varys::new(topo, VarysConfig::default());
    sim.register_jobs(&[job(
        0,
        0.0,
        vec![FlowSpec {
            src: 0,
            dst: 1,
            bytes: 1_000_000_000,
        }],
    )]);
    let end = sim.run(2.0);
    assert!(end.as_secs() <= 2.0 + 1e-9);
    assert_eq!(
        sim.metrics.fct_s.len(),
        0,
        "flow cannot finish inside the horizon"
    );
}

#[test]
fn gating_off_means_zero_startup_installs() {
    let topo = Topology::fat_tree(4, 10e9);
    let cfg = VarysConfig {
        switch: SwitchKind::Raw(SwitchModel::pica8_p3290()),
        gate_flow_start: false,
        // High threshold so the TE app never fires either.
        congestion_threshold: 2.0,
        base_rules_per_switch: 10,
        ..Default::default()
    };
    let mut sim = Varys::new(topo, cfg);
    let jobs: Vec<JobSpec> = (0..8)
        .map(|i| {
            job(
                i,
                0.0,
                vec![FlowSpec {
                    src: i,
                    dst: 15 - i,
                    bytes: 50_000_000,
                }],
            )
        })
        .collect();
    sim.register_jobs(&jobs);
    sim.run(60.0);
    assert_eq!(sim.metrics.installs, 0);
    assert_eq!(sim.metrics.fct_s.len(), 8);
}

#[test]
fn gating_on_installs_one_rule_per_switch_on_path() {
    let topo = Topology::fat_tree(4, 10e9);
    let cfg = VarysConfig {
        switch: SwitchKind::Raw(SwitchModel::pica8_p3290()),
        gate_flow_start: true,
        congestion_threshold: 2.0,
        base_rules_per_switch: 10,
        ..Default::default()
    };
    let mut sim = Varys::new(topo, cfg);
    // Same-pod, different edge: 4 hops → 3 switches.
    sim.register_jobs(&[job(
        0,
        0.0,
        vec![FlowSpec {
            src: 0,
            dst: 2,
            bytes: 1_000_000,
        }],
    )]);
    sim.run(30.0);
    assert_eq!(sim.metrics.installs, 3);
    assert_eq!(sim.metrics.rit_ms.len(), 3);
}

#[test]
fn jct_short_long_split_matches_job_sizes() {
    let topo = Topology::fat_tree(4, 10e9);
    let mut sim = Varys::new(topo, VarysConfig::default());
    sim.register_jobs(&[
        job(
            0,
            0.0,
            vec![FlowSpec {
                src: 0,
                dst: 8,
                bytes: 100_000_000,
            }],
        ), // short
        job(
            1,
            0.0,
            vec![FlowSpec {
                src: 1,
                dst: 9,
                bytes: 2_000_000_000,
            }],
        ), // long
    ]);
    sim.run(200.0);
    assert_eq!(sim.metrics.jct_short_s.len(), 1);
    assert_eq!(sim.metrics.jct_long_s.len(), 1);
    assert_eq!(sim.jct_by_job.len(), 2);
}

#[test]
fn hermes_and_shadow_kinds_run_on_isp_topologies() {
    for topo in [Topology::abilene(), Topology::quest()] {
        let cfg = VarysConfig {
            switch: SwitchKind::Hermes(SwitchModel::dell_8132f(), HermesConfig::default()),
            base_rules_per_switch: 50,
            ..Default::default()
        };
        let n_hosts = topo.hosts().len();
        let mut sim = Varys::new(topo, cfg);
        let jobs: Vec<JobSpec> = (0..6)
            .map(|i| {
                job(
                    i,
                    i as f64 * 0.1,
                    vec![FlowSpec {
                        src: i % n_hosts,
                        dst: (i + 3) % n_hosts,
                        bytes: 20_000_000,
                    }],
                )
            })
            .collect();
        sim.register_jobs(&jobs);
        sim.run(120.0);
        assert_eq!(sim.metrics.fct_s.len(), 6);
    }
}
