//! Property-based tests for the max-min fair allocator: feasibility, work
//! conservation, and max-min optimality (no flow can be raised without
//! lowering a flow that is no better off). Runs under the in-tree
//! `hermes_util::check!` harness with pinned default seeds.

use hermes_netsim::flow::{ActiveFlow, FlowTable};
use hermes_netsim::prelude::*;
use hermes_tcam::SimTime;
use hermes_util::check::{arb, vec_of, zip2, zip3};
use hermes_util::rng::rngs::StdRng;
use hermes_util::rng::SeedableRng;

fn build(topo: &Topology, pairs: &[(usize, usize)], seed: u64) -> FlowTable {
    let hosts = topo.hosts();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ft = FlowTable::new();
    for (i, (s, d)) in pairs.iter().enumerate() {
        let src = hosts[s % hosts.len()];
        let mut dst = hosts[d % hosts.len()];
        if dst == src {
            dst = hosts[(s + 1) % hosts.len()];
        }
        let path = topo
            .random_shortest_path(src, dst, None, &mut rng)
            .unwrap_or_default();
        ft.insert(ActiveFlow {
            id: i,
            job: i,
            src,
            dst,
            remaining_bytes: 1e12,
            rate_bps: 0.0,
            path,
            started: SimTime::ZERO,
            version: 0,
        });
    }
    ft
}

hermes_util::check! {
    #![cases = 256]

    /// Feasibility + work conservation + max-min optimality on a fat tree.
    fn max_min_is_fair_and_feasible(
        pairs in vec_of(zip2(arb::<usize>(), arb::<usize>()), 1..40),
        seed in arb::<u64>(),
    ) {
        let topo = Topology::fat_tree(4, 10e9);
        let mut ft = build(&topo, &pairs, seed);
        ft.allocate_max_min(&topo);

        // Feasibility: no link over capacity.
        let mut load = vec![0.0f64; topo.links.len()];
        for f in ft.iter() {
            assert!(f.rate_bps > 0.0, "flow {} starved", f.id);
            for &l in &f.path {
                load[l] += f.rate_bps;
            }
        }
        for (l, link) in topo.links.iter().enumerate() {
            assert!(load[l] <= link.capacity_bps * (1.0 + 1e-9), "link {l} overloaded");
        }

        // Every flow is bottlenecked: some link on its path is saturated
        // where the flow's rate is maximal among the link's flows — the
        // max-min optimality certificate.
        for f in ft.iter() {
            if f.path.is_empty() {
                continue;
            }
            let mut certified = false;
            for &l in &f.path {
                let saturated = load[l] >= topo.links[l].capacity_bps * (1.0 - 1e-6);
                if !saturated {
                    continue;
                }
                let max_on_link = ft
                    .iter()
                    .filter(|g| g.path.contains(&l))
                    .map(|g| g.rate_bps)
                    .fold(0.0f64, f64::max);
                if f.rate_bps >= max_on_link * (1.0 - 1e-6) {
                    certified = true;
                    break;
                }
            }
            assert!(certified, "flow {} has no bottleneck certificate", f.id);
        }
    }

    /// Determinism: the same flow set allocates identically every time.
    fn allocation_is_deterministic(
        pairs in vec_of(zip2(arb::<usize>(), arb::<usize>()), 1..20),
        seed in arb::<u64>(),
    ) {
        let topo = Topology::fat_tree(4, 10e9);
        let mut a = build(&topo, &pairs, seed);
        let mut b = build(&topo, &pairs, seed);
        a.allocate_max_min(&topo);
        b.allocate_max_min(&topo);
        for f in a.iter() {
            assert_eq!(f.rate_bps, b.get(f.id).unwrap().rate_bps);
        }
    }

    /// Paths sampled from any topology are simple (no repeated node) and
    /// connect src to dst.
    fn sampled_paths_are_simple(sds in zip3(arb::<usize>(), arb::<usize>(), arb::<u64>())) {
        let (s, d, seed) = sds;
        for topo in [Topology::fat_tree(4, 1e9), Topology::abilene(), Topology::geant()] {
            let hosts = topo.hosts();
            let src = hosts[s % hosts.len()];
            let dst = hosts[d % hosts.len()];
            if src == dst {
                continue;
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let path = topo.random_shortest_path(src, dst, None, &mut rng).unwrap();
            let mut cur = src;
            let mut visited = std::collections::HashSet::from([src]);
            for &l in &path {
                cur = topo.links[l].other(cur);
                assert!(visited.insert(cur), "{}: node revisited", topo.name);
            }
            assert_eq!(cur, dst);
        }
    }
}
