//! Flows, jobs and max-min fair bandwidth sharing.
//!
//! Varys is a *flow-level* simulator: packets are not modelled; instead
//! every active flow gets a rate from progressive-filling max-min fair
//! allocation over its path (the standard fluid model used by the
//! simulators the paper builds on [29, 30]), and flow completion times
//! follow from integrating those rates between events.

use crate::topology::{LinkId, Topology};
use hermes_tcam::SimTime;
use std::collections::BTreeMap;

/// Flow identifier.
pub type FlowId = usize;
/// Job identifier.
pub type JobId = usize;

/// A flow in flight.
#[derive(Clone, Debug)]
pub struct ActiveFlow {
    /// Identifier.
    pub id: FlowId,
    /// Owning job (for JCT accounting).
    pub job: JobId,
    /// Source host.
    pub src: usize,
    /// Destination host.
    pub dst: usize,
    /// Bytes left to transfer.
    pub remaining_bytes: f64,
    /// Current allocated rate, bits/s.
    pub rate_bps: f64,
    /// Current path (link ids from src to dst).
    pub path: Vec<LinkId>,
    /// When the flow started (for FCT).
    pub started: SimTime,
    /// Bumped on every rate/path change; invalidates stale completion
    /// events in the queue.
    pub version: u64,
}

/// The set of active flows plus the allocator.
#[derive(Clone, Debug, Default)]
pub struct FlowTable {
    // BTreeMap: deterministic iteration order makes whole simulations
    // reproducible bit-for-bit given a seed.
    flows: BTreeMap<FlowId, ActiveFlow>,
}

impl FlowTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of active flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// `true` when no flows are active.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Adds a flow.
    pub fn insert(&mut self, flow: ActiveFlow) {
        self.flows.insert(flow.id, flow);
    }

    /// Removes a flow (on completion).
    pub fn remove(&mut self, id: FlowId) -> Option<ActiveFlow> {
        self.flows.remove(&id)
    }

    /// Borrows a flow.
    pub fn get(&self, id: FlowId) -> Option<&ActiveFlow> {
        self.flows.get(&id)
    }

    /// Mutably borrows a flow.
    pub fn get_mut(&mut self, id: FlowId) -> Option<&mut ActiveFlow> {
        self.flows.get_mut(&id)
    }

    /// Iterates over the active flows.
    pub fn iter(&self) -> impl Iterator<Item = &ActiveFlow> {
        self.flows.values()
    }

    /// Advances every flow's `remaining_bytes` by `dt` seconds at its
    /// current rate (call before any rate change).
    pub fn advance(&mut self, dt_s: f64) {
        if dt_s <= 0.0 {
            return;
        }
        for f in self.flows.values_mut() {
            f.remaining_bytes = (f.remaining_bytes - f.rate_bps * dt_s / 8.0).max(0.0);
        }
    }

    /// Progressive-filling max-min fair allocation. Returns the ids of
    /// flows whose rate changed (their completion events need
    /// rescheduling). Every flow's `version` is bumped on change.
    pub fn allocate_max_min(&mut self, topo: &Topology) -> Vec<FlowId> {
        // Residual capacity and unfrozen flow count per link.
        let mut residual: Vec<f64> = topo.links.iter().map(|l| l.capacity_bps).collect();
        let mut link_flows: Vec<Vec<FlowId>> = vec![Vec::new(); topo.links.len()];
        let mut unfrozen: BTreeMap<FlowId, ()> = BTreeMap::new();
        for f in self.flows.values() {
            for &l in &f.path {
                link_flows[l].push(f.id);
            }
            if !f.path.is_empty() {
                unfrozen.insert(f.id, ());
            }
        }
        let mut rates: BTreeMap<FlowId, f64> = BTreeMap::new();
        // Flows with empty paths (same-host transfers) run at a nominal
        // local rate.
        for f in self.flows.values() {
            if f.path.is_empty() {
                rates.insert(f.id, 100e9);
            }
        }
        let mut unfrozen_per_link: Vec<usize> = link_flows.iter().map(|v| v.len()).collect();

        while !unfrozen.is_empty() {
            // The bottleneck link: minimal fair share among links carrying
            // unfrozen flows.
            let mut best: Option<(f64, LinkId)> = None;
            for (lid, &n) in unfrozen_per_link.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                let share = residual[lid] / n as f64;
                if best.map(|(s, _)| share < s).unwrap_or(true) {
                    best = Some((share, lid));
                }
            }
            let Some((share, bottleneck)) = best else {
                break;
            };
            // Freeze every unfrozen flow on the bottleneck at `share`.
            let to_freeze: Vec<FlowId> = link_flows[bottleneck]
                .iter()
                .copied()
                .filter(|id| unfrozen.contains_key(id))
                .collect();
            for id in to_freeze {
                rates.insert(id, share.max(0.0));
                unfrozen.remove(&id);
                let flow = &self.flows[&id];
                for &l in &flow.path {
                    residual[l] = (residual[l] - share).max(0.0);
                    unfrozen_per_link[l] -= 1;
                }
            }
        }

        // Apply, reporting changes.
        let mut changed = Vec::new();
        for f in self.flows.values_mut() {
            let new_rate = rates.get(&f.id).copied().unwrap_or(0.0);
            if (new_rate - f.rate_bps).abs() > 1e-6 {
                f.rate_bps = new_rate;
                f.version += 1;
                changed.push(f.id);
            }
        }
        changed
    }

    /// Utilization (allocated/capacity) per link under current rates.
    pub fn link_utilization(&self, topo: &Topology) -> Vec<f64> {
        let mut load = vec![0.0; topo.links.len()];
        for f in self.flows.values() {
            for &l in &f.path {
                load[l] += f.rate_bps;
            }
        }
        load.iter()
            .zip(&topo.links)
            .map(|(&l, link)| l / link.capacity_bps)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_util::rng::rngs::StdRng;
    use hermes_util::rng::SeedableRng;

    fn flow(id: FlowId, src: usize, dst: usize, path: Vec<LinkId>) -> ActiveFlow {
        ActiveFlow {
            id,
            job: 0,
            src,
            dst,
            remaining_bytes: 1e9,
            rate_bps: 0.0,
            path,
            started: SimTime::ZERO,
            version: 0,
        }
    }

    #[test]
    fn single_flow_gets_full_bottleneck() {
        let topo = Topology::single_switch(2, 10e9);
        let mut rng = StdRng::seed_from_u64(1);
        let path = topo.random_shortest_path(0, 1, None, &mut rng).unwrap();
        let mut ft = FlowTable::new();
        ft.insert(flow(1, 0, 1, path));
        let changed = ft.allocate_max_min(&topo);
        assert_eq!(changed, vec![1]);
        assert!((ft.get(1).unwrap().rate_bps - 10e9).abs() < 1.0);
    }

    #[test]
    fn two_flows_share_a_link_fairly() {
        let topo = Topology::single_switch(3, 10e9);
        let mut rng = StdRng::seed_from_u64(1);
        // Both flows converge on host 2's access link.
        let p1 = topo.random_shortest_path(0, 2, None, &mut rng).unwrap();
        let p2 = topo.random_shortest_path(1, 2, None, &mut rng).unwrap();
        let mut ft = FlowTable::new();
        ft.insert(flow(1, 0, 2, p1));
        ft.insert(flow(2, 1, 2, p2));
        ft.allocate_max_min(&topo);
        assert!((ft.get(1).unwrap().rate_bps - 5e9).abs() < 1.0);
        assert!((ft.get(2).unwrap().rate_bps - 5e9).abs() < 1.0);
    }

    #[test]
    fn max_min_not_just_equal_split() {
        // Two identical flows on a tiny fat tree: equal shares and no link
        // over capacity (conservation check).
        let topo = Topology::fat_tree(2, 10e9);
        let hosts = topo.hosts();
        let mut rng = StdRng::seed_from_u64(2);
        let p_long = topo
            .random_shortest_path(hosts[0], hosts[1], None, &mut rng)
            .unwrap();
        let mut ft = FlowTable::new();
        ft.insert(flow(1, hosts[0], hosts[1], p_long.clone()));
        ft.insert(flow(2, hosts[0], hosts[1], p_long));
        ft.allocate_max_min(&topo);
        let util = ft.link_utilization(&topo);
        for u in util {
            assert!(u <= 1.0 + 1e-9, "over-allocated link: {u}");
        }
        assert!((ft.get(1).unwrap().rate_bps - ft.get(2).unwrap().rate_bps).abs() < 1.0);
    }

    #[test]
    fn advance_decreases_remaining() {
        let topo = Topology::single_switch(2, 8e9);
        let mut rng = StdRng::seed_from_u64(1);
        let path = topo.random_shortest_path(0, 1, None, &mut rng).unwrap();
        let mut ft = FlowTable::new();
        ft.insert(flow(1, 0, 1, path));
        ft.allocate_max_min(&topo);
        // 8 Gb/s = 1 GB/s: after 0.5 s, 0.5 GB remains.
        ft.advance(0.5);
        let rem = ft.get(1).unwrap().remaining_bytes;
        assert!((rem - 0.5e9).abs() < 1e3, "remaining {rem}");
        // Advancing far past completion clamps at zero.
        ft.advance(100.0);
        assert_eq!(ft.get(1).unwrap().remaining_bytes, 0.0);
    }

    #[test]
    fn version_bumps_only_on_change() {
        let topo = Topology::single_switch(3, 10e9);
        let mut rng = StdRng::seed_from_u64(1);
        let p1 = topo.random_shortest_path(0, 2, None, &mut rng).unwrap();
        let mut ft = FlowTable::new();
        ft.insert(flow(1, 0, 2, p1));
        ft.allocate_max_min(&topo);
        let v1 = ft.get(1).unwrap().version;
        // Re-allocating with no change keeps the version.
        let changed = ft.allocate_max_min(&topo);
        assert!(changed.is_empty());
        assert_eq!(ft.get(1).unwrap().version, v1);
    }

    #[test]
    fn empty_path_flows_run_locally() {
        let topo = Topology::single_switch(2, 10e9);
        let mut ft = FlowTable::new();
        ft.insert(flow(1, 0, 0, Vec::new()));
        ft.allocate_max_min(&topo);
        assert!(ft.get(1).unwrap().rate_bps > 10e9);
    }

    #[test]
    fn fat_tree_cross_section_shared() {
        let topo = Topology::fat_tree(4, 10e9);
        let hosts = topo.hosts();
        let mut rng = StdRng::seed_from_u64(9);
        let mut ft = FlowTable::new();
        // Four flows from distinct sources in pod 0 to distinct hosts in
        // pod 3: plenty of core capacity, each should get its access rate.
        for i in 0..4 {
            let src = hosts[i];
            let dst = hosts[hosts.len() - 1 - i];
            let p = topo.random_shortest_path(src, dst, None, &mut rng).unwrap();
            ft.insert(flow(i, src, dst, p));
        }
        ft.allocate_max_min(&topo);
        let util = ft.link_utilization(&topo);
        for u in util {
            assert!(u <= 1.0 + 1e-9);
        }
        for i in 0..4 {
            assert!(ft.get(i).unwrap().rate_bps > 0.0);
        }
    }
}
