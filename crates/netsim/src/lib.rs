//! # hermes-netsim — Varys, the flow-level network simulator
//!
//! The evaluation substrate of the Hermes reproduction (§8.1.1 of the
//! paper): a deterministic discrete-event, flow-level simulator with
//! TCAM-aware switch control planes.
//!
//! * [`topology`] — fat trees (the paper's k=16 / 1024-host data center),
//!   Abilene, Geant and Quest ISP backbones, and a MicroBench star;
//! * [`flow`] — max-min fair bandwidth sharing (progressive filling);
//! * [`metrics`] — RIT / FCT / JCT collection and CDF rendering;
//! * [`sim`] — the event loop plus the proactive traffic-engineering
//!   SDNApp whose reconfigurations exercise the switch control planes.
//!
//! ## Example
//!
//! ```
//! use hermes_netsim::prelude::*;
//! use hermes_workloads::facebook::{FlowSpec, JobSpec};
//!
//! let topo = Topology::fat_tree(4, 10e9);
//! let mut sim = Varys::new(topo, VarysConfig::default());
//! sim.register_jobs(&[JobSpec {
//!     id: 0,
//!     arrival_s: 0.0,
//!     flows: vec![FlowSpec { src: 0, dst: 9, bytes: 10_000_000 }],
//! }]);
//! sim.run(10.0);
//! assert_eq!(sim.metrics.fct_s.len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod flow;
pub mod metrics;
pub mod sim;
pub mod topology;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::flow::{ActiveFlow, FlowId, FlowTable, JobId};
    pub use crate::metrics::{median_improvement, RunMetrics, Samples};
    pub use crate::sim::{SwitchKind, Varys, VarysConfig};
    pub use hermes_fleet::{LaneSched, RebalancePolicy};
    pub use crate::topology::{Link, LinkId, NodeId, NodeKind, Topology};
}
