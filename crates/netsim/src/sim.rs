//! Varys: the flow-level network simulator (§8.1.1).
//!
//! A discrete-event simulation over a [`Topology`], with:
//!
//! * max-min fair bandwidth sharing between events ([`FlowTable`]);
//! * a per-switch TCAM control plane — raw switch, Hermes, Tango, ESPRES
//!   or an ideal zero-latency switch — behind a serial control channel
//!   ([`CpQueue`]);
//! * the proactive traffic-engineering SDNApp of §8.1.1: every interval
//!   it moves the biggest flows off congested links onto alternate
//!   shortest paths, which requires installing per-flow rules along the
//!   new path — *the flow only switches after every installation
//!   completes*, so slow control planes directly inflate FCT and JCT.
//!
//! The simulation is deterministic given the seed (BTreeMap state, seeded
//! RNG, integer-nanosecond clock).

use crate::flow::{ActiveFlow, FlowId, FlowTable, JobId};
use crate::metrics::RunMetrics;
use crate::topology::{LinkId, NodeId, Topology};
use hermes_baselines::{ControlPlane, EspresSwitch, HermesPlane, RawSwitch, TangoSwitch};
use hermes_core::config::HermesConfig;
use hermes_fleet::{Fleet, FleetConfig, LaneSched, RebalancePolicy, Rebalancer};
use hermes_rules::prelude::*;
use hermes_tcam::{CrashKind, SimDuration, SimTime, SwitchModel};
use hermes_workloads::facebook::JobSpec;
use hermes_workloads::gravity::TimedFlow;
use hermes_util::rng::rngs::StdRng;
use hermes_util::rng::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// Which control plane runs on every switch.
#[derive(Clone, Debug)]
pub enum SwitchKind {
    /// Zero-latency control plane (the paper's no-latency comparison
    /// point).
    Ideal,
    /// Unmodified switch with the given empirical model.
    Raw(SwitchModel),
    /// Hermes on the given model.
    Hermes(SwitchModel, HermesConfig),
    /// Tango baseline on the given model.
    Tango(SwitchModel),
    /// ESPRES baseline on the given model.
    Espres(SwitchModel),
}

impl SwitchKind {
    /// Display name for experiment output.
    pub fn label(&self) -> String {
        match self {
            SwitchKind::Ideal => "Ideal".into(),
            SwitchKind::Raw(m) => m.name.clone(),
            SwitchKind::Hermes(_, _) => "Hermes".into(),
            SwitchKind::Tango(m) => format!("Tango ({})", m.name),
            SwitchKind::Espres(m) => format!("ESPRES ({})", m.name),
        }
    }

    fn build(&self) -> Box<dyn ControlPlane> {
        match self {
            SwitchKind::Ideal => Box::new(RawSwitch::new(SwitchModel::ideal())),
            SwitchKind::Raw(m) => Box::new(RawSwitch::new(m.clone())),
            // INVARIANT: scenario constructors pair each Hermes config
            // with a model that admits it; an infeasible pair is a bug in
            // the experiment definition, not a runtime input.
            SwitchKind::Hermes(m, c) => Box::new(
                HermesPlane::with_config(m.clone(), c.clone()).expect("INVARIANT: feasible Hermes config"),
            ),
            SwitchKind::Tango(m) => Box::new(TangoSwitch::new(m.clone())),
            SwitchKind::Espres(m) => Box::new(EspresSwitch::new(m.clone())),
        }
    }
}

/// A deterministic switch-crash schedule: every `period_s` one switch
/// (seeded pick) suffers a crash, cycling wipe → partial retention →
/// disconnect. Flows crossing the victim are rerouted around it; the
/// switch rejoins once its control plane finishes resyncing.
#[derive(Clone, Debug)]
pub struct CrashProfile {
    /// First crash instant, seconds.
    pub first_s: f64,
    /// Gap between consecutive crashes, seconds.
    pub period_s: f64,
    /// Per-entry survival probability for partial-retention crashes.
    pub survivor_prob: f64,
    /// Reconnect attempts the dead switch rejects before accepting one.
    pub reconnect_denials: u32,
}

impl Default for CrashProfile {
    fn default() -> Self {
        CrashProfile {
            first_s: 0.5,
            period_s: 1.0,
            survivor_prob: 0.5,
            reconnect_denials: 1,
        }
    }
}

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct VarysConfig {
    /// The control plane on every switch.
    pub switch: SwitchKind,
    /// TE app period, seconds.
    pub te_interval_s: f64,
    /// Links above this utilization are congested.
    pub congestion_threshold: f64,
    /// Reroutes attempted per TE tick.
    pub max_reroutes_per_tick: usize,
    /// Rules preloaded per switch before the workload (sets the starting
    /// TCAM occupancy; Table 1 shows occupancy dominates insert latency).
    pub base_rules_per_switch: usize,
    /// Rule-manager tick, seconds (Hermes only).
    pub manager_tick_s: f64,
    /// Proactive flow placement: each flow's path rules are installed when
    /// the flow arrives and the flow starts transmitting once the *last*
    /// switch finishes installing (the paper's proactive SDNApp model — no
    /// packet-in round trip, but rule installation gates the start).
    /// Disabled: flows start instantly on pre-installed routing.
    pub gate_flow_start: bool,
    /// Optional switch-crash schedule (chaos scenarios). `None`: no
    /// crashes, behaviour identical to before the fault domain existed.
    pub crash: Option<CrashProfile>,
    /// Controller worker lanes the switch control channels shard across.
    /// `0` gives every switch a dedicated lane — the historical fully
    /// parallel dispatch; `1` serializes every device op in the fleet
    /// through one driver thread.
    pub lanes: usize,
    /// Lane-scheduling mode for the fleet's worker lanes (phase 2).
    /// `Pinned` is the phase-1 static sharding; with `lanes = 0` every
    /// mode is identical (dedicated lanes have nothing to schedule).
    pub sched: LaneSched,
    /// TE-driven rebalancing policy. `Some`: new-flow placement picks
    /// among candidate paths by member health, and every TE tick may
    /// reroute flows off pressure-hot switches. `None`: placement draws
    /// exactly as before phase 2 existed (same RNG stream).
    pub rebalance: Option<RebalancePolicy>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VarysConfig {
    fn default() -> Self {
        VarysConfig {
            switch: SwitchKind::Ideal,
            te_interval_s: 1.0,
            congestion_threshold: 0.8,
            max_reroutes_per_tick: 16,
            base_rules_per_switch: 200,
            manager_tick_s: 0.1,
            gate_flow_start: true,
            crash: None,
            lanes: 0,
            sched: LaneSched::Pinned,
            rebalance: None,
            seed: 1,
        }
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum EventKind {
    FlowArrive {
        job: JobId,
        src: usize,
        dst: usize,
        bytes: u64,
    },
    FlowStart {
        flow: FlowId,
        job: JobId,
        src: usize,
        dst: usize,
        bytes: u64,
        path: Vec<LinkId>,
    },
    FlowComplete {
        flow: FlowId,
        version: u64,
    },
    TeTick,
    MgrTick,
    SwitchCrash {
        index: u64,
    },
    PathSwitch {
        flow: FlowId,
        path: Vec<LinkId>,
    },
    End,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct JobState {
    arrival: SimTime,
    flows_left: usize,
    total_bytes: u64,
}

/// The simulator.
pub struct Varys {
    topo: Topology,
    config: VarysConfig,
    fleet: Fleet<Box<dyn ControlPlane>>,
    flows: FlowTable,
    queue: BinaryHeap<Reverse<Event>>,
    seq: u64,
    now: SimTime,
    last_advance: SimTime,
    jobs: BTreeMap<JobId, JobState>,
    /// Per-flow custom rules currently installed: (switch, rule id).
    flow_rules: BTreeMap<FlowId, Vec<(NodeId, RuleId)>>,
    /// Arrival instants of flows still waiting for rule installation.
    flow_arrivals: BTreeMap<FlowId, SimTime>,
    rerouting: BTreeSet<FlowId>,
    /// Switches whose control session is currently dead (crash window
    /// open); pruned on manager ticks once resync completes.
    down: BTreeSet<NodeId>,
    /// TE-driven placement policy (`config.rebalance`); `None` keeps the
    /// phase-1 placement and RNG stream untouched.
    rebalancer: Option<Rebalancer>,
    next_flow: FlowId,
    next_rule: u64,
    rng: StdRng,
    /// Collected metrics.
    pub metrics: RunMetrics,
    end: SimTime,
    /// Record per-job JCTs: job id → (jct seconds, total bytes).
    pub jct_by_job: BTreeMap<JobId, (f64, u64)>,
}

impl Varys {
    /// Builds a simulator over the topology. Every switch's control plane
    /// is owned by the fleet controller, sharded over `config.lanes`
    /// worker lanes.
    pub fn new(topo: Topology, config: VarysConfig) -> Self {
        let members: Vec<(NodeId, Box<dyn ControlPlane>)> = topo
            .switches()
            .into_iter()
            .map(|sw| (sw, config.switch.build()))
            .collect();
        let fleet = Fleet::new(
            members,
            FleetConfig {
                lanes: config.lanes,
                seed: config.seed,
                sched: config.sched,
                ..FleetConfig::default()
            },
        );
        let rebalancer = config.rebalance.map(Rebalancer::new);
        let rng = StdRng::seed_from_u64(config.seed);
        let mut sim = Varys {
            topo,
            config,
            fleet,
            flows: FlowTable::new(),
            queue: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            last_advance: SimTime::ZERO,
            jobs: BTreeMap::new(),
            flow_rules: BTreeMap::new(),
            flow_arrivals: BTreeMap::new(),
            rerouting: BTreeSet::new(),
            down: BTreeSet::new(),
            rebalancer,
            next_flow: 0,
            next_rule: 0,
            rng,
            metrics: RunMetrics::default(),
            end: SimTime::MAX,
            jct_by_job: BTreeMap::new(),
        };
        sim.preload_base_rules();
        sim
    }

    /// Preloads `base_rules_per_switch` disjoint FIB-style rules into every
    /// switch (not counted in metrics). For Hermes these go through the
    /// normal path followed by a forced migration, leaving the shadow
    /// empty.
    fn preload_base_rules(&mut self) {
        let n = self.config.base_rules_per_switch;
        if n == 0 {
            return;
        }
        let switches: Vec<NodeId> = self.fleet.switch_ids();
        for sw in switches {
            let mut actions = Vec::with_capacity(n);
            for i in 0..n {
                let addr = (0b11u32 << 30) | ((i as u32) << 12);
                // Priorities spread across the whole usable range so later
                // TE insertions land mid-table (shifting real numbers of
                // entries on every placement strategy).
                let rule = Rule::new(
                    self.next_rule,
                    Ipv4Prefix::new(addr, 24).to_key(),
                    Priority(10 + ((i as u32).wrapping_mul(37)) % 1980),
                    Action::Forward((i % 48) as u32),
                );
                self.next_rule += 1;
                actions.push(ControlAction::Insert(rule));
            }
            let p = self.fleet.plane_mut(sw);
            p.apply_batch(&actions, SimTime::ZERO);
            // Drain Hermes's shadow so the workload starts clean, then
            // reset time-dependent state (admission bucket, busy windows)
            // — preloading happens conceptually before the simulation.
            p.tick(SimTime::ZERO);
            p.end_warmup();
            // A second drain pass for rules that arrived while the first
            // migration was notionally busy.
            p.tick(SimTime::ZERO);
            p.end_warmup();
        }
        // Preloading bypassed the lanes; reset their horizons to the epoch.
        self.fleet.end_warmup_all();
    }

    fn push(&mut self, at: SimTime, kind: EventKind) {
        self.seq += 1;
        self.queue.push(Reverse(Event {
            at,
            seq: self.seq,
            kind,
        }));
    }

    /// Registers MapReduce jobs (the Facebook workload).
    pub fn register_jobs(&mut self, jobs: &[JobSpec]) {
        for job in jobs {
            let at = SimTime::from_secs(job.arrival_s);
            self.jobs.insert(
                job.id,
                JobState {
                    arrival: at,
                    flows_left: job.flows.len(),
                    total_bytes: job.total_bytes(),
                },
            );
            for f in &job.flows {
                self.push(
                    at,
                    EventKind::FlowArrive {
                        job: job.id,
                        src: f.src,
                        dst: f.dst,
                        bytes: f.bytes,
                    },
                );
            }
        }
    }

    /// Registers independent flows (ISP workloads); each flow is its own
    /// job.
    pub fn register_flows(&mut self, flows: &[TimedFlow], first_job_id: JobId) {
        for (i, tf) in flows.iter().enumerate() {
            let job = first_job_id + i;
            let at = SimTime::from_secs(tf.arrival_s);
            self.jobs.insert(
                job,
                JobState {
                    arrival: at,
                    flows_left: 1,
                    total_bytes: tf.flow.bytes,
                },
            );
            self.push(
                at,
                EventKind::FlowArrive {
                    job,
                    src: tf.flow.src,
                    dst: tf.flow.dst,
                    bytes: tf.flow.bytes,
                },
            );
        }
    }

    /// Runs until all flows complete or `horizon_s` elapses. Returns the
    /// final simulated time.
    pub fn run(&mut self, horizon_s: f64) -> SimTime {
        self.end = SimTime::from_secs(horizon_s);
        self.push(
            SimTime::from_secs(self.config.te_interval_s),
            EventKind::TeTick,
        );
        self.push(
            SimTime::from_secs(self.config.manager_tick_s),
            EventKind::MgrTick,
        );
        if let Some(profile) = &self.config.crash {
            self.push(
                SimTime::from_secs(profile.first_s),
                EventKind::SwitchCrash { index: 0 },
            );
        }
        self.push(self.end, EventKind::End);

        while let Some(Reverse(ev)) = self.queue.pop() {
            if ev.at > self.end {
                break;
            }
            self.advance_to(ev.at);
            match ev.kind {
                EventKind::FlowArrive {
                    job,
                    src,
                    dst,
                    bytes,
                } => self.on_flow_arrive(job, src, dst, bytes),
                EventKind::FlowStart {
                    flow,
                    job,
                    src,
                    dst,
                    bytes,
                    path,
                } => self.on_flow_start(flow, job, src, dst, bytes, path),
                EventKind::FlowComplete { flow, version } => self.on_flow_complete(flow, version),
                EventKind::TeTick => self.on_te_tick(),
                EventKind::MgrTick => self.on_mgr_tick(),
                EventKind::SwitchCrash { index } => self.on_switch_crash(index),
                EventKind::PathSwitch { flow, path } => self.on_path_switch(flow, path),
                EventKind::End => break,
            }
            // Stop early once all work is done and only periodic ticks
            // remain.
            if self.flows.is_empty() && self.jobs.is_empty() {
                break;
            }
        }
        self.collect_health();
        self.now
    }

    /// Snapshots control-plane health counters into the metric bundle
    /// (overwrites, so repeated `run` calls stay consistent).
    fn collect_health(&mut self) {
        let (mut retries, mut failures, mut diffs, mut degraded_ns) = (0u64, 0u64, 0u64, 0u64);
        for (_, p) in self.fleet.planes() {
            if let Some(rs) = p.recovery_stats() {
                retries += rs.retries;
                failures += rs.permanent_failures;
                diffs += rs.audit_diffs;
                degraded_ns += rs.degraded_ns;
            }
        }
        self.metrics.device_retries = retries;
        self.metrics.device_failures = failures;
        self.metrics.audit_diffs = diffs;
        self.metrics.degraded_ms = degraded_ns as f64 / 1e6;
        let (mut resyncs, mut reinstalled, mut gap_ns) = (0u64, 0u64, 0u64);
        for (_, p) in self.fleet.planes() {
            if let Some(rs) = p.resync_stats() {
                resyncs += rs.resyncs_completed;
                reinstalled += rs.rules_reinstalled;
                gap_ns += rs.guarantee_gap_ns;
            }
        }
        self.metrics.resyncs = resyncs;
        self.metrics.resync_reinstalled = reinstalled;
        self.metrics.guarantee_gap_ns = gap_ns;
        let fs = self.fleet.stats();
        self.metrics.path_txns = fs.txns;
        self.metrics.path_rollbacks = fs.txn_rollbacks;
        self.metrics.lane_steals = fs.steals;
        self.metrics.coalesced_pieces = fs.coalesced_pieces;
        if let Some(rb) = &self.rebalancer {
            self.metrics.rebalance_steers = rb.stats().steered;
        }
    }

    fn advance_to(&mut self, t: SimTime) {
        let dt = t.since(self.last_advance).as_secs();
        self.flows.advance(dt);
        self.last_advance = t;
        self.now = t;
    }

    fn reallocate_and_reschedule(&mut self) {
        let changed = self.flows.allocate_max_min(&self.topo);
        for id in changed {
            let (version, eta) = {
                let f = self.flows.get(id).expect("INVARIANT: allocate_max_min returns ids of live flows");
                let eta = if f.rate_bps > 0.0 {
                    // +2 ns guard: `from_secs` rounds to integer nanoseconds
                    // and rounding *down* would leave a few bytes unfinished
                    // at the event — with no further rate change ever
                    // rescheduling it (observed at 40 Gbps where 1 ns ≈ 5
                    // bytes). Overshooting by 2 ns is harmless: `advance`
                    // clamps remaining at zero.
                    Some(
                        self.now
                            + SimDuration::from_secs(f.remaining_bytes * 8.0 / f.rate_bps)
                            + SimDuration::from_nanos(2),
                    )
                } else {
                    None
                };
                (f.version, eta)
            };
            if let Some(at) = eta {
                self.push(at, EventKind::FlowComplete { flow: id, version });
            }
        }
    }

    /// Does `path` traverse a switch whose control session is down?
    fn crosses_down(&self, src: usize, path: &[LinkId]) -> bool {
        !self.down.is_empty()
            && self
                .topo
                .switches_on_path(src, path)
                .iter()
                .any(|sw| self.down.contains(sw))
    }

    /// Samples a path for a new flow. Without a rebalancer, resamples a
    /// few times to route around switches currently in a crash window
    /// (rules submitted to a dead control session would stall until
    /// resync) and draws exactly one path when no switch is down, so
    /// crash-free phase-1 runs keep the historical RNG stream. With a
    /// rebalancer, placement is health-steered: three candidate draws,
    /// scored by their worst member's pressure ([`Rebalancer::pick_slice`]
    /// — a down or crash-looping switch repels the whole path).
    fn pick_arrival_path(&mut self, src: usize, dst: usize) -> Vec<LinkId> {
        if let Some(rb) = self.rebalancer.as_mut() {
            let mut cands: Vec<Vec<LinkId>> = Vec::with_capacity(3);
            for _ in 0..3 {
                if let Some(cand) = self.topo.random_shortest_path(src, dst, None, &mut self.rng)
                {
                    cands.push(cand);
                }
            }
            if cands.is_empty() {
                return Vec::new();
            }
            let health = self.fleet.member_health(self.now);
            let scores = rb.scores(&health);
            let slices: Vec<Vec<NodeId>> = cands
                .iter()
                .map(|p| self.topo.switches_on_path(src, p))
                .collect();
            let pick = rb.pick_slice(&slices, &scores);
            return cands.swap_remove(pick);
        }
        let mut path = self
            .topo
            .random_shortest_path(src, dst, None, &mut self.rng)
            .unwrap_or_default();
        if !self.down.is_empty() {
            for _ in 0..6 {
                if !self.crosses_down(src, &path) {
                    break;
                }
                match self.topo.random_shortest_path(src, dst, None, &mut self.rng) {
                    Some(cand) => path = cand,
                    None => break,
                }
            }
        }
        path
    }

    /// Injects one scheduled crash: a seeded victim switch suffers the
    /// next fault in the wipe → partial → disconnect cycle, live flows
    /// crossing it are rerouted, and the next crash is scheduled.
    fn on_switch_crash(&mut self, index: u64) {
        let Some(profile) = self.config.crash.clone() else {
            return;
        };
        let switches: Vec<NodeId> = self.fleet.switch_ids();
        if switches.is_empty() {
            return;
        }
        let pick = hermes_util::rng::Rng::gen_range(&mut self.rng, 0..switches.len());
        let victim = switches[pick];
        let kind = match index % 3 {
            0 => CrashKind::Wipe,
            1 => CrashKind::Partial {
                survivor_prob: profile.survivor_prob,
            },
            _ => CrashKind::Disconnect,
        };
        self.fleet.plane_mut(victim).inject_crash(
            kind,
            self.config.seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            profile.reconnect_denials,
            self.now,
        );
        self.metrics.crashes += 1;
        if hermes_telemetry::enabled() {
            hermes_telemetry::counter("netsim.crashes", 1);
        }
        if self.fleet.is_down(victim) {
            self.down.insert(victim);
            // Reroute live flows off the dead switch; data-plane state on
            // the victim is suspect (wipes drop its forwarding entries).
            let affected: Vec<(FlowId, usize, usize, Vec<LinkId>)> = self
                .flows
                .iter()
                .filter(|f| !self.rerouting.contains(&f.id))
                .filter(|f| self.topo.switches_on_path(f.src, &f.path).contains(&victim))
                .map(|f| (f.id, f.src, f.dst, f.path.clone()))
                .collect();
            for (fid, src, dst, old_path) in affected {
                let mut alt = None;
                for _ in 0..6 {
                    let Some(cand) =
                        self.topo.random_shortest_path(src, dst, None, &mut self.rng)
                    else {
                        break;
                    };
                    if cand != old_path
                        && !self.topo.switches_on_path(src, &cand).contains(&victim)
                    {
                        alt = Some(cand);
                        break;
                    }
                }
                // Edge switches have no bypass: a flow whose only path
                // crosses the victim stays put and rides out the window.
                if let Some(path) = alt {
                    self.reroute(fid, src, dst, path);
                }
            }
        }
        self.push(
            self.now + SimDuration::from_secs(profile.period_s),
            EventKind::SwitchCrash { index: index + 1 },
        );
    }

    fn on_flow_arrive(&mut self, job: JobId, src: usize, dst: usize, bytes: u64) {
        let id = self.next_flow;
        self.next_flow += 1;
        let path = self.pick_arrival_path(src, dst);
        if self.config.gate_flow_start {
            // Proactive placement: install the flow's rules along the path;
            // the flow starts once the slowest switch finishes.
            let ready = self.install_path_rules(id, src, dst, &path);
            self.flow_arrivals.insert(id, self.now);
            self.push(
                ready,
                EventKind::FlowStart {
                    flow: id,
                    job,
                    src,
                    dst,
                    bytes,
                    path,
                },
            );
        } else {
            self.start_flow(id, job, src, dst, bytes, path);
        }
    }

    fn on_flow_start(
        &mut self,
        flow: FlowId,
        job: JobId,
        src: usize,
        dst: usize,
        bytes: u64,
        path: Vec<LinkId>,
    ) {
        self.start_flow(flow, job, src, dst, bytes, path);
    }

    fn start_flow(
        &mut self,
        id: FlowId,
        job: JobId,
        src: usize,
        dst: usize,
        bytes: u64,
        path: Vec<LinkId>,
    ) {
        self.flows.insert(ActiveFlow {
            id,
            job,
            src,
            dst,
            remaining_bytes: bytes as f64,
            rate_bps: 0.0,
            path,
            // FCT measured from job-visible arrival: the installation wait
            // is part of the completion time (this is where control-plane
            // latency lands on applications).
            started: self.flow_arrivals.remove(&id).unwrap_or(self.now),
            version: 0,
        });
        self.reallocate_and_reschedule();
    }

    /// Builds the per-flow rule set for `path`: one rule per on-path
    /// switch, all sharing one priority draw from the TE band.
    fn path_pieces(&mut self, src: usize, dst: usize, path: &[LinkId]) -> Vec<(NodeId, Rule)> {
        let switches = self.topo.switches_on_path(src, path);
        let priority = Priority(200 + (hermes_util::rng::Rng::gen_range(&mut self.rng, 0..1600u32)));
        let mut pieces = Vec::with_capacity(switches.len());
        for sw in switches {
            let rule = Rule::new(
                self.next_rule,
                FlowMatch::any()
                    .with_dst(Ipv4Prefix::host(dst as u32))
                    .with_src(Ipv4Prefix::host(src as u32))
                    .to_key(),
                priority,
                Action::Forward((sw % 48) as u32),
            );
            self.next_rule += 1;
            pieces.push((sw, rule));
        }
        pieces
    }

    /// Pushes RIT/install/violation samples for every staged piece of a
    /// path transaction (the stage writes consume control-channel time
    /// even when the transaction later rolls back).
    fn record_path_metrics(&mut self, outcome: &hermes_fleet::PathOutcome) {
        for op in &outcome.ops {
            self.metrics.rit_ms.push(op.done.since(self.now).as_ms());
            self.metrics.installs += 1;
            if op.violated {
                self.metrics.violations += 1;
            }
            if hermes_telemetry::enabled() {
                hermes_telemetry::counter("netsim.rule_installs", 1);
                hermes_telemetry::observe("netsim.rit_ns", op.done.since(self.now).as_nanos());
            }
        }
    }

    /// Installs one per-flow rule on every switch along `path` as a
    /// two-phase fleet transaction, recording RIT samples, and returns
    /// the instant the flow may start. If a member inside a crash window
    /// aborts the transaction, the fleet rolls the staged pieces back
    /// everywhere and the install degrades to best-effort per-switch
    /// submissions — the flow still starts once every surviving write
    /// lands (a down member defers the write and lands it after resync),
    /// mirroring how flows rode out crash windows before transactions.
    fn install_path_rules(
        &mut self,
        fid: FlowId,
        src: usize,
        dst: usize,
        path: &[LinkId],
    ) -> SimTime {
        let pieces = self.path_pieces(src, dst, path);
        let rules: Vec<(NodeId, RuleId)> = pieces.iter().map(|(sw, r)| (*sw, r.id)).collect();
        let outcome = self.fleet.install_path(&pieces, self.now);
        self.record_path_metrics(&outcome);
        let mut ready = outcome.ready;
        if !outcome.committed {
            // The degraded fallback is a distinct health signal from the
            // rollback itself: the transaction aborted *and* the flow's
            // rules went out without atomicity cover.
            self.metrics.path_degraded += 1;
            if hermes_telemetry::enabled() {
                hermes_telemetry::counter("fleet.path_degraded", 1);
            }
            for (sw, rule) in &pieces {
                let (start, bo) = self
                    .fleet
                    .submit(*sw, &[ControlAction::Insert(*rule)], outcome.ready);
                let op = bo
                    .ops
                    .last()
                    .expect("INVARIANT: submit of one action reports at least one op");
                let done = start + op.completed_at;
                if done > ready {
                    ready = done;
                }
            }
        }
        if let Some(old) = self.flow_rules.insert(fid, rules) {
            for (sw, rid) in old {
                self.fleet.submit(sw, &[ControlAction::Delete(rid)], ready);
            }
        }
        ready
    }

    fn on_flow_complete(&mut self, id: FlowId, version: u64) {
        let valid = self
            .flows
            .get(id)
            .map(|f| f.version == version && f.remaining_bytes <= 1.0)
            .unwrap_or(false);
        if !valid {
            return; // stale event
        }
        let flow = self.flows.remove(id).expect("INVARIANT: flow presence validated above");
        let fct = self.now.since(flow.started).as_secs();
        self.metrics.fct_s.push(fct);
        if hermes_telemetry::enabled() {
            hermes_telemetry::counter("netsim.flows_completed", 1);
            hermes_telemetry::observe("netsim.fct_ns", self.now.since(flow.started).as_nanos());
        }
        // Fig. 9(b) plots the FCT of flows belonging to *short jobs*
        // (total job size under 1 GB).
        if let Some(js) = self.jobs.get(&flow.job) {
            if js.total_bytes < 1_000_000_000 {
                self.metrics.fct_short_s.push(fct);
            }
        }
        self.rerouting.remove(&id);
        // Tear down any custom rules (deletions are cheap; not part of the
        // flow's critical path).
        if let Some(rules) = self.flow_rules.remove(&id) {
            for (sw, rid) in rules {
                self.fleet.submit(sw, &[ControlAction::Delete(rid)], self.now);
            }
        }
        // Job accounting.
        if let Some(js) = self.jobs.get_mut(&flow.job) {
            js.flows_left -= 1;
            if js.flows_left == 0 {
                let jct = self.now.since(js.arrival).as_secs();
                self.metrics.jct_s.push(jct);
                if js.total_bytes < 1_000_000_000 {
                    self.metrics.jct_short_s.push(jct);
                } else {
                    self.metrics.jct_long_s.push(jct);
                }
                self.jct_by_job.insert(flow.job, (jct, js.total_bytes));
                self.jobs.remove(&flow.job);
            }
        }
        self.reallocate_and_reschedule();
    }

    /// The proactive TE SDNApp: move the biggest flows off congested links.
    fn on_te_tick(&mut self) {
        let span = hermes_telemetry::span_enter("netsim", "te_tick", self.now.as_nanos());
        let util = self.flows.link_utilization(&self.topo);
        // Congested links, most loaded first.
        let mut congested: Vec<(f64, LinkId)> = util
            .iter()
            .enumerate()
            .filter(|&(_, &u)| u > self.config.congestion_threshold)
            .map(|(l, &u)| (u, l))
            .collect();
        congested.sort_by(|a, b| b.0.total_cmp(&a.0));

        let mut rerouted = 0usize;
        for (_, link) in congested {
            if rerouted >= self.config.max_reroutes_per_tick {
                break;
            }
            // The biggest not-already-rerouting flow on the link.
            let candidate = self
                .flows
                .iter()
                .filter(|f| f.path.contains(&link) && !self.rerouting.contains(&f.id))
                .max_by(|a, b| a.rate_bps.total_cmp(&b.rate_bps))
                .map(|f| (f.id, f.src, f.dst, f.path.clone()));
            let Some((fid, src, dst, old_path)) = candidate else {
                continue;
            };
            // Sample a handful of alternate shortest paths and take the
            // least-loaded one — the TE app must actually improve placement
            // for control-plane speed to matter.
            let path_load = |p: &[LinkId]| p.iter().map(|&l| util[l]).fold(0.0f64, f64::max);
            let old_load = path_load(&old_path);
            let mut best: Option<(f64, Vec<LinkId>)> = None;
            for _ in 0..4 {
                let Some(cand) =
                    self.topo
                        .random_shortest_path(src, dst, Some(link), &mut self.rng)
                else {
                    continue;
                };
                if cand == old_path || cand.contains(&link) || self.crosses_down(src, &cand) {
                    continue;
                }
                let load = path_load(&cand);
                if best.as_ref().map(|(b, _)| load < *b).unwrap_or(true) {
                    best = Some((load, cand));
                }
            }
            let Some((new_load, new_path)) = best else {
                continue;
            };
            if new_load + 0.1 >= old_load {
                continue; // not meaningfully better
            }
            self.reroute(fid, src, dst, new_path);
            rerouted += 1;
        }
        if self.rebalancer.is_some() {
            self.rebalance_pass();
        }
        if hermes_telemetry::enabled() {
            hermes_telemetry::counter("netsim.reroutes", rerouted as u64);
            hermes_telemetry::series(
                "netsim.active_flows",
                self.now.as_nanos(),
                self.flows.len() as f64,
            );
        }
        // The TE pass itself consumes no simulated time; the span still
        // records the tick (and its nesting) in the rollups.
        span.end(self.now.as_nanos());
        let next = self.now + SimDuration::from_secs(self.config.te_interval_s);
        self.push(next, EventKind::TeTick);
    }

    /// TE-driven rebalancing pass (runs on every TE tick when a
    /// [`RebalancePolicy`] is configured): scores the fleet's members,
    /// and for each member the [`Rebalancer`] flags as pressure-hot,
    /// moves the biggest flow crossing it onto a sampled alternate path
    /// that avoids it — the netsim realization of draining rule load off
    /// hot members (the flow's next path transaction lands elsewhere and
    /// its old rules are torn down on switch-over).
    fn rebalance_pass(&mut self) {
        let health = self.fleet.member_health(self.now);
        let Some(rb) = self.rebalancer.as_mut() else {
            return;
        };
        let plan = rb.plan_moves(&health);
        for (hot, _cold) in plan {
            let candidate = self
                .flows
                .iter()
                .filter(|f| !self.rerouting.contains(&f.id))
                .filter(|f| self.topo.switches_on_path(f.src, &f.path).contains(&hot))
                .max_by(|a, b| a.rate_bps.total_cmp(&b.rate_bps))
                .map(|f| (f.id, f.src, f.dst, f.path.clone()));
            let Some((fid, src, dst, old_path)) = candidate else {
                continue;
            };
            let mut alt = None;
            for _ in 0..4 {
                let Some(cand) = self.topo.random_shortest_path(src, dst, None, &mut self.rng)
                else {
                    break;
                };
                if cand != old_path
                    && !self.topo.switches_on_path(src, &cand).contains(&hot)
                    && !self.crosses_down(src, &cand)
                {
                    alt = Some(cand);
                    break;
                }
            }
            let Some(path) = alt else {
                continue;
            };
            self.reroute(fid, src, dst, path);
            self.metrics.rebalance_moves += 1;
            if hermes_telemetry::enabled() {
                hermes_telemetry::counter("netsim.rebalance_moves", 1);
            }
        }
    }

    /// Issues the rule installations for a new path as a two-phase fleet
    /// transaction and schedules the switch-over for when the *last*
    /// switch finishes installing. An aborted transaction (a member
    /// mid-crash failed staging) leaves the flow on its current path and
    /// rules — the fleet already rolled the staged pieces back everywhere
    /// and a later TE tick may retry the move.
    fn reroute(&mut self, fid: FlowId, src: usize, dst: usize, new_path: Vec<LinkId>) {
        let pieces = self.path_pieces(src, dst, &new_path);
        let new_rules: Vec<(NodeId, RuleId)> = pieces.iter().map(|(sw, r)| (*sw, r.id)).collect();
        let outcome = self.fleet.install_path(&pieces, self.now);
        self.record_path_metrics(&outcome);
        if !outcome.committed {
            return;
        }
        let ready = outcome.ready;
        // Replace any previously installed custom rules on switch-over;
        // remember the new ones now so completion can clean them up.
        self.rerouting.insert(fid);
        let old = self.flow_rules.insert(fid, new_rules);
        if let Some(old_rules) = old {
            for (sw, rid) in old_rules {
                self.fleet.submit(sw, &[ControlAction::Delete(rid)], ready);
            }
        }
        self.push(
            ready,
            EventKind::PathSwitch {
                flow: fid,
                path: new_path,
            },
        );
    }

    fn on_path_switch(&mut self, fid: FlowId, path: Vec<LinkId>) {
        self.rerouting.remove(&fid);
        let Some(f) = self.flows.get_mut(fid) else {
            return;
        };
        f.path = path;
        // Do NOT bump the version here: if the reallocation below leaves
        // this flow's rate unchanged, its already-scheduled completion
        // event is still exactly right (bumping would orphan the flow).
        // Any rate that does change is re-versioned and rescheduled by
        // `reallocate_and_reschedule`.
        self.reallocate_and_reschedule();
    }

    fn on_mgr_tick(&mut self) {
        // Ticks every plane (migrations, reconnects) and re-drives any
        // rollback deletes a crash window previously swallowed.
        self.fleet.tick_all(self.now);
        // Ticks drive crashed planes through reconnect + resync; switches
        // whose session came back rejoin the routable set.
        if !self.down.is_empty() {
            let fleet = &self.fleet;
            self.down.retain(|sw| fleet.is_down(*sw));
        }
        let next = self.now + SimDuration::from_secs(self.config.manager_tick_s);
        self.push(next, EventKind::MgrTick);
    }

    /// The topology under simulation.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Total occupancy across all switch control planes.
    pub fn total_occupancy(&self) -> usize {
        self.fleet.occupancy()
    }

    /// The fleet controller owning the switch control planes.
    pub fn fleet(&self) -> &Fleet<Box<dyn ControlPlane>> {
        &self.fleet
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_util::json::ToJson;
    use hermes_workloads::facebook::{FacebookWorkload, FlowSpec};

    fn tiny_jobs(n: usize) -> Vec<JobSpec> {
        // n jobs of one 100 MB flow each, arriving 50 ms apart.
        (0..n)
            .map(|i| JobSpec {
                id: i,
                arrival_s: i as f64 * 0.05,
                flows: vec![FlowSpec {
                    src: i % 4,
                    dst: (i + 7) % 16,
                    bytes: 100_000_000,
                }],
            })
            .collect()
    }

    #[test]
    fn flows_complete_and_fct_recorded() {
        let topo = Topology::fat_tree(4, 10e9);
        let mut sim = Varys::new(topo, VarysConfig::default());
        sim.register_jobs(&tiny_jobs(10));
        sim.run(60.0);
        assert_eq!(sim.metrics.fct_s.len(), 10);
        assert_eq!(sim.metrics.jct_s.len(), 10);
        // 100 MB at 10 Gbps is 80 ms minimum.
        let mut fct = sim.metrics.fct_s.clone();
        assert!(fct.percentile(0.0) >= 0.08);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let topo = Topology::fat_tree(4, 10e9);
            let mut sim = Varys::new(
                topo,
                VarysConfig {
                    seed: 9,
                    ..Default::default()
                },
            );
            let jobs = FacebookWorkload {
                jobs: 30,
                hosts: 16,
                duration_s: 2.0,
                seed: 5,
            }
            .generate();
            sim.register_jobs(&jobs);
            sim.run(120.0);
            (
                sim.metrics.fct_s.values().to_vec(),
                sim.metrics.jct_s.values().to_vec(),
                sim.metrics.installs,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn congestion_triggers_te_and_rule_installs() {
        // Many large flows to the same destination host: its access link
        // saturates; the TE app must attempt reroutes (even though the
        // access link itself has no alternative, intermediate links do).
        let topo = Topology::fat_tree(4, 10e9);
        let model = SwitchModel::pica8_p3290();
        let cfg = VarysConfig {
            switch: SwitchKind::Raw(model),
            congestion_threshold: 0.5,
            base_rules_per_switch: 50,
            ..Default::default()
        };
        let mut sim = Varys::new(topo, cfg);
        // One full-rate flow per host pair: every inter-pod link each flow
        // crosses runs at 100% utilization, and the congested edge→agg and
        // agg→core links all have ECMP alternatives the TE app can use.
        let jobs: Vec<JobSpec> = (0..4)
            .map(|i| JobSpec {
                id: i,
                arrival_s: 0.0,
                flows: vec![FlowSpec {
                    src: i,
                    dst: 12 + i,
                    bytes: 2_000_000_000,
                }],
            })
            .collect();
        sim.register_jobs(&jobs);
        sim.run(120.0);
        assert_eq!(sim.metrics.fct_s.len(), 4, "all flows complete");
        assert!(sim.metrics.installs > 0, "TE app should install rules");
        assert!(!sim.metrics.rit_ms.is_empty());
    }

    #[test]
    fn hermes_switches_work_in_sim() {
        let topo = Topology::fat_tree(4, 10e9);
        let cfg = VarysConfig {
            switch: SwitchKind::Hermes(SwitchModel::pica8_p3290(), HermesConfig::default()),
            congestion_threshold: 0.5,
            base_rules_per_switch: 100,
            ..Default::default()
        };
        let mut sim = Varys::new(topo, cfg);
        let jobs: Vec<JobSpec> = (0..12)
            .map(|i| JobSpec {
                id: i,
                arrival_s: 0.0,
                flows: vec![FlowSpec {
                    src: i,
                    dst: 15,
                    bytes: 1_000_000_000,
                }],
            })
            .collect();
        sim.register_jobs(&jobs);
        sim.run(120.0);
        assert_eq!(sim.metrics.fct_s.len(), 12);
    }

    #[test]
    fn ideal_is_no_slower_than_raw() {
        let jobs: Vec<JobSpec> = (0..16)
            .map(|i| JobSpec {
                id: i,
                arrival_s: (i % 4) as f64 * 0.01,
                flows: vec![FlowSpec {
                    src: i % 8,
                    dst: 15,
                    bytes: 1_500_000_000,
                }],
            })
            .collect();
        let run = |kind: SwitchKind| {
            let topo = Topology::fat_tree(4, 10e9);
            let cfg = VarysConfig {
                switch: kind,
                congestion_threshold: 0.5,
                base_rules_per_switch: 400,
                ..Default::default()
            };
            let mut sim = Varys::new(topo, cfg);
            sim.register_jobs(&jobs);
            sim.run(240.0);
            sim.metrics.jct_s.mean()
        };
        let ideal = run(SwitchKind::Ideal);
        let raw = run(SwitchKind::Raw(SwitchModel::pica8_p3290()));
        assert!(
            raw >= ideal * 0.99,
            "raw ({raw}) should not beat ideal ({ideal})"
        );
    }

    #[test]
    fn crash_storm_reroutes_and_resyncs() {
        let topo = Topology::fat_tree(4, 10e9);
        let cfg = VarysConfig {
            switch: SwitchKind::Hermes(SwitchModel::pica8_p3290(), HermesConfig::default()),
            congestion_threshold: 0.5,
            base_rules_per_switch: 100,
            crash: Some(CrashProfile {
                first_s: 0.1,
                period_s: 0.25,
                survivor_prob: 0.5,
                reconnect_denials: 1,
            }),
            seed: 3,
            ..Default::default()
        };
        let mut sim = Varys::new(topo, cfg);
        let jobs: Vec<JobSpec> = (0..12)
            .map(|i| JobSpec {
                id: i,
                arrival_s: (i % 4) as f64 * 0.05,
                flows: vec![FlowSpec {
                    src: i % 8,
                    dst: 8 + (i % 8),
                    bytes: 500_000_000,
                }],
            })
            .collect();
        sim.register_jobs(&jobs);
        sim.run(240.0);
        assert_eq!(sim.metrics.fct_s.len(), 12, "flows survive the storm");
        assert!(sim.metrics.crashes > 0, "crashes were injected");
        assert!(
            sim.metrics.resyncs > 0,
            "crashed planes resynced: {} crashes",
            sim.metrics.crashes
        );
        assert!(sim.metrics.resync_reinstalled > 0);
        assert!(sim.metrics.guarantee_gap_ns > 0);
        assert!(sim.down.is_empty(), "every crash window eventually closed");
    }

    #[test]
    fn crashes_on_raw_switches_are_inert() {
        // Raw planes have no fault domain: injections are ignored and the
        // run proceeds exactly as a crash-free one would.
        let topo = Topology::fat_tree(4, 10e9);
        let cfg = VarysConfig {
            switch: SwitchKind::Raw(SwitchModel::pica8_p3290()),
            crash: Some(CrashProfile {
                first_s: 0.05,
                period_s: 0.1,
                ..CrashProfile::default()
            }),
            ..Default::default()
        };
        let mut sim = Varys::new(topo, cfg);
        sim.register_jobs(&tiny_jobs(6));
        sim.run(60.0);
        assert_eq!(sim.metrics.fct_s.len(), 6);
        assert!(sim.metrics.crashes > 0);
        assert_eq!(sim.metrics.resyncs, 0);
        assert!(sim.down.is_empty());
    }

    #[test]
    fn crash_runs_are_deterministic_given_seed() {
        let run = || {
            let topo = Topology::fat_tree(4, 10e9);
            let cfg = VarysConfig {
                switch: SwitchKind::Hermes(SwitchModel::pica8_p3290(), HermesConfig::default()),
                crash: Some(CrashProfile {
                    first_s: 0.05,
                    period_s: 0.2,
                    survivor_prob: 0.4,
                    reconnect_denials: 2,
                }),
                seed: 11,
                ..Default::default()
            };
            let mut sim = Varys::new(topo, cfg);
            let jobs = FacebookWorkload {
                jobs: 20,
                hosts: 16,
                duration_s: 1.5,
                seed: 5,
            }
            .generate();
            sim.register_jobs(&jobs);
            sim.run(120.0);
            (
                sim.metrics.fct_s.values().to_vec(),
                sim.metrics.installs,
                sim.metrics.crashes,
                sim.metrics.resyncs,
                sim.metrics.resync_reinstalled,
                sim.metrics.guarantee_gap_ns,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.2 > 0, "storm actually fired");
    }

    #[test]
    fn degraded_installs_are_counted_apart_from_rollbacks() {
        // An arrival install that aborts on a crashed member degrades to
        // best-effort per-switch submissions; that fallback must land in
        // `path_degraded`, not be folded into `path_rollbacks` (reroute
        // aborts roll back WITHOUT degrading, so the two counters answer
        // different questions).
        let topo = Topology::fat_tree(4, 10e9);
        let cfg = VarysConfig {
            switch: SwitchKind::Hermes(SwitchModel::pica8_p3290(), HermesConfig::default()),
            base_rules_per_switch: 50,
            crash: Some(CrashProfile {
                first_s: 0.02,
                period_s: 0.08,
                survivor_prob: 0.5,
                reconnect_denials: 3,
            }),
            seed: 3,
            ..Default::default()
        };
        let mut sim = Varys::new(topo, cfg);
        // A steady arrival stream across the storm: some arrivals must
        // land on a switch inside a crash window.
        let jobs: Vec<JobSpec> = (0..40)
            .map(|i| JobSpec {
                id: i,
                arrival_s: i as f64 * 0.02,
                flows: vec![FlowSpec {
                    src: i % 8,
                    dst: 8 + (i % 8),
                    bytes: 20_000_000,
                }],
            })
            .collect();
        sim.register_jobs(&jobs);
        sim.run(240.0);
        assert!(sim.metrics.path_degraded > 0, "storm produced degraded installs");
        assert!(
            sim.metrics.path_rollbacks >= sim.metrics.path_degraded,
            "every degraded install implies a rollback ({} rollbacks, {} degraded)",
            sim.metrics.path_rollbacks,
            sim.metrics.path_degraded,
        );
        assert_eq!(
            sim.metrics.path_rollbacks,
            sim.fleet().stats().txn_rollbacks,
            "path_rollbacks mirrors the fleet's counter exactly — degraded \
             installs are not folded in"
        );
    }

    #[test]
    fn rebalancer_steers_and_moves_under_skew() {
        // Same skewed workload twice; the rebalanced run must actually
        // exercise steering (health-ranked candidate picks) and TE-tick
        // moves, and still complete every flow.
        let run = |rebalance: Option<RebalancePolicy>| {
            let topo = Topology::fat_tree(4, 10e9);
            let cfg = VarysConfig {
                switch: SwitchKind::Hermes(SwitchModel::pica8_p3290(), HermesConfig::default()),
                congestion_threshold: 0.5,
                base_rules_per_switch: 100,
                te_interval_s: 0.05,
                rebalance,
                seed: 5,
                ..Default::default()
            };
            let mut sim = Varys::new(topo, cfg);
            // Everything converges on host 15: its edge switch runs hot.
            let jobs: Vec<JobSpec> = (0..16)
                .map(|i| JobSpec {
                    id: i,
                    arrival_s: (i % 4) as f64 * 0.01,
                    flows: vec![FlowSpec {
                        src: i % 12,
                        dst: 15,
                        bytes: 800_000_000,
                    }],
                })
                .collect();
            sim.register_jobs(&jobs);
            sim.run(240.0);
            sim.metrics
        };
        let baseline = run(None);
        let rebalanced = run(Some(RebalancePolicy {
            hot_factor: 1.2,
            ..RebalancePolicy::default()
        }));
        assert_eq!(baseline.fct_s.len(), 16);
        assert_eq!(rebalanced.fct_s.len(), 16, "rebalancing never strands a flow");
        assert_eq!(baseline.rebalance_steers, 0);
        assert_eq!(baseline.rebalance_moves, 0);
        assert!(
            rebalanced.rebalance_steers > 0,
            "skewed load must overrule some default path draws"
        );
        assert!(
            rebalanced.rebalance_moves > 0,
            "the hot edge switch must shed at least one flow"
        );
    }

    #[test]
    fn rebalanced_runs_are_deterministic_given_seed() {
        let run = || {
            let topo = Topology::fat_tree(4, 10e9);
            let cfg = VarysConfig {
                switch: SwitchKind::Hermes(SwitchModel::pica8_p3290(), HermesConfig::default()),
                sched: LaneSched::Weighted,
                lanes: 4,
                rebalance: Some(RebalancePolicy::default()),
                seed: 13,
                ..Default::default()
            };
            let mut sim = Varys::new(topo, cfg);
            let jobs = FacebookWorkload {
                jobs: 20,
                hosts: 16,
                duration_s: 1.5,
                seed: 5,
            }
            .generate();
            sim.register_jobs(&jobs);
            sim.run(120.0);
            sim.metrics.to_json().to_string()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn isp_flows_via_register_flows() {
        use hermes_workloads::gravity::{flows_from_matrix, TrafficMatrix};
        let topo = Topology::abilene();
        let tm = TrafficMatrix::gravity(11, 2e9, 3);
        let flows = flows_from_matrix(&tm, 2.0, 50e6, 4);
        let mut sim = Varys::new(topo, VarysConfig::default());
        sim.register_flows(&flows, 0);
        sim.run(120.0);
        assert_eq!(sim.metrics.fct_s.len(), flows.len());
    }
}
