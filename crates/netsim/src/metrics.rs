//! Evaluation metrics (§8.1.2): rule installation time (RIT), flow
//! completion time (FCT), job completion time (JCT), plus CDF helpers for
//! rendering the paper's figures.

use hermes_tcam::SimDuration;
use hermes_util::json::{Json, ToJson};

/// An empirical distribution of latency/duration samples.
#[derive(Clone, Debug, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
        self.sorted = false;
    }

    /// Records a duration in milliseconds.
    pub fn push_ms(&mut self, d: SimDuration) {
        self.push(d.as_ms());
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` with no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            hermes_util::stats::sort_samples(&mut self.values);
            self.sorted = true;
        }
    }

    /// The p-quantile (`0.0 ..= 1.0`) by nearest-rank (shared estimator,
    /// [`hermes_util::stats::quantile_sorted`]).
    pub fn percentile(&mut self, p: f64) -> f64 {
        self.ensure_sorted();
        hermes_util::stats::quantile_sorted(&self.values, p)
    }

    /// Median.
    pub fn median(&mut self) -> f64 {
        self.percentile(0.5)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Maximum.
    pub fn max(&mut self) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        self.ensure_sorted();
        *self.values.last().expect("INVARIANT: emptiness checked at function entry")
    }

    /// Renders the CDF as `points` (value, cumulative-fraction) pairs —
    /// the series plotted in the paper's CDF figures.
    pub fn cdf(&mut self, points: usize) -> Vec<(f64, f64)> {
        if self.values.is_empty() {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.values.len();
        (1..=points)
            .map(|i| {
                let frac = i as f64 / points as f64;
                let idx = ((frac * n as f64).ceil() as usize).clamp(1, n) - 1;
                (self.values[idx], frac)
            })
            .collect()
    }

    /// Fraction of samples at or below `x`.
    pub fn fraction_below(&mut self, x: f64) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        self.ensure_sorted();
        let idx = self.values.partition_point(|&v| v <= x);
        idx as f64 / self.values.len() as f64
    }

    /// Raw samples (unsorted order not guaranteed).
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl ToJson for Samples {
    /// Serializes as the raw value array (insertion order), so two
    /// identically-seeded runs produce byte-identical documents.
    fn to_json(&self) -> Json {
        self.values.to_json()
    }
}

/// The metric bundle a simulation run produces.
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// Rule installation times, ms.
    pub rit_ms: Samples,
    /// Flow completion times, seconds.
    pub fct_s: Samples,
    /// Job completion times, seconds.
    pub jct_s: Samples,
    /// Short-job JCTs, seconds (paper's <1 GB split).
    pub jct_short_s: Samples,
    /// Long-job JCTs, seconds.
    pub jct_long_s: Samples,
    /// Short-flow FCTs, seconds.
    pub fct_short_s: Samples,
    /// Guarantee violations observed.
    pub violations: u64,
    /// Total rule installations.
    pub installs: u64,
    /// Migrations performed (Hermes only).
    pub migrations: u64,
    /// Device ops retried after transient control-channel failures
    /// (Hermes only; 0 without a fault plan).
    pub device_retries: u64,
    /// Device ops that exhausted their retry budget.
    pub device_failures: u64,
    /// Divergences found and repaired by reconciliation audits.
    pub audit_diffs: u64,
    /// Total simulated time the control planes spent in degraded mode, ms.
    pub degraded_ms: f64,
    /// Switch crashes injected over the run (wipe + partial + disconnect).
    pub crashes: u64,
    /// Resync passes the control planes drove to completion.
    pub resyncs: u64,
    /// Rules reinstalled by resync across all switches.
    pub resync_reinstalled: u64,
    /// Total crash-to-guarantee-restored gap, nanoseconds (summed across
    /// completed resyncs; the window in which the insertion guarantee was
    /// suspended).
    pub guarantee_gap_ns: u64,
    /// Two-phase path-install transactions driven through the fleet.
    pub path_txns: u64,
    /// Path transactions rolled back on a member fault or crash window.
    pub path_rollbacks: u64,
    /// Aborted arrival installs that degraded to best-effort per-switch
    /// submissions (the flow's rules went out without atomicity cover —
    /// a distinct health signal from the rollback itself).
    pub path_degraded: u64,
    /// New-flow placements the rebalancer steered off the TE layer's
    /// default path draw (member health overruled the first candidate).
    pub rebalance_steers: u64,
    /// Flows moved off pressure-hot switches by TE-tick rebalance passes.
    pub rebalance_moves: u64,
    /// Fleet ops dispatched to a lane other than their member's home lane
    /// (weighted / work-stealing scheduling; 0 under pinned sharding).
    pub lane_steals: u64,
    /// Path-transaction pieces that rode a shared per-member cut instead
    /// of their own submit.
    pub coalesced_pieces: u64,
}

impl ToJson for RunMetrics {
    fn to_json(&self) -> Json {
        Json::obj([
            ("rit_ms", self.rit_ms.to_json()),
            ("fct_s", self.fct_s.to_json()),
            ("jct_s", self.jct_s.to_json()),
            ("jct_short_s", self.jct_short_s.to_json()),
            ("jct_long_s", self.jct_long_s.to_json()),
            ("fct_short_s", self.fct_short_s.to_json()),
            ("violations", self.violations.to_json()),
            ("installs", self.installs.to_json()),
            ("migrations", self.migrations.to_json()),
            ("device_retries", self.device_retries.to_json()),
            ("device_failures", self.device_failures.to_json()),
            ("audit_diffs", self.audit_diffs.to_json()),
            ("degraded_ms", self.degraded_ms.to_json()),
            ("crashes", self.crashes.to_json()),
            ("resyncs", self.resyncs.to_json()),
            ("resync_reinstalled", self.resync_reinstalled.to_json()),
            ("guarantee_gap_ns", self.guarantee_gap_ns.to_json()),
            ("path_txns", self.path_txns.to_json()),
            ("path_rollbacks", self.path_rollbacks.to_json()),
            ("path_degraded", self.path_degraded.to_json()),
            ("rebalance_steers", self.rebalance_steers.to_json()),
            ("rebalance_moves", self.rebalance_moves.to_json()),
            ("lane_steals", self.lane_steals.to_json()),
            ("coalesced_pieces", self.coalesced_pieces.to_json()),
        ])
    }
}

/// Median improvement of `ours` over `baseline` as a fraction (the "%
/// improvement" numbers quoted in §8.2), computed on medians.
pub fn median_improvement(baseline: &mut Samples, ours: &mut Samples) -> f64 {
    let b = baseline.median();
    let o = ours.median();
    if b <= 0.0 || !b.is_finite() {
        return 0.0;
    }
    (b - o) / b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(vals: &[f64]) -> Samples {
        let mut s = Samples::new();
        for &v in vals {
            s.push(v);
        }
        s
    }

    #[test]
    fn percentiles() {
        let mut s = samples(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(1.0), 5.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn empty_is_nan() {
        let mut s = Samples::new();
        assert!(s.median().is_nan());
        assert!(s.mean().is_nan());
        assert!(s.cdf(10).is_empty());
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_max() {
        let mut s = samples(&[1.0, 10.0, 100.0, 2.0, 5.0, 7.0]);
        let cdf = s.cdf(20);
        assert_eq!(cdf.len(), 20);
        for w in cdf.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(cdf.last().unwrap().0, 100.0);
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }

    #[test]
    fn fraction_below() {
        let mut s = samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.fraction_below(2.5), 0.5);
        assert_eq!(s.fraction_below(0.5), 0.0);
        assert_eq!(s.fraction_below(10.0), 1.0);
    }

    #[test]
    fn improvement() {
        let mut base = samples(&[10.0, 10.0, 10.0]);
        let mut ours = samples(&[2.0, 2.0, 2.0]);
        assert!((median_improvement(&mut base, &mut ours) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn push_ms_converts() {
        let mut s = Samples::new();
        s.push_ms(SimDuration::from_ms(2.5));
        assert_eq!(s.values()[0], 2.5);
    }
}
