//! Network topologies (§8.1.3).
//!
//! * [`Topology::fat_tree`] — the k-ary fat tree \[21\] the Facebook
//!   workload runs on (k=16 → 1024 hosts, 320 switches, 40 Gbps links);
//! * [`Topology::abilene`] — the Internet2 backbone (11 PoPs);
//! * [`Topology::geant`] — the GÉANT European research network (22 PoPs,
//!   approximated from the public Topology Zoo map);
//! * [`Topology::quest`] — the Quest topology from the Topology Zoo \[19\];
//! * [`Topology::single_switch`] — the MicroBench star.
//!
//! Every node is either a host (traffic endpoint) or a switch (runs a
//! control plane). ISP PoPs are modelled as a switch plus one attached
//! host that sources/sinks the PoP's traffic.

use hermes_util::rng::Rng;
use std::collections::VecDeque;

/// Node index.
pub type NodeId = usize;
/// Link index (into [`Topology::links`]).
pub type LinkId = usize;

/// What a node is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// Traffic endpoint.
    Host,
    /// Forwarding element with a TCAM control plane.
    Switch,
}

/// An undirected link with symmetric capacity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Capacity per direction, bits/s.
    pub capacity_bps: f64,
}

impl Link {
    /// The endpoint opposite `n`.
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else {
            self.a
        }
    }
}

/// A network: nodes, links, adjacency.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Node kinds, indexed by [`NodeId`].
    pub kinds: Vec<NodeKind>,
    /// All links.
    pub links: Vec<Link>,
    /// Adjacency: per node, the incident link ids.
    pub adj: Vec<Vec<LinkId>>,
    /// Human-readable name.
    pub name: String,
}

impl Topology {
    fn new(name: &str) -> Self {
        Topology {
            kinds: Vec::new(),
            links: Vec::new(),
            adj: Vec::new(),
            name: name.into(),
        }
    }

    fn add_node(&mut self, kind: NodeKind) -> NodeId {
        self.kinds.push(kind);
        self.adj.push(Vec::new());
        self.kinds.len() - 1
    }

    fn add_link(&mut self, a: NodeId, b: NodeId, capacity_bps: f64) -> LinkId {
        let id = self.links.len();
        self.links.push(Link { a, b, capacity_bps });
        self.adj[a].push(id);
        self.adj[b].push(id);
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// Indices of all hosts.
    pub fn hosts(&self) -> Vec<NodeId> {
        (0..self.kinds.len())
            .filter(|&n| self.kinds[n] == NodeKind::Host)
            .collect()
    }

    /// Indices of all switches.
    pub fn switches(&self) -> Vec<NodeId> {
        (0..self.kinds.len())
            .filter(|&n| self.kinds[n] == NodeKind::Switch)
            .collect()
    }

    /// The k-ary fat tree: `k` pods of `k/2` edge and `k/2` aggregation
    /// switches, `(k/2)²` cores, `k³/4` hosts. Hosts get ids `0..k³/4`.
    ///
    /// # Panics
    /// Panics on odd `k`.
    pub fn fat_tree(k: usize, link_bps: f64) -> Self {
        assert!(k.is_multiple_of(2), "fat tree requires even k");
        let mut t = Topology::new(&format!("fat-tree k={k}"));
        let half = k / 2;
        let n_hosts = k * half * half;
        let hosts: Vec<NodeId> = (0..n_hosts).map(|_| t.add_node(NodeKind::Host)).collect();
        // Per pod: edge switches then aggregation switches.
        let mut edges = Vec::with_capacity(k * half);
        let mut aggs = Vec::with_capacity(k * half);
        for _pod in 0..k {
            for _ in 0..half {
                edges.push(t.add_node(NodeKind::Switch));
            }
            for _ in 0..half {
                aggs.push(t.add_node(NodeKind::Switch));
            }
        }
        let cores: Vec<NodeId> = (0..half * half)
            .map(|_| t.add_node(NodeKind::Switch))
            .collect();
        for pod in 0..k {
            for e in 0..half {
                let edge = edges[pod * half + e];
                // Hosts under this edge switch.
                for h in 0..half {
                    let host = hosts[pod * half * half + e * half + h];
                    t.add_link(host, edge, link_bps);
                }
                // Edge to every agg in the pod.
                for a in 0..half {
                    t.add_link(edge, aggs[pod * half + a], link_bps);
                }
            }
            // Agg a connects to cores a*half .. a*half+half-1.
            for a in 0..half {
                for c in 0..half {
                    t.add_link(aggs[pod * half + a], cores[a * half + c], link_bps);
                }
            }
        }
        t
    }

    /// A two-tier leaf–spine fabric: every leaf connects to every spine,
    /// with `hosts_per_leaf` hosts under each leaf. The modern data-center
    /// alternative to the fat tree; host ids are `0..leaves*hosts_per_leaf`.
    pub fn leaf_spine(leaves: usize, spines: usize, hosts_per_leaf: usize, link_bps: f64) -> Self {
        let mut t = Topology::new(&format!("leaf-spine {leaves}x{spines}"));
        let hosts: Vec<NodeId> = (0..leaves * hosts_per_leaf)
            .map(|_| t.add_node(NodeKind::Host))
            .collect();
        let leaf_ids: Vec<NodeId> = (0..leaves).map(|_| t.add_node(NodeKind::Switch)).collect();
        let spine_ids: Vec<NodeId> = (0..spines).map(|_| t.add_node(NodeKind::Switch)).collect();
        for (l, &leaf) in leaf_ids.iter().enumerate() {
            for h in 0..hosts_per_leaf {
                t.add_link(hosts[l * hosts_per_leaf + h], leaf, link_bps);
            }
            for &spine in &spine_ids {
                t.add_link(leaf, spine, link_bps);
            }
        }
        t
    }

    /// A single switch with `n` hosts (MicroBench).
    pub fn single_switch(n: usize, link_bps: f64) -> Self {
        let mut t = Topology::new("single-switch");
        let hosts: Vec<NodeId> = (0..n).map(|_| t.add_node(NodeKind::Host)).collect();
        let sw = t.add_node(NodeKind::Switch);
        for h in hosts {
            t.add_link(h, sw, link_bps);
        }
        t
    }

    /// Builds an ISP topology from a PoP edge list: one switch per PoP
    /// plus an attached host. Host ids are `0..pops`.
    fn isp(name: &str, pops: usize, edges: &[(usize, usize)], capacity_bps: f64) -> Self {
        let mut t = Topology::new(name);
        let hosts: Vec<NodeId> = (0..pops).map(|_| t.add_node(NodeKind::Host)).collect();
        let switches: Vec<NodeId> = (0..pops).map(|_| t.add_node(NodeKind::Switch)).collect();
        for p in 0..pops {
            // PoP access link, provisioned above the backbone so the
            // backbone is the bottleneck.
            t.add_link(hosts[p], switches[p], capacity_bps * 4.0);
        }
        for &(a, b) in edges {
            t.add_link(switches[a], switches[b], capacity_bps);
        }
        t
    }

    /// The Abilene / Internet2 backbone (11 PoPs, 14 links, 10 Gbps).
    /// Nodes: 0 Seattle, 1 Sunnyvale, 2 Denver, 3 LA, 4 Houston,
    /// 5 KansasCity, 6 Indianapolis, 7 Atlanta, 8 Chicago, 9 WashDC,
    /// 10 NewYork.
    pub fn abilene() -> Self {
        Self::isp(
            "Abilene",
            11,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 5),
                (3, 4),
                (4, 5),
                (4, 7),
                (5, 6),
                (6, 7),
                (6, 8),
                (7, 9),
                (8, 10),
                (9, 10),
            ],
            10e9,
        )
    }

    /// GÉANT, the European research backbone — 22 PoPs approximating the
    /// public Topology Zoo map \[10\].
    pub fn geant() -> Self {
        Self::isp(
            "Geant",
            22,
            &[
                // Core ring + meshy western Europe.
                (0, 1),
                (0, 2),
                (0, 21),
                (1, 2),
                (1, 3),
                (2, 4),
                (3, 4),
                (3, 5),
                (4, 6),
                (5, 6),
                (5, 7),
                (6, 8),
                (7, 8),
                (7, 9),
                (8, 10),
                (9, 10),
                (9, 11),
                (10, 12),
                (11, 12),
                (11, 13),
                (12, 14),
                (13, 14),
                (13, 15),
                (14, 16),
                (15, 16),
                (15, 17),
                (16, 18),
                (17, 18),
                (17, 19),
                (18, 20),
                (19, 20),
                (19, 21),
                (20, 21),
                (2, 13),
                (6, 17),
                (4, 9),
            ],
            10e9,
        )
    }

    /// The Quest topology from the Internet Topology Zoo \[19\] (20 PoPs,
    /// sparse national backbone).
    pub fn quest() -> Self {
        Self::isp(
            "Quest",
            20,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 0),
                (1, 8),
                (8, 9),
                (9, 10),
                (10, 3),
                (5, 11),
                (11, 12),
                (12, 13),
                (13, 7),
                (8, 14),
                (14, 15),
                (15, 11),
                (9, 16),
                (16, 17),
                (17, 12),
                (0, 18),
                (18, 19),
                (19, 4),
            ],
            2.5e9,
        )
    }

    /// BFS hop distance from every node to `dst` (usize::MAX where
    /// unreachable).
    pub fn distances_to(&self, dst: NodeId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.node_count()];
        dist[dst] = 0;
        let mut q = VecDeque::from([dst]);
        while let Some(n) = q.pop_front() {
            for &lid in &self.adj[n] {
                let m = self.links[lid].other(n);
                if dist[m] == usize::MAX {
                    dist[m] = dist[n] + 1;
                    q.push_back(m);
                }
            }
        }
        dist
    }

    /// A uniformly random shortest path from `src` to `dst` as a list of
    /// link ids, optionally avoiding a link (falls back to using it if no
    /// shortest path avoids it). Hosts cannot be transited.
    pub fn random_shortest_path<R: Rng>(
        &self,
        src: NodeId,
        dst: NodeId,
        avoid: Option<LinkId>,
        rng: &mut R,
    ) -> Option<Vec<LinkId>> {
        if src == dst {
            return Some(Vec::new());
        }
        let dist = self.distances_to(dst);
        if dist[src] == usize::MAX {
            return None;
        }
        let mut path = Vec::with_capacity(dist[src]);
        let mut cur = src;
        while cur != dst {
            let mut candidates: Vec<LinkId> = self.adj[cur]
                .iter()
                .copied()
                .filter(|&lid| {
                    let next = self.links[lid].other(cur);
                    // Never transit through a host.
                    (self.kinds[next] == NodeKind::Switch || next == dst)
                        && dist[next] == dist[cur] - 1
                })
                .collect();
            if candidates.is_empty() {
                return None;
            }
            if let Some(bad) = avoid {
                let filtered: Vec<LinkId> =
                    candidates.iter().copied().filter(|&l| l != bad).collect();
                if !filtered.is_empty() {
                    candidates = filtered;
                }
            }
            let pick = candidates[rng.gen_range(0..candidates.len())];
            path.push(pick);
            cur = self.links[pick].other(cur);
        }
        Some(path)
    }

    /// The switches a path traverses, in order.
    pub fn switches_on_path(&self, src: NodeId, path: &[LinkId]) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = src;
        for &lid in path {
            let next = self.links[lid].other(cur);
            if self.kinds[next] == NodeKind::Switch {
                out.push(next);
            }
            cur = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_util::rng::rngs::StdRng;
    use hermes_util::rng::SeedableRng;

    #[test]
    fn fat_tree_dimensions() {
        // Paper configuration: k=16 → 1024 hosts.
        let t = Topology::fat_tree(16, 40e9);
        assert_eq!(t.hosts().len(), 1024);
        // 16 pods × 16 switches + 64 cores = 320.
        assert_eq!(t.switches().len(), 320);
        // Links: 1024 host + 16*8*8 edge-agg + 16*8*8 agg-core = 3072.
        assert_eq!(t.links.len(), 3072);
    }

    #[test]
    fn fat_tree_path_lengths() {
        let t = Topology::fat_tree(4, 40e9);
        let mut rng = StdRng::seed_from_u64(1);
        let hosts = t.hosts();
        // Same edge switch: 2 hops.
        let p = t
            .random_shortest_path(hosts[0], hosts[1], None, &mut rng)
            .unwrap();
        assert_eq!(p.len(), 2);
        // Same pod, different edge: 4 hops.
        let p = t
            .random_shortest_path(hosts[0], hosts[2], None, &mut rng)
            .unwrap();
        assert_eq!(p.len(), 4);
        // Different pods: 6 hops.
        let p = t
            .random_shortest_path(hosts[0], *hosts.last().unwrap(), None, &mut rng)
            .unwrap();
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn paths_are_contiguous_and_terminate() {
        let t = Topology::fat_tree(8, 40e9);
        let mut rng = StdRng::seed_from_u64(3);
        let hosts = t.hosts();
        for i in (0..hosts.len()).step_by(61) {
            let (s, d) = (hosts[i], hosts[(i * 7 + 13) % hosts.len()]);
            if s == d {
                continue;
            }
            let p = t.random_shortest_path(s, d, None, &mut rng).unwrap();
            let mut cur = s;
            for &lid in &p {
                assert!(
                    t.links[lid].a == cur || t.links[lid].b == cur,
                    "discontiguous"
                );
                cur = t.links[lid].other(cur);
            }
            assert_eq!(cur, d);
        }
    }

    #[test]
    fn ecmp_diversity_exists() {
        let t = Topology::fat_tree(8, 40e9);
        let hosts = t.hosts();
        let (s, d) = (hosts[0], *hosts.last().unwrap());
        let mut rng = StdRng::seed_from_u64(5);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..64 {
            distinct.insert(t.random_shortest_path(s, d, None, &mut rng).unwrap());
        }
        assert!(
            distinct.len() > 4,
            "only {} distinct shortest paths",
            distinct.len()
        );
    }

    #[test]
    fn avoid_link_respected_when_possible() {
        let t = Topology::fat_tree(4, 40e9);
        let hosts = t.hosts();
        let (s, d) = (hosts[0], *hosts.last().unwrap());
        let mut rng = StdRng::seed_from_u64(7);
        let p = t.random_shortest_path(s, d, None, &mut rng).unwrap();
        // Avoid a middle (switch-switch) link: it has alternatives.
        let avoid = p[2];
        for _ in 0..32 {
            let q = t.random_shortest_path(s, d, Some(avoid), &mut rng).unwrap();
            assert!(!q.contains(&avoid));
        }
        // Avoid the first-hop host link: impossible, falls back to it.
        let host_link = p[0];
        let q = t
            .random_shortest_path(s, d, Some(host_link), &mut rng)
            .unwrap();
        assert!(q.contains(&host_link));
    }

    #[test]
    fn isp_topologies_are_connected() {
        for t in [Topology::abilene(), Topology::geant(), Topology::quest()] {
            let hosts = t.hosts();
            let dist = t.distances_to(hosts[0]);
            for h in &hosts {
                assert_ne!(dist[*h], usize::MAX, "{}: host {h} unreachable", t.name);
            }
        }
        assert_eq!(Topology::abilene().hosts().len(), 11);
        assert_eq!(Topology::geant().hosts().len(), 22);
        assert_eq!(Topology::quest().hosts().len(), 20);
    }

    #[test]
    fn switches_on_path_excludes_hosts() {
        let t = Topology::fat_tree(4, 40e9);
        let hosts = t.hosts();
        let mut rng = StdRng::seed_from_u64(11);
        let p = t
            .random_shortest_path(hosts[0], *hosts.last().unwrap(), None, &mut rng)
            .unwrap();
        let sws = t.switches_on_path(hosts[0], &p);
        assert_eq!(sws.len(), 5, "inter-pod path crosses 5 switches");
        for s in sws {
            assert_eq!(t.kinds[s], NodeKind::Switch);
        }
    }

    #[test]
    fn leaf_spine_structure() {
        let t = Topology::leaf_spine(4, 2, 8, 10e9);
        assert_eq!(t.hosts().len(), 32);
        assert_eq!(t.switches().len(), 6);
        // 32 host links + 4*2 fabric links.
        assert_eq!(t.links.len(), 40);
        let mut rng = StdRng::seed_from_u64(2);
        let hosts = t.hosts();
        // Cross-leaf: host → leaf → spine → leaf → host = 4 hops.
        let p = t
            .random_shortest_path(hosts[0], hosts[31], None, &mut rng)
            .unwrap();
        assert_eq!(p.len(), 4);
        // Same leaf: 2 hops.
        let p = t
            .random_shortest_path(hosts[0], hosts[1], None, &mut rng)
            .unwrap();
        assert_eq!(p.len(), 2);
        // Spine diversity exists.
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..16 {
            distinct.insert(
                t.random_shortest_path(hosts[0], hosts[31], None, &mut rng)
                    .unwrap(),
            );
        }
        assert!(distinct.len() >= 2);
    }

    #[test]
    fn single_switch_star() {
        let t = Topology::single_switch(4, 10e9);
        assert_eq!(t.hosts().len(), 4);
        assert_eq!(t.switches().len(), 1);
        let mut rng = StdRng::seed_from_u64(1);
        let p = t.random_shortest_path(0, 3, None, &mut rng).unwrap();
        assert_eq!(p.len(), 2);
    }
}
