//! Header-field layout and multi-field flow matches.
//!
//! The TCAM model matches on a single 128-bit header window. Real OpenFlow
//! matches are multi-field; we pack the common 5-tuple-ish fields into fixed
//! bit positions of that window so that the generic ternary-key algebra
//! (overlap, containment, difference) applies uniformly:
//!
//! ```text
//! bits 127..96  destination IPv4 address
//! bits  95..64  source IPv4 address
//! bits  63..56  IP protocol
//! bits  55..40  destination L4 port
//! bits  39..24  source L4 port
//! bits  23..12  VLAN id
//! bits  11..0   (reserved, always wildcard)
//! ```
//!
//! [`FlowMatch`] is the ergonomic builder for such keys; FIB-style rules that
//! only match a destination prefix can use
//! [`Ipv4Prefix::to_key`](crate::prefix::Ipv4Prefix::to_key) directly.

use crate::key::TernaryKey;
use crate::prefix::Ipv4Prefix;

/// Bit offset of the destination IPv4 address within the header window.
pub const DST_SHIFT: u32 = 96;
/// Bit offset of the source IPv4 address.
pub const SRC_SHIFT: u32 = 64;
/// Bit offset of the IP protocol byte.
pub const PROTO_SHIFT: u32 = 56;
/// Bit offset of the destination L4 port.
pub const DPORT_SHIFT: u32 = 40;
/// Bit offset of the source L4 port.
pub const SPORT_SHIFT: u32 = 24;
/// Bit offset of the VLAN id (12 bits).
pub const VLAN_SHIFT: u32 = 12;

/// A multi-field match in OpenFlow style. Every field is optional; `None`
/// means wildcard. Address fields are prefixes, the rest are exact values.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct FlowMatch {
    /// Destination IPv4 prefix.
    pub dst: Option<Ipv4Prefix>,
    /// Source IPv4 prefix.
    pub src: Option<Ipv4Prefix>,
    /// IP protocol (e.g. 6 = TCP, 17 = UDP).
    pub proto: Option<u8>,
    /// Destination transport port.
    pub dst_port: Option<u16>,
    /// Source transport port.
    pub src_port: Option<u16>,
    /// VLAN identifier (12 bits used).
    pub vlan: Option<u16>,
}

impl FlowMatch {
    /// The fully wildcarded match.
    pub fn any() -> Self {
        Self::default()
    }

    /// A match on the destination prefix only (FIB-style rule).
    pub fn dst_prefix(p: Ipv4Prefix) -> Self {
        FlowMatch {
            dst: Some(p),
            ..Self::default()
        }
    }

    /// Builder: set the destination prefix.
    pub fn with_dst(mut self, p: Ipv4Prefix) -> Self {
        self.dst = Some(p);
        self
    }

    /// Builder: set the source prefix.
    pub fn with_src(mut self, p: Ipv4Prefix) -> Self {
        self.src = Some(p);
        self
    }

    /// Builder: set the IP protocol.
    pub fn with_proto(mut self, proto: u8) -> Self {
        self.proto = Some(proto);
        self
    }

    /// Builder: set the destination port.
    pub fn with_dst_port(mut self, port: u16) -> Self {
        self.dst_port = Some(port);
        self
    }

    /// Builder: set the source port.
    pub fn with_src_port(mut self, port: u16) -> Self {
        self.src_port = Some(port);
        self
    }

    /// Builder: set the VLAN id (only the low 12 bits are used).
    pub fn with_vlan(mut self, vlan: u16) -> Self {
        self.vlan = Some(vlan & 0xfff);
        self
    }

    /// Packs the match into the 128-bit ternary key.
    pub fn to_key(&self) -> TernaryKey {
        let mut value = 0u128;
        let mut mask = 0u128;
        if let Some(d) = self.dst {
            value |= (d.addr() as u128) << DST_SHIFT;
            mask |= (d.netmask() as u128) << DST_SHIFT;
        }
        if let Some(s) = self.src {
            value |= (s.addr() as u128) << SRC_SHIFT;
            mask |= (s.netmask() as u128) << SRC_SHIFT;
        }
        if let Some(p) = self.proto {
            value |= (p as u128) << PROTO_SHIFT;
            mask |= 0xffu128 << PROTO_SHIFT;
        }
        if let Some(dp) = self.dst_port {
            value |= (dp as u128) << DPORT_SHIFT;
            mask |= 0xffffu128 << DPORT_SHIFT;
        }
        if let Some(sp) = self.src_port {
            value |= (sp as u128) << SPORT_SHIFT;
            mask |= 0xffffu128 << SPORT_SHIFT;
        }
        if let Some(v) = self.vlan {
            value |= ((v & 0xfff) as u128) << VLAN_SHIFT;
            mask |= 0xfffu128 << VLAN_SHIFT;
        }
        TernaryKey::new(value, mask)
    }

    /// Extracts the destination-prefix portion of a ternary key, if the key's
    /// destination bits are prefix shaped. Used by the overlap index to route
    /// keys into the destination trie.
    pub fn dst_prefix_of_key(key: &TernaryKey) -> Option<Ipv4Prefix> {
        let mask = (key.mask() >> DST_SHIFT) as u32;
        let value = (key.value() >> DST_SHIFT) as u32;
        let len = mask.count_ones() as u8;
        if mask.leading_ones() != mask.count_ones() {
            return None; // non-contiguous destination mask
        }
        Some(Ipv4Prefix::new(value, len))
    }
}

/// Builds a packet header word for lookup, mirroring the [`FlowMatch`]
/// layout. All fields are concrete in a packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketHeader {
    /// Destination IPv4 address.
    pub dst: u32,
    /// Source IPv4 address.
    pub src: u32,
    /// IP protocol.
    pub proto: u8,
    /// Destination transport port.
    pub dst_port: u16,
    /// Source transport port.
    pub src_port: u16,
    /// VLAN identifier.
    pub vlan: u16,
}

impl PacketHeader {
    /// A header with only the destination address set; the rest zero.
    pub fn to_dst(dst: u32) -> Self {
        PacketHeader {
            dst,
            src: 0,
            proto: 0,
            dst_port: 0,
            src_port: 0,
            vlan: 0,
        }
    }

    /// Packs the header into the 128-bit lookup word.
    pub fn to_word(&self) -> u128 {
        ((self.dst as u128) << DST_SHIFT)
            | ((self.src as u128) << SRC_SHIFT)
            | ((self.proto as u128) << PROTO_SHIFT)
            | ((self.dst_port as u128) << DPORT_SHIFT)
            | ((self.src_port as u128) << SPORT_SHIFT)
            | (((self.vlan & 0xfff) as u128) << VLAN_SHIFT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn any_match_is_any_key() {
        assert_eq!(FlowMatch::any().to_key(), TernaryKey::ANY);
    }

    #[test]
    fn dst_only_match_equals_prefix_key() {
        let pre = p("10.1.0.0/16");
        assert_eq!(FlowMatch::dst_prefix(pre).to_key(), pre.to_key());
    }

    #[test]
    fn full_tuple_roundtrip() {
        let m = FlowMatch::any()
            .with_dst(p("10.0.0.0/8"))
            .with_src(p("192.168.0.0/16"))
            .with_proto(6)
            .with_dst_port(443)
            .with_src_port(5000)
            .with_vlan(12);
        let key = m.to_key();
        let hit = PacketHeader {
            dst: u32::from_be_bytes([10, 2, 3, 4]),
            src: u32::from_be_bytes([192, 168, 9, 9]),
            proto: 6,
            dst_port: 443,
            src_port: 5000,
            vlan: 12,
        };
        assert!(key.matches(hit.to_word()));
        let miss = PacketHeader { proto: 17, ..hit };
        assert!(!key.matches(miss.to_word()));
        let miss2 = PacketHeader {
            dst: u32::from_be_bytes([11, 2, 3, 4]),
            ..hit
        };
        assert!(!key.matches(miss2.to_word()));
    }

    #[test]
    fn dst_prefix_extraction() {
        let pre = p("172.16.0.0/12");
        let key = FlowMatch::dst_prefix(pre).with_proto(17).to_key();
        assert_eq!(FlowMatch::dst_prefix_of_key(&key), Some(pre));
        // Fully wildcarded destination extracts the default route.
        let key2 = FlowMatch::any().with_proto(6).to_key();
        assert_eq!(
            FlowMatch::dst_prefix_of_key(&key2),
            Some(Ipv4Prefix::DEFAULT)
        );
    }

    #[test]
    fn field_overlap_via_keys() {
        // Same dst, different protocols: disjoint.
        let a = FlowMatch::dst_prefix(p("10.0.0.0/8"))
            .with_proto(6)
            .to_key();
        let b = FlowMatch::dst_prefix(p("10.0.0.0/8"))
            .with_proto(17)
            .to_key();
        assert!(!a.overlaps(&b));
        // Narrower dst, wildcard proto overlaps both.
        let c = FlowMatch::dst_prefix(p("10.1.0.0/16")).to_key();
        assert!(c.overlaps(&a));
        assert!(c.overlaps(&b));
    }
}
