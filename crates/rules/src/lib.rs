//! # hermes-rules — classifier algebra for Hermes
//!
//! The rule-manipulation substrate of the Hermes reproduction (CoNEXT'17):
//! ternary match keys with overlap/containment/difference operations,
//! IPv4 prefixes, multi-field flow matches, a prefix-trie overlap index, and
//! semantics-preserving rule-set minimization.
//!
//! Everything in this crate is pure data manipulation — no clocks, no I/O —
//! so it is shared by the TCAM device model, the Hermes framework, the
//! baselines and the BGP engine.
//!
//! ## Quick tour
//!
//! ```
//! use hermes_rules::prelude::*;
//!
//! // Fig. 4 of the paper: a /24 rule cut against a higher-priority /26.
//! let wide: Ipv4Prefix = "192.168.1.0/24".parse().unwrap();
//! let hole: Ipv4Prefix = "192.168.1.0/26".parse().unwrap();
//! let pieces = wide.difference(&hole);
//! assert_eq!(pieces.len(), 2); // 192.168.1.64/26 and 192.168.1.128/25
//!
//! // The same cut through the generic ternary algebra.
//! let pieces = wide.to_key().difference(&hole.to_key());
//! assert_eq!(pieces.len(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fields;
pub mod key;
pub mod merge;
pub mod overlap;
pub mod prefix;
pub mod rule;
pub mod trie;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::fields::{FlowMatch, PacketHeader};
    pub use crate::key::TernaryKey;
    pub use crate::merge::{minimize_keys, optimize_ruleset};
    pub use crate::overlap::OverlapIndex;
    pub use crate::prefix::Ipv4Prefix;
    pub use crate::rule::{Action, ControlAction, Priority, Rule, RuleId};
    pub use crate::trie::PrefixTrie;
}
