//! Ternary match keys.
//!
//! A TCAM matches a packet header against a *ternary* key: every bit of the
//! key is either `0`, `1` or "don't care" (`*`). We represent a key as a
//! `(value, mask)` pair over a 128-bit word: a bit participates in the match
//! iff the corresponding `mask` bit is set, and then must equal the `value`
//! bit. The invariant `value & !mask == 0` is maintained by construction so
//! that two keys matching the same packets always compare equal.
//!
//! This module implements the small algebra that the rest of Hermes builds
//! on: overlap testing, containment, *difference cutting* (expressing
//! `a \ b` as a set of disjoint ternary keys — the core of the paper's
//! `EliminateOverlap` step in Algorithm 1) and pairwise merging (the inverse
//! operation, used by the `merge` module to minimize partition sets).

use std::fmt;

/// A ternary match key over a 128-bit header window.
///
/// `mask` selects the bits that must match; `value` gives the required bit
/// values. Bits outside `mask` are "don't care".
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct TernaryKey {
    value: u128,
    mask: u128,
}

impl TernaryKey {
    /// The fully wildcarded key (`*`): matches every packet.
    pub const ANY: TernaryKey = TernaryKey { value: 0, mask: 0 };

    /// Builds a key from a value/mask pair. Bits of `value` outside `mask`
    /// are cleared so that semantically equal keys are structurally equal.
    pub fn new(value: u128, mask: u128) -> Self {
        TernaryKey {
            value: value & mask,
            mask,
        }
    }

    /// An exact-match key (every bit cared about).
    pub fn exact(value: u128) -> Self {
        TernaryKey {
            value,
            mask: u128::MAX,
        }
    }

    /// The value bits (always a subset of the mask bits).
    pub fn value(&self) -> u128 {
        self.value
    }

    /// The care-bit mask.
    pub fn mask(&self) -> u128 {
        self.mask
    }

    /// Number of specified (cared-about) bits. A key with higher specificity
    /// matches fewer packets.
    pub fn specificity(&self) -> u32 {
        self.mask.count_ones()
    }

    /// Does this key match the given packet header?
    pub fn matches(&self, packet: u128) -> bool {
        packet & self.mask == self.value
    }

    /// Do the two keys match at least one common packet?
    ///
    /// Two ternary keys overlap iff they agree on every bit they both care
    /// about.
    pub fn overlaps(&self, other: &TernaryKey) -> bool {
        (self.value ^ other.value) & self.mask & other.mask == 0
    }

    /// Does `self` match every packet that `other` matches (`other ⊆ self`)?
    ///
    /// True iff `self`'s care bits are a subset of `other`'s and the values
    /// agree on them.
    pub fn contains(&self, other: &TernaryKey) -> bool {
        self.mask & other.mask == self.mask && (self.value ^ other.value) & self.mask == 0
    }

    /// Are the two keys disjoint (no packet matches both)?
    pub fn disjoint(&self, other: &TernaryKey) -> bool {
        !self.overlaps(other)
    }

    /// The intersection of the two keys, if any packet matches both.
    pub fn intersection(&self, other: &TernaryKey) -> Option<TernaryKey> {
        if !self.overlaps(other) {
            return None;
        }
        Some(TernaryKey {
            value: self.value | other.value,
            mask: self.mask | other.mask,
        })
    }

    /// Expresses `self \ other` as a set of *disjoint* ternary keys.
    ///
    /// This is the cutting primitive behind the paper's `EliminateOverlap`:
    /// when a new (lower-priority) rule overlaps a higher-priority rule
    /// already in the main table, the new rule is cut so that the overlap
    /// region is removed and the remainder can safely live in the shadow
    /// table.
    ///
    /// The construction walks the bits that `other` specifies but `self`
    /// does not (call them `b1..bk`, most-significant first). For each `i`,
    /// it emits a key equal to `self`, further constrained to agree with
    /// `other` on `b1..b(i-1)` and to *disagree* on `bi`. The emitted keys
    /// are pairwise disjoint, their union is exactly `self \ other`, and at
    /// most `k` keys are produced — for prefixes this reduces to the classic
    /// minimal prefix-difference cover.
    ///
    /// Returns:
    /// * `[]` if `other` contains `self` (nothing remains),
    /// * `[self]` if the keys are disjoint (nothing is cut),
    /// * the disjoint cover of `self \ other` otherwise.
    pub fn difference(&self, other: &TernaryKey) -> Vec<TernaryKey> {
        if other.contains(self) {
            return Vec::new();
        }
        if !self.overlaps(other) {
            return vec![*self];
        }
        // Bits `other` specifies that `self` leaves wild, MSB first.
        let mut extra = other.mask & !self.mask;
        debug_assert!(extra != 0, "overlapping, not contained => extra bits exist");
        let mut out = Vec::with_capacity(extra.count_ones() as usize);
        let mut acc_value = self.value;
        let mut acc_mask = self.mask;
        while extra != 0 {
            let bit = 1u128 << (127 - extra.leading_zeros());
            extra &= !bit;
            // A key that agrees with `other` on all previously-consumed bits
            // but disagrees on `bit`.
            let piece_value = (acc_value & !bit) | ((other.value ^ bit) & bit);
            out.push(TernaryKey {
                value: piece_value,
                mask: acc_mask | bit,
            });
            // Constrain the accumulator to agree with `other` on `bit` and
            // continue with the next extra bit.
            acc_value = (acc_value & !bit) | (other.value & bit);
            acc_mask |= bit;
        }
        out
    }

    /// Attempts to merge two keys into one that matches exactly their union.
    ///
    /// Succeeds when the keys have identical masks and their values differ
    /// in exactly one bit: that bit can be turned into a don't-care. This is
    /// the Quine–McCluskey adjacency step used by rule-set minimization.
    pub fn try_merge(&self, other: &TernaryKey) -> Option<TernaryKey> {
        if self.mask != other.mask {
            // A key containing the other also "merges" to the larger key.
            if self.contains(other) {
                return Some(*self);
            }
            if other.contains(self) {
                return Some(*other);
            }
            return None;
        }
        let diff = self.value ^ other.value;
        if diff.count_ones() == 1 {
            let mask = self.mask & !diff;
            return Some(TernaryKey {
                value: self.value & mask,
                mask,
            });
        }
        if diff == 0 {
            return Some(*self);
        }
        None
    }

    /// `true` if the mask is a contiguous run of most-significant bits
    /// (i.e. the key is a prefix over the 128-bit window).
    pub fn is_prefix_shaped(&self) -> bool {
        // A prefix mask looks like 1..10..0; adding the lowest clear run's
        // carry must overflow to zero.
        self.mask.leading_ones() == self.mask.count_ones()
    }
}

impl fmt::Debug for TernaryKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TernaryKey({:032x}/{:032x})", self.value, self.mask)
    }
}

impl fmt::Display for TernaryKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}/{:032x}", self.value, self.mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(value: u128, mask: u128) -> TernaryKey {
        TernaryKey::new(value, mask)
    }

    #[test]
    fn any_matches_everything() {
        assert!(TernaryKey::ANY.matches(0));
        assert!(TernaryKey::ANY.matches(u128::MAX));
        assert!(TernaryKey::ANY.matches(0xdead_beef));
    }

    #[test]
    fn new_clears_dont_care_value_bits() {
        let k = key(0b1111, 0b1010);
        assert_eq!(k.value(), 0b1010);
        assert_eq!(k, key(0b1010, 0b1010));
    }

    #[test]
    fn exact_matches_only_itself() {
        let k = TernaryKey::exact(42);
        assert!(k.matches(42));
        assert!(!k.matches(43));
        assert_eq!(k.specificity(), 128);
    }

    #[test]
    fn overlap_requires_agreement_on_common_bits() {
        let a = key(0b10_00, 0b11_00);
        let b = key(0b10_01, 0b11_11);
        assert!(a.overlaps(&b));
        let c = key(0b01_00, 0b11_00);
        assert!(!c.overlaps(&b));
        // ANY overlaps everything.
        assert!(TernaryKey::ANY.overlaps(&b));
    }

    #[test]
    fn containment() {
        let wide = key(0b10_00, 0b11_00);
        let narrow = key(0b10_01, 0b11_11);
        assert!(wide.contains(&narrow));
        assert!(!narrow.contains(&wide));
        assert!(TernaryKey::ANY.contains(&wide));
        assert!(wide.contains(&wide));
    }

    #[test]
    fn intersection_combines_constraints() {
        let a = key(0b10_00, 0b11_00);
        let b = key(0b00_01, 0b00_11);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, key(0b10_01, 0b11_11));
        let c = key(0b01_00, 0b11_00);
        assert!(c.intersection(&b).is_some());
        assert!(c.intersection(&a).is_none());
    }

    #[test]
    fn difference_of_disjoint_is_identity() {
        let a = key(0b10_00, 0b11_00);
        let c = key(0b01_00, 0b11_00);
        assert_eq!(a.difference(&c), vec![a]);
    }

    #[test]
    fn difference_when_contained_is_empty() {
        let wide = key(0b10_00, 0b11_00);
        let narrow = key(0b10_01, 0b11_11);
        assert!(narrow.difference(&wide).is_empty());
    }

    #[test]
    fn difference_pieces_are_disjoint_and_cover() {
        // wide = 10** ; narrow = 1011 ; wide \ narrow = {1010, 100*}
        let wide = key(0b10_00, 0b11_00);
        let narrow = key(0b10_11, 0b11_11);
        let pieces = wide.difference(&narrow);
        assert_eq!(pieces.len(), 2);
        // Exhaustively check semantics over the 4-bit space.
        for pkt in 0u128..16 {
            let in_wide = wide.matches(pkt);
            let in_narrow = narrow.matches(pkt);
            let n_matching = pieces.iter().filter(|p| p.matches(pkt)).count();
            if in_wide && !in_narrow {
                assert_eq!(n_matching, 1, "pkt {pkt:04b} must match exactly one piece");
            } else {
                assert_eq!(n_matching, 0, "pkt {pkt:04b} must match no piece");
            }
        }
    }

    #[test]
    fn difference_partial_overlap() {
        // a cares about bits 3..2 = 10; b cares about bits 1..0 = 11.
        // a \ b = packets with bits3..2 = 10 and bits1..0 != 11.
        let a = key(0b10_00, 0b11_00);
        let b = key(0b00_11, 0b00_11);
        let pieces = a.difference(&b);
        for pkt in 0u128..16 {
            let expect = a.matches(pkt) && !b.matches(pkt);
            let got = pieces.iter().filter(|p| p.matches(pkt)).count();
            assert_eq!(got, usize::from(expect), "pkt {pkt:04b}");
        }
    }

    #[test]
    fn merge_adjacent_values() {
        let a = key(0b1010, 0b1111);
        let b = key(0b1011, 0b1111);
        let m = a.try_merge(&b).unwrap();
        assert_eq!(m, key(0b1010, 0b1110));
        for pkt in 0u128..16 {
            assert_eq!(m.matches(pkt), a.matches(pkt) || b.matches(pkt));
        }
    }

    #[test]
    fn merge_rejects_two_bit_difference() {
        let a = key(0b1010, 0b1111);
        let b = key(0b1001, 0b1111);
        assert!(a.try_merge(&b).is_none());
    }

    #[test]
    fn merge_containment() {
        let wide = key(0b10_00, 0b11_00);
        let narrow = key(0b10_01, 0b11_11);
        assert_eq!(wide.try_merge(&narrow), Some(wide));
        assert_eq!(narrow.try_merge(&wide), Some(wide));
    }

    #[test]
    fn prefix_shape_detection() {
        assert!(TernaryKey::ANY.is_prefix_shaped());
        assert!(TernaryKey::exact(7).is_prefix_shaped());
        assert!(key(0, u128::MAX << 100).is_prefix_shaped());
        assert!(!key(0, 0b101).is_prefix_shaped());
    }
}
