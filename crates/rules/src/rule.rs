//! Flow rules.
//!
//! A [`Rule`] is the unit that control-plane actions operate on: a ternary
//! match key, a priority, and an action. Rule identity is carried by a
//! [`RuleId`] assigned by the controller so that deletions and modifications
//! can name the rule they target even after Hermes has partitioned it into
//! several physical TCAM entries.

use crate::key::TernaryKey;
use std::fmt;

/// Controller-assigned rule identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId(pub u64);

impl fmt::Debug for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Rule priority. Higher values win; `Priority::NONE` marks rules that do
/// not care about ordering (the paper's "rules without priorities", which
/// switches can install much faster because no entries need to move).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Priority(pub u32);

impl Priority {
    /// A rule without an ordering requirement.
    pub const NONE: Priority = Priority(0);
    /// The lowest orderable priority.
    pub const MIN: Priority = Priority(1);
    /// The highest priority.
    pub const MAX: Priority = Priority(u32::MAX);

    /// `true` when the rule carries no ordering requirement.
    pub fn is_none(&self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The forwarding action attached to a rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Action {
    /// Forward out of the given port.
    Forward(u32),
    /// Drop the packet.
    Drop,
    /// Punt the packet to the SDN controller.
    Controller,
    /// Fall through to the next table in the pipeline (the configured
    /// table-miss behaviour of Hermes shadow tables).
    GotoNextTable,
}

/// A flow rule: match key + priority + action.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Rule {
    /// Controller-visible identity.
    pub id: RuleId,
    /// Ternary match key.
    pub key: TernaryKey,
    /// Priority (higher wins).
    pub priority: Priority,
    /// Action to apply on match.
    pub action: Action,
}

impl Rule {
    /// Builds a rule.
    pub fn new(id: u64, key: TernaryKey, priority: Priority, action: Action) -> Self {
        Rule {
            id: RuleId(id),
            key,
            priority,
            action,
        }
    }

    /// Do the match regions of two rules overlap?
    pub fn overlaps(&self, other: &Rule) -> bool {
        self.key.overlaps(&other.key)
    }

    /// A copy with a different key (used when cutting rules into partitions).
    pub fn with_key(&self, key: TernaryKey) -> Rule {
        Rule { key, ..*self }
    }

    /// A copy with a different priority (used by the incremental atomic
    /// migration to bump rules above the entries they replace).
    pub fn with_priority(&self, priority: Priority) -> Rule {
        Rule { priority, ..*self }
    }
}

/// The kinds of control-plane action a controller can issue (the paper's
/// `flow-mod` family).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ControlAction {
    /// Insert a new rule.
    Insert(Rule),
    /// Delete the rule with the given id.
    Delete(RuleId),
    /// Modify the rule with the given id: replace action and/or priority.
    Modify {
        /// Target rule.
        id: RuleId,
        /// New action, if changing.
        action: Option<Action>,
        /// New priority, if changing (converted into delete+insert by
        /// Hermes, per §4.1).
        priority: Option<Priority>,
    },
}

impl ControlAction {
    /// The rule id the action refers to.
    pub fn rule_id(&self) -> RuleId {
        match self {
            ControlAction::Insert(r) => r.id,
            ControlAction::Delete(id) => *id,
            ControlAction::Modify { id, .. } => *id,
        }
    }

    /// `true` for insertions — the only action class that needs performance
    /// engineering (§2.1 takeaways).
    pub fn is_insert(&self) -> bool {
        matches!(self, ControlAction::Insert(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::Ipv4Prefix;

    fn rule(id: u64, pfx: &str, prio: u32) -> Rule {
        let p: Ipv4Prefix = pfx.parse().unwrap();
        Rule::new(id, p.to_key(), Priority(prio), Action::Forward(1))
    }

    #[test]
    fn priority_ordering() {
        assert!(Priority(10) > Priority(1));
        assert!(Priority::NONE.is_none());
        assert!(!Priority::MIN.is_none());
        assert!(Priority::MAX > Priority(1_000_000));
    }

    #[test]
    fn rule_overlap_follows_keys() {
        let a = rule(1, "10.0.0.0/8", 10);
        let b = rule(2, "10.1.0.0/16", 5);
        let c = rule(3, "11.0.0.0/8", 5);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn control_action_accessors() {
        let r = rule(7, "10.0.0.0/8", 1);
        assert_eq!(ControlAction::Insert(r).rule_id(), RuleId(7));
        assert!(ControlAction::Insert(r).is_insert());
        assert_eq!(ControlAction::Delete(RuleId(9)).rule_id(), RuleId(9));
        assert!(!ControlAction::Delete(RuleId(9)).is_insert());
        let m = ControlAction::Modify {
            id: RuleId(3),
            action: Some(Action::Drop),
            priority: None,
        };
        assert_eq!(m.rule_id(), RuleId(3));
    }

    #[test]
    fn with_key_and_priority_preserve_identity() {
        let r = rule(1, "10.0.0.0/8", 10);
        let cut = r.with_key("10.128.0.0/9".parse::<Ipv4Prefix>().unwrap().to_key());
        assert_eq!(cut.id, r.id);
        assert_eq!(cut.priority, r.priority);
        let bumped = r.with_priority(Priority(11));
        assert_eq!(bumped.id, r.id);
        assert_eq!(bumped.key, r.key);
        assert_eq!(bumped.priority, Priority(11));
    }
}
