//! IPv4 prefixes.
//!
//! FIB rules — the dominant rule shape in both the SDN and BGP workloads of
//! the paper — match on a destination IPv4 prefix. This module provides a
//! compact prefix type with the containment/overlap/difference operations
//! Hermes's partitioning algorithm needs, plus conversion into the generic
//! [`crate::key::TernaryKey`] representation used by the TCAM
//! model (the destination address occupies the top 32 bits of the 128-bit
//! header window, see [`crate::fields`]).

use crate::fields::DST_SHIFT;
use crate::key::TernaryKey;
use std::fmt;
use std::str::FromStr;

/// An IPv4 prefix `addr/len`.
///
/// Invariant: host bits of `addr` below the prefix length are zero.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Prefix {
    addr: u32,
    len: u8,
}

/// Error returned when parsing an [`Ipv4Prefix`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixParseError(String);

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 prefix: {}", self.0)
    }
}

impl std::error::Error for PrefixParseError {}

impl Ipv4Prefix {
    /// The default route `0.0.0.0/0`.
    pub const DEFAULT: Ipv4Prefix = Ipv4Prefix { addr: 0, len: 0 };

    /// Builds a prefix, zeroing any host bits below `len`.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn new(addr: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        Ipv4Prefix {
            addr: addr & Self::mask_of(len),
            len,
        }
    }

    /// A host route (`/32`).
    pub fn host(addr: u32) -> Self {
        Ipv4Prefix { addr, len: 32 }
    }

    /// Builds from dotted-quad octets.
    pub fn from_octets(a: u8, b: u8, c: u8, d: u8, len: u8) -> Self {
        Self::new(u32::from_be_bytes([a, b, c, d]), len)
    }

    fn mask_of(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The network address.
    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// The prefix length.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// `true` only for the default route (`/0`), which matches every
    /// address. (Provided for clippy-idiomatic pairing with `len`.)
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The netmask as a `u32`.
    pub fn netmask(&self) -> u32 {
        Self::mask_of(self.len)
    }

    /// Does the prefix contain the address?
    pub fn matches(&self, addr: u32) -> bool {
        addr & self.netmask() == self.addr
    }

    /// Is `other` a subset of (or equal to) `self`?
    pub fn contains(&self, other: &Ipv4Prefix) -> bool {
        self.len <= other.len && other.addr & self.netmask() == self.addr
    }

    /// Do the two prefixes share any address? For prefixes, overlap implies
    /// one contains the other.
    pub fn overlaps(&self, other: &Ipv4Prefix) -> bool {
        self.contains(other) || other.contains(self)
    }

    /// The two halves of this prefix, or `None` for a `/32`.
    pub fn children(&self) -> Option<(Ipv4Prefix, Ipv4Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let len = self.len + 1;
        let bit = 1u32 << (32 - len);
        Some((
            Ipv4Prefix {
                addr: self.addr,
                len,
            },
            Ipv4Prefix {
                addr: self.addr | bit,
                len,
            },
        ))
    }

    /// The enclosing prefix one bit shorter, or `None` for `/0`.
    pub fn parent(&self) -> Option<Ipv4Prefix> {
        if self.len == 0 {
            return None;
        }
        Some(Ipv4Prefix::new(self.addr, self.len - 1))
    }

    /// The sibling under the same parent, or `None` for `/0`.
    pub fn sibling(&self) -> Option<Ipv4Prefix> {
        if self.len == 0 {
            return None;
        }
        let bit = 1u32 << (32 - self.len);
        Some(Ipv4Prefix {
            addr: self.addr ^ bit,
            len: self.len,
        })
    }

    /// The minimal prefix cover of `self \ other`.
    ///
    /// * `[]` when `other` contains `self`;
    /// * `[self]` when they are disjoint;
    /// * otherwise (i.e. `self` strictly contains `other`) the classic
    ///   sibling walk producing exactly `other.len() - self.len()` prefixes.
    pub fn difference(&self, other: &Ipv4Prefix) -> Vec<Ipv4Prefix> {
        if other.contains(self) {
            return Vec::new();
        }
        if !self.contains(other) {
            return vec![*self];
        }
        let mut out = Vec::with_capacity((other.len - self.len) as usize);
        let mut cur = *other;
        while cur.len > self.len {
            out.push(cur.sibling().expect("INVARIANT: loop guard keeps cur.len > self.len >= 0"));
            cur = cur.parent().expect("INVARIANT: loop guard keeps cur.len > self.len >= 0");
        }
        out
    }

    /// Converts into the 128-bit ternary key used by the TCAM model: the
    /// destination address occupies the top 32 bits of the header window.
    pub fn to_key(&self) -> TernaryKey {
        let value = (self.addr as u128) << DST_SHIFT;
        let mask = (self.netmask() as u128) << DST_SHIFT;
        TernaryKey::new(value, mask)
    }

    /// Dotted-quad octets of the network address.
    pub fn octets(&self) -> [u8; 4] {
        self.addr.to_be_bytes()
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}/{}", self.len)
    }
}

impl fmt::Debug for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for Ipv4Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || PrefixParseError(s.to_string());
        let (ip, len) = s.split_once('/').ok_or_else(err)?;
        let len: u8 = len.parse().map_err(|_| err())?;
        if len > 32 {
            return Err(err());
        }
        let mut octs = [0u8; 4];
        let mut n = 0;
        for part in ip.split('.') {
            if n == 4 {
                return Err(err());
            }
            octs[n] = part.parse().map_err(|_| err())?;
            n += 1;
        }
        if n != 4 {
            return Err(err());
        }
        Ok(Ipv4Prefix::new(u32::from_be_bytes(octs), len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["0.0.0.0/0", "192.168.1.0/24", "10.0.0.0/8", "1.2.3.4/32"] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in [
            "",
            "1.2.3.4",
            "1.2.3/8",
            "1.2.3.4.5/8",
            "1.2.3.4/33",
            "a.b.c.d/8",
        ] {
            assert!(s.parse::<Ipv4Prefix>().is_err(), "{s} should not parse");
        }
    }

    #[test]
    fn new_zeroes_host_bits() {
        let a = Ipv4Prefix::new(u32::from_be_bytes([192, 168, 1, 5]), 24);
        assert_eq!(a, p("192.168.1.0/24"));
    }

    #[test]
    fn containment_and_overlap() {
        let net = p("192.168.1.0/24");
        let sub = p("192.168.1.64/26");
        let other = p("192.168.2.0/24");
        assert!(net.contains(&sub));
        assert!(!sub.contains(&net));
        assert!(net.overlaps(&sub));
        assert!(sub.overlaps(&net));
        assert!(!net.overlaps(&other));
        assert!(Ipv4Prefix::DEFAULT.contains(&net));
    }

    #[test]
    fn matches_addresses() {
        let net = p("192.168.1.0/24");
        assert!(net.matches(u32::from_be_bytes([192, 168, 1, 5])));
        assert!(!net.matches(u32::from_be_bytes([192, 168, 2, 5])));
        assert!(Ipv4Prefix::DEFAULT.matches(0));
    }

    #[test]
    fn family_navigation() {
        let net = p("192.168.1.0/24");
        let (l, r) = net.children().unwrap();
        assert_eq!(l, p("192.168.1.0/25"));
        assert_eq!(r, p("192.168.1.128/25"));
        assert_eq!(l.parent().unwrap(), net);
        assert_eq!(l.sibling().unwrap(), r);
        assert!(Ipv4Prefix::host(1).children().is_none());
        assert!(Ipv4Prefix::DEFAULT.parent().is_none());
    }

    #[test]
    fn difference_matches_paper_figure4() {
        // Fig. 4(c): 192.168.1.0/24 minus 192.168.1.0/26
        // = {192.168.1.64/26, 192.168.1.128/25}.
        let wide = p("192.168.1.0/24");
        let hole = p("192.168.1.0/26");
        let mut diff = wide.difference(&hole);
        diff.sort();
        assert_eq!(diff, vec![p("192.168.1.64/26"), p("192.168.1.128/25")]);
    }

    #[test]
    fn difference_edge_cases() {
        let wide = p("10.0.0.0/8");
        assert!(wide.difference(&wide).is_empty());
        assert!(wide.difference(&Ipv4Prefix::DEFAULT).is_empty());
        let disjoint = p("11.0.0.0/8");
        assert_eq!(wide.difference(&disjoint), vec![wide]);
    }

    #[test]
    fn difference_semantics_exhaustive_on_small_space() {
        // Work within 10.0.0.0/24 so we can brute-force all 256 addresses.
        let base = 0x0a_00_00_00u32;
        let a = Ipv4Prefix::new(base, 24);
        let b = Ipv4Prefix::new(base | 0x40, 26);
        let diff = a.difference(&b);
        for host in 0u32..=255 {
            let addr = base | host;
            let expect = a.matches(addr) && !b.matches(addr);
            let got = diff.iter().filter(|q| q.matches(addr)).count();
            assert_eq!(got, usize::from(expect), "addr 10.0.0.{host}");
        }
    }

    #[test]
    fn key_conversion_preserves_semantics() {
        let net = p("192.168.1.0/26");
        let key = net.to_key();
        assert!(key.is_prefix_shaped());
        let pkt = (u32::from_be_bytes([192, 168, 1, 5]) as u128) << DST_SHIFT;
        assert!(key.matches(pkt));
        let pkt2 = (u32::from_be_bytes([192, 168, 1, 200]) as u128) << DST_SHIFT;
        assert!(!key.matches(pkt2));
    }

    #[test]
    fn prefix_difference_agrees_with_ternary_difference() {
        let wide = p("192.168.0.0/16");
        let hole = p("192.168.37.192/27");
        let via_prefix: Vec<TernaryKey> =
            wide.difference(&hole).iter().map(|q| q.to_key()).collect();
        let via_key = wide.to_key().difference(&hole.to_key());
        // Same number of pieces (both minimal) and identical semantics on
        // sampled addresses.
        assert_eq!(via_prefix.len(), via_key.len());
        for i in 0..1000u32 {
            let addr = 0xc0a8_0000u32 | (i.wrapping_mul(2654435761) % 65536);
            let pkt = (addr as u128) << DST_SHIFT;
            let a = via_prefix.iter().any(|k| k.matches(pkt));
            let b = via_key.iter().any(|k| k.matches(pkt));
            assert_eq!(a, b);
        }
    }
}
